"""Setup shim.

Kept so ``pip install -e .`` works on hosts without the ``wheel`` package
(no PEP 660 build backend available offline); all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
