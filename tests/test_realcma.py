"""Tests against the real kernel's CMA syscalls (skipped where forbidden)."""

import ctypes
import errno
import os

import pytest

from repro.realcma import (
    CMAUnavailable,
    RealCMAError,
    cma_unavailable_reason,
    one_to_all_read,
    process_vm_readv,
    process_vm_writev,
)
from repro.realcma.syscall import iov_from_buffer

_CMA_REASON = cma_unavailable_reason()
needs_cma = pytest.mark.skipif(
    _CMA_REASON is not None, reason=_CMA_REASON or "real CMA available"
)


class TestSyscallBindings:
    @needs_cma
    def test_self_read(self):
        """Reading our own memory is always permitted."""
        src = ctypes.create_string_buffer(b"hello CMA world!")
        dst = ctypes.create_string_buffer(16)
        got = process_vm_readv(
            os.getpid(),
            [iov_from_buffer(dst)],
            [(ctypes.addressof(src), 16)],
        )
        assert got == 16
        assert dst.raw == b"hello CMA world!"

    @needs_cma
    def test_self_write(self):
        src = ctypes.create_string_buffer(b"0123456789abcdef", 16)
        dst = ctypes.create_string_buffer(16)
        got = process_vm_writev(
            os.getpid(),
            [iov_from_buffer(src)],
            [(ctypes.addressof(dst), 16)],
        )
        assert got == 16
        assert dst.raw == src.raw

    @needs_cma
    def test_multi_iovec_gather(self):
        a = ctypes.create_string_buffer(b"AAAA")
        b = ctypes.create_string_buffer(b"BBBB")
        dst = ctypes.create_string_buffer(8)
        got = process_vm_readv(
            os.getpid(),
            [iov_from_buffer(dst)],
            [(ctypes.addressof(a), 4), (ctypes.addressof(b), 4)],
        )
        assert got == 8
        assert dst.raw == b"AAAA\x00BBB"[:8] or dst.raw == b"AAAABBBB"

    @needs_cma
    def test_esrch_for_bogus_pid(self):
        dst = ctypes.create_string_buffer(8)
        with pytest.raises(RealCMAError) as exc:
            process_vm_readv(2 ** 22 - 1, [iov_from_buffer(dst)], [(0x1000, 8)])
        assert exc.value.errno in (errno.ESRCH, errno.EPERM)

    @needs_cma
    def test_efault_for_bad_remote_address(self):
        dst = ctypes.create_string_buffer(8)
        with pytest.raises(RealCMAError) as exc:
            process_vm_readv(os.getpid(), [iov_from_buffer(dst)], [(0x10, 8)])
        assert exc.value.errno == errno.EFAULT

    def test_readonly_buffer_rejected(self):
        with pytest.raises(ValueError):
            iov_from_buffer(memoryview(b"const").obj if False else b"const")

    def test_negative_iovec_length_is_einval(self):
        """Runs on every host: the binding validates before the syscall."""
        with pytest.raises(RealCMAError) as exc:
            process_vm_readv(os.getpid(), [(0x1000, 8)], [(0x2000, -8)])
        assert exc.value.errno == errno.EINVAL


class TestSimulatedParity:
    """The simulated kernel agrees with the real one on bad-iovec errnos."""

    def test_negative_length_einval_matches(self):
        from repro.kernel.errors import CMAError
        from repro.machine import make_generic
        from repro.mpi import Comm, Node

        node = Node(make_generic(sockets=1, cores_per_socket=2))
        comm = Comm(node, 2)
        buf = comm.allocate(0, 4096)

        def rank0(ctx):
            with pytest.raises(CMAError) as sim_exc:
                yield from node.cma.process_vm_readv(
                    ctx.proc, comm.pid_of(1), [buf.iov()], [(buf.addr, -8)]
                )
            assert sim_exc.value.errno == errno.EINVAL

        node.sim.run_all([comm.spawn_rank(0, rank0)])
        # and the real binding raises the identical errno for the same call
        with pytest.raises(RealCMAError) as real_exc:
            process_vm_readv(os.getpid(), [(0x1000, 8)], [(0x2000, -8)])
        assert real_exc.value.errno == errno.EINVAL


class TestUnavailableReason:
    def test_reason_is_none_or_string(self):
        reason = cma_unavailable_reason()
        assert reason is None or (isinstance(reason, str) and reason)

    def test_harness_raises_cma_unavailable_with_reason(self, monkeypatch):
        from repro.realcma import harness

        monkeypatch.setattr(
            harness, "cma_unavailable_reason", lambda: "forced for the test"
        )
        with pytest.raises(CMAUnavailable) as exc:
            one_to_all_read(readers=1, nbytes=4096, iters=1)
        assert exc.value.reason == "forced for the test"
        assert exc.value.errno == 38  # still an ENOSYS-class RealCMAError


class TestHarness:
    @needs_cma
    def test_one_to_all_moves_correct_bytes(self):
        res = one_to_all_read(readers=2, nbytes=64 * 1024, iters=3)
        assert res.verified
        assert res.mean_latency_us > 0
        assert res.max_latency_us >= res.mean_latency_us

    @needs_cma
    def test_one_to_all_scales_runs(self):
        """Smoke the contention sweep (no latency assertion: host-dependent,
        CI boxes are too noisy for a reliable trend check)."""
        for readers in (1, 4):
            res = one_to_all_read(readers=readers, nbytes=128 * 1024, iters=5)
            assert res.readers == readers
            assert res.verified
