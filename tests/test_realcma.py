"""Tests against the real kernel's CMA syscalls (skipped where forbidden)."""

import ctypes
import errno
import os

import pytest

from repro.realcma import (
    RealCMAError,
    cma_available,
    one_to_all_read,
    process_vm_readv,
    process_vm_writev,
)
from repro.realcma.syscall import iov_from_buffer

needs_cma = pytest.mark.skipif(
    not cma_available(), reason="process_vm_readv unavailable or ptrace denied"
)


class TestSyscallBindings:
    @needs_cma
    def test_self_read(self):
        """Reading our own memory is always permitted."""
        src = ctypes.create_string_buffer(b"hello CMA world!")
        dst = ctypes.create_string_buffer(16)
        got = process_vm_readv(
            os.getpid(),
            [iov_from_buffer(dst)],
            [(ctypes.addressof(src), 16)],
        )
        assert got == 16
        assert dst.raw == b"hello CMA world!"

    @needs_cma
    def test_self_write(self):
        src = ctypes.create_string_buffer(b"0123456789abcdef", 16)
        dst = ctypes.create_string_buffer(16)
        got = process_vm_writev(
            os.getpid(),
            [iov_from_buffer(src)],
            [(ctypes.addressof(dst), 16)],
        )
        assert got == 16
        assert dst.raw == src.raw

    @needs_cma
    def test_multi_iovec_gather(self):
        a = ctypes.create_string_buffer(b"AAAA")
        b = ctypes.create_string_buffer(b"BBBB")
        dst = ctypes.create_string_buffer(8)
        got = process_vm_readv(
            os.getpid(),
            [iov_from_buffer(dst)],
            [(ctypes.addressof(a), 4), (ctypes.addressof(b), 4)],
        )
        assert got == 8
        assert dst.raw == b"AAAA\x00BBB"[:8] or dst.raw == b"AAAABBBB"

    @needs_cma
    def test_esrch_for_bogus_pid(self):
        dst = ctypes.create_string_buffer(8)
        with pytest.raises(RealCMAError) as exc:
            process_vm_readv(2 ** 22 - 1, [iov_from_buffer(dst)], [(0x1000, 8)])
        assert exc.value.errno in (errno.ESRCH, errno.EPERM)

    @needs_cma
    def test_efault_for_bad_remote_address(self):
        dst = ctypes.create_string_buffer(8)
        with pytest.raises(RealCMAError) as exc:
            process_vm_readv(os.getpid(), [iov_from_buffer(dst)], [(0x10, 8)])
        assert exc.value.errno == errno.EFAULT

    def test_readonly_buffer_rejected(self):
        with pytest.raises(ValueError):
            iov_from_buffer(memoryview(b"const").obj if False else b"const")


class TestHarness:
    @needs_cma
    def test_one_to_all_moves_correct_bytes(self):
        res = one_to_all_read(readers=2, nbytes=64 * 1024, iters=3)
        assert res.verified
        assert res.mean_latency_us > 0
        assert res.max_latency_us >= res.mean_latency_us

    @needs_cma
    def test_one_to_all_scales_runs(self):
        """Smoke the contention sweep (no latency assertion: host-dependent,
        CI boxes are too noisy for a reliable trend check)."""
        for readers in (1, 4):
            res = one_to_all_read(readers=readers, nbytes=128 * 1024, iters=5)
            assert res.readers == readers
            assert res.verified
