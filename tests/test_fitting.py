"""Tests for the Table III / Table IV / Fig 5 parameter-fitting pipeline."""

import pytest

from repro.core import fitting
from repro.machine import get_arch, make_generic


@pytest.fixture(scope="module")
def small_arch():
    return make_generic(sockets=1, cores_per_socket=17, default_procs=17)


class TestStepTimings:
    def test_ordering_t1_to_t4(self, small_arch):
        s = fitting.measure_steps(small_arch, pages=8)
        assert s.t1_syscall < s.t2_check < s.t3_lock_pin < s.t4_copy

    def test_t1_is_syscall_cost(self, small_arch):
        s = fitting.measure_steps(small_arch, pages=8)
        assert s.t1_syscall == pytest.approx(small_arch.params.alpha_syscall)

    def test_unknown_step_rejected(self, small_arch):
        from repro.bench import microbench

        with pytest.raises(KeyError):
            microbench.step_timing(small_arch, "teleport")


class TestBaseParams:
    def test_recovers_ground_truth(self, small_arch):
        base = fitting.derive_base_params(small_arch)
        p = small_arch.params
        assert base.alpha == pytest.approx(p.alpha, rel=0.01)
        assert base.l_page == pytest.approx(p.l_page, rel=0.01)
        assert base.beta == pytest.approx(p.beta, rel=0.01)

    def test_recovers_all_paper_arches(self):
        for name in ("knl", "broadwell", "power8"):
            arch = get_arch(name)
            base = fitting.derive_base_params(arch)
            assert base.alpha == pytest.approx(arch.params.alpha, rel=0.01), name
            assert base.page_size == arch.params.page_size

    def test_beta_gbps_roundtrip(self, small_arch):
        base = fitting.derive_base_params(small_arch)
        assert base.beta_gbps == pytest.approx(small_arch.params.beta_gbps, rel=0.01)


class TestGammaMeasurement:
    def test_gamma_one_at_single_reader(self, small_arch):
        samples = fitting.measure_gamma(
            small_arch, page_counts=(16,), reader_counts=(1,)
        )
        assert samples[0].gamma == pytest.approx(1.0)

    def test_gamma_grows_with_readers(self, small_arch):
        samples = fitting.measure_gamma(
            small_arch, page_counts=(32,), reader_counts=(1, 4, 16)
        )
        g = {s.readers: s.gamma for s in samples}
        assert g[4] > g[1]
        assert g[16] > 2 * g[4]

    def test_gamma_roughly_independent_of_pages(self, small_arch):
        """The paper's observation: gamma depends on concurrency, not on
        how many pages are being locked."""
        samples = fitting.measure_gamma(
            small_arch, page_counts=(32, 96), reader_counts=(8,)
        )
        g = [s.gamma for s in samples]
        assert g[0] == pytest.approx(g[1], rel=0.35)


class TestGammaFit:
    def test_fit_recovers_synthetic_polynomial(self):
        truth = fitting.GammaFit(g1=1.5, g2=0.08)
        samples = [
            fitting.GammaSample(pages=10, readers=c, gamma=truth(c))
            for c in (1, 2, 4, 8, 16, 32, 64)
        ]
        fit = fitting.fit_gamma(samples)
        assert fit.g1 == pytest.approx(1.5, abs=0.05)
        assert fit.g2 == pytest.approx(0.08, abs=0.01)
        assert fit.residual < 1e-6

    def test_fit_with_knee_recovers_spill(self):
        truth = fitting.GammaFit(g1=0.8, g2=0.03, spill=0.2, knee=14)
        samples = [
            fitting.GammaSample(pages=10, readers=c, gamma=truth(c))
            for c in (1, 2, 4, 8, 12, 14, 16, 20, 28)
        ]
        fit = fitting.fit_gamma(samples, knee=14)
        assert fit.spill == pytest.approx(0.2, abs=0.02)

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            fitting.fit_gamma([])

    def test_gamma_fit_callable_clamps_below_one_reader(self):
        fit = fitting.GammaFit(g1=2.0, g2=0.5)
        assert fit(0.5) == 1.0
        assert fit(1) == 1.0


class TestFullPipeline:
    def test_fit_architecture_produces_superlinear_gamma(self, small_arch):
        fa = fitting.fit_architecture(
            small_arch, page_counts=(16, 48), reader_counts=(1, 2, 4, 8, 16)
        )
        # super-linear: quadratic term present
        assert fa.gamma.g2 > 0.005
        assert fa.gamma(16) > fa.gamma(8) > fa.gamma(2) >= 1.0

    def test_two_socket_fit_uses_knee(self):
        arch = make_generic(sockets=2, cores_per_socket=8, default_procs=16)
        fa = fitting.fit_architecture(
            arch, page_counts=(16,), reader_counts=(1, 2, 4, 8, 12, 15)
        )
        assert fa.gamma.knee == 8

    def test_table_row_formatting(self, small_arch):
        fa = fitting.fit_architecture(
            small_arch, page_counts=(16,), reader_counts=(1, 4, 8)
        )
        row = fa.as_table_row()
        assert set(row) == {"alpha", "beta", "l", "s", "gamma(c)"}
        assert "us" in row["alpha"]
        assert "GBps" in row["beta"]
