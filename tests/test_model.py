"""Tests for the analytic cost model: formula structure, monotonicity,
special-case identities, and agreement with the simulator (Fig. 12)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import AnalyticModel, predict
from repro.core.runner import CollectiveSpec, run_collective
from repro.machine import get_arch, make_generic


@pytest.fixture(scope="module")
def knl_model():
    return AnalyticModel(get_arch("knl"))


class TestPrimitives:
    def test_cma_formula(self, knl_model):
        p = knl_model.p_
        eta = 10 * 4096
        t = knl_model.cma(eta, c=4)
        assert t == pytest.approx(p.alpha + eta * p.beta + p.l_page * p.gamma(4) * 10)

    def test_cma_no_contention_at_c1(self, knl_model):
        eta = 4096
        assert knl_model.cma(eta, 1) < knl_model.cma(eta, 2)

    def test_shm_two_copies(self, knl_model):
        p = knl_model.p_
        assert knl_model.shm_copy2(p.shm_chunk) == pytest.approx(
            2 * (p.shm_chunk * p.shm_beta + p.shm_chunk_overhead)
        )

    def test_sm_terms_logarithmic(self, knl_model):
        assert knl_model.t_sm_bcast(64) == 2 * knl_model.t_sm_bcast(8)


class TestSpecialCaseIdentities:
    """Throttled with k=1 / k=p-1 must equal the boundary algorithms'
    transfer terms (the paper calls them special cases)."""

    def test_throttled_k1_matches_sequential_transfers(self, knl_model):
        p, eta = 16, 1 << 20
        thr = knl_model.scatter_throttled(p, eta, k=1)
        seq = knl_model.scatter_sequential_write(p, eta, in_place=True)
        # identical (p-1) uncontended transfers; only sm-term bookkeeping differs
        assert thr == pytest.approx(seq, rel=0.02)

    def test_throttled_kmax_matches_parallel(self, knl_model):
        p, eta = 16, 1 << 20
        thr = knl_model.scatter_throttled(p, eta, k=p - 1)
        par = knl_model.scatter_parallel_read(p, eta)
        assert thr == pytest.approx(par, rel=0.02)

    def test_gather_mirrors_scatter(self, knl_model):
        p, eta = 32, 65536
        assert knl_model.gather_throttled(p, eta, 4) == knl_model.scatter_throttled(
            p, eta, 4
        )


class TestShapes:
    def test_throttled_has_interior_optimum_on_knl(self, knl_model):
        """Fig 7(a): neither k=1 nor k=p-1 is optimal for large messages."""
        p, eta = 64, 1 << 20
        costs = {k: knl_model.scatter_throttled(p, eta, k) for k in range(1, p)}
        best = min(costs, key=costs.get)
        assert 2 <= best <= 16

    def test_power8_prefers_more_concurrency(self):
        """Fig 7(c): larger pages + spill at 10 push k* toward ~10."""
        m = AnalyticModel(get_arch("power8"))
        p, eta = 160, 1 << 20
        costs = {k: m.scatter_throttled(p, eta, k) for k in range(1, 41)}
        best = min(costs, key=costs.get)
        assert 6 <= best <= 12

    def test_bruck_alltoall_loses_large(self, knl_model):
        p = 64
        small, large = 256, 1 << 20
        assert knl_model.alltoall_bruck(p, small) < knl_model.alltoall_pairwise(
            p, small
        )
        assert knl_model.alltoall_bruck(p, large) > knl_model.alltoall_pairwise(
            p, large
        )

    def test_scatter_allgather_bcast_wins_large(self, knl_model):
        p = 64
        assert knl_model.bcast_scatter_allgather(p, 4 << 20) < knl_model.bcast_knomial(
            p, 4 << 20, 8
        )
        assert knl_model.bcast_scatter_allgather(p, 1024) > knl_model.bcast_knomial(
            p, 1024, 8
        )

    def test_rd_allgather_penalty_non_power_of_two(self):
        m = AnalyticModel(get_arch("broadwell"))
        eta = 256 * 1024
        # 28 is not a power of two: RD pays the fold/pull tax vs ring
        assert m.allgather_recursive_doubling(28, eta) > m.allgather_ring_source(
            28, eta
        )

    def test_ring_neighbor_socket_penalty(self):
        m = AnalyticModel(get_arch("broadwell"))
        p, eta = 28, 1 << 20
        t1 = m.allgather_ring_neighbor(p, eta, j=1)
        t5 = m.allgather_ring_neighbor(p, eta, j=5)
        assert t1 < t5

    def test_shm_bcast_crossover_on_broadwell(self):
        """Section VII-F: shm slab wins below ~2MB on Broadwell, CMA above."""
        m = AnalyticModel(get_arch("broadwell"))
        p = 28

        def cma_best(eta):
            return min(
                m.bcast_knomial(p, eta, 4), m.bcast_scatter_allgather(p, eta)
            )

        assert m.bcast_shm_slab(p, 64 * 1024) < cma_best(64 * 1024)
        assert m.bcast_shm_slab(p, 2 << 20) < cma_best(2 << 20)
        assert m.bcast_shm_slab(p, 8 << 20) > cma_best(8 << 20)

    def test_knomial_beats_shm_slab_on_power8_32k(self):
        """Section VII-F: on POWER8 the k-nomial read wins from ~32 KiB."""
        m = AnalyticModel(get_arch("power8"))
        assert m.bcast_knomial(160, 128 * 1024, 10) < m.bcast_shm_slab(
            160, 128 * 1024
        )


class TestDispatch:
    def test_predict_matches_direct_call(self, knl_model):
        t = knl_model.predict("scatter", "throttled_read", 64, 65536, k=8)
        assert t == pytest.approx(knl_model.scatter_throttled(64, 65536, 8))

    def test_unknown_algorithm(self, knl_model):
        with pytest.raises(KeyError):
            knl_model.predict("scatter", "quantum", 8, 1024)

    def test_module_level_wrapper(self):
        t = predict(get_arch("knl"), "bcast", "direct_read", 64, 4096)
        assert t > 0


@settings(max_examples=40, deadline=None)
@given(
    eta=st.integers(min_value=1024, max_value=1 << 22),
    p=st.integers(min_value=2, max_value=128),
)
def test_property_costs_positive_and_monotone_in_eta(eta, p):
    m = AnalyticModel(get_arch("knl"))
    for fn in (
        m.scatter_parallel_read,
        m.scatter_sequential_write,
        m.alltoall_pairwise,
        m.allgather_ring_source,
        m.bcast_direct_read,
        m.bcast_scatter_allgather,
    ):
        a = fn(p, eta)
        b = fn(p, 2 * eta)
        assert 0 < a < b


@settings(max_examples=30, deadline=None)
@given(
    k1=st.integers(min_value=1, max_value=30),
    k2=st.integers(min_value=1, max_value=30),
)
def test_property_throttled_cost_is_waves_times_wave_cost(k1, k2):
    m = AnalyticModel(get_arch("knl"))
    p, eta = 64, 1 << 20
    for k in (k1, k2):
        waves = math.ceil((p - 1) / k)
        expected = m.t_sm_bcast(p) + waves * m.cma(eta, c=k)
        assert m.scatter_throttled(p, eta, k) == pytest.approx(expected)


class TestModelValidation:
    """Fig 12 in miniature: predicted vs simulated, same order of magnitude
    and same ranking.  The full sweep lives in the benchmarks."""

    @pytest.mark.parametrize("eta", [64 * 1024, 1 << 20])
    def test_bcast_prediction_tracks_simulation(self, eta):
        arch = make_generic(sockets=1, cores_per_socket=16)
        m = AnalyticModel(arch)
        sims, preds = {}, {}
        for alg in ("direct_read", "direct_write", "scatter_allgather"):
            spec = CollectiveSpec("bcast", alg, arch, procs=16, eta=eta, verify=False)
            sims[alg] = run_collective(spec).latency_us
            preds[alg] = m.predict("bcast", alg, 16, eta)
        for alg in sims:
            assert preds[alg] == pytest.approx(sims[alg], rel=0.6), alg
        # ranking of the extremes is preserved
        assert (sims["direct_write"] > sims["scatter_allgather"]) == (
            preds["direct_write"] > preds["scatter_allgather"]
        )
