"""Tests for the multi-node cluster fabric and the simulation-backed
flat vs two-level Gather (the DES validation of Fig. 17's mechanism)."""

import functools

import pytest

from repro.core.hierarchical import flat_gather, two_level_gather
from repro.machine import make_generic
from repro.mpi.cluster import Cluster, net_recv, net_send


def arch_factory(ppn=8):
    return functools.partial(make_generic, sockets=1, cores_per_socket=max(ppn, 2))


def make_cluster(nodes=2, ppn=4, verify=True):
    return Cluster(arch_factory(ppn), nodes, ppn, verify=verify)


class TestClusterWiring:
    def test_rank_addressing(self):
        c = make_cluster(nodes=3, ppn=4)
        assert c.world_size == 12
        assert c.node_of(7) == 1
        assert c.local_of(7) == 3
        assert c.global_rank(2, 1) == 9
        assert c.leader_of(2) == 8

    def test_nodes_are_isolated(self):
        """Each node has its own kernel: a pid registered on node 0 does
        not exist on node 1."""
        c = make_cluster(nodes=2, ppn=2)
        pid0 = c.comms[0].pid_of(0)
        from repro.kernel import CMAError

        with pytest.raises(CMAError):
            c.nodes[1].manager.get(pid0)

    def test_shared_clock(self):
        c = make_cluster(nodes=2, ppn=2)
        assert c.nodes[0].sim is c.nodes[1].sim is c.sim

    def test_validation(self):
        with pytest.raises(ValueError):
            Cluster(arch_factory(), 0, 4)


class TestFabric:
    def test_net_roundtrip_moves_bytes(self):
        c = make_cluster(nodes=2, ppn=1)
        src = c.comms[1].allocate(0, 1024, "src")
        dst = c.comms[0].allocate(0, 1024, "dst")
        src.fill(7)

        def sender(ctx):
            yield from net_send(ctx, 0, "t", src)

        def receiver(ctx):
            got = yield from net_recv(ctx, 1, "t", dst)
            return got

        pr = c.spawn_global(0, receiver)
        ps = c.spawn_global(1, sender)
        c.sim.run_all([pr, ps])
        assert pr.result == 1024
        assert (dst.data == 7).all()
        assert c.net_messages == 1

    def test_tx_nic_serializes_same_node_senders(self):
        """Two senders on one node share the NIC: total TX time doubles."""
        n = 256 * 1024

        def run(senders):
            c = make_cluster(nodes=2, ppn=senders, verify=False)
            dst = c.comms[0].allocate(0, senders * n, "dst")

            def rank_fn(ctx):
                g = ctx.extras["grank"]
                if c.node_of(g) == 1:
                    buf = c.comms[1].allocate(ctx.rank, n, "src")
                    yield from net_send(ctx, 0, ("d", g), buf)
                elif ctx.rank == 0:
                    for i in range(senders):
                        yield from net_recv(
                            ctx, c.global_rank(1, i), ("d", c.global_rank(1, i)),
                            dst, offset=i * n, nbytes=n,
                        )

            procs = c.run_world(rank_fn)
            return max(p.finish_time for p in procs)

        t1, t2 = run(1), run(2)
        # second transfer's TX overlaps the first's RX copy, so the total
        # grows by ~one wire time, not two
        assert t2 > 1.45 * t1

    def test_matching_cost_scales_with_backlog(self):
        """A receive posted against a deep unexpected queue pays for the
        traversal."""
        c = make_cluster(nodes=2, ppn=8, verify=False)
        n = 1024
        arrival_done = {}

        def rank_fn(ctx):
            g = ctx.extras["grank"]
            if c.node_of(g) == 1:
                buf = c.comms[1].allocate(ctx.rank, n, "src")
                yield from net_send(ctx, 0, ("d", g), buf)
            elif ctx.rank == 0:
                from repro.sim import Delay

                yield Delay(10_000.0)  # let everything queue up
                t0 = ctx.sim.now
                yield from net_recv(ctx, c.global_rank(1, 0), ("d", c.global_rank(1, 0)), None, nbytes=n)
                arrival_done["match_time"] = ctx.sim.now - t0

        c.run_world(rank_fn)
        p = c.nodes[0].params
        # 7 other messages were queued: at least 7 * t_match of traversal
        assert arrival_done["match_time"] >= 7 * p.t_match


class TestHierarchicalGather:
    @pytest.mark.parametrize("nodes,ppn,eta", [(2, 4, 5000), (3, 5, 3000), (4, 8, 65536)])
    def test_both_designs_verify(self, nodes, ppn, eta):
        flat = flat_gather(Cluster(arch_factory(ppn), nodes, ppn), eta)
        two = two_level_gather(Cluster(arch_factory(ppn), nodes, ppn), eta)
        assert flat.latency_us > 0 and two.latency_us > 0

    def test_message_count_amortization(self):
        nodes, ppn = 4, 8
        flat = flat_gather(Cluster(arch_factory(ppn), nodes, ppn), 4096)
        two = two_level_gather(Cluster(arch_factory(ppn), nodes, ppn), 4096)
        assert flat.net_messages == (nodes - 1) * ppn
        assert two.net_messages == nodes - 1

    def test_two_level_wins(self):
        for nodes in (2, 4):
            flat = flat_gather(
                Cluster(arch_factory(8), nodes, 8, verify=False), 65536
            )
            two = two_level_gather(
                Cluster(arch_factory(8), nodes, 8, verify=False), 65536
            )
            assert two.latency_us < flat.latency_us, nodes

    def test_advantage_grows_with_node_count(self):
        """The DES shows the same monotone trend the analytic model and the
        paper report (magnitudes differ: here both designs share the same
        intra-node gather, isolating the fabric-side effect)."""

        def speedup(nodes):
            flat = flat_gather(
                Cluster(arch_factory(8), nodes, 8, verify=False), 16 * 1024
            )
            two = two_level_gather(
                Cluster(arch_factory(8), nodes, 8, verify=False), 16 * 1024
            )
            return flat.latency_us / two.latency_us

        s2, s4, s8 = speedup(2), speedup(4), speedup(8)
        assert s2 < s4 < s8

    def test_single_rank_nodes(self):
        flat = flat_gather(Cluster(arch_factory(2), 3, 1), 2048)
        two = two_level_gather(Cluster(arch_factory(2), 3, 1), 2048)
        # with ppn=1 the designs coincide up to tags
        assert flat.net_messages == two.net_messages == 2
