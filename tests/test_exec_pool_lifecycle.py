"""Process-pool lifecycle: no leaked workers, graceful mid-flight breakage.

Two failure paths through :func:`repro.exec.pool.map_points` historically
leaked worker processes or lost results:

* ``fn`` raising — ``executor.map`` re-raises in the caller, and a
  throwaway pool must still be shut down (workers reaped, not orphaned);
* a worker dying mid-map (``BrokenProcessPool``) — the broken pool must be
  torn down *before* the serial fallback recomputes every point, and the
  fallback must return exactly what a serial run would, in order.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.exec.pool import map_points

_PARENT_ENV = "_REPRO_TEST_PARENT_PID"


def _double(x):
    return x * 2


def _ignore_sigterm_and_sleep(x):
    """Make the hosting worker unkillable by SIGTERM, then park it, so
    only StickyPool.close()'s SIGKILL escalation can reap it."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(600)
    return x


def _raise_on_three(x):
    if x == 3:
        raise ValueError("boom at 3")
    return x


def _die_in_worker(x):
    # Only the pool's worker processes self-destruct; the serial fallback
    # runs this in the parent (whose pid matches the env marker) and
    # computes normally.
    if os.getpid() != int(os.environ.get(_PARENT_ENV, "-1")):
        os._exit(1)
    return x * 10


def _assert_no_new_children(before, deadline_s=10.0):
    """Workers from a shut-down pool must be reaped, not orphaned."""
    deadline = time.monotonic() + deadline_s
    while True:
        leftover = [p for p in multiprocessing.active_children()
                    if p.pid not in before]
        if not leftover:
            return
        if time.monotonic() > deadline:
            raise AssertionError(f"stray pool workers survived: {leftover}")
        time.sleep(0.05)


def _live_pids():
    return {p.pid for p in multiprocessing.active_children()}


def test_successful_map_leaves_no_stray_workers():
    before = _live_pids()
    assert map_points(_double, list(range(16)), workers=2) == [
        x * 2 for x in range(16)
    ]
    _assert_no_new_children(before)


def test_failed_map_raises_and_leaves_no_stray_workers():
    before = _live_pids()
    with pytest.raises(ValueError, match="boom at 3"):
        map_points(_raise_on_three, list(range(8)), workers=2)
    _assert_no_new_children(before)


def test_broken_pool_mid_flight_falls_back_to_serial_results():
    os.environ[_PARENT_ENV] = str(os.getpid())
    try:
        before = _live_pids()
        points = list(range(12))
        got = map_points(_die_in_worker, points, workers=2)
        assert got == [x * 10 for x in points], (
            "fallback must return the exact serial results, in input order"
        )
        _assert_no_new_children(before)
    finally:
        os.environ.pop(_PARENT_ENV, None)


def test_sticky_pool_close_kills_sigterm_ignoring_stragglers():
    """Satellite regression: close() must escalate join → terminate →
    SIGKILL, so even a worker that ignores SIGTERM cannot outlive the
    pool (no stray PIDs after a failing sweep)."""
    from repro.exec.sched import StickyPool

    before = _live_pids()
    try:
        pool = StickyPool(2, hung_s=None)
    except Exception as exc:  # pragma: no cover - fork-restricted hosts
        pytest.skip(f"cannot start scheduler workers: {exc}")
    try:
        # Park both workers in an unkillable-by-SIGTERM sleep; the None
        # close sentinel queues behind the sleeping get-loop iteration.
        for wid, inbox in enumerate(pool._inboxes):
            inbox.put((pool._epoch + 1, wid, _ignore_sigterm_and_sleep,
                       [wid], [wid]))
        time.sleep(0.5)  # let the workers enter the sleep
    finally:
        t0 = time.monotonic()
        pool.close()
        wall = time.monotonic() - t0
    assert wall < 15.0, f"close() hung on unkillable workers ({wall:.1f}s)"
    _assert_no_new_children(before)


def test_caller_owned_executor_survives_fn_failure():
    """map_points must not shut down an executor it did not create."""
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=2) as ex:
        with pytest.raises(ValueError):
            map_points(_raise_on_three, list(range(8)), workers=2, executor=ex)
        # the caller's pool is still usable afterwards
        assert list(ex.map(_double, [1, 2, 3])) == [2, 4, 6]
