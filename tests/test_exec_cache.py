"""Property tests for the content-addressed result cache.

The cache key must be a pure function of the point's content: stable
across process restarts and hash seeds (no reliance on Python's
process-seeded ``hash()``), and sensitive to *every* field of the spec and
its architecture.  Corrupted and version-salt-stale entries must read as
misses and be recomputed silently.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import CollectiveSpec
from repro.exec import ExecContext, ResultCache, use_context
from repro.exec.sweep import cached_call
from repro.machine import make_generic

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _spec(kw) -> CollectiveSpec:
    arch = make_generic(
        sockets=kw["sockets"],
        cores_per_socket=kw["cores"],
        beta_gbps=kw["beta_gbps"],
    )
    return CollectiveSpec(
        kw["collective"],
        kw["algorithm"],
        arch,
        procs=kw["procs"],
        eta=kw["eta"],
        root=kw["root"],
        params=dict(kw["params"]),
        verify=kw["verify"],
    )


spec_kwargs = st.fixed_dictionaries(
    {
        "collective": st.sampled_from(["scatter", "gather", "bcast"]),
        "algorithm": st.sampled_from(["parallel_read", "throttled_read"]),
        "eta": st.integers(min_value=1, max_value=1 << 22),
        "procs": st.integers(min_value=2, max_value=64),
        "root": st.integers(min_value=0, max_value=1),
        "params": st.dictionaries(
            st.sampled_from(["k", "batch", "seg"]),
            st.integers(min_value=1, max_value=32),
            max_size=2,
        ).map(lambda d: tuple(sorted(d.items()))),
        "verify": st.booleans(),
        "sockets": st.integers(min_value=1, max_value=2),
        "cores": st.integers(min_value=2, max_value=16),
        "beta_gbps": st.sampled_from([1.5, 3.0, 6.0]),
    }
)


@settings(max_examples=50, deadline=None)
@given(kw=spec_kwargs)
def test_key_deterministic_for_equal_payloads(kw):
    cache = ResultCache("key-only", salt="test-salt")  # key_for never touches disk
    a = cache.key_for("collective", _spec(kw))
    b = cache.key_for("collective", _spec(dict(kw)))
    assert a == b


_PERTURB = [
    ("eta", lambda kw: {**kw, "eta": kw["eta"] + 1}),
    ("procs", lambda kw: {**kw, "procs": kw["procs"] + 1}),
    ("root", lambda kw: {**kw, "root": (kw["root"] + 1) % 2}),
    ("algorithm", lambda kw: {**kw, "algorithm": kw["algorithm"] + "_x"}),
    ("verify", lambda kw: {**kw, "verify": not kw["verify"]}),
    ("params", lambda kw: {**kw, "params": tuple(sorted(dict(kw["params"], zz=99).items()))}),
    ("arch", lambda kw: {**kw, "beta_gbps": kw["beta_gbps"] * 2}),
    ("cores", lambda kw: {**kw, "cores": kw["cores"] + 1}),
]


@settings(max_examples=50, deadline=None)
@given(kw=spec_kwargs, which=st.integers(min_value=0, max_value=len(_PERTURB) - 1))
def test_key_changes_when_any_field_changes(kw, which):
    cache = ResultCache("key-only", salt="test-salt")
    _name, perturb = _PERTURB[which]
    assert cache.key_for("collective", _spec(kw)) != cache.key_for(
        "collective", _spec(perturb(kw))
    )


def test_key_depends_on_kind_and_salt():
    cache = ResultCache("key-only", salt="v1")
    kw = {
        "collective": "scatter", "algorithm": "parallel_read", "eta": 4096,
        "procs": 8, "root": 0, "params": (), "verify": False,
        "sockets": 1, "cores": 8, "beta_gbps": 3.0,
    }
    key_v1 = cache.key_for("collective", _spec(kw))
    assert key_v1 != cache.key_for("microbench", _spec(kw))
    assert key_v1 != ResultCache("key-only", salt="v2").key_for(
        "collective", _spec(kw)
    )


def test_key_stable_across_process_restart_and_hash_seed(tmp_path):
    """The same payload keys identically in a fresh interpreter with a
    different PYTHONHASHSEED — the key never touches ``hash()``."""
    code = """
from repro.core.runner import CollectiveSpec
from repro.exec import ResultCache
from repro.machine import make_generic

cache = ResultCache("key-only", salt="restart-test")
spec = CollectiveSpec(
    "scatter", "throttled_read", make_generic(cores_per_socket=12),
    procs=10, eta=65536, params={"k": 4, "batch": 2},
)
print(cache.key_for("collective", spec))
"""
    keys = set()
    for seed in ("0", "1", "12345"):
        env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONHASHSEED=seed)
        out = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True, check=True,
        )
        keys.add(out.stdout.strip())
    assert len(keys) == 1
    cache = ResultCache("key-only", salt="restart-test")
    spec = CollectiveSpec(
        "scatter", "throttled_read", make_generic(cores_per_socket=12),
        procs=10, eta=65536, params={"k": 4, "batch": 2},
    )
    assert keys == {cache.key_for("collective", spec)}


def test_corrupted_entry_is_silently_recomputed(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    with use_context(ExecContext(cache=cache)):
        assert cached_call("unit", ("p",), lambda: 41) == 41
    key = cache.key_for("unit", ("p",))
    path = cache.path_for(key)
    assert path.exists()
    path.write_bytes(b"not a pickle")
    hit, _ = cache.get(key)
    assert not hit
    with use_context(ExecContext(cache=cache)) as ctx:
        assert cached_call("unit", ("p",), lambda: 41) == 41
    assert ctx.stats.points_run == 1  # recomputed, not served corrupt
    hit, value = cache.get(key)
    assert hit and value == 41


def test_stale_salt_entry_is_a_miss(tmp_path):
    old = ResultCache(tmp_path / "cache", salt="repro-exec-v0")
    new = ResultCache(tmp_path / "cache", salt="repro-exec-v1")
    payload = ("fit", 1, 2)
    # Different salts never share keys...
    assert old.key_for("k", payload) != new.key_for("k", payload)
    # ...and even a forged collision reads as a miss under the new salt.
    old.put(new.key_for("k", payload), "stale-value")
    hit, _ = new.get(new.key_for("k", payload))
    assert not hit
    new.put(new.key_for("k", payload), "fresh")
    hit, value = new.get(new.key_for("k", payload))
    assert hit and value == "fresh"


class TestLaneKeying:
    """The transport lane must separate cache entries and pool groups.

    Regression for the xpmem lane: a CMA point and a mapped-window point
    must never share a cache entry, even if a future rename made their
    (collective, algorithm) strings collide — the registry-resolved
    ``lane`` field is the backstop.
    """

    def _spec(self, algorithm):
        from repro.machine import get_arch

        return CollectiveSpec(
            "scatter", algorithm, get_arch("knl"), procs=8, eta=4096,
            verify=False,
        )

    def test_lane_resolved_from_registry(self):
        assert self._spec("parallel_read").lane == "cma"
        assert self._spec("xpmem_read").lane == "xpmem"

    def test_forged_lane_collision_keys_differ(self):
        # Same spec except for the lane: simulates the cross-lane rename
        # that (collective, algorithm) strings alone would not catch.
        cache = ResultCache("key-only", salt="lane-test")
        a = self._spec("parallel_read")
        b = self._spec("parallel_read")
        b.lane = "xpmem"
        assert cache.key_for("collective", a) != cache.key_for("collective", b)

    def test_pool_group_key_separates_lanes(self):
        from repro.exec.sweep import _pool_group_key, _slim_point

        ga = _pool_group_key(_slim_point(self._spec("parallel_read"), True))
        gb = _pool_group_key(_slim_point(self._spec("xpmem_read"), True))
        assert ga != gb
        assert ga[:-1] == gb[:-1]  # only the lane component differs

    def test_pool_group_key_separates_warm_from_cold(self):
        # Cold points must not interleave with warm ones inside a chunk:
        # the key carries ``not warm`` so warm sorts first, cold second.
        from repro.exec.sweep import _pool_group_key, _slim_point

        warm = _pool_group_key(_slim_point(self._spec("parallel_read"), True))
        cold = _pool_group_key(_slim_point(self._spec("parallel_read"), False))
        assert warm != cold
        assert warm[-2] is False and cold[-2] is True  # not pt.warm
        assert warm[:-2] == cold[:-2] and warm[-1] == cold[-1]
        assert sorted([warm, cold])[0] is warm  # warm sorts ahead

    def test_cache_version_bumped_past_pre_lane_salt(self):
        from repro.exec.cache import CACHE_VERSION

        # v2 entries were written before lane existed in the key payload;
        # they must silently miss rather than be served cross-lane.
        assert CACHE_VERSION not in ("repro-exec-v1", "repro-exec-v2")


class TestShardedCache:
    """Hex-prefix sharding, read-through migration, and batched I/O."""

    def _width_of(self, shards):
        from repro.exec.cache import _SHARD_WIDTHS

        return _SHARD_WIDTHS[shards]

    @pytest.mark.parametrize("shards", [1, 16, 256, 4096])
    def test_roundtrip_under_every_layout(self, tmp_path, shards):
        cache = ResultCache(tmp_path / "cache", shards=shards)
        keys = [cache.key_for("shard-test", i) for i in range(8)]
        for i, key in enumerate(keys):
            cache.put(key, {"i": i})
            # the entry sits under the right-width hex prefix directory
            rel = cache.path_for(key).relative_to(cache.root)
            width = self._width_of(shards)
            if width:
                assert len(rel.parts) == 2 and len(rel.parts[0]) == width
                assert key.startswith(rel.parts[0])
            else:
                assert len(rel.parts) == 1
        assert [cache.get(k) for k in keys] == [
            (True, {"i": i}) for i in range(8)
        ]

    def test_default_layout_matches_legacy_paths(self, tmp_path):
        # 256 shards = two-hex-char prefix: byte-identical to the layout
        # every pre-sharding version wrote, so upgrades never migrate.
        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("k", "v")
        assert cache.shards == 256
        assert cache.path_for(key) == (
            cache.root / key[:2] / f"{key}.pkl"
        )

    @pytest.mark.parametrize("old,new", [(256, 16), (16, 256), (1, 4096)])
    def test_read_through_migration(self, tmp_path, old, new):
        writer = ResultCache(tmp_path / "cache", shards=old)
        key = writer.key_for("migrate", "payload")
        writer.put(key, "survives relayout")
        reader = ResultCache(tmp_path / "cache", shards=new)
        hit, value = reader.get(key)
        assert hit and value == "survives relayout"
        # served AND moved: the entry now lives under the new layout only
        assert reader.path_for(key).exists()
        assert not writer.path_for(key).exists()
        assert reader.get(key) == (True, "survives relayout")

    def test_get_many_alignment_and_migration(self, tmp_path):
        old = ResultCache(tmp_path / "cache", shards=1)
        cache = ResultCache(tmp_path / "cache", shards=256)
        keys = [cache.key_for("batch", i) for i in range(10)]
        for i in (0, 4):  # written under the current layout
            cache.put(keys[i], f"cur-{i}")
        old.put(keys[7], "old-7")  # needs read-through migration
        out = cache.get_many(keys)
        assert len(out) == len(keys)
        assert out[0] == (True, "cur-0") and out[4] == (True, "cur-4")
        assert out[7] == (True, "old-7")
        assert all(
            out[i] == (False, None) for i in range(10) if i not in (0, 4, 7)
        )
        assert cache.path_for(keys[7]).exists()  # migrated while batched

    def test_put_many_then_get_many(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        pairs = [(cache.key_for("pm", i), i * i) for i in range(12)]
        cache.put_many(pairs)
        assert cache.get_many([k for k, _ in pairs]) == [
            (True, i * i) for i in range(12)
        ]

    def test_quarantine_is_capped(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", max_quarantine=5)
        for i in range(9):
            key = cache.key_for("corrupt", i)
            path = cache.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"garbage %d" % i)
            hit, _ = cache.get(key)
            assert not hit
        assert cache.quarantined == 9  # every corruption was detected...
        assert cache.quarantine_count() <= 5  # ...but the directory is capped

    def test_shard_env_knob(self, tmp_path, monkeypatch):
        from repro.exec.cache import ENV_CACHE_SHARDS

        monkeypatch.setenv(ENV_CACHE_SHARDS, "16")
        assert ResultCache(tmp_path / "cache").shards == 16
        # explicit argument beats the environment
        assert ResultCache(tmp_path / "cache", shards=1).shards == 1
        monkeypatch.setenv(ENV_CACHE_SHARDS, "12")
        with pytest.raises(ValueError):
            ResultCache(tmp_path / "cache")


def test_put_get_roundtrip_and_atomicity(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = cache.key_for("roundtrip", {"a": [1, 2.5, "x"], "b": (True, None)})
    hit, _ = cache.get(key)
    assert not hit
    cache.put(key, {"value": [1, 2, 3]})
    hit, value = cache.get(key)
    assert hit and value == {"value": [1, 2, 3]}
    assert not list((tmp_path / "cache").rglob("*.tmp*")), "no temp litter"
