"""Unit + property tests for paged address spaces and iovec resolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import AddressSpace, AddressSpaceManager, CMAError
from repro.kernel.errors import EFAULT, ESRCH


@pytest.fixture
def mgr():
    return AddressSpaceManager(page_size=4096)


@pytest.fixture
def space(mgr):
    return mgr.create(pid=100)


class TestAllocation:
    def test_buffers_are_page_aligned(self, space):
        for n in (1, 100, 4096, 5000):
            buf = space.allocate(n)
            assert buf.addr % 4096 == 0

    def test_buffers_do_not_overlap(self, space):
        bufs = [space.allocate(3000) for _ in range(10)]
        spans = sorted((b.addr, b.end) for b in bufs)
        for (a0, a1), (b0, _) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_zero_size_rejected(self, space):
        with pytest.raises(ValueError):
            space.allocate(0)

    def test_data_starts_zeroed(self, space):
        buf = space.allocate(64)
        assert not buf.data.any()

    def test_fill_and_view(self, space):
        buf = space.allocate(16)
        buf.fill(np.arange(16, dtype=np.uint8))
        assert list(buf.view(4, 4)) == [4, 5, 6, 7]

    def test_view_is_not_a_copy(self, space):
        buf = space.allocate(8)
        buf.view(0, 8)[:] = 9
        assert buf.data[0] == 9

    def test_view_out_of_bounds(self, space):
        buf = space.allocate(8)
        with pytest.raises(CMAError):
            buf.view(4, 8)

    def test_iov_helper(self, space):
        buf = space.allocate(100)
        addr, ln = buf.iov(10, 20)
        assert addr == buf.addr + 10
        assert ln == 20


class TestResolution:
    def test_resolve_within_buffer(self, space):
        buf = space.allocate(8192)
        got, off = space.resolve(buf.addr + 5000, 100)
        assert got is buf
        assert off == 5000

    def test_resolve_unmapped_faults(self, space):
        space.allocate(4096)
        with pytest.raises(CMAError) as e:
            space.resolve(0xDEAD0000, 1)
        assert e.value.errno == EFAULT

    def test_resolve_past_end_faults(self, space):
        buf = space.allocate(4096)
        with pytest.raises(CMAError):
            space.resolve(buf.addr + 4000, 200)

    def test_guard_page_between_allocations(self, space):
        a = space.allocate(4096)
        space.allocate(4096)
        # one byte past buffer a must fault, even though b exists
        with pytest.raises(CMAError):
            space.resolve(a.end, 1)

    def test_unknown_pid_is_esrch(self, mgr):
        with pytest.raises(CMAError) as e:
            mgr.get(999)
        assert e.value.errno == ESRCH

    def test_duplicate_pid_rejected(self, mgr):
        mgr.create(1)
        with pytest.raises(ValueError):
            mgr.create(1)

    def test_contains(self, mgr):
        mgr.create(5)
        assert 5 in mgr
        assert 6 not in mgr


class TestGatherScatter:
    def test_gather_concatenates(self, space):
        a = space.allocate(4)
        b = space.allocate(4)
        a.fill(1)
        b.fill(2)
        got = space.gather_bytes([a.iov(), b.iov()])
        assert list(got) == [1, 1, 1, 1, 2, 2, 2, 2]

    def test_scatter_fills_in_order(self, space):
        a = space.allocate(4)
        b = space.allocate(4)
        n = space.scatter_bytes([a.iov(), b.iov()], np.arange(8, dtype=np.uint8))
        assert n == 8
        assert list(a.data) == [0, 1, 2, 3]
        assert list(b.data) == [4, 5, 6, 7]

    def test_scatter_partial_data(self, space):
        a = space.allocate(4)
        b = space.allocate(4)
        n = space.scatter_bytes([a.iov(), b.iov()], np.arange(6, dtype=np.uint8))
        assert n == 6
        assert list(b.data) == [4, 5, 0, 0]

    def test_empty_iovs(self, space):
        assert space.gather_bytes([]).size == 0
        assert space.scatter_bytes([], np.zeros(4, dtype=np.uint8)) == 0

    def test_zero_length_entries_skipped(self, space):
        a = space.allocate(4)
        got = space.gather_bytes([(a.addr, 0), a.iov()])
        assert got.size == 4


class TestPageCounting:
    def test_single_entry_page_count(self, space):
        buf = space.allocate(3 * 4096)
        assert space.total_pages([buf.iov(0, 1)]) == 1
        assert space.total_pages([buf.iov(0, 4096)]) == 1
        assert space.total_pages([buf.iov(0, 4097)]) == 2
        # crossing a page boundary counts both pages
        assert space.total_pages([buf.iov(4090, 10)]) == 2

    def test_multiple_entries_counted_separately(self, space):
        buf = space.allocate(8192)
        iov = [buf.iov(0, 100), buf.iov(4096, 100)]
        assert space.total_pages(iov) == 2

    def test_zero_length_costs_nothing(self, space):
        buf = space.allocate(4096)
        assert space.total_pages([(buf.addr, 0)]) == 0


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
)
def test_property_gather_scatter_roundtrip(sizes, seed):
    """scatter(gather(iov)) across fresh buffers preserves the bytes."""
    mgr = AddressSpaceManager(page_size=4096)
    src_space = mgr.create(1)
    dst_space = mgr.create(2)
    rng = np.random.default_rng(seed)
    src_bufs = []
    for n in sizes:
        b = src_space.allocate(n)
        b.fill(rng.integers(0, 256, size=n, dtype=np.uint8))
        src_bufs.append(b)
    dst_bufs = [dst_space.allocate(n) for n in sizes]
    data = src_space.gather_bytes([b.iov() for b in src_bufs])
    n = dst_space.scatter_bytes([b.iov() for b in dst_bufs], data)
    assert n == sum(sizes)
    for sb, db in zip(src_bufs, dst_bufs):
        assert np.array_equal(sb.data, db.data)


@settings(max_examples=60, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=20_000),
    nbytes=st.integers(min_value=1, max_value=20_000),
)
def test_property_page_count_matches_formula(offset, nbytes):
    """total_pages == pages spanned by [offset, offset+nbytes)."""
    mgr = AddressSpaceManager(page_size=4096)
    space = mgr.create(1)
    buf = space.allocate(40_000)
    first = (buf.addr + offset) // 4096
    last = (buf.addr + offset + nbytes - 1) // 4096
    assert space.total_pages([buf.iov(offset, nbytes)]) == last - first + 1


class TestNegativeLengths:
    def test_view_negative_nbytes_faults(self, space):
        buf = space.allocate(8)
        with pytest.raises(CMAError) as e:
            buf.view(0, -1)
        assert e.value.errno == EFAULT

    def test_view_negative_offset_faults(self, space):
        buf = space.allocate(8)
        with pytest.raises(CMAError) as e:
            buf.view(-4, 4)
        assert e.value.errno == EFAULT

    def test_iov_negative_nbytes_faults(self, space):
        buf = space.allocate(8)
        with pytest.raises(CMAError) as e:
            buf.iov(0, -1)
        assert e.value.errno == EFAULT

    def test_negative_does_not_wrap_via_python_indexing(self, space):
        # offset=-4, nbytes=4 would "fit" under Python slice semantics;
        # the kernel contract is EFAULT, not a silent wraparound read.
        buf = space.allocate(8)
        with pytest.raises(CMAError):
            buf.iov(-4, 4)


class TestCopyIovBytes:
    def _filled(self, space, n, start=0):
        buf = space.allocate(n)
        buf.fill(np.arange(start, start + n, dtype=np.uint8))
        return buf

    def test_single_entry_copy(self, mgr):
        from repro.kernel.address_space import copy_iov_bytes

        src_space, dst_space = mgr.create(1), mgr.create(2)
        src = self._filled(src_space, 16)
        dst = dst_space.allocate(16)
        n = copy_iov_bytes(src_space, [src.iov()], dst_space, [dst.iov()], 16)
        assert n == 16
        assert np.array_equal(dst.data, src.data)

    def test_truncated_copy_stops_at_nbytes(self, mgr):
        from repro.kernel.address_space import copy_iov_bytes

        src_space, dst_space = mgr.create(1), mgr.create(2)
        src = self._filled(src_space, 16, start=1)
        dst = dst_space.allocate(16)
        n = copy_iov_bytes(src_space, [src.iov()], dst_space, [dst.iov()], 6)
        assert n == 6
        assert list(dst.data[:6]) == [1, 2, 3, 4, 5, 6]
        assert not dst.data[6:].any()

    def test_multi_entry_gather_scatter(self, mgr):
        from repro.kernel.address_space import copy_iov_bytes

        src_space, dst_space = mgr.create(1), mgr.create(2)
        a = self._filled(src_space, 4, start=0)
        b = self._filled(src_space, 4, start=4)
        c = dst_space.allocate(5)
        d = dst_space.allocate(3)
        n = copy_iov_bytes(
            src_space, [a.iov(), b.iov()], dst_space, [c.iov(), d.iov()], 8
        )
        assert n == 8
        assert list(c.data) == [0, 1, 2, 3, 4]
        assert list(d.data) == [5, 6, 7]

    def test_single_src_scattered_dst_fast_path(self, mgr):
        from repro.kernel.address_space import copy_iov_bytes

        src_space, dst_space = mgr.create(1), mgr.create(2)
        src = self._filled(src_space, 8)
        c = dst_space.allocate(3)
        d = dst_space.allocate(5)
        n = copy_iov_bytes(src_space, [src.iov()], dst_space, [c.iov(), d.iov()], 8)
        assert n == 8
        assert list(c.data) == [0, 1, 2]
        assert list(d.data) == [3, 4, 5, 6, 7]

    def test_same_space_overlapping_copy_is_safe(self, mgr):
        from repro.kernel.address_space import copy_iov_bytes

        space = mgr.create(1)
        buf = self._filled(space, 8)
        # dst overlaps src within the SAME backing buffer: the copy must
        # behave like memmove (source snapshot), not clobber as it goes
        n = copy_iov_bytes(
            space, [(buf.addr, 6)], space, [(buf.addr + 2, 6)], 6
        )
        assert n == 6
        assert list(buf.data) == [0, 1, 0, 1, 2, 3, 4, 5]

    def test_matches_gather_then_scatter(self, mgr):
        from repro.kernel.address_space import copy_iov_bytes

        src_space, dst_space = mgr.create(1), mgr.create(2)
        rng = np.random.default_rng(7)
        srcs = []
        for nbytes in (5, 1, 9):
            b = src_space.allocate(nbytes)
            b.fill(rng.integers(0, 256, size=nbytes, dtype=np.uint8))
            srcs.append(b)
        dsts = [dst_space.allocate(n) for n in (7, 8)]
        src_iov = [b.iov() for b in srcs]
        dst_iov = [b.iov() for b in dsts]
        expect = src_space.gather_bytes(src_iov)[:15].copy()

        n = copy_iov_bytes(src_space, src_iov, dst_space, dst_iov, 15)
        assert n == 15
        assert np.array_equal(
            np.concatenate([d.data for d in dsts]), expect
        )

    def test_gather_single_entry_returns_copy_not_alias(self, space):
        buf = space.allocate(4)
        buf.fill(np.array([9, 9, 9, 9], dtype=np.uint8))
        got = space.gather_bytes([buf.iov()])
        got[:] = 0
        assert list(buf.data) == [9, 9, 9, 9]
