"""Tests for the mini-MPI layer: Node/Comm wiring and pt2pt protocols."""

import numpy as np
import pytest

from repro.machine import make_generic
from repro.mpi import Comm, Node, p2p_recv, p2p_send, RNDV_THRESHOLD


def make_comm(size=4, verify=True, **arch_kw):
    arch = make_generic(sockets=1, cores_per_socket=max(size, 2), **arch_kw)
    node = Node(arch, verify=verify)
    return Comm(node, size)


class TestComm:
    def test_pid_table_is_stable(self):
        comm = make_comm(4)
        pids = [comm.pid_of(r) for r in range(4)]
        assert len(set(pids)) == 4
        assert pids == [comm.pid_of(r) for r in range(4)]

    def test_each_rank_has_own_space(self):
        comm = make_comm(3)
        a = comm.allocate(0, 128)
        b = comm.allocate(1, 128)
        assert a.space is not b.space

    def test_placements_match_arch(self):
        arch = make_generic(sockets=2, cores_per_socket=2)
        comm = Comm(Node(arch), 4)
        assert comm.placement_of(0).socket == 0
        assert comm.placement_of(3).socket == 1

    def test_spawned_rank_has_correct_identity(self):
        comm = make_comm(4)
        seen = {}

        def work(ctx):
            seen[ctx.rank] = (ctx.proc.pid, ctx.proc.socket)
            return
            yield  # pragma: no cover

        comm.run_ranks(work)
        for r in range(4):
            assert seen[r][0] == comm.pid_of(r)

    def test_min_size(self):
        with pytest.raises(ValueError):
            make_comm(0)

    def test_op_counters_advance_in_lockstep(self):
        comm = make_comm(3)
        ops = {}

        def work(ctx):
            ops.setdefault(ctx.rank, []).append(ctx.next_op())
            ops[ctx.rank].append(ctx.next_op())
            return
            yield  # pragma: no cover

        comm.run_ranks(work)
        assert all(v == [0, 1] for v in ops.values())


class TestPt2Pt:
    @pytest.mark.parametrize("nbytes", [64, 1024, RNDV_THRESHOLD - 1])
    def test_eager_path_moves_bytes(self, nbytes):
        comm = make_comm(2)
        sbuf = comm.allocate(0, nbytes)
        rbuf = comm.allocate(1, nbytes)
        sbuf.fill(np.arange(nbytes, dtype=np.uint8) % 251)

        def rank(ctx):
            if ctx.rank == 0:
                yield from p2p_send(ctx, 1, "m", sbuf)
            else:
                yield from p2p_recv(ctx, 0, "m", rbuf)

        comm.run_ranks(rank)
        assert np.array_equal(sbuf.data, rbuf.data)

    @pytest.mark.parametrize("nbytes", [RNDV_THRESHOLD, 256 * 1024])
    def test_rendezvous_path_moves_bytes(self, nbytes):
        comm = make_comm(2)
        sbuf = comm.allocate(0, nbytes)
        rbuf = comm.allocate(1, nbytes)
        sbuf.fill(np.arange(nbytes, dtype=np.uint8) % 247)

        def rank(ctx):
            if ctx.rank == 0:
                yield from p2p_send(ctx, 1, "m", sbuf)
            else:
                yield from p2p_recv(ctx, 0, "m", rbuf)

        comm.run_ranks(rank)
        assert np.array_equal(sbuf.data, rbuf.data)
        assert comm.node.cma.reads == 1  # single-copy path used

    def test_rendezvous_uses_three_control_messages(self):
        comm = make_comm(2)
        n = 64 * 1024
        sbuf = comm.allocate(0, n)
        rbuf = comm.allocate(1, n)

        def rank(ctx):
            if ctx.rank == 0:
                yield from p2p_send(ctx, 1, "m", sbuf)
            else:
                yield from p2p_recv(ctx, 0, "m", rbuf)

        comm.run_ranks(rank)
        assert comm.shm.ctrl_messages == 3  # RTS + CTS + FIN

    def test_eager_beats_rendezvous_for_tiny(self):
        """Below the threshold, forcing rendezvous must not be faster."""
        n = 1024

        def latency(threshold):
            comm = make_comm(2)
            sbuf = comm.allocate(0, n)
            rbuf = comm.allocate(1, n)

            def rank(ctx):
                if ctx.rank == 0:
                    yield from p2p_send(ctx, 1, "m", sbuf, threshold=threshold)
                else:
                    yield from p2p_recv(ctx, 0, "m", rbuf, threshold=threshold)
                return ctx.sim.now

            procs = comm.run_ranks(rank)
            return max(p.result for p in procs)

        assert latency(1 << 20) < latency(1)

    def test_rendezvous_beats_eager_for_large(self):
        """Above the crossover the single-copy path wins (paper ~16 KiB)."""
        n = 1 << 20

        def latency(threshold):
            comm = make_comm(2, verify=False)
            sbuf = comm.allocate(0, n)
            rbuf = comm.allocate(1, n)

            def rank(ctx):
                if ctx.rank == 0:
                    yield from p2p_send(ctx, 1, "m", sbuf, threshold=threshold)
                else:
                    yield from p2p_recv(ctx, 0, "m", rbuf, threshold=threshold)
                return ctx.sim.now

            procs = comm.run_ranks(rank)
            return max(p.result for p in procs)

        assert latency(1) < latency(1 << 30)

    def test_offset_and_length(self):
        comm = make_comm(2)
        sbuf = comm.allocate(0, 1000)
        rbuf = comm.allocate(1, 1000)
        sbuf.fill(np.arange(1000, dtype=np.uint8) % 251)

        def rank(ctx):
            if ctx.rank == 0:
                yield from p2p_send(ctx, 1, "m", sbuf, offset=100, nbytes=200)
            else:
                yield from p2p_recv(ctx, 0, "m", rbuf, offset=500, nbytes=200)

        comm.run_ranks(rank)
        assert np.array_equal(rbuf.view(500, 200), sbuf.view(100, 200))

    def test_bidirectional_exchange(self):
        comm = make_comm(2)
        n = 32 * 1024
        bufs = {r: (comm.allocate(r, n), comm.allocate(r, n)) for r in range(2)}
        for r in range(2):
            bufs[r][0].fill(r + 1)

        def rank(ctx):
            me, peer = ctx.rank, 1 - ctx.rank
            sbuf, rbuf = bufs[me]
            if me == 0:
                yield from p2p_send(ctx, peer, ("d", me), sbuf)
                yield from p2p_recv(ctx, peer, ("d", peer), rbuf)
            else:
                yield from p2p_recv(ctx, peer, ("d", peer), rbuf)
                yield from p2p_send(ctx, peer, ("d", me), sbuf)

        comm.run_ranks(rank)
        assert (bufs[0][1].data == 2).all()
        assert (bufs[1][1].data == 1).all()

    def test_memcpy_helper(self):
        comm = make_comm(2)
        a = comm.allocate(0, 100)
        b = comm.allocate(0, 100)
        a.fill(5)

        def rank(ctx):
            if ctx.rank == 0:
                yield from ctx.memcpy(b, 10, a, 0, 50)
                return ctx.sim.now
            return
            yield  # pragma: no cover

        procs = comm.run_ranks(rank)
        assert (b.view(10, 50) == 5).all()
        assert procs[0].result == pytest.approx(50 * comm.node.params.memcpy_beta)
