"""Tests for the two-level multi-node designs (Fig. 17)."""

import pytest

from repro.core.baselines import library
from repro.core.multinode import MultiNodeModel
from repro.machine import get_arch


@pytest.fixture(scope="module")
def mn():
    return MultiNodeModel(get_arch("knl"))


class TestGather:
    def test_two_level_beats_flat(self, mn):
        lib = library("mvapich2")
        for nodes in (2, 4, 8):
            flat = mn.gather_single_level(nodes, 64, 65536, lib)
            two = mn.gather_two_level(nodes, 64, 65536)
            assert two < flat, nodes

    def test_improvement_grows_with_node_count(self, mn):
        """The paper's counter-intuitive result: 2x -> 3x -> 5x at 2/4/8
        nodes, driven by per-message costs the two-level design amortizes."""
        speedups = [
            mn.fig17_point(nodes, 64, 65536)["speedup"] for nodes in (2, 4, 8)
        ]
        assert speedups[0] < speedups[1] < speedups[2]
        assert speedups[0] > 1.2
        assert speedups[2] > 2.0

    def test_pipelined_beats_plain_two_level(self, mn):
        for nodes in (2, 8):
            point = mn.fig17_point(nodes, 64, 256 * 1024)
            assert point["pipelined"] < point["two_level"]

    def test_wire_bytes_dominate_eventually(self, mn):
        """For huge payloads both designs converge (same bytes cross the
        wire), so the ratio shrinks with message size."""
        small = mn.fig17_point(8, 64, 16 * 1024)["speedup"]
        huge = mn.fig17_point(8, 64, 8 << 20)["speedup"]
        assert huge < small

    def test_single_node_degenerate(self, mn):
        lib = library("mvapich2")
        two = mn.gather_two_level(1, 64, 65536)
        flat = mn.gather_single_level(1, 64, 65536, lib)
        # no inter-node traffic: both are just intra-node gathers
        assert two == pytest.approx(mn.tuner.choose("gather", 65536, 64).predicted_us)
        assert flat > 0


class TestScatter:
    def test_two_level_beats_flat(self, mn):
        lib = library("openmpi")
        for nodes in (2, 4, 8):
            flat = mn.scatter_single_level(nodes, 64, 65536, lib)
            two = mn.scatter_two_level(nodes, 64, 65536)
            assert two < flat

    def test_network_message_cost_components(self, mn):
        p = mn.arch.params
        n = 4096
        assert mn.net_msg(n) == pytest.approx(
            p.alpha_net + n * p.net_beta + p.t_match
        )
