"""Unit tests for the discrete-event engine: time, processes, joins, errors."""

import pytest

from repro.sim import (
    DeadlockError,
    Delay,
    Join,
    Mutex,
    Acquire,
    Release,
    SimError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_single_delay_advances_clock():
    sim = Simulator()

    def proc():
        yield Delay(5.0)
        return sim.now

    p = sim.spawn(proc())
    sim.run()
    assert p.done
    assert p.result == pytest.approx(5.0)
    assert sim.now == pytest.approx(5.0)


def test_sequential_delays_accumulate():
    sim = Simulator()
    times = []

    def proc():
        for dt in (1.0, 2.5, 0.5):
            yield Delay(dt)
            times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == pytest.approx([1.0, 3.5, 4.0])


def test_parallel_processes_interleave():
    sim = Simulator()
    order = []

    def proc(name, dt):
        yield Delay(dt)
        order.append((name, sim.now))

    sim.spawn(proc("slow", 10.0))
    sim.spawn(proc("fast", 1.0))
    sim.run()
    assert order == [("fast", pytest.approx(1.0)), ("slow", pytest.approx(10.0))]


def test_zero_delay_is_legal():
    sim = Simulator()

    def proc():
        yield Delay(0.0)
        return "ok"

    p = sim.spawn(proc())
    sim.run()
    assert p.result == "ok"


def test_negative_delay_rejected():
    with pytest.raises(SimError):
        Delay(-1.0)


def test_return_value_through_join():
    sim = Simulator()

    def worker():
        yield Delay(3.0)
        return 42

    def waiter(w):
        result = yield Join(w)
        return (result, sim.now)

    w = sim.spawn(worker())
    j = sim.spawn(waiter(w))
    sim.run()
    assert j.result == (42, pytest.approx(3.0))


def test_join_on_already_finished_process():
    sim = Simulator()

    def worker():
        yield Delay(1.0)
        return "done"

    def late_waiter(w):
        yield Delay(5.0)
        result = yield Join(w)
        return result

    w = sim.spawn(worker())
    j = sim.spawn(late_waiter(w))
    sim.run()
    assert j.result == "done"
    assert sim.now == pytest.approx(5.0)


def test_exception_propagates_to_joiner():
    sim = Simulator()

    def bad():
        yield Delay(1.0)
        raise ValueError("boom")

    def waiter(w):
        with pytest.raises(ValueError, match="boom"):
            yield Join(w)
        return "caught"

    w = sim.spawn(bad())
    j = sim.spawn(waiter(w))
    sim.run()
    assert j.result == "caught"
    assert w.state == "failed"


def test_run_all_reraises_failure():
    sim = Simulator()

    def bad():
        yield Delay(1.0)
        raise RuntimeError("kaput")

    p = sim.spawn(bad())
    with pytest.raises(RuntimeError, match="kaput"):
        sim.run_all([p])


def test_yield_from_subgenerator():
    sim = Simulator()

    def inner():
        yield Delay(2.0)
        return 7

    def outer():
        x = yield from inner()
        yield Delay(1.0)
        return x * 2

    p = sim.spawn(outer())
    sim.run()
    assert p.result == 14
    assert sim.now == pytest.approx(3.0)


def test_yielding_garbage_fails_the_process():
    sim = Simulator()

    def proc():
        yield "not a command"

    p = sim.spawn(proc())
    sim.run()
    assert p.state == "failed"
    assert isinstance(p.error, SimError)


def test_run_until_stops_early():
    sim = Simulator()

    def proc():
        yield Delay(100.0)

    p = sim.spawn(proc())
    sim.run(until=10.0)
    assert sim.now == pytest.approx(10.0)
    assert not p.done


def test_deadlock_detection():
    sim = Simulator()
    lock = Mutex(sim, "l")

    def hog():
        yield Acquire(lock)
        # never releases, never finishes: second process deadlocks

    def victim():
        yield Delay(1.0)
        yield Acquire(lock)

    sim.spawn(hog())
    sim.spawn(victim())
    with pytest.raises(DeadlockError):
        sim.run()


def test_max_events_guard():
    sim = Simulator(max_events=100)

    def spinner():
        while True:
            yield Delay(0.001)

    sim.spawn(spinner())
    with pytest.raises(SimError, match="max_events"):
        sim.run()


def test_fifo_event_order_at_same_timestamp():
    sim = Simulator()
    order = []

    def proc(tag):
        yield Delay(1.0)
        order.append(tag)

    for i in range(5):
        sim.spawn(proc(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_pids_are_unique():
    sim = Simulator()

    def noop():
        yield Delay(0.0)

    procs = [sim.spawn(noop()) for _ in range(10)]
    assert len({p.pid for p in procs}) == 10
