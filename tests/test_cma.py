"""Tests for the simulated CMA syscalls: semantics, cost, and contention.

The contention tests are the heart of the reproduction: they assert that the
paper's Figure 2 phenomenology *emerges* from the mm-lock model (one-to-all
degrades super-linearly, all-to-all doesn't degrade at all).
"""

import numpy as np
import pytest

from repro.kernel import (
    AddressSpaceManager,
    CMAError,
    CMAKernel,
)
from repro.kernel.cma import IOV_MAX
from repro.kernel.errors import EINVAL, EPERM, ESRCH
from repro.machine import make_generic
from repro.sim import Simulator, Tracer


def make_node(nprocs=4, arch=None, verify=True, trace=False):
    """Minimal kernel-level test node: sim + spaces + pinned processes."""
    arch = arch or make_generic(sockets=1, cores_per_socket=max(nprocs, 2))
    sim = Simulator()
    tracer = Tracer(enabled=trace)
    mgr = AddressSpaceManager(arch.params.page_size)
    cma = CMAKernel(sim, mgr, arch.params, tracer, verify=verify)
    procs = []

    def idle():
        return
        yield  # pragma: no cover

    for rank in range(nprocs):
        p = sim.spawn(idle(), name=f"rank{rank}")
        place = arch.placement(rank)
        p.socket, p.core = place.socket, place.core
        cma.register(p.pid)
        procs.append(p)
    sim.run()  # drain the idle spawns; now spawn real work as needed
    return sim, cma, procs, arch


def run_proc(sim, gen, proc_template):
    """Spawn a generator as a process inheriting a template's placement."""
    p = sim.spawn(gen, name=proc_template.name)
    p.pid = proc_template.pid
    p.socket = proc_template.socket
    p.core = proc_template.core
    return p


class TestSemantics:
    def test_read_moves_bytes(self):
        sim, cma, procs, arch = make_node(2)
        src = cma.manager.get(procs[0].pid).allocate(1000)
        dst = cma.manager.get(procs[1].pid).allocate(1000)
        src.fill(np.arange(1000, dtype=np.uint8) % 251)

        def reader():
            n = yield from cma.read_simple(procs[1], procs[0].pid, dst.iov(), src.iov())
            return n

        p = run_proc(sim, reader(), procs[1])
        sim.run_all([p])
        assert p.result == 1000
        assert np.array_equal(dst.data, src.data)

    def test_write_moves_bytes(self):
        sim, cma, procs, arch = make_node(2)
        local = cma.manager.get(procs[0].pid).allocate(512)
        remote = cma.manager.get(procs[1].pid).allocate(512)
        local.fill(7)

        def writer():
            n = yield from cma.write_simple(
                procs[0], procs[1].pid, local.iov(), remote.iov()
            )
            return n

        p = run_proc(sim, writer(), procs[0])
        sim.run_all([p])
        assert p.result == 512
        assert (remote.data == 7).all()

    def test_copy_is_min_of_local_and_remote(self):
        sim, cma, procs, _ = make_node(2)
        src = cma.manager.get(procs[0].pid).allocate(100)
        dst = cma.manager.get(procs[1].pid).allocate(40)
        src.fill(3)

        def reader():
            return (
                yield from cma.read_simple(procs[1], procs[0].pid, dst.iov(), src.iov())
            )

        p = run_proc(sim, reader(), procs[1])
        sim.run_all([p])
        assert p.result == 40
        assert (dst.data == 3).all()

    def test_multi_iovec_scatter_gather(self):
        sim, cma, procs, _ = make_node(2)
        sspace = cma.manager.get(procs[0].pid)
        dspace = cma.manager.get(procs[1].pid)
        s1, s2 = sspace.allocate(4), sspace.allocate(4)
        d = dspace.allocate(8)
        s1.fill(1)
        s2.fill(2)

        def reader():
            return (
                yield from cma.process_vm_readv(
                    procs[1], procs[0].pid, [d.iov()], [s1.iov(), s2.iov()]
                )
            )

        p = run_proc(sim, reader(), procs[1])
        sim.run_all([p])
        assert list(d.data) == [1, 1, 1, 1, 2, 2, 2, 2]

    def test_esrch_for_unknown_pid(self):
        sim, cma, procs, _ = make_node(2)
        d = cma.manager.get(procs[1].pid).allocate(8)

        def reader():
            yield from cma.read_simple(procs[1], 424242, d.iov(), (0x1000, 8))

        p = run_proc(sim, reader(), procs[1])
        sim.run()
        assert isinstance(p.error, CMAError) and p.error.errno == ESRCH

    def test_eperm_for_denied_pid(self):
        sim, cma, procs, _ = make_node(2)
        src = cma.manager.get(procs[0].pid).allocate(8)
        dst = cma.manager.get(procs[1].pid).allocate(8)
        cma.denied_pids.add(procs[0].pid)

        def reader():
            yield from cma.read_simple(procs[1], procs[0].pid, dst.iov(), src.iov())

        p = run_proc(sim, reader(), procs[1])
        sim.run()
        assert isinstance(p.error, CMAError) and p.error.errno == EPERM

    def test_einval_for_flags(self):
        sim, cma, procs, _ = make_node(2)
        src = cma.manager.get(procs[0].pid).allocate(8)
        dst = cma.manager.get(procs[1].pid).allocate(8)

        def reader():
            yield from cma.process_vm_readv(
                procs[1], procs[0].pid, [dst.iov()], [src.iov()], flags=1
            )

        p = run_proc(sim, reader(), procs[1])
        sim.run()
        assert isinstance(p.error, CMAError) and p.error.errno == EINVAL

    def test_einval_for_too_many_iovecs(self):
        sim, cma, procs, _ = make_node(2)
        src = cma.manager.get(procs[0].pid).allocate(8)
        dst = cma.manager.get(procs[1].pid).allocate(8)
        huge = [(src.addr, 0)] * (IOV_MAX + 1)

        def reader():
            yield from cma.process_vm_readv(procs[1], procs[0].pid, [dst.iov()], huge)

        p = run_proc(sim, reader(), procs[1])
        sim.run()
        assert isinstance(p.error, CMAError) and p.error.errno == EINVAL

    def test_fault_on_unmapped_remote(self):
        sim, cma, procs, _ = make_node(2)
        dst = cma.manager.get(procs[1].pid).allocate(8)

        def reader():
            yield from cma.read_simple(
                procs[1], procs[0].pid, dst.iov(), (0xBAD000, 8)
            )

        p = run_proc(sim, reader(), procs[1])
        sim.run()
        assert isinstance(p.error, CMAError)


class TestStepTriggering:
    """The Table III liovcnt/riovcnt games used to isolate T1..T4."""

    def _timed(self, local_iov, remote_iov, nbytes=4 * 4096):
        sim, cma, procs, arch = make_node(2)
        src = cma.manager.get(procs[0].pid).allocate(nbytes)
        dst = cma.manager.get(procs[1].pid).allocate(nbytes)
        liov = local_iov(dst)
        riov = remote_iov(src)

        def caller():
            t0 = sim.now
            yield from cma.process_vm_readv(procs[1], procs[0].pid, liov, riov)
            return sim.now - t0

        p = run_proc(sim, caller(), procs[1])
        sim.run_all([p])
        return p.result, arch.params

    def test_t1_syscall_only(self):
        t, p = self._timed(lambda d: [], lambda s: [])
        assert t == pytest.approx(p.alpha_syscall)

    def test_t2_adds_access_check(self):
        t, p = self._timed(lambda d: [], lambda s: [(s.addr, 0)])
        assert t == pytest.approx(p.alpha_syscall + p.alpha_check)

    def test_t3_adds_lock_pin_no_copy(self):
        n = 4 * 4096
        t, p = self._timed(lambda d: [], lambda s: [s.iov()], nbytes=n)
        assert t == pytest.approx(p.alpha + 4 * p.l_page)

    def test_t4_full_transfer(self):
        n = 4 * 4096
        t, p = self._timed(lambda d: [d.iov()], lambda s: [s.iov()], nbytes=n)
        assert t == pytest.approx(p.alpha + 4 * p.l_page + n * p.beta)

    def test_times_are_ordered(self):
        n = 4 * 4096
        t1, _ = self._timed(lambda d: [], lambda s: [])
        t2, _ = self._timed(lambda d: [], lambda s: [(s.addr, 0)])
        t3, _ = self._timed(lambda d: [], lambda s: [s.iov()], nbytes=n)
        t4, _ = self._timed(lambda d: [d.iov()], lambda s: [s.iov()], nbytes=n)
        assert t1 < t2 < t3 < t4


def one_to_all_latency(readers, nbytes, arch=None, same_buffer=True):
    """All `readers` concurrently read `nbytes` from rank 0 (Fig 2(b)/(c))."""
    arch = arch or make_generic(sockets=1, cores_per_socket=max(readers + 1, 2))
    sim, cma, procs, _ = make_node(readers + 1, arch=arch, verify=False)
    src_space = cma.manager.get(procs[0].pid)
    if same_buffer:
        shared = src_space.allocate(nbytes)
        srcs = [shared] * readers
    else:
        srcs = [src_space.allocate(nbytes) for _ in range(readers)]
    workers = []
    for i in range(readers):
        dst = cma.manager.get(procs[i + 1].pid).allocate(nbytes)

        def reader(i=i, dst=dst):
            t0 = sim.now
            yield from cma.read_simple(
                procs[i + 1], procs[0].pid, dst.iov(), srcs[i].iov()
            )
            return sim.now - t0

        workers.append(run_proc(sim, reader(), procs[i + 1]))
    sim.run_all(workers)
    return max(w.result for w in workers)


def all_to_all_latency(pairs, nbytes):
    """Disjoint reader->source pairs (Fig 2(a)): no shared lock."""
    arch = make_generic(sockets=1, cores_per_socket=max(2 * pairs, 2))
    sim, cma, procs, _ = make_node(2 * pairs, arch=arch, verify=False)
    workers = []
    for i in range(pairs):
        src = cma.manager.get(procs[i].pid).allocate(nbytes)
        dst = cma.manager.get(procs[pairs + i].pid).allocate(nbytes)

        def reader(i=i, src=src, dst=dst):
            t0 = sim.now
            yield from cma.read_simple(
                procs[pairs + i], procs[i].pid, dst.iov(), src.iov()
            )
            return sim.now - t0

        workers.append(run_proc(sim, reader(), procs[pairs + i]))
    sim.run_all(workers)
    return max(w.result for w in workers)


class TestContention:
    def test_one_to_all_degrades_with_readers(self):
        n = 64 * 1024
        t1 = one_to_all_latency(1, n)
        t8 = one_to_all_latency(8, n)
        t32 = one_to_all_latency(32, n)
        assert t8 > 2 * t1
        assert t32 > 2 * t8

    def test_degradation_is_superlinear(self):
        """Emergent gamma: per-reader lock+pin cost grows *faster* than c
        (queueing alone would give exactly c; cache bouncing pushes past it)."""
        n = 256 * 1024

        def per_reader_lock_pin(readers):
            arch = make_generic(sockets=1, cores_per_socket=max(readers + 1, 2))
            sim, cma, procs, _ = make_node(
                readers + 1, arch=arch, verify=False, trace=True
            )
            src = cma.manager.get(procs[0].pid).allocate(n)
            workers = []
            for i in range(readers):
                dst = cma.manager.get(procs[i + 1].pid).allocate(n)

                def reader(i=i, dst=dst):
                    yield from cma.read_simple(
                        procs[i + 1], procs[0].pid, dst.iov(), src.iov()
                    )

                workers.append(run_proc(sim, reader(), procs[i + 1]))
            sim.run_all(workers)
            ph = cma.tracer.total_by_phase()
            return (ph.get("lock", 0.0) + ph["pin"]) / readers

        r1 = per_reader_lock_pin(1)
        r16 = per_reader_lock_pin(16)
        assert r16 > 10 * r1  # strictly worse than linear-in-c queueing

    def test_same_vs_different_buffer_both_degrade(self):
        """Fig 2(b) vs 2(c): the bottleneck is the source *process*, not the
        buffer — different target buffers contend just the same."""
        n = 128 * 1024
        same = one_to_all_latency(16, n, same_buffer=True)
        diff = one_to_all_latency(16, n, same_buffer=False)
        assert diff == pytest.approx(same, rel=0.05)

    def test_all_to_all_does_not_degrade(self):
        """Fig 2(a): disjoint pairs scale flat."""
        n = 128 * 1024
        t1 = all_to_all_latency(1, n)
        t8 = all_to_all_latency(8, n)
        assert t8 == pytest.approx(t1, rel=0.05)

    def test_inter_socket_contention_worse(self):
        n = 128 * 1024
        one_socket = make_generic(sockets=1, cores_per_socket=16)
        two_socket = make_generic(sockets=2, cores_per_socket=8)
        t_intra = one_to_all_latency(12, n, arch=one_socket)
        t_inter = one_to_all_latency(12, n, arch=two_socket)
        assert t_inter > t_intra


class TestTracing:
    def test_breakdown_phases_recorded(self):
        arch = make_generic(sockets=1, cores_per_socket=4)
        sim, cma, procs, _ = make_node(2, arch=arch, trace=True)
        src = cma.manager.get(procs[0].pid).allocate(8 * 4096)
        dst = cma.manager.get(procs[1].pid).allocate(8 * 4096)

        def reader():
            yield from cma.read_simple(procs[1], procs[0].pid, dst.iov(), src.iov())

        p = run_proc(sim, reader(), procs[1])
        sim.run_all([p])
        phases = cma.tracer.total_by_phase()
        assert set(phases) == {"syscall", "check", "pin", "lock", "copy"}
        assert phases["copy"] == pytest.approx(8 * 4096 * arch.params.beta)
        assert phases["pin"] == pytest.approx(8 * arch.params.l_page)
        assert phases["lock"] == pytest.approx(0.0)  # uncontended: no waiting

    def test_lock_phase_grows_with_contention(self):
        arch = make_generic(sockets=1, cores_per_socket=16)
        n = 32 * 4096
        times = {}
        for readers in (1, 8):
            sim, cma, procs, _ = make_node(
                readers + 1, arch=arch, verify=False, trace=True
            )
            src = cma.manager.get(procs[0].pid).allocate(n)
            workers = []
            for i in range(readers):
                dst = cma.manager.get(procs[i + 1].pid).allocate(n)

                def reader(i=i, dst=dst):
                    yield from cma.read_simple(
                        procs[i + 1], procs[0].pid, dst.iov(), src.iov()
                    )

                workers.append(run_proc(sim, reader(), procs[i + 1]))
            sim.run_all(workers)
            ph = cma.tracer.total_by_phase()
            times[readers] = ph.get("lock", 0.0) / readers
        assert times[8] > 5 * max(times[1], 1e-9)


class TestKnemLimic:
    def test_knem_cookie_roundtrip(self):
        from repro.kernel.knem import KnemKernel

        sim, cma, procs, _ = make_node(2)
        knem = KnemKernel(cma)
        src = cma.manager.get(procs[0].pid).allocate(64)
        dst = cma.manager.get(procs[1].pid).allocate(64)
        src.fill(5)
        state = {}

        def owner():
            state["cookie"] = yield from knem.declare_region(
                procs[0], src.addr, src.nbytes
            )

        def peer():
            while "cookie" not in state:
                from repro.sim import Delay

                yield Delay(0.5)
            n = yield from knem.inline_copy_from(procs[1], state["cookie"], dst.iov())
            return n

        po = run_proc(sim, owner(), procs[0])
        pp = run_proc(sim, peer(), procs[1])
        sim.run_all([po, pp])
        assert pp.result == 64
        assert (dst.data == 5).all()

    def test_knem_unknown_cookie(self):
        from repro.kernel.knem import KnemKernel

        sim, cma, procs, _ = make_node(2)
        knem = KnemKernel(cma)
        dst = cma.manager.get(procs[1].pid).allocate(8)

        def peer():
            yield from knem.inline_copy_from(procs[1], 0xFFFF, dst.iov())

        p = run_proc(sim, peer(), procs[1])
        sim.run()
        assert isinstance(p.error, CMAError) and p.error.errno == EINVAL

    def test_limic_descriptor_roundtrip(self):
        from repro.kernel.limic import LimicKernel

        sim, cma, procs, _ = make_node(2)
        limic = LimicKernel(cma)
        src = cma.manager.get(procs[0].pid).allocate(32)
        dst = cma.manager.get(procs[1].pid).allocate(32)
        src.fill(9)
        state = {}

        def owner():
            state["tx"] = yield from limic.tx_init(procs[0], src.addr, src.nbytes)

        def peer():
            from repro.sim import Delay

            while "tx" not in state:
                yield Delay(0.5)
            return (yield from limic.tx_copy_from(procs[1], state["tx"], dst.iov()))

        po = run_proc(sim, owner(), procs[0])
        pp = run_proc(sim, peer(), procs[1])
        sim.run_all([po, pp])
        assert pp.result == 32
        assert (dst.data == 9).all()

    def test_limic_window_bounds(self):
        from repro.kernel.limic import LimicKernel

        sim, cma, procs, _ = make_node(2)
        limic = LimicKernel(cma)
        src = cma.manager.get(procs[0].pid).allocate(16)
        dst = cma.manager.get(procs[1].pid).allocate(32)
        state = {}

        def owner():
            state["tx"] = yield from limic.tx_init(procs[0], src.addr, 16)

        def peer():
            from repro.sim import Delay

            while "tx" not in state:
                yield Delay(0.5)
            yield from limic.tx_copy_from(procs[1], state["tx"], dst.iov())

        po = run_proc(sim, owner(), procs[0])
        pp = run_proc(sim, peer(), procs[1])
        sim.run()
        assert isinstance(pp.error, CMAError)
