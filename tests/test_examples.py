"""Smoke tests: every example script runs end to end and prints sense.

These are the repository's user-facing entry points; a refactor that
breaks them should fail CI even if the library tests stay green.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "throttled_read" in out
    assert "tuner pick" in out
    assert "lock+pin share" in out


def test_contention_explorer():
    out = run_example("contention_explorer.py", "broadwell")
    assert "gamma(c) = 1 +" in out
    assert "Throttle factor suggestion" in out


def test_multinode_scaling():
    out = run_example("multinode_scaling.py")
    assert "8 KNL nodes" in out
    assert "speedup" in out


def test_app_gradient_allreduce():
    out = run_example("app_gradient_allreduce.py", "1")
    assert "verified: ring allreduce" in out
    assert "tuner pick" in out


def test_app_spectral_transpose():
    out = run_example("app_spectral_transpose.py", "16384")
    assert "communication share" in out
    assert "proposed" in out


@pytest.mark.slow
def test_library_shootout():
    out = run_example("library_shootout.py", "scatter", "knl", timeout=300)
    assert "picked" in out
    assert "throttled" in out


def test_real_cma_demo_runs_or_explains():
    """Runs the live-kernel demo where permitted; otherwise it must exit
    gracefully with guidance."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "real_cma_demo.py"), "65536", "2"],
        capture_output=True,
        text=True,
        timeout=240,
    )
    if proc.returncode == 0:
        assert "pattern-verified" in proc.stdout or "verified" in proc.stdout
    else:
        assert "not usable" in proc.stdout
