"""Tests for the experiment catalogue and the `python -m repro.bench` CLI."""

import pytest

from repro.bench.__main__ import main as _bench_cli
from repro.bench.figures import (
    CATALOGUE,
    Experiment,
    experiment_ids,
    run_experiment,
)


class TestCatalogue:
    def test_every_paper_artifact_has_a_generator(self):
        ids = set(experiment_ids())
        expected_figs = {f"fig{n:02d}" for n in range(2, 19) if n != 1}
        expected_tabs = {"tab03", "tab04", "tab06", "tab07"}
        assert expected_figs <= ids
        assert expected_tabs <= ids
        assert {"ablation_bounce", "ablation_batch", "ablation_throttle"} <= ids
        assert "ext_reduce" in ids

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_catalogue_entries_are_callables(self):
        for eid, fn in CATALOGUE.items():
            assert callable(fn), eid

    def test_cheap_experiment_roundtrip(self):
        exp = run_experiment("tab03", quick=True)
        assert isinstance(exp, Experiment)
        assert exp.id == "tab03"
        assert exp.tables and exp.data
        out = exp.render()
        assert out.startswith("### tab03")
        assert "syscall" in out

    def test_experiment_render_contains_all_tables(self):
        exp = run_experiment("fig04", quick=True)
        out = exp.render()
        assert "lock" in out and "copy" in out


class TestCLI:
    def test_list(self, capsys):
        assert _bench_cli(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "tab06" in out

    def test_no_args_lists(self, capsys):
        assert _bench_cli([]) == 0
        assert "fig02" in capsys.readouterr().out

    def test_run_one(self, capsys):
        assert _bench_cli(["tab03"]) == 0
        out = capsys.readouterr().out
        assert "regenerated" in out
        assert "T4 copy" in out

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            _bench_cli(["fig99"])
