"""Every errno in the simulated kernel is real, raisable, and named right.

The simulated ``process_vm_readv``/``writev`` must fail with the same
errno values (and spellings) the real kernel uses, from both the traced
and the fused fast path; EINTR — which only ever comes from the signal
machinery — is raisable through fault injection.
"""

import errno as std_errno

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.kernel.errors import (
    CMAError,
    EFAULT,
    EINTR,
    EINVAL,
    EPERM,
    ESRCH,
)
from repro.machine import make_generic
from repro.mpi import Comm, Node

ALL_ERRNOS = {
    "EPERM": EPERM,
    "ESRCH": ESRCH,
    "EINTR": EINTR,
    "EFAULT": EFAULT,
    "EINVAL": EINVAL,
}


def test_errnos_match_the_stdlib():
    for name, value in ALL_ERRNOS.items():
        assert value == getattr(std_errno, name), name


def test_cmaerror_message_carries_the_name():
    for name, value in ALL_ERRNOS.items():
        assert f"[{name}]" in str(CMAError(value, "x")), name


def _node(trace):
    node = Node(make_generic(sockets=1, cores_per_socket=4), trace=trace)
    comm = Comm(node, 2)
    return node, comm


def _run_expecting(node, comm, body, want_errno):
    """Run ``body`` as rank 0 and assert it raises CMAError(want_errno)."""

    def rank0(ctx):
        with pytest.raises(CMAError) as exc:
            yield from body(ctx)
        assert exc.value.errno == want_errno
        assert ALL_ERRNOS_BY_VALUE[want_errno] in str(exc.value)

    proc = comm.spawn_rank(0, rank0)
    node.sim.run_all([proc])


ALL_ERRNOS_BY_VALUE = {v: k for k, v in ALL_ERRNOS.items()}


@pytest.mark.parametrize("trace", [False, True], ids=["fast", "traced"])
class TestSyscallErrnos:
    def test_einval_nonzero_flags(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)
        b = comm.allocate(1, 4096)

        def body(ctx):
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [b.iov()], flags=1
            )

        _run_expecting(node, comm, body, EINVAL)

    def test_einval_negative_length(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)

        def body(ctx):
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [(a.addr, -8)]
            )

        _run_expecting(node, comm, body, EINVAL)

    def test_einval_iov_max_exceeded(self, trace):
        from repro.kernel.cma import IOV_MAX

        node, comm = _node(trace)
        a = comm.allocate(0, 4096)

        def body(ctx):
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [(a.addr, 1)] * (IOV_MAX + 1)
            )

        _run_expecting(node, comm, body, EINVAL)

    def test_esrch_unknown_pid(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)

        def body(ctx):
            yield from node.cma.process_vm_readv(
                ctx.proc, 99_999, [a.iov()], [(a.addr, 8)]
            )

        _run_expecting(node, comm, body, ESRCH)

    def test_eperm_denied_pid(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)
        b = comm.allocate(1, 4096)
        node.cma.denied_pids.add(comm.pid_of(1))

        def body(ctx):
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [b.iov()]
            )

        _run_expecting(node, comm, body, EPERM)

    def test_efault_unmapped_remote(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)
        b = comm.allocate(1, 4096)

        def body(ctx):
            # read past the end of the peer's only buffer
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [(b.end + 4096, 64)]
            )

        _run_expecting(node, comm, body, EFAULT)

    @pytest.mark.parametrize("kind", ["eperm", "esrch", "efault", "eintr"])
    def test_injected_errnos(self, trace, kind):
        """EINTR has no natural simulated source — injection covers it, and
        the other kinds must surface the identical errno the natural path
        uses."""
        plan = FaultPlan(seed=0, specs=(FaultSpec(kind, calls=(0,)),))
        node = Node(
            make_generic(sockets=1, cores_per_socket=4), trace=trace, faults=plan
        )
        comm = Comm(node, 2)
        a = comm.allocate(0, 4096)
        b = comm.allocate(1, 4096)

        def body(ctx):
            # call the kernel directly: the resilient Comm layer would
            # swallow the error, and here the raw errno is the assertion
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [b.iov()]
            )

        _run_expecting(node, comm, body, ALL_ERRNOS[kind.upper()])
