"""Every errno in the simulated kernel is real, raisable, and named right.

The simulated ``process_vm_readv``/``writev`` must fail with the same
errno values (and spellings) the real kernel uses, from both the traced
and the fused fast path; EINTR — which only ever comes from the signal
machinery — is raisable through fault injection.
"""

import errno as std_errno

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.kernel.errors import (
    CMAError,
    EFAULT,
    EINTR,
    EINVAL,
    ENOENT,
    EPERM,
    ESRCH,
)
from repro.machine import make_generic
from repro.mpi import Comm, Node

ALL_ERRNOS = {
    "EPERM": EPERM,
    "ENOENT": ENOENT,
    "ESRCH": ESRCH,
    "EINTR": EINTR,
    "EFAULT": EFAULT,
    "EINVAL": EINVAL,
}


def test_errnos_match_the_stdlib():
    for name, value in ALL_ERRNOS.items():
        assert value == getattr(std_errno, name), name


def test_cmaerror_message_carries_the_name():
    for name, value in ALL_ERRNOS.items():
        assert f"[{name}]" in str(CMAError(value, "x")), name


def _node(trace):
    node = Node(make_generic(sockets=1, cores_per_socket=4), trace=trace)
    comm = Comm(node, 2)
    return node, comm


def _run_expecting(node, comm, body, want_errno):
    """Run ``body`` as rank 0 and assert it raises CMAError(want_errno)."""

    def rank0(ctx):
        with pytest.raises(CMAError) as exc:
            yield from body(ctx)
        assert exc.value.errno == want_errno
        assert ALL_ERRNOS_BY_VALUE[want_errno] in str(exc.value)

    proc = comm.spawn_rank(0, rank0)
    node.sim.run_all([proc])


ALL_ERRNOS_BY_VALUE = {v: k for k, v in ALL_ERRNOS.items()}


@pytest.mark.parametrize("trace", [False, True], ids=["fast", "traced"])
class TestSyscallErrnos:
    def test_einval_nonzero_flags(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)
        b = comm.allocate(1, 4096)

        def body(ctx):
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [b.iov()], flags=1
            )

        _run_expecting(node, comm, body, EINVAL)

    def test_einval_negative_length(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)

        def body(ctx):
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [(a.addr, -8)]
            )

        _run_expecting(node, comm, body, EINVAL)

    def test_einval_iov_max_exceeded(self, trace):
        from repro.kernel.cma import IOV_MAX

        node, comm = _node(trace)
        a = comm.allocate(0, 4096)

        def body(ctx):
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [(a.addr, 1)] * (IOV_MAX + 1)
            )

        _run_expecting(node, comm, body, EINVAL)

    def test_esrch_unknown_pid(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)

        def body(ctx):
            yield from node.cma.process_vm_readv(
                ctx.proc, 99_999, [a.iov()], [(a.addr, 8)]
            )

        _run_expecting(node, comm, body, ESRCH)

    def test_eperm_denied_pid(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)
        b = comm.allocate(1, 4096)
        node.cma.denied_pids.add(comm.pid_of(1))

        def body(ctx):
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [b.iov()]
            )

        _run_expecting(node, comm, body, EPERM)

    def test_efault_unmapped_remote(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)
        b = comm.allocate(1, 4096)

        def body(ctx):
            # read past the end of the peer's only buffer
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [(b.end + 4096, 64)]
            )

        _run_expecting(node, comm, body, EFAULT)

    @pytest.mark.parametrize("kind", ["eperm", "esrch", "efault", "eintr"])
    def test_injected_errnos(self, trace, kind):
        """EINTR has no natural simulated source — injection covers it, and
        the other kinds must surface the identical errno the natural path
        uses."""
        plan = FaultPlan(seed=0, specs=(FaultSpec(kind, calls=(0,)),))
        node = Node(
            make_generic(sockets=1, cores_per_socket=4), trace=trace, faults=plan
        )
        comm = Comm(node, 2)
        a = comm.allocate(0, 4096)
        b = comm.allocate(1, 4096)

        def body(ctx):
            # call the kernel directly: the resilient Comm layer would
            # swallow the error, and here the raw errno is the assertion
            yield from node.cma.process_vm_readv(
                ctx.proc, comm.pid_of(1), [a.iov()], [b.iov()]
            )

        _run_expecting(node, comm, body, ALL_ERRNOS[kind.upper()])


@pytest.mark.parametrize("trace", [False, True], ids=["fast", "traced"])
class TestXpmemErrnos:
    """The mapped-window lane's errnos: natural triggers + injection, with
    traced and fast paths agreeing (xpmem validates *before* charging any
    time in both, so there is no fast-path divergence to document)."""

    def test_einval_nonpositive_segment(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)

        def body(ctx):
            yield from node.xpmem.make_segid(ctx.proc, a.addr, 0)

        _run_expecting(node, comm, body, EINVAL)

    def test_efault_unmapped_export(self, trace):
        node, comm = _node(trace)
        a = comm.allocate(0, 4096)

        def body(ctx):
            yield from node.xpmem.make_segid(ctx.proc, a.end + 4096, 64)

        _run_expecting(node, comm, body, EFAULT)

    def test_enoent_stale_segid_on_attach(self, trace):
        node, comm = _node(trace)

        def body(ctx):
            yield from node.xpmem.attach(ctx.proc, 0x5E60_0000)

        _run_expecting(node, comm, body, ENOENT)

    def test_esrch_dead_owner_on_attach(self, trace):
        from repro.kernel.xpmem import XpmemSegment

        node, comm = _node(trace)
        # an export whose owner's address space no longer exists
        node.xpmem._segids[0x5E60_0042] = XpmemSegment(
            0x5E60_0042, 99_999, 0x1000, 4096, 1
        )

        def body(ctx):
            yield from node.xpmem.attach(ctx.proc, 0x5E60_0042)

        _run_expecting(node, comm, body, ESRCH)

    def test_eperm_denied_owner_on_attach(self, trace):
        node, comm = _node(trace)
        b = comm.allocate(1, 4096)
        got = {}

        def owner(ctx):
            got["segid"] = yield from node.xpmem.make_segid(
                ctx.proc, b.addr, 4096
            )

        node.sim.run_all([comm.spawn_rank(1, owner)])
        node.cma.denied_pids.add(comm.pid_of(1))

        def body(ctx):
            yield from node.xpmem.attach(ctx.proc, got["segid"])

        _run_expecting(node, comm, body, EPERM)

    def _exported(self, node, comm, nbytes=4 * 4096):
        """Rank 0 exports its own buffer; returns (buffer, segid)."""
        a = comm.allocate(0, nbytes)
        got = {}

        def owner(ctx):
            got["segid"] = yield from node.xpmem.make_segid(
                ctx.proc, a.addr, nbytes
            )

        node.sim.run_all([comm.spawn_rank(0, owner)])
        return a, got["segid"]

    def test_einval_copy_before_attach(self, trace):
        node, comm = _node(trace)
        a, segid = self._exported(node, comm)

        def body(ctx):
            yield from node.xpmem.copy_from(
                ctx.proc, segid, (0, 64), (a.addr, 64)
            )

        # rank 1 never attached: the window is not mapped in its space
        def rank1(ctx):
            with pytest.raises(CMAError) as exc:
                yield from body(ctx)
            assert exc.value.errno == EINVAL

        node.sim.run_all([comm.spawn_rank(1, rank1)])

    def test_einval_negative_copy_length(self, trace):
        node, comm = _node(trace)
        a, segid = self._exported(node, comm)

        def body(ctx):
            yield from node.xpmem.attach(ctx.proc, segid)
            yield from node.xpmem.copy_from(
                ctx.proc, segid, (0, 64), (a.addr, -8)
            )

        _run_expecting(node, comm, body, EINVAL)

    def test_efault_copy_outside_window(self, trace):
        node, comm = _node(trace)
        a, segid = self._exported(node, comm)

        def body(ctx):
            yield from node.xpmem.attach(ctx.proc, segid)
            yield from node.xpmem.copy_from(
                ctx.proc, segid, (0, 128), (a.end - 32, 128)
            )

        _run_expecting(node, comm, body, EFAULT)

    @pytest.mark.parametrize("op", ["make", "attach", "xcopy"])
    @pytest.mark.parametrize(
        "kind", ["eperm", "enoent", "esrch", "efault", "eintr"]
    )
    def test_injected_errnos(self, trace, op, kind):
        """Every xpmem errno kind is raisable at every xpmem injection site,
        in both paths, with the stdlib errno value."""
        plan = FaultPlan(seed=0, specs=(FaultSpec(kind, op=op, calls=(0,)),))
        node = Node(
            make_generic(sockets=1, cores_per_socket=4), trace=trace, faults=plan
        )
        comm = Comm(node, 2)
        a = comm.allocate(0, 4096)

        def body(ctx):
            segid = yield from node.xpmem.make_segid(ctx.proc, a.addr, 4096)
            yield from node.xpmem.attach(ctx.proc, segid)
            yield from node.xpmem.copy_from(
                ctx.proc, segid, (0, 64), (a.addr, 64)
            )

        _run_expecting(node, comm, body, ALL_ERRNOS[kind.upper()])


def test_empty_armed_plan_is_bit_identical_on_the_xpmem_lane():
    """Arming a plan with no specs must not perturb an xpmem collective by
    a single event or nanosecond — the same guarantee the CMA lane has."""
    from repro.core.runner import CollectiveSpec, run_collective
    from repro.machine import get_arch

    def run(faults):
        spec = CollectiveSpec(
            "scatter", "xpmem_read", get_arch("knl"), procs=6, eta=65536,
            verify=False, faults=faults,
        )
        r = run_collective(spec)
        return (
            r.latency_us,
            tuple(r.per_rank_us),
            r.ctrl_messages,
            r.sim_events,
            r.xpmem_reads,
            r.xpmem_writes,
            r.xpmem_attaches,
            r.xpmem_page_faults,
            r.fallbacks,
            r.retries,
            r.faults_injected,
        )

    assert run(None) == run(FaultPlan(seed=7, specs=()))
