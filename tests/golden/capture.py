"""Capture the engine-parity golden fixture.

Records simulated-microsecond results for slices of Fig. 3 (one-to-all CMA
microbenchmarks), Fig. 7 (scatter collectives, verified bytes), Table IV
(the NLLS fitting pipeline), and two traced mapped-window (xpmem lane)
collectives into ``engine_parity.json``.  The
fixture pins the engine's *simulated-time* behaviour: any optimisation of
the event loop, the resources, or the kernel fast paths must reproduce
these numbers bit-for-bit (``tests/test_engine_golden.py``).

Regenerate only when a change is *supposed* to alter simulated results —
which also means bumping ``repro.exec.cache.CACHE_VERSION``::

    PYTHONPATH=src python tests/golden/capture.py
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).with_name("engine_parity.json")

FIG03_POINTS = [
    (arch, readers, nbytes)
    for arch in ("knl", "broadwell", "power8")
    for readers in (1, 4, 8)
    for nbytes in (16 * 1024, 256 * 1024, 1 << 20)
] + [("knl", 32, 256 * 1024)]

FIG07_SPECS = [
    (alg, params, eta)
    for eta in (16 * 1024, 256 * 1024)
    for alg, params in (
        ("parallel_read", {}),
        ("sequential_write", {}),
        ("throttled_read", {"k": 4}),
    )
]

#: Mapped-window lane traces: the per-phase aggregates pin the fault-in
#: convoy, the attach/map charging, and the pin-free steady-state copies.
XPMEM_SPECS = [
    ("scatter", "xpmem_read", 64 * 1024),
    ("bcast", "xpmem_read", 256 * 1024),
]


def capture() -> dict:
    from repro.bench.microbench import one_to_all_latency
    from repro.core.fitting import fit_architecture
    from repro.core.runner import CollectiveSpec, run_collective
    from repro.machine import get_arch

    fig03 = {}
    for arch, readers, nbytes in FIG03_POINTS:
        lat = one_to_all_latency(get_arch(arch), readers, nbytes)
        fig03[f"{arch}/{readers}r/{nbytes}"] = lat

    fig07 = {}
    for alg, params, eta in FIG07_SPECS:
        spec = CollectiveSpec(
            "scatter", alg, get_arch("knl"), procs=12, eta=eta, params=params
        )
        res = run_collective(spec)
        fig07[f"{alg}/{eta}"] = {
            "latency_us": res.latency_us,
            "per_rank_us": res.per_rank_us,
            "ctrl_messages": res.ctrl_messages,
            "cma_reads": res.cma_reads,
            "cma_writes": res.cma_writes,
        }

    xpmem = {}
    for coll, alg, eta in XPMEM_SPECS:
        spec = CollectiveSpec(
            coll, alg, get_arch("knl"), procs=12, eta=eta, trace=True
        )
        res = run_collective(spec)
        xpmem[f"{coll}/{alg}/{eta}"] = {
            "latency_us": res.latency_us,
            "per_rank_us": res.per_rank_us,
            "ctrl_messages": res.ctrl_messages,
            "sim_events": res.sim_events,
            "xpmem_reads": res.xpmem_reads,
            "xpmem_writes": res.xpmem_writes,
            "xpmem_attaches": res.xpmem_attaches,
            "xpmem_page_faults": res.xpmem_page_faults,
            "trace_by_phase": res.trace_by_phase,
        }

    fit = fit_architecture(
        get_arch("broadwell"), page_counts=(10, 20), reader_counts=[1, 2, 4, 8]
    )
    tab04 = {
        "alpha": fit.base.alpha,
        "beta": fit.base.beta,
        "l_page": fit.base.l_page,
        "page_size": fit.base.page_size,
        "g1": fit.gamma.g1,
        "g2": fit.gamma.g2,
        "spill": fit.gamma.spill,
        "knee": fit.gamma.knee,
        "residual": fit.gamma.residual,
        "samples": [
            [s.pages, s.readers, s.gamma] for s in fit.samples
        ],
    }

    return {"fig03": fig03, "fig07": fig07, "tab04": tab04, "xpmem": xpmem}


def main() -> None:
    data = capture()
    GOLDEN_PATH.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
