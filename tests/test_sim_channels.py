"""Unit tests for mailboxes: matching, wildcards, latency, ordering."""

import pytest

from repro.sim import ANY, Delay, Mailbox, Recv, Send, Simulator


def _box(sim, owner=0):
    return Mailbox(sim, owner)


def test_send_then_recv():
    sim = Simulator()
    box = _box(sim)

    def sender():
        yield Send(box, src=1, tag="hello", payload=123)

    def receiver():
        msg = yield Recv(box, src=1, tag="hello")
        return msg.payload

    sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    assert r.result == 123


def test_recv_posted_before_send():
    sim = Simulator()
    box = _box(sim)

    def receiver():
        msg = yield Recv(box, src=ANY, tag=ANY)
        return (msg.payload, sim.now)

    def sender():
        yield Delay(3.0)
        yield Send(box, src=7, tag="t", payload="late")

    r = sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    assert r.result == ("late", pytest.approx(3.0))


def test_message_latency_delays_delivery():
    sim = Simulator()
    box = _box(sim)

    def sender():
        yield Send(box, src=0, tag="t", payload="x", latency=5.0)
        return sim.now  # sender continues immediately (overhead defaults 0)

    def receiver():
        msg = yield Recv(box)
        return sim.now

    s = sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    assert s.result == pytest.approx(0.0)
    assert r.result == pytest.approx(5.0)


def test_sender_overhead_blocks_sender_not_message():
    sim = Simulator()
    box = _box(sim)

    def sender():
        yield Send(box, src=0, tag="t", latency=1.0, overhead=4.0)
        return sim.now

    def receiver():
        yield Recv(box)
        return sim.now

    s = sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    assert r.result == pytest.approx(1.0)
    assert s.result == pytest.approx(4.0)


def test_tag_matching_skips_non_matching():
    sim = Simulator()
    box = _box(sim)

    def sender():
        yield Send(box, src=0, tag="a", payload=1)
        yield Send(box, src=0, tag="b", payload=2)

    def receiver():
        msg_b = yield Recv(box, tag="b")
        msg_a = yield Recv(box, tag="a")
        return (msg_b.payload, msg_a.payload)

    sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    assert r.result == (2, 1)


def test_src_matching():
    sim = Simulator()
    box = _box(sim)

    def sender(src, payload):
        yield Send(box, src=src, tag="t", payload=payload)

    def receiver():
        msg = yield Recv(box, src=5)
        return msg.payload

    sim.spawn(sender(4, "wrong"))
    sim.spawn(sender(5, "right"))
    r = sim.spawn(receiver())
    sim.run()
    assert r.result == "right"


def test_fifo_order_among_matching_messages():
    sim = Simulator()
    box = _box(sim)

    def sender():
        for i in range(5):
            yield Send(box, src=0, tag="t", payload=i)

    def receiver():
        out = []
        for _ in range(5):
            msg = yield Recv(box, src=0, tag="t")
            out.append(msg.payload)
        return out

    sim.spawn(sender())
    r = sim.spawn(receiver())
    sim.run()
    assert r.result == [0, 1, 2, 3, 4]


def test_multiple_posted_receivers_fifo():
    sim = Simulator()
    box = _box(sim)
    got = []

    def receiver(name):
        msg = yield Recv(box)
        got.append((name, msg.payload))

    def sender():
        yield Delay(1.0)
        yield Send(box, src=0, tag="t", payload="m1")
        yield Send(box, src=0, tag="t", payload="m2")

    sim.spawn(receiver("r1"))
    sim.spawn(receiver("r2"))
    sim.spawn(sender())
    sim.run()
    assert got == [("r1", "m1"), ("r2", "m2")]


def test_pending_count():
    sim = Simulator()
    box = _box(sim)

    def sender():
        yield Send(box, src=0, tag="t")
        yield Send(box, src=0, tag="t")

    sim.spawn(sender())
    sim.run()
    assert box.pending == 2
    assert box.delivered == 2
