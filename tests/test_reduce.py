"""Tests for the Reduce/Allreduce extension (the paper's future work).

The reduction operator is uint8 addition mod 256, so the runner verifies
every algorithm's result bit-for-bit against the true elementwise sum.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import algorithms_for
from repro.core.runner import CollectiveSpec, run_collective
from repro.core.tuning import Tuner
from repro.machine import get_arch, make_generic

SIZES = [2, 3, 4, 5, 8, 13, 16]


def run(coll, alg, p=6, eta=4000, root=0, in_place=False, **params):
    spec = CollectiveSpec(
        collective=coll,
        algorithm=alg,
        arch=make_generic(sockets=1, cores_per_socket=max(p, 2)),
        procs=p,
        eta=eta,
        root=root,
        in_place=in_place,
        params=params,
    )
    return run_collective(spec)


class TestReduce:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("alg", algorithms_for("reduce"))
    def test_all_algorithms_verify(self, p, alg):
        params = {"k": min(2, p - 1)} if alg == "gather_throttled" else {}
        run("reduce", alg, p=p, **params)

    @pytest.mark.parametrize("alg", algorithms_for("reduce"))
    @pytest.mark.parametrize("root", [1, 4])
    def test_nonzero_root(self, alg, root):
        params = {"k": 3} if alg == "gather_throttled" else {}
        run("reduce", alg, p=7, root=root, **params)

    @pytest.mark.parametrize("alg", ["gather_throttled", "binomial"])
    def test_in_place_root(self, alg):
        params = {"k": 2} if alg == "gather_throttled" else {}
        run("reduce", alg, p=5, in_place=True, **params)

    def test_tiny_and_non_divisible_sizes(self):
        run("reduce", "ring_rs", p=8, eta=1)  # chunks mostly empty
        run("reduce", "ring_rs", p=7, eta=4099)  # non-divisible

    def test_binomial_parallelizes_combines(self):
        """The tree spreads the combine work: for compute-heavy reductions
        it beats the root-serial gather design at scale."""
        p, eta = 16, 256 * 1024
        tree = run("reduce", "binomial", p=p, eta=eta).latency_us
        serial = run("reduce", "gather_throttled", p=p, eta=eta, k=4).latency_us
        assert tree < serial

    def test_ring_rs_spreads_bandwidth_for_large(self):
        arch = get_arch("knl")

        def lat(alg, **params):
            spec = CollectiveSpec(
                "reduce", alg, get_arch("knl"), procs=32, eta=2 << 20,
                params=params, verify=False,
            )
            return run_collective(spec).latency_us

        assert lat("ring_rs") < lat("gather_throttled", k=8)
        del arch


class TestAllreduce:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("alg", algorithms_for("allreduce"))
    def test_all_algorithms_verify(self, p, alg):
        params = {"k": 3} if alg == "reduce_bcast" else {}
        run("allreduce", alg, p=p, **params)

    def test_non_power_of_two_recursive_doubling(self):
        for p in (3, 6, 12, 13):
            run("allreduce", "recursive_doubling", p=p, eta=5000)

    def test_ring_wins_large(self):
        def lat(alg):
            spec = CollectiveSpec(
                "allreduce", alg, get_arch("knl"), procs=32, eta=2 << 20,
                params={}, verify=False,
            )
            return run_collective(spec).latency_us

        assert lat("ring") < lat("recursive_doubling")

    def test_recursive_doubling_wins_small(self):
        def lat(alg):
            spec = CollectiveSpec(
                "allreduce", alg, get_arch("knl"), procs=32, eta=512,
                params={}, verify=False,
            )
            return run_collective(spec).latency_us

        assert lat("recursive_doubling") < lat("ring")


class TestReduceTuning:
    def test_tuner_covers_reduction_family(self):
        tuner = Tuner(get_arch("knl"))
        assert tuner.choose("reduce", 1 << 20, 64).algorithm in (
            "ring_rs",
            "binomial",
            "gather_throttled",
        )
        small = tuner.choose("allreduce", 1024, 64).algorithm
        large = tuner.choose("allreduce", 4 << 20, 64).algorithm
        assert small == "recursive_doubling"
        assert large == "ring"

    def test_tuned_runs_verify(self):
        tuner = Tuner(make_generic(sockets=1, cores_per_socket=8))
        assert tuner.run("reduce", 20_000, 8, verify=True).latency_us > 0
        assert tuner.run("allreduce", 20_000, 8, verify=True).latency_us > 0


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=13),
    eta=st.integers(min_value=1, max_value=20_000),
    root=st.integers(min_value=0, max_value=12),
    which=st.integers(min_value=0, max_value=2),
)
def test_property_reduce_any_shape(p, eta, root, which):
    alg = ["binomial", "ring_rs", "gather_throttled"][which]
    params = {"k": min(3, p - 1)} if alg == "gather_throttled" else {}
    run("reduce", alg, p=p, eta=eta, root=root % p, **params)


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=12),
    eta=st.integers(min_value=1, max_value=10_000),
    which=st.integers(min_value=0, max_value=2),
)
def test_property_allreduce_any_shape(p, eta, which):
    alg = ["ring", "recursive_doubling", "reduce_bcast"][which]
    params = {"k": 3} if alg == "reduce_bcast" else {}
    run("allreduce", alg, p=p, eta=eta, **params)
