"""Ordering invariants of the event engine's fast paths.

The zero-delay ready queue, the fused ``DelayChain``/``HoldRelease``
commands, and the inlined run loop are pure optimisations: they must not
change *which* process runs *when*.  These tests pin the observable
contract — ``run(until=)`` boundary semantics, FIFO fairness at equal
timestamps, fused-command equivalence — and a randomized stress test
asserts that the fast path and the heap-only path
(``Simulator(use_ready_queue=False)``) produce identical resume traces.
"""

import random

import pytest

from repro.sim import (
    Acquire,
    Delay,
    DelayChain,
    HoldRelease,
    Join,
    Mutex,
    Release,
    SimError,
    Simulator,
)


# -- run(until=) boundary semantics ------------------------------------------


def test_until_runs_events_at_exactly_until():
    sim = Simulator()
    fired = []

    def proc(dt):
        yield Delay(dt)
        fired.append(dt)

    sim.spawn(proc(5.0))
    sim.spawn(proc(10.0))
    sim.spawn(proc(15.0))
    sim.run(until=10.0)
    # the event AT the boundary runs; the one past it does not
    assert fired == [5.0, 10.0]
    assert sim.now == pytest.approx(10.0)


def test_until_drains_zero_delay_cascade_at_boundary():
    sim = Simulator()
    steps = []

    def proc():
        yield Delay(10.0)
        for i in range(5):
            steps.append(i)
            yield Delay(0.0)

    sim.spawn(proc())
    sim.run(until=10.0)
    # every zero-delay continuation at t == until runs before the stop
    assert steps == [0, 1, 2, 3, 4]
    assert sim.now == pytest.approx(10.0)


def test_until_leaves_future_events_pending_and_resumable():
    sim = Simulator()

    def proc():
        yield Delay(100.0)
        return "late"

    p = sim.spawn(proc())
    assert sim.run(until=10.0) == pytest.approx(10.0)
    assert not p.done
    # a second run picks the pending event back up
    sim.run()
    assert p.result == "late"
    assert sim.now == pytest.approx(100.0)


def test_until_parks_clock_without_firing_events():
    sim = Simulator()

    def proc():
        yield Delay(50.0)

    sim.spawn(proc())
    sim.run(until=10.0)
    sim.run(until=20.0)
    assert sim.now == pytest.approx(20.0)
    # Seed-compatible quirk: run(until=) always parks the clock at the
    # horizon while work is pending — even one earlier than now — without
    # firing anything.  The pending event is untouched.
    sim.run(until=5.0)
    assert sim.now == pytest.approx(5.0)
    sim.run()
    assert sim.now == pytest.approx(50.0)


def test_until_counts_no_events_when_none_fire():
    sim = Simulator()

    def proc():
        yield Delay(100.0)

    sim.spawn(proc())
    sim.run(until=1.0)
    before = sim.events_processed
    sim.run(until=2.0)
    assert sim.events_processed == before


# -- FIFO fairness under the ready queue --------------------------------------


def test_same_timestamp_events_fifo_across_processes():
    sim = Simulator()
    order = []

    def proc(tag):
        for step in range(3):
            order.append((tag, step))
            yield Delay(0.0)

    for tag in range(4):
        sim.spawn(proc(tag))
    sim.run()
    # zero-delay yields round-robin: nobody monopolises the ready queue
    assert order[:8] == [
        (0, 0), (1, 0), (2, 0), (3, 0),
        (0, 1), (1, 1), (2, 1), (3, 1),
    ]


def test_spawn_during_cascade_queues_behind_existing_ready_work():
    sim = Simulator()
    order = []

    def late():
        order.append("late")
        yield Delay(0.0)

    def early(tag):
        order.append(tag)
        if tag == "a":
            sim.spawn(late())
        yield Delay(0.0)
        order.append(tag + "2")

    sim.spawn(early("a"))
    sim.spawn(early("b"))
    sim.run()
    # the mid-cascade spawn lands after b's first step but before round two
    assert order == ["a", "b", "late", "a2", "b2"]


def test_delay_zero_and_timer_at_same_time_stay_seq_ordered():
    sim = Simulator()
    order = []

    def timer():
        yield Delay(1.0)
        order.append("timer")

    def chaser():
        yield Delay(1.0)
        order.append("chaser")
        yield Delay(0.0)
        order.append("chaser2")

    sim.spawn(timer())
    sim.spawn(chaser())
    sim.run()
    # chaser's zero-delay continuation is seq-younger than nothing else at
    # t=1.0, so it runs last — the ready queue must not let it jump ahead
    assert order == ["timer", "chaser", "chaser2"]


# -- fused commands ≡ unfused sequences ---------------------------------------


def _trace_run(build):
    """Run ``build(sim, trace)`` processes to completion, return the trace."""
    sim = Simulator()
    trace = []
    build(sim, trace)
    sim.run()
    return trace, sim.now, sim.events_processed


def test_delaychain_equivalent_to_two_delays():
    def fused(sim, trace):
        def proc():
            yield DelayChain(1.5, 2.5)
            trace.append(sim.now)
        sim.spawn(proc())

    def unfused(sim, trace):
        def proc():
            yield Delay(1.5)
            yield Delay(2.5)
            trace.append(sim.now)
        sim.spawn(proc())

    t1, now1, ev1 = _trace_run(fused)
    t2, now2, ev2 = _trace_run(unfused)
    assert t1 == t2 == [4.0]
    assert now1 == now2
    assert ev1 == ev2  # same event count: fusion saves sends, not events


def test_holdrelease_equivalent_to_delay_then_release():
    def fused(sim, trace):
        lock = Mutex(sim, "l")

        def proc(tag):
            yield Acquire(lock)
            yield HoldRelease(lock, 2.0, 1.0)
            trace.append((tag, sim.now))
        for tag in range(3):
            sim.spawn(proc(tag))

    def unfused(sim, trace):
        lock = Mutex(sim, "l")

        def proc(tag):
            yield Acquire(lock)
            yield Delay(2.0)
            yield Release(lock)
            yield Delay(1.0)
            trace.append((tag, sim.now))
        for tag in range(3):
            sim.spawn(proc(tag))

    t1, now1, ev1 = _trace_run(fused)
    t2, now2, ev2 = _trace_run(unfused)
    assert t1 == t2
    assert now1 == now2
    assert ev1 == ev2


def test_holdrelease_zero_extra_matches_plain_release():
    def fused(sim, trace):
        lock = Mutex(sim, "l")

        def proc(tag):
            yield Acquire(lock)
            yield HoldRelease(lock, 1.0)
            trace.append((tag, sim.now))
        sim.spawn(proc("a"))
        sim.spawn(proc("b"))

    def unfused(sim, trace):
        lock = Mutex(sim, "l")

        def proc(tag):
            yield Acquire(lock)
            yield Delay(1.0)
            yield Release(lock)
            trace.append((tag, sim.now))
        sim.spawn(proc("a"))
        sim.spawn(proc("b"))

    t1, now1, ev1 = _trace_run(fused)
    t2, now2, ev2 = _trace_run(unfused)
    assert t1 == t2
    assert now1 == now2
    assert ev1 == ev2


def test_fused_commands_validate_negative_durations():
    sim = Simulator()
    lock = Mutex(sim, "l")
    with pytest.raises(SimError):
        DelayChain(-1.0, 0.0)
    with pytest.raises(SimError):
        DelayChain(0.0, -1.0)
    with pytest.raises(SimError):
        HoldRelease(lock, -1.0)
    with pytest.raises(SimError):
        HoldRelease(lock, 0.0, -1.0)


def test_holdrelease_by_non_holder_fails_the_process():
    sim = Simulator()
    lock = Mutex(sim, "l")

    def proc():
        yield HoldRelease(lock, 1.0)

    p = sim.spawn(proc())
    sim.run()
    assert p.state == "failed"
    assert isinstance(p.error, SimError)


# -- differential stress: ready queue vs pure heap ----------------------------


def _mixed_workload(sim, trace, seed):
    """A randomized tangle of delays, zero-delays, locks, fused commands,
    spawns, and joins.  Appends (pid-tag, step, sim.now) on every resume."""
    rng = random.Random(seed)
    locks = [Mutex(sim, f"l{i}") for i in range(3)]

    def worker(tag, depth):
        for step in range(rng.randint(3, 10)):
            trace.append((tag, step, sim.now))
            roll = rng.random()
            if roll < 0.30:
                yield Delay(0.0)
            elif roll < 0.55:
                yield Delay(rng.choice([0.5, 1.0, 1.0, 2.5]))
            elif roll < 0.70:
                lock = rng.choice(locks)
                yield Acquire(lock)
                if rng.random() < 0.5:
                    yield HoldRelease(lock, rng.choice([0.0, 1.0]),
                                      rng.choice([0.0, 0.5]))
                else:
                    yield Delay(rng.choice([0.0, 1.0]))
                    yield Release(lock)
            elif roll < 0.85:
                yield DelayChain(rng.choice([0.0, 1.0]), rng.choice([0.0, 2.0]))
            elif depth < 2:
                kid = sim.spawn(worker(f"{tag}.{step}", depth + 1))
                yield Join(kid)
            else:
                yield Delay(0.0)
        return tag

    for i in range(6):
        p = sim.spawn(worker(str(i), 0))
        p.socket = i % 2


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1337])
def test_ready_queue_trace_identical_to_heap_only(seed):
    """The fast path is a scheduling optimisation, not a semantic change:
    resume order, timestamps, and event counts must match the pure-heap
    engine exactly on a randomized mixed workload."""
    fast = Simulator(use_ready_queue=True)
    slow = Simulator(use_ready_queue=False)
    trace_fast, trace_slow = [], []
    _mixed_workload(fast, trace_fast, seed)
    _mixed_workload(slow, trace_slow, seed)
    fast.run()
    slow.run()
    assert trace_fast == trace_slow
    assert fast.now == slow.now
    assert fast.events_processed == slow.events_processed
