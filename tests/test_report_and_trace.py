"""Tests for the report formatting helpers and the ftrace-style tracer."""

import pytest

from repro.bench.report import Series, Table, format_bytes, format_us
from repro.sim.trace import PHASES, Span, Tracer


class TestFormatting:
    @pytest.mark.parametrize(
        "n,expect",
        [(1, "1"), (512, "512"), (1024, "1K"), (65536, "64K"),
         (1 << 20, "1M"), (4 << 20, "4M"), (1 << 30, "1G"), (1536, "1.5K")],
    )
    def test_format_bytes(self, n, expect):
        assert format_bytes(n) == expect

    def test_format_us_scales(self):
        assert format_us(3.14159) == "3.14"
        assert format_us(42.7) == "42.7"
        assert format_us(1234.5) == "1234"
        assert format_us(250_000) == "250ms"


class TestTable:
    def test_render_alignment(self):
        t = Table("demo", ["a", "bee"])
        t.add(1, 22222)
        t.add(33, 4)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[2] and "bee" in lines[2]
        assert len(lines) == 6

    def test_wrong_arity_rejected(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_series_points(self):
        s = Series("fig", "msg", ["x", "y"])
        s.add_point(65536, {"x": 1.5})
        out = s.render()
        assert "64K" in out
        assert "-" in out  # missing series rendered as dash

    def test_series_raw_labels(self):
        s = Series("fig", "readers", ["v"])
        s.add_raw_point("16", {"v": 2.0})
        assert "16" in s.render()


class TestTracer:
    def test_disabled_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.record("p", "copy", 0.0, 1.0)
        assert tr.spans == []

    def test_totals_and_means(self):
        tr = Tracer(enabled=True)
        tr.record("p0", "copy", 0.0, 2.0)
        tr.record("p0", "copy", 5.0, 6.0)
        tr.record("p1", "lock", 1.0, 4.0)
        assert tr.total_by_phase() == {"copy": pytest.approx(3.0), "lock": pytest.approx(3.0)}
        assert tr.mean_by_phase()["copy"] == pytest.approx(1.5)

    def test_filter_by_process(self):
        tr = Tracer(enabled=True)
        tr.record("a", "pin", 0.0, 1.0)
        tr.record("b", "pin", 0.0, 5.0)
        assert tr.total_by_phase(procs=["a"]) == {"pin": pytest.approx(1.0)}
        assert tr.breakdown("b") == {"pin": pytest.approx(5.0)}

    def test_clear(self):
        tr = Tracer(enabled=True)
        tr.record("a", "pin", 0.0, 1.0)
        tr.clear()
        assert tr.spans == []

    def test_span_duration(self):
        s = Span("p", "syscall", 1.0, 2.5)
        assert s.duration == pytest.approx(1.5)

    def test_canonical_phases(self):
        assert PHASES == ("syscall", "check", "lock", "pin", "copy")


class TestChromeExport:
    def test_span_events_and_thread_names(self):
        tr = Tracer(enabled=True)
        tr.record("rank0", "copy", 1.0, 3.0, meta=2048)
        tr.record("rank1", "lock", 0.5, 2.5)
        events = tr.to_chrome_trace()
        spans = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(spans) == 2 and len(metas) == 2
        copy = next(e for e in spans if e["name"] == "copy")
        assert copy["ts"] == 1.0 and copy["dur"] == 2.0
        assert copy["args"] == {"meta": "2048"}
        names = {e["args"]["name"] for e in metas}
        assert names == {"rank0", "rank1"}

    def test_save_roundtrip(self, tmp_path):
        import json

        tr = Tracer(enabled=True)
        tr.record("p", "pin", 0.0, 1.0)
        path = tmp_path / "trace.json"
        assert tr.save_chrome_trace(str(path)) == 1
        data = json.loads(path.read_text())
        assert any(e["name"] == "pin" for e in data)

    def test_full_collective_trace_exports(self, tmp_path):
        from repro.core.runner import CollectiveSpec, run_collective
        from repro.machine import make_generic

        spec = CollectiveSpec(
            "scatter", "throttled_read", make_generic(sockets=1, cores_per_socket=6),
            procs=6, eta=32 * 1024, params={"k": 2}, trace=True,
        )
        run_collective(spec)
        # the runner owns the node; re-run with an inspectable node instead
        from repro.mpi import Comm, Node

        node = Node(make_generic(sockets=1, cores_per_socket=4), trace=True)
        comm = Comm(node, 2)
        a = comm.allocate(0, 8192)
        b = comm.allocate(1, 8192)

        def rank(ctx):
            if ctx.rank == 1:
                yield from ctx.cma_read(0, b.iov(), a.iov())

        comm.run_ranks(rank)
        n = node.tracer.save_chrome_trace(str(tmp_path / "t.json"))
        assert n >= 3  # syscall + check + pin + copy spans
