"""Smoke tests for the wall-clock perf suite (``python -m repro.bench perf``).

These never assert on absolute speed — CI hosts vary wildly — only on the
payload shape the suite emits and on the regression-check logic CI uses.
"""

import json

import pytest

from repro.bench import perfsuite


@pytest.fixture(scope="module")
def result():
    return perfsuite.run_suite(smoke=True, repeats=1)


def test_payload_shape(result):
    assert result["schema"] == perfsuite.SCHEMA
    assert result["smoke"] is True
    engine = result["engine"]
    assert set(engine) == {
        "zero_delay",
        "timer_heap",
        "mutex_uncontended",
        "mutex_contended",
        "spawn_join",
        "overall_events_per_sec",
    }
    for name, r in engine.items():
        if name == "overall_events_per_sec":
            assert r > 0
            continue
        assert r["events"] > 0
        assert r["wall_s"] > 0
        assert r["events_per_sec"] == pytest.approx(
            r["events"] / r["wall_s"], rel=1e-3
        )


def test_fig_slices_report_simulated_and_wall_time(result):
    assert result["fig03"], "smoke fig03 slice must not be empty"
    for r in result["fig03"].values():
        assert r["latency_us"] > 0
        assert r["wall_s"] >= 0
    assert result["fig07"], "smoke fig07 slice must not be empty"
    for r in result["fig07"].values():
        assert r["latency_us"] > 0
        assert r["sim_events"] > 0


def test_payload_is_json_serialisable(result):
    assert json.loads(json.dumps(result)) == result


def test_sweep_section_reports_fresh_and_warm_rates(result):
    assert result["sweep"], "smoke sweep section must not be empty"
    for name, r in result["sweep"].items():
        assert r["points"] > 0
        for mode in ("fresh", "warm"):
            assert r[mode]["wall_s"] > 0
            assert r[mode]["points_per_sec"] == pytest.approx(
                r["points"] / r[mode]["wall_s"], rel=1e-2
            )
        assert r["warm_speedup"] == pytest.approx(
            r["fresh"]["wall_s"] / r["warm"]["wall_s"], rel=1e-2
        )


def _payload(sweep=None, **ev_per_sec):
    payload = {
        "schema": perfsuite.SCHEMA,
        "engine": {
            name: {"events": 1000, "wall_s": 0.1, "events_per_sec": v}
            for name, v in ev_per_sec.items()
        },
    }
    if sweep is not None:
        payload["sweep"] = {
            name: {
                "points": 9,
                "fresh": {"wall_s": 1.0, "points_per_sec": pts / 1.5},
                "warm": {"wall_s": 1.0, "points_per_sec": pts},
                "warm_speedup": 1.5,
            }
            for name, pts in sweep.items()
        }
    return payload


def test_check_regression_passes_within_factor():
    base = _payload(zero_delay=1000.0, timer_heap=1000.0)
    cur = _payload(zero_delay=600.0, timer_heap=2000.0)
    assert perfsuite.check_regression(cur, base, factor=2.0) == []


def test_check_regression_flags_gross_slowdown():
    base = _payload(zero_delay=1000.0, timer_heap=1000.0)
    cur = _payload(zero_delay=400.0, timer_heap=1000.0)
    failures = perfsuite.check_regression(cur, base, factor=2.0)
    assert len(failures) == 1
    assert "zero_delay" in failures[0]


def test_check_regression_ignores_benches_missing_from_baseline():
    base = _payload(zero_delay=1000.0)
    cur = _payload(zero_delay=1000.0, timer_heap=1.0)
    assert perfsuite.check_regression(cur, base) == []


def test_check_sections_flags_sweep_regression_separately():
    base = _payload(zero_delay=1000.0, sweep={"fig07_scatter_knl": 600.0})
    cur = _payload(zero_delay=1000.0, sweep={"fig07_scatter_knl": 100.0})
    sections = perfsuite.check_sections(cur, base, factor=2.0)
    assert sections["engine"] == []
    assert len(sections["sweep"]) == 1
    assert "fig07_scatter_knl" in sections["sweep"][0]
    assert "warm points/s" in sections["sweep"][0]


def test_convoy_section_shape(result):
    convoy = result["convoy"]
    assert set(convoy) == {f"c{c}" for c in perfsuite.CONVOY_READERS}
    for r in convoy.values():
        assert r["events"] > 0
        assert r["wall_s"] > 0
        # wall_s is rounded to 1us; smoke convoy runs are sub-millisecond,
        # so recomputing the rate from it is only ~1e-3-accurate
        assert r["events_per_sec"] == pytest.approx(
            r["events"] / r["wall_s"], rel=5e-3
        )


def test_xpmem_section_shape(result):
    xp = result["xpmem"]
    assert set(xp) == {f"w{c}" for c in perfsuite.XPMEM_READERS} | {"crossover"}
    for name, r in xp.items():
        if name == "crossover":
            continue
        assert r["events"] > 0
        assert r["wall_s"] > 0
        assert r["events_per_sec"] == pytest.approx(
            r["events"] / r["wall_s"], rel=5e-3
        )
    for arch in ("knl", "broadwell", "power8"):
        cx = xp["crossover"][arch]
        # a mapped window must cost something up front and then beat the
        # per-round pin, so a finite payoff point always exists
        assert cx["map_cost_us"] > 0
        assert cx["per_copy_saving_us"] > 0
        assert cx["crossover_rounds"] >= 1


def test_serve_section_shape(result):
    serve = result["serve"]
    assert set(serve) == {"compile", "scalar", "batch"}
    c = serve["compile"]
    assert c["rows"] > 0
    assert c["breakpoints"] >= c["rows"]  # every row has at least break 1
    assert c["wall_s"] > 0
    # compile is a build-time cost: it must never carry a rate the
    # events/sec gate would compare
    assert "events_per_sec" not in c
    for key in ("scalar", "batch"):
        r = serve[key]
        assert r["queries"] > 0
        assert r["events_per_sec"] == r["queries_per_sec"]
        assert r["queries_per_sec"] == pytest.approx(
            r["queries"] / r["wall_s"], rel=5e-3
        )
    assert serve["batch"]["backend"] in ("numpy", "scalar")


def test_serve_section_is_gated():
    assert "serve" in perfsuite.GATED_SECTIONS
    base = {"schema": perfsuite.SCHEMA, "engine": {},
            "serve": {"scalar": {"events_per_sec": 900_000.0},
                      "batch": {"events_per_sec": 9_000_000.0}}}
    cur = {"schema": perfsuite.SCHEMA, "engine": {},
           "serve": {"scalar": {"events_per_sec": 200_000.0},
                     "batch": {"events_per_sec": 8_000_000.0},
                     "compile": {"wall_s": 1.0, "rows": 7}}}
    sections = perfsuite.check_sections(cur, base)
    assert len(sections["serve"]) == 1
    assert "scalar" in sections["serve"][0]


def test_sched_section_shape(result):
    sched = result["sched"]
    assert set(sched) == {"serial_warm", "sched", "sched_cached"}
    for key in ("serial_warm", "sched", "sched_cached"):
        r = sched[key]
        assert r["points"] > 0
        assert r["events"] > 0
        assert r["wall_s"] > 0
        assert r["events_per_sec"] == pytest.approx(
            r["events"] / r["wall_s"], rel=1e-2
        )
        assert r["points_per_sec"] == pytest.approx(
            r["points"] / r["wall_s"], rel=1e-2
        )
    # all three legs run the same points on the same event streams
    assert (
        sched["serial_warm"]["events"]
        == sched["sched"]["events"]
        == sched["sched_cached"]["events"]
    )
    assert sched["sched"]["chunks"] > 0
    assert sched["sched"]["steals"] >= 0
    # the warm leg must serve every point from the sharded cache
    assert sched["sched_cached"]["cache_hits"] == sched["sched_cached"]["points"]
    for key in ("sched", "sched_cached"):
        assert sched[key]["speedup_vs_serial_warm"] > 0


def test_sched_section_is_gated():
    assert "sched" in perfsuite.GATED_SECTIONS
    base = {"schema": perfsuite.SCHEMA, "engine": {},
            "sched": {"serial_warm": {"events_per_sec": 90_000.0},
                      "sched_cached": {"events_per_sec": 900_000.0}}}
    cur = {"schema": perfsuite.SCHEMA, "engine": {},
           "sched": {"serial_warm": {"events_per_sec": 80_000.0},
                     "sched_cached": {"events_per_sec": 200_000.0}}}
    sections = perfsuite.check_sections(cur, base)
    assert len(sections["sched"]) == 1
    assert "sched_cached" in sections["sched"][0]


def test_sched_profiler_cli_emits_worker_timeline(tmp_path, capsys):
    from repro.bench import schedprof

    out = tmp_path / "prof.json"
    assert schedprof.main(["--profile", "--out", str(out)]) == 0
    capsys.readouterr()  # drop the "wrote ..." line
    payload = json.loads(out.read_text())
    assert payload["slice"] == "mixed"
    assert payload["points"] == 15
    assert payload["chunks"] == len(payload["chunk_sizes"])
    assert sum(payload["chunk_sizes"]) == payload["points"]
    timeline = payload["workers_timeline"]
    assert timeline
    assert sum(w["points_run"] for w in timeline.values()) == payload["points"]
    assert (
        sum(w["steals"] for w in timeline.values()) == payload["steals"]
    )
    for w in timeline.values():
        assert len(w["chunks"]) == w["chunks_run"]
        for rec in w["chunks"]:
            assert rec["end_s"] >= rec["start_s"]
        assert w["idle_s"] >= 0
        assert w["busy_s"] > 0
    # without --profile the raw per-chunk records are dropped
    assert schedprof.main(["--nosteal", "--slice", "fig07"]) == 0
    slim = json.loads(capsys.readouterr().out)
    assert slim["steals"] == 0
    assert slim["points"] == 9
    assert all("chunks" not in w for w in slim["workers_timeline"].values())


def test_xpmem_section_is_gated():
    assert "xpmem" in perfsuite.GATED_SECTIONS
    base = {"schema": perfsuite.SCHEMA, "engine": {},
            "xpmem": {"w8": {"events_per_sec": 9000.0}}}
    cur = {"schema": perfsuite.SCHEMA, "engine": {},
           "xpmem": {"w8": {"events_per_sec": 2000.0},
                     "crossover": {"knl": {"map_cost_us": 1.0}}}}
    sections = perfsuite.check_sections(cur, base)
    assert len(sections["xpmem"]) == 1
    assert "w8" in sections["xpmem"][0]


def _gated_payload(convoy=None, fig07=None, **ev_per_sec):
    payload = _payload(**ev_per_sec)
    if convoy is not None:
        payload["convoy"] = {
            name: {"events": 1000, "wall_s": 0.1, "events_per_sec": v}
            for name, v in convoy.items()
        }
    if fig07 is not None:
        payload["fig07"] = {
            name: {
                "latency_us": 1.0,
                "sim_events": 1000,
                "wall_s": 0.1,
                "events_per_sec": v,
            }
            for name, v in fig07.items()
        }
    return payload


def test_gated_sections_use_gate_factor():
    base = _gated_payload(convoy={"c8": 9000.0}, fig07={"parallel_read/262144": 9000.0})
    # 2.5x slower: would fail a 2x gate, passes the 3x gate
    cur = _gated_payload(convoy={"c8": 3600.0}, fig07={"parallel_read/262144": 3600.0})
    sections = perfsuite.check_sections(cur, base)
    assert sections["convoy"] == []
    assert sections["fig07"] == []
    # 4x slower: fails
    cur = _gated_payload(convoy={"c8": 2000.0}, fig07={"parallel_read/262144": 9000.0})
    sections = perfsuite.check_sections(cur, base)
    assert len(sections["convoy"]) == 1
    assert "c8" in sections["convoy"][0]
    assert sections["fig07"] == []


def test_gated_sections_skip_missing_points():
    base = _gated_payload(convoy={"c8": 9000.0})
    cur = _gated_payload(convoy={"c64": 1.0}, fig07={"x/1": 1.0})
    sections = perfsuite.check_sections(cur, base)
    assert sections["convoy"] == []
    assert sections["fig07"] == []


def test_check_sections_passes_sweep_within_factor_and_skips_missing():
    base = _payload(zero_delay=1000.0, sweep={"fig07_scatter_knl": 600.0})
    cur = _payload(
        zero_delay=1000.0,
        sweep={"fig07_scatter_knl": 350.0, "new_slice_not_in_baseline": 1.0},
    )
    sections = perfsuite.check_sections(cur, base, factor=2.0)
    assert sections == {"engine": [], "sweep": []}


def test_summary_lines_one_per_section():
    cur = _payload(zero_delay=1000.0, sweep={"fig07_scatter_knl": 600.0})
    cur["engine"]["overall_events_per_sec"] = 123456.0
    sections = {"engine": [], "sweep": ["fig07_scatter_knl: slow"]}
    lines = perfsuite._summary_lines(cur, sections)
    assert len(lines) == 2
    assert lines[0].startswith("perf engine: PASS")
    assert "123,456 events/sec" in lines[0]
    assert lines[1].startswith("perf sweep: FAIL")
    assert "fig07_scatter_knl 600.0 pts/s" in lines[1]
    assert "1 regression(s)" in lines[1]


def test_step_summary_written_when_env_set(tmp_path, monkeypatch):
    path = tmp_path / "summary.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(path))
    perfsuite._write_step_summary(["perf engine: PASS — fast"])
    perfsuite._write_step_summary(["perf sweep: PASS — faster"])
    assert path.read_text() == (
        "- perf engine: PASS — fast\n- perf sweep: PASS — faster\n"
    )
    monkeypatch.delenv("GITHUB_STEP_SUMMARY")
    perfsuite._write_step_summary(["never written"])
    assert "never written" not in path.read_text()


def test_cli_writes_output_and_self_check_passes(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert perfsuite.main(["--smoke", "--repeats", "1", "--out", str(out)]) == 0
    written = json.loads(out.read_text())
    assert written["schema"] == perfsuite.SCHEMA
    # a run checked against itself can never regress
    assert (
        perfsuite.main(
            ["--smoke", "--repeats", "1", "--out", str(out), "--check", str(out)]
        )
        == 0
    )
    assert "no >3x regression in gated sections" in capsys.readouterr().out
