"""Tests for the segmented pipeline (chain) broadcast extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import CollectiveSpec, run_collective
from repro.machine import get_arch, make_generic


def run(p=6, eta=4000, segsize=1024, root=0, verify=True):
    spec = CollectiveSpec(
        "bcast",
        "chain",
        make_generic(sockets=1, cores_per_socket=max(p, 2)),
        procs=p,
        eta=eta,
        root=root,
        params={"segsize": segsize},
        verify=verify,
    )
    return run_collective(spec)


class TestChain:
    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13])
    def test_verifies(self, p):
        run(p=p)

    @pytest.mark.parametrize("segsize", [1, 100, 4000, 100_000])
    def test_segment_sizes(self, segsize):
        run(p=5, eta=4000, segsize=segsize)

    @pytest.mark.parametrize("root", [1, 4])
    def test_nonzero_root(self, root):
        run(p=6, root=root)

    def test_invalid_segsize(self):
        with pytest.raises(ValueError):
            run(segsize=0)

    def test_pipelining_beats_unsegmented_chain(self):
        """Small segments fill the pipeline; one giant segment serializes
        the whole chain."""
        p, eta = 12, 1 << 20
        piped = run(p=p, eta=eta, segsize=128 * 1024, verify=False).latency_us
        serial = run(p=p, eta=eta, segsize=1 << 20, verify=False).latency_us
        assert piped < 0.6 * serial

    def test_contention_free(self):
        """Exactly one reader per source: the chain never queues on a lock."""
        spec = CollectiveSpec(
            "bcast", "chain",
            make_generic(sockets=1, cores_per_socket=8),
            procs=8, eta=256 * 1024, params={"segsize": 32 * 1024},
            verify=False, trace=True,
        )
        res = run_collective(spec)
        assert res.trace_by_phase.get("lock", 0.0) == pytest.approx(0.0)

    def test_competitive_with_scatter_allgather_large(self):
        p, eta = 16, 4 << 20
        chain = CollectiveSpec(
            "bcast", "chain", get_arch("knl"), procs=p, eta=eta,
            params={"segsize": 256 * 1024}, verify=False,
        )
        sa = CollectiveSpec(
            "bcast", "scatter_allgather", get_arch("knl"), procs=p, eta=eta,
            verify=False,
        )
        t_chain = run_collective(chain).latency_us
        t_sa = run_collective(sa).latency_us
        assert t_chain < 1.3 * t_sa


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=12),
    eta=st.integers(min_value=1, max_value=50_000),
    segsize=st.integers(min_value=1, max_value=60_000),
    root=st.integers(min_value=0, max_value=11),
)
def test_property_chain_any_shape(p, eta, segsize, root):
    run(p=p, eta=eta, segsize=segsize, root=root % p)
