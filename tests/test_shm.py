"""Tests for the shared-memory transport and control-plane collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import make_generic
from repro.shm import ShmTransport, sm_allgather, sm_barrier, sm_bcast, sm_gather
from repro.sim import Simulator


def make_shm(nranks, verify=True):
    sim = Simulator()
    params = make_generic(sockets=1, cores_per_socket=max(nranks, 2)).params
    return sim, ShmTransport(sim, params, nranks, verify=verify)


def run_ranks(sim, gens):
    procs = [sim.spawn(g, name=f"r{i}") for i, g in enumerate(gens)]
    sim.run_all(procs)
    return [p.result for p in procs]


class TestCtrl:
    def test_ctrl_roundtrip(self):
        sim, shm = make_shm(2)

        def sender():
            yield shm.ctrl_send(0, 1, "addr", payload=0xBEEF)

        def receiver():
            msg = yield shm.ctrl_recv(1, src=0, tag="addr")
            return msg.payload

        results = run_ranks(sim, [sender(), receiver()])
        assert results[1] == 0xBEEF
        assert shm.ctrl_messages == 1

    def test_ctrl_latency_accounted(self):
        sim, shm = make_shm(2)

        def sender():
            yield shm.ctrl_send(0, 1, "t")

        def receiver():
            yield shm.ctrl_recv(1, src=0, tag="t")
            return sim.now

        results = run_ranks(sim, [sender(), receiver()])
        assert results[1] == pytest.approx(shm.params.t_ctrl)


class TestDataPath:
    def test_data_bytes_arrive(self):
        sim, shm = make_shm(2)
        n = 50_000
        src = (np.arange(n) % 251).astype(np.uint8)
        dst = np.zeros(n, dtype=np.uint8)

        def sender():
            return (yield from shm.send_data(0, 1, "d", src, n))

        def receiver():
            return (yield from shm.recv_data(1, 0, "d", dst, n))

        sent, got = run_ranks(sim, [sender(), receiver()])
        assert sent == got == n
        assert np.array_equal(src, dst)

    def test_small_message_single_chunk(self):
        sim, shm = make_shm(2)
        src = np.full(100, 3, dtype=np.uint8)
        dst = np.zeros(100, dtype=np.uint8)

        def sender():
            yield from shm.send_data(0, 1, "d", src, 100)

        def receiver():
            yield from shm.recv_data(1, 0, "d", dst, 100)
            return sim.now

        _, t = run_ranks(sim, [sender(), receiver()])
        p = shm.params
        # two copies of 100 bytes plus two chunk overheads
        assert t == pytest.approx(2 * (100 * p.shm_beta + p.shm_chunk_overhead))

    def test_two_copy_cost_is_paid_in_full(self):
        """Large shm transfers cost ~2x one copy (no copy-in/out overlap)."""
        sim, shm = make_shm(2)
        n = 1 << 20

        def sender():
            yield from shm.send_data(0, 1, "d", None, n)

        def receiver():
            yield from shm.recv_data(1, 0, "d", None, n)
            return sim.now

        _, t = run_ranks(sim, [sender(), receiver()])
        p = shm.params
        nchunks = n / p.shm_chunk
        two_full_copies = 2 * (n * p.shm_beta + nchunks * p.shm_chunk_overhead)
        assert t == pytest.approx(two_full_copies, rel=0.02)

    def test_timing_only_mode_moves_no_bytes(self):
        sim, shm = make_shm(2, verify=False)
        src = np.full(100, 9, dtype=np.uint8)
        dst = np.zeros(100, dtype=np.uint8)

        def sender():
            yield from shm.send_data(0, 1, "d", src, 100)

        def receiver():
            yield from shm.recv_data(1, 0, "d", dst, 100)

        run_ranks(sim, [sender(), receiver()])
        assert not dst.any()

    def test_concurrent_transfers_distinct_tags(self):
        sim, shm = make_shm(3)
        n = 20_000
        a = np.full(n, 1, dtype=np.uint8)
        b = np.full(n, 2, dtype=np.uint8)
        da = np.zeros(n, dtype=np.uint8)
        db = np.zeros(n, dtype=np.uint8)

        def s0():
            yield from shm.send_data(0, 2, "a", a, n)

        def s1():
            yield from shm.send_data(1, 2, "b", b, n)

        def r():
            yield from shm.recv_data(2, 0, "a", da, n)
            yield from shm.recv_data(2, 1, "b", db, n)

        run_ranks(sim, [s0(), s1(), r()])
        assert (da == 1).all() and (db == 2).all()


class TestSmCollectives:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8, 13, 16])
    @pytest.mark.parametrize("root", [0, 1])
    def test_bcast_delivers_to_all(self, size, root):
        if root >= size:
            pytest.skip("root out of range")
        sim, shm = make_shm(size)

        def rank(r):
            val = "addr-table" if r == root else None
            got = yield from sm_bcast(shm, r, size, op=1, payload=val, root=root)
            return got

        results = run_ranks(sim, [rank(r) for r in range(size)])
        assert all(v == "addr-table" for v in results)

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 12, 16])
    @pytest.mark.parametrize("root", [0, 2])
    def test_gather_collects_everything(self, size, root):
        if root >= size:
            pytest.skip("root out of range")
        sim, shm = make_shm(size)

        def rank(r):
            return (
                yield from sm_gather(shm, r, size, op=2, value=r * 10, root=root)
            )

        results = run_ranks(sim, [rank(r) for r in range(size)])
        assert results[root] == {r: r * 10 for r in range(size)}
        assert all(results[r] is None for r in range(size) if r != root)

    @pytest.mark.parametrize("size", [1, 2, 3, 6, 9, 16])
    def test_allgather(self, size):
        sim, shm = make_shm(size)

        def rank(r):
            return (yield from sm_allgather(shm, r, size, op=3, value=r))

        results = run_ranks(sim, [rank(r) for r in range(size)])
        expected = {r: r for r in range(size)}
        assert all(res == expected for res in results)

    @pytest.mark.parametrize("size", [2, 3, 5, 8, 16])
    def test_barrier_synchronizes(self, size):
        sim, shm = make_shm(size)
        from repro.sim import Delay

        after = []

        def rank(r):
            yield Delay(float(r))  # skewed arrival
            yield from sm_barrier(shm, r, size, op=4)
            after.append(sim.now)

        run_ranks(sim, [rank(r) for r in range(size)])
        # nobody exits the barrier before the last arrival
        assert min(after) >= size - 1

    def test_consecutive_ops_do_not_collide(self):
        size = 4
        sim, shm = make_shm(size)

        def rank(r):
            a = yield from sm_bcast(shm, r, size, op=10, payload="A" if r == 0 else None)
            b = yield from sm_bcast(shm, r, size, op=11, payload="B" if r == 0 else None)
            return (a, b)

        results = run_ranks(sim, [rank(r) for r in range(size)])
        assert all(res == ("A", "B") for res in results)

    def test_bcast_cost_is_logarithmic(self):
        def bcast_time(size):
            sim, shm = make_shm(size)

            def rank(r):
                yield from sm_bcast(shm, r, size, op=1, payload=0 if r == 0 else None)
                return sim.now

            return max(run_ranks(sim, [rank(r) for r in range(size)]))

        t8, t64 = bcast_time(8), bcast_time(64)
        # doubling rounds (3 -> 6), not 8x cost
        assert t64 < 3 * t8


@settings(max_examples=30, deadline=None)
@given(size=st.integers(min_value=1, max_value=24), root=st.integers(min_value=0, max_value=23))
def test_property_bcast_any_size_any_root(size, root):
    root %= size
    sim, shm = make_shm(size)

    def rank(r):
        return (
            yield from sm_bcast(
                shm, r, size, op=9, payload=("x", root) if r == root else None, root=root
            )
        )

    results = run_ranks(sim, [rank(r) for r in range(size)])
    assert all(v == ("x", root) for v in results)


@settings(max_examples=30, deadline=None)
@given(size=st.integers(min_value=1, max_value=24), root=st.integers(min_value=0, max_value=23))
def test_property_gather_any_size_any_root(size, root):
    root %= size
    sim, shm = make_shm(size)

    def rank(r):
        return (yield from sm_gather(shm, r, size, op=9, value=r ** 2, root=root))

    results = run_ranks(sim, [rank(r) for r in range(size)])
    assert results[root] == {r: r ** 2 for r in range(size)}
