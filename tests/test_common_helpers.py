"""Property tests for the algorithm-structure helpers in core.common."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.common import (
    chunk_partition,
    is_power_of_two,
    knomial_parent_children,
    nonroot_order,
    rd_held_blocks,
)


class TestNonrootOrder:
    def test_excludes_root(self):
        assert nonroot_order(5, 2) == [0, 1, 3, 4]

    def test_length(self):
        assert len(nonroot_order(8, 0)) == 7


class TestPowerOfTwo:
    @pytest.mark.parametrize("n,expect", [(1, True), (2, True), (3, False),
                                          (16, True), (24, False), (0, False)])
    def test_cases(self, n, expect):
        assert is_power_of_two(n) is expect


@settings(max_examples=80, deadline=None)
@given(
    nbytes=st.integers(min_value=0, max_value=10 ** 7),
    parts=st.integers(min_value=1, max_value=300),
)
def test_property_chunk_partition(nbytes, parts):
    chunks = chunk_partition(nbytes, parts)
    assert len(chunks) == parts
    # chunks tile [0, nbytes) exactly, in order
    pos = 0
    for off, ln in chunks:
        assert off == pos
        assert ln >= 0
        pos += ln
    assert pos == nbytes
    # balanced: sizes differ by at most one byte
    lens = [ln for _, ln in chunks]
    assert max(lens) - min(lens) <= 1


def test_chunk_partition_rejects_zero_parts():
    with pytest.raises(ValueError):
        chunk_partition(100, 0)


@settings(max_examples=80, deadline=None)
@given(
    size=st.integers(min_value=2, max_value=200),
    k=st.integers(min_value=2, max_value=8),
)
def test_property_knomial_tree_is_a_spanning_tree(size, k):
    """Every non-root has exactly one parent; following parents reaches the
    root; children lists are consistent with parenthood."""
    parents = {}
    children_of = {}
    for rel in range(size):
        parent, levels = knomial_parent_children(rel, size, k)
        parents[rel] = parent
        children_of[rel] = [c for group in levels for c in group]
        for group in levels:
            assert len(group) <= k - 1  # bounded reader concurrency
    assert parents[0] is None
    for rel in range(1, size):
        p = parents[rel]
        assert p is not None and 0 <= p < size
        assert rel in children_of[p], (rel, p)
        # walk to the root without cycles
        seen = set()
        cur = rel
        while cur != 0:
            assert cur not in seen
            seen.add(cur)
            cur = parents[cur]
    # each node appears as a child exactly once
    all_children = [c for lst in children_of.values() for c in lst]
    assert sorted(all_children) == list(range(1, size))


def test_knomial_radix_validation():
    with pytest.raises(ValueError):
        knomial_parent_children(0, 8, 1)


@settings(max_examples=80, deadline=None)
@given(p=st.integers(min_value=2, max_value=96))
def test_property_rd_held_blocks_cover_everything(p):
    """After the final step, every rank < m holds all p blocks exactly once."""
    m = 1 << (p.bit_length() - 1)
    if m > p:
        m >>= 1
    rem = p - m
    steps = m.bit_length() - 1
    for rank in range(m):
        held = rd_held_blocks(rank, steps, m, rem)
        assert held == sorted(set(held))  # no duplicates
        assert held == list(range(p))

    # intermediate steps: the held sets of step-i partners are disjoint
    for i in range(steps):
        a = rd_held_blocks(0, i, m, rem)
        b = rd_held_blocks(0 ^ (1 << i), i, m, rem)
        assert not (set(a) & set(b))


def test_rd_held_blocks_initial_state():
    # p = 6: m = 4, rem = 2 — ranks 0,1 also hold the folded blocks 4,5
    assert rd_held_blocks(0, 0, 4, 2) == [0, 4]
    assert rd_held_blocks(2, 0, 4, 2) == [2]
