"""Convoy fast-forward differential battery.

The fused :class:`~repro.sim.engine.PinConvoy` path — and its steady-state
epoch fast-forward — must be *bit-identical* to the unfused
Acquire/HoldRelease reference: same timestamps, same FIFO grant order, same
mutex statistics, same event counts.  Every test here runs one workload
under all three engine modes and asserts exact equality:

* ``unfused``  — ``Simulator(use_pin_convoy=False)``, the reference;
* ``record``   — ``Simulator(use_convoy_burst=False)``, fused commands
  executed record-at-a-time;
* ``burst``    — ``Simulator()``, the default: fused commands plus
  closed-epoch fast-forward.

Coverage: collective specs on all three preset architectures (trace on and
off), mid-convoy interlopers that join and leave (epoch invalidation and
revalidation), hold-time errors, and a hypothesis-randomized workload mix.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import CollectiveSpec, _execute, _validated_algorithm
from repro.machine import get_arch
from repro.machine.arch import ARCH_NAMES
from repro.mpi.communicator import Comm, Node
from repro.sim import (
    Acquire,
    DeadlockError,
    Delay,
    HoldRelease,
    Mutex,
    PinConvoy,
    SimError,
    Simulator,
)

MODES = {
    "unfused": {"use_pin_convoy": False},
    "record": {"use_convoy_burst": False},
    "burst": {},
}


def _lock_stats(node):
    """Exact per-mm-lock statistics, in pid order (``_convoy_gen`` is
    deliberately excluded: it is a cache, not an observable)."""
    out = []
    for pid in sorted(node.cma._mm_locks):
        mm = node.cma._mm_locks[pid]
        m = mm.mutex
        out.append(
            (
                pid,
                mm.pages_pinned,
                m.acquisitions,
                m.total_wait_us,
                m.max_contenders,
                m.generation,
                m.holder is None,
                len(m._waiters),
            )
        )
    return out


def _run_spec(spec: CollectiveSpec, sim_kw: dict):
    fn = _validated_algorithm(spec)
    node = Node(spec.arch, verify=spec.verify, trace=spec.trace,
                sim=Simulator(**sim_kw))
    comm = Comm(node, spec.procs)
    res = _execute(spec, fn, node, comm)
    return (
        res.latency_us,
        tuple(res.per_rank_us),
        res.sim_events,
        res.cma_reads,
        res.cma_writes,
        _lock_stats(node),
    )


def _assert_modes_agree(run_one):
    """``run_one(sim_kw)`` -> comparable snapshot; all modes must match."""
    ref = run_one(MODES["unfused"])
    for name in ("record", "burst"):
        got = run_one(MODES[name])
        assert got == ref, f"{name} diverged from unfused reference"


# -- collective battery ------------------------------------------------------

_BATTERY = [
    ("scatter", "parallel_read", {}),
    ("scatter", "throttled_read", {"k": 2}),
    ("bcast", "direct_read", {}),
    ("allgather", "ring_source_read", {}),
]


@pytest.mark.parametrize("archname", ARCH_NAMES)
@pytest.mark.parametrize("coll,alg,params", _BATTERY)
def test_collectives_bit_exact_across_modes(archname, coll, alg, params):
    spec_kw = dict(
        collective=coll,
        algorithm=alg,
        arch=get_arch(archname),
        procs=6,
        eta=180_000,
        params=params,
        verify=False,
    )
    _assert_modes_agree(
        lambda kw: _run_spec(CollectiveSpec(**spec_kw), kw)
    )


@pytest.mark.parametrize("archname", ARCH_NAMES)
def test_traced_run_identical_across_modes(archname):
    """Tracing disables fusion, so all modes literally share one code path —
    but the equality must also hold against each mode's untraced twin's
    timestamps (tracing must never change simulated time)."""
    spec_kw = dict(
        collective="scatter",
        algorithm="parallel_read",
        arch=get_arch(archname),
        procs=6,
        eta=120_000,
        verify=False,
    )
    untraced = _run_spec(CollectiveSpec(**spec_kw), MODES["burst"])

    def run_traced(kw):
        lat, per_rank, _events, reads, writes, stats = _run_spec(
            CollectiveSpec(**spec_kw, trace=True), kw
        )
        return lat, per_rank, reads, writes, stats

    ref = run_traced(MODES["unfused"])
    for name in ("record", "burst"):
        assert run_traced(MODES[name]) == ref
    # timestamps (not event counts: tracing is unfused) match untraced burst
    assert ref[0] == untraced[0]
    assert ref[1] == untraced[1]


# -- convoy workloads built directly on a node -------------------------------

_MIB = 1 << 20


def _reader_workload(node, comm, jobs):
    """Spawn one reader per job; job = (src_rank, nbytes, pure, rounds)."""
    srcs = [comm.allocate(0, _MIB, name=f"s{i}") for i in range(len(jobs))]
    procs = []
    for i, (nbytes, pure, rounds) in enumerate(jobs):
        def reader(ctx, i=i, nbytes=nbytes, pure=pure, rounds=rounds):
            local = (0, 0) if pure else srcs[i].iov(0, nbytes)
            for _ in range(rounds):
                yield from ctx.cma_read(0, local, srcs[i].iov(0, nbytes))
        procs.append(comm.spawn_rank(i + 1, reader))
    return procs


def _snapshot(node, procs):
    return (
        node.sim.now,
        tuple(p.finish_time for p in procs),
        node.sim.events_processed,
        _lock_stats(node),
    )


def test_pure_convoy_fast_forward_bit_exact():
    """The steady-state loop's bread and butter: many pin-only readers on
    one mm lock, whole epochs collapsed to closed form."""
    jobs = [(900_000, True, 3)] * 16

    def run_one(kw):
        node = Node(get_arch("knl"), verify=False, trace=False,
                    sim=Simulator(**kw))
        comm = Comm(node, len(jobs) + 1)
        procs = _reader_workload(node, comm, jobs)
        node.sim.run_all(procs)
        return _snapshot(node, procs)

    _assert_modes_agree(run_one)


def test_interloper_joins_mid_convoy():
    """An outside process grabbing the mm lock mid-convoy invalidates the
    epoch; its timestamps — and everyone else's — must match unfused."""
    jobs = [(500_000, True, 2)] * 6

    def run_one(kw):
        node = Node(get_arch("knl"), verify=False, trace=False,
                    sim=Simulator(**kw))
        comm = Comm(node, len(jobs) + 1)
        procs = _reader_workload(node, comm, jobs)
        mutex = node.cma._mm_locks[comm.pid_of(0)].mutex

        def interloper(start, hold):
            yield Delay(start)
            yield Acquire(mutex)
            yield HoldRelease(mutex, hold)

        # one lands mid-epoch, one after the convoys have drained
        procs.append(node.sim.spawn(interloper(40.0, 9.0), name="intr0",
                                    pid=99_000, socket=0))
        procs.append(node.sim.spawn(interloper(90.0, 2.5), name="intr1",
                                    pid=99_001, socket=1))
        node.sim.run_all(procs)
        return _snapshot(node, procs)

    _assert_modes_agree(run_one)


def test_interloper_leaves_and_epoch_recovers():
    """After the outsider releases, the O(c) rescan must re-close the epoch
    (observable as the burst mode still matching the reference while doing
    most rounds in the fast path — correctness is what we assert here)."""
    jobs = [(700_000, True, 4)] * 4

    def run_one(kw):
        node = Node(get_arch("knl"), verify=False, trace=False,
                    sim=Simulator(**kw))
        comm = Comm(node, len(jobs) + 1)
        procs = _reader_workload(node, comm, jobs)
        mutex = node.cma._mm_locks[comm.pid_of(0)].mutex

        def early_interloper():
            yield Acquire(mutex)
            yield HoldRelease(mutex, 3.0)
            # leaves for good: the convoy owns the lock from here on

        procs.append(node.sim.spawn(early_interloper(), name="intr",
                                    pid=99_000, socket=0))
        node.sim.run_all(procs)
        return _snapshot(node, procs)

    _assert_modes_agree(run_one)


def test_mixed_pure_and_copy_convoys():
    """Copy readers (extra_dt > 0) are not 'pure': the fast-forward must
    refuse them record-exactly while still fusing their commands."""
    jobs = [
        (800_000, True, 2),
        (650_000, False, 2),
        (420_000, True, 3),
        (900_000, False, 1),
        (150_000, True, 2),
    ]

    def run_one(kw):
        node = Node(get_arch("broadwell"), verify=False, trace=False,
                    sim=Simulator(**kw))
        comm = Comm(node, len(jobs) + 1)
        procs = _reader_workload(node, comm, jobs)
        node.sim.run_all(procs)
        return _snapshot(node, procs)

    _assert_modes_agree(run_one)


def test_hold_error_mid_convoy_fails_identically():
    """A hold model raising mid-epoch must fail the same process at the
    same simulated time in every mode.

    Drives :class:`PinConvoy` directly (no memo — an impure, call-counting
    hold model violates the memo purity contract by design here) against a
    hand-rolled unfused loop doing exactly what the kernel's unfused path
    does.
    """

    def run_one(kw):
        sim = Simulator(**kw)
        m = Mutex(sim)
        calls = {"n": 0}

        def hold_fn(pages, proc):
            calls["n"] += 1
            if calls["n"] == 7:
                raise SimError("injected hold failure")
            return pages * 0.5

        plans = [[(4, 0.0)] * 3, [(2, 0.0)] * 4, [(4, 0.0)] * 3,
                 [(3, 0.0)] * 3]

        def fused(batches):
            got = yield PinConvoy(m, hold_fn, batches)
            return got

        def unfused(batches):
            for b, _extra in batches:
                yield Acquire(m)
                yield HoldRelease(m, hold_fn(b, None))
            return sum(b for b, _ in batches)

        worker = fused if kw.get("use_pin_convoy", True) else unfused
        procs = [sim.spawn(worker(plan), name=f"w{i}", socket=i % 2)
                 for i, plan in enumerate(plans)]
        # the failed worker dies holding the lock, stranding its peers —
        # identically in every mode
        deadlocked = False
        try:
            sim.run()
        except DeadlockError:
            deadlocked = True
        return (
            deadlocked,
            sim.now,
            tuple(p.finish_time if p.error is None else None for p in procs),
            tuple(type(p.error).__name__ if p.error is not None else None
                  for p in procs),
            sim.events_processed,
            (m.acquisitions, m.total_wait_us, m.max_contenders),
        )

    _assert_modes_agree(run_one)


# -- epoch bookkeeping unit tests --------------------------------------------


def test_generation_counts_every_acquire_release():
    sim = Simulator()
    m = Mutex(sim)

    def worker():
        yield Acquire(m)
        yield HoldRelease(m, 1.0)

    sim.spawn(worker())
    sim.spawn(worker())
    sim.run()
    # 2 acquires + 2 releases
    assert m.generation == 4
    assert m.acquisitions == 2


def test_convoy_closed_rescan_revalidates():
    sim = Simulator()
    m = Mutex(sim)
    # empty contender set: trivially all-members, rescan caches the gen
    assert m._convoy_gen != m.generation
    assert m._convoy_closed()
    assert m._convoy_gen == m.generation

    class FakeProc:  # a non-member contender
        convoy = None
        socket = 0
        name = "fake"

    p = FakeProc()
    assert m._acquire_core(p)
    assert not m._convoy_closed()  # outsider holds the lock
    assert m._release_core(p) is None
    assert m._convoy_closed()  # outsider gone, rescan re-closes
    assert m._convoy_gen == m.generation


def test_hold_memo_cleared_on_reset():
    node = Node(get_arch("knl"), verify=False, trace=False)
    comm = Comm(node, 3)
    src = comm.allocate(0, _MIB, name="s")

    def reader(ctx):
        yield from ctx.cma_read(0, (0, 0), src.iov(0, 300_000))

    p1 = comm.spawn_rank(1, reader)
    p2 = comm.spawn_rank(2, reader)
    node.sim.run_all([p1, p2])
    mm = node.cma._mm_locks[comm.pid_of(0)]
    assert mm._hold_memo  # populated by the convoy path
    node.reset()
    assert not mm._hold_memo


# -- randomized battery ------------------------------------------------------


@settings(deadline=None, max_examples=20)
@given(
    archname=st.sampled_from(ARCH_NAMES),
    jobs=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=500_000),  # nbytes
            st.booleans(),                                # pure (pin-only)
            st.integers(min_value=1, max_value=3),        # rounds
        ),
        min_size=2,
        max_size=8,
    ),
    interlopers=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=120.0,
                      allow_nan=False, allow_infinity=False),  # start
            st.floats(min_value=0.0, max_value=15.0,
                      allow_nan=False, allow_infinity=False),  # hold
            st.integers(min_value=0, max_value=1),             # socket
        ),
        max_size=3,
    ),
)
def test_randomized_workloads_bit_exact(archname, jobs, interlopers):
    arch = get_arch(archname)

    def run_one(kw):
        node = Node(arch, verify=False, trace=False, sim=Simulator(**kw))
        comm = Comm(node, len(jobs) + 1)
        procs = _reader_workload(node, comm, jobs)
        mutex = node.cma._mm_locks[comm.pid_of(0)].mutex

        def interloper(start, hold):
            yield Delay(start)
            yield Acquire(mutex)
            yield HoldRelease(mutex, hold)

        for k, (start, hold, socket) in enumerate(interlopers):
            procs.append(
                node.sim.spawn(interloper(start, hold), name=f"intr{k}",
                               pid=99_000 + k, socket=socket)
            )
        node.sim.run_all(procs)
        return _snapshot(node, procs)

    _assert_modes_agree(run_one)
