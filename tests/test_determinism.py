"""The simulator must be fully deterministic: identical runs, identical
results.  Resume-ability, debugging, and the benchmark assertions all
depend on it."""

import pytest

from repro.core.runner import CollectiveSpec, run_collective
from repro.machine import make_generic


def _spec(**kw):
    base = dict(
        collective="alltoall",
        algorithm="pairwise",
        arch=make_generic(sockets=2, cores_per_socket=4),
        procs=8,
        eta=30_000,
    )
    base.update(kw)
    return CollectiveSpec(**base)


def test_identical_runs_produce_identical_times():
    a = run_collective(_spec())
    b = run_collective(_spec())
    assert a.latency_us == b.latency_us
    assert a.per_rank_us == b.per_rank_us
    assert a.sim_events == b.sim_events
    assert a.ctrl_messages == b.ctrl_messages


@pytest.mark.parametrize(
    "coll,alg,params",
    [
        ("scatter", "throttled_read", {"k": 3}),
        ("bcast", "knomial", {"k": 4}),
        ("allgather", "recursive_doubling", {}),
        ("allreduce", "ring", {}),
    ],
)
def test_determinism_across_algorithms(coll, alg, params):
    runs = {
        run_collective(_spec(collective=coll, algorithm=alg, params=params)).latency_us
        for _ in range(3)
    }
    assert len(runs) == 1


def test_trace_is_deterministic_too():
    def spans():
        res = run_collective(_spec(trace=True))
        return tuple(sorted(res.trace_by_phase.items()))

    assert spans() == spans()
