"""Warm-node reuse must be invisible: pooled == fresh, bit for bit.

The tentpole claim of the warm-node fast path is that
:func:`repro.core.runner.run_collective_pooled` returns *bit-identical*
results to :func:`repro.core.runner.run_collective` — exact float equality
on every latency, identical event/message counters, identical trace
aggregates — while reusing one simulated node across points.  The battery
here randomises over every collective family, in-place, the v-variants,
and trace on/off, interleaving keys so the pool is genuinely exercised
(reuse, eviction, and rebuilds all happen).

Below the battery sit unit tests for the reset contract itself: the
engine's sequence stream, the address-space arena, and the pool's
discard-on-failure policy.
"""

import random

import pytest

from repro.core.registry import get_algorithm
from repro.core.runner import (
    CollectiveSpec,
    NodePool,
    run_collective,
    run_collective_pooled,
)
from repro.machine import get_arch

# (collective, algorithm, params, supports_in_place, takes_counts)
_CANDIDATES = [
    ("scatter", "parallel_read", {}, True, False),
    ("scatter", "sequential_write", {}, True, False),
    ("scatter", "throttled_read", {"k": 2}, True, False),
    ("scatter", "binomial_p2p", {}, True, False),
    ("scatter", "fanout_rndv", {}, True, False),
    ("gather", "parallel_write", {}, True, False),
    ("gather", "sequential_read", {}, True, False),
    ("gather", "throttled_write", {"k": 2}, True, False),
    ("gather", "binomial_p2p", {}, True, False),
    ("gather", "fanin_rndv", {}, True, False),
    ("alltoall", "pairwise", {}, False, False),
    ("alltoall", "pairwise_pt2pt", {}, False, False),
    ("alltoall", "pairwise_shm", {}, False, False),
    ("alltoall", "bruck", {}, False, False),
    ("allgather", "ring_source_read", {}, False, False),
    ("allgather", "ring_source_write", {}, False, False),
    ("allgather", "ring_neighbor", {"j": 1}, False, False),
    ("allgather", "recursive_doubling", {}, False, False),
    ("allgather", "bruck", {}, False, False),
    ("allgather", "ring_p2p", {}, False, False),
    ("bcast", "direct_read", {}, False, False),
    ("bcast", "direct_write", {}, False, False),
    ("bcast", "knomial", {"k": 2}, False, False),
    ("bcast", "scatter_allgather", {}, False, False),
    ("bcast", "binomial_p2p", {}, False, False),
    ("bcast", "shm_slab", {}, False, False),
    ("bcast", "chain", {"segsize": 4096}, False, False),
    ("scatterv", "parallel_read", {}, True, True),
    ("scatterv", "sequential_write", {}, True, True),
    ("gatherv", "parallel_write", {}, True, True),
    ("gatherv", "sequential_read", {}, True, True),
    ("alltoallv", "pairwise", {}, False, True),
    ("reduce", "gather_throttled", {"k": 2}, True, False),
    ("reduce", "binomial", {}, True, False),
    ("reduce", "ring_rs", {}, False, False),
    ("allreduce", "reduce_bcast", {"k": 2}, False, False),
    ("allreduce", "ring", {}, False, False),
    ("allreduce", "recursive_doubling", {}, False, False),
    ("scatter", "xpmem_read", {}, True, False),
    ("gather", "xpmem_write", {}, True, False),
    ("bcast", "xpmem_read", {}, False, False),
    ("allgather", "xpmem_ring", {}, False, False),
    ("alltoall", "xpmem_pairwise", {}, False, False),
]


def _battery(seed: int, n: int):
    """Randomised specs spanning the whole algorithm registry."""
    rng = random.Random(seed)
    archs = {name: get_arch(name) for name in ("knl", "broadwell")}
    specs = []
    while len(specs) < n:
        coll, alg, params, can_inplace, takes_counts = rng.choice(_CANDIDATES)
        procs = rng.choice([4, 6, 8])
        if get_algorithm(coll, alg).check(procs, params):
            continue  # invalid for this p (e.g. power-of-two constraints)
        eta = rng.choice([512, 1024, 4096])
        kwargs = dict(
            collective=coll,
            algorithm=alg,
            arch=archs[rng.choice(list(archs))],
            procs=procs,
            eta=eta,
            params=params,
            in_place=can_inplace and rng.random() < 0.3,
            trace=rng.random() < 0.25,
        )
        if coll in ("scatter", "gather", "bcast", "scatterv", "gatherv", "reduce"):
            kwargs["root"] = rng.randrange(procs)
        if takes_counts:
            if coll == "alltoallv":
                kwargs["counts"] = [
                    [rng.choice([0, 256, eta]) for _ in range(procs)]
                    for _ in range(procs)
                ]
            else:
                kwargs["counts"] = [
                    rng.choice([0, 256, eta]) for _ in range(procs)
                ]
        try:
            specs.append(CollectiveSpec(**kwargs))
        except ValueError:
            continue
    return specs


def _fields(res):
    return (
        res.latency_us,
        tuple(res.per_rank_us),
        res.ctrl_messages,
        res.cma_reads,
        res.cma_writes,
        res.xpmem_reads,
        res.xpmem_writes,
        res.xpmem_attaches,
        res.xpmem_page_faults,
        res.sim_events,
        None if res.trace_by_phase is None else tuple(sorted(res.trace_by_phase.items())),
    )


def test_pooled_battery_bit_identical_to_fresh():
    specs = _battery(seed=20170905, n=60)
    # sanity: the battery must genuinely span the families and the toggles
    assert len({s.collective for s in specs}) >= 8
    assert any(s.in_place for s in specs)
    assert any(s.trace for s in specs)
    assert any(s.counts is not None for s in specs)
    assert any(s.lane == "xpmem" for s in specs)

    pool = NodePool()
    for spec in specs:
        fresh = run_collective(spec)
        pooled = run_collective_pooled(spec, pool)
        assert _fields(pooled) == _fields(fresh), spec
    assert pool.reuses > 0, "battery never hit a warm node; pool untested"


def test_pooled_battery_survives_interleaved_key_churn():
    """Same battery, re-sorted so consecutive points alternate between a
    handful of keys — exercising reuse *and* LRU eviction on a tiny pool."""
    specs = _battery(seed=42, n=30)
    pool = NodePool(max_entries=2)
    for spec in specs:
        fresh = run_collective(spec)
        pooled = run_collective_pooled(spec, pool)
        assert _fields(pooled) == _fields(fresh), spec
    assert len(pool._entries) <= 2


def test_repeated_pooled_runs_of_one_spec_are_stable():
    spec = CollectiveSpec(
        "scatter", "throttled_read", get_arch("knl"), procs=8, eta=4096,
        params={"k": 2},
    )
    pool = NodePool()
    first = run_collective_pooled(spec, pool)
    for _ in range(3):
        again = run_collective_pooled(spec, pool)
        assert _fields(again) == _fields(first)
    assert pool.reuses == 3


def test_pooled_xpmem_bit_identical_and_warm():
    """Mapped-window runs on a warm node must match fresh runs bit for bit,
    traced and fast: segid minting restarts at the base, so any drift in
    the attach caches or the fault bookkeeping shows up as a control-plane
    or latency mismatch."""
    pool = NodePool()
    cases = [
        ("scatter", "xpmem_read"),
        ("gather", "xpmem_write"),
        ("bcast", "xpmem_read"),
        ("allgather", "xpmem_ring"),
        ("alltoall", "xpmem_pairwise"),
    ]
    for trace in (False, True):
        for coll, alg in cases:
            spec = CollectiveSpec(
                coll, alg, get_arch("broadwell"), procs=6, eta=8192,
                trace=trace,
            )
            warmup = run_collective_pooled(spec, pool)  # may build the node
            pooled = run_collective_pooled(spec, pool)  # guaranteed warm
            fresh = run_collective(spec)
            assert _fields(warmup) == _fields(fresh), (coll, alg, trace)
            assert _fields(pooled) == _fields(fresh), (coll, alg, trace)
            assert pooled.xpmem_attaches > 0, (coll, alg, trace)
            assert pooled.xpmem_page_faults > 0, (coll, alg, trace)
    assert pool.reuses >= len(cases) * 2 - 1


def test_pool_release_clears_mapped_window_state():
    """After an xpmem run, the node handed back by the pool must carry no
    exports, no attachments, and a restarted segid counter — and the
    communicator's per-(rank, segid) attach cache must be empty, else a
    warm rank would skip the attach its fresh twin pays for."""
    spec = CollectiveSpec(
        "scatter", "xpmem_read", get_arch("knl"), procs=4, eta=4096
    )
    pool = NodePool()
    run_collective_pooled(spec, pool)

    node, comm = pool.node_for(spec.arch, spec.procs, spec.verify, spec.trace)
    try:
        xp = node.xpmem
        assert not xp._segids and not xp._by_region
        assert not xp._mapped and not xp._faulted
        assert (xp.attaches, xp.maps_charged, xp.page_faults) == (0, 0, 0)
        assert (xp.reads, xp.writes) == (0, 0)
        from repro.kernel.xpmem import _SEGID_BASE

        assert next(xp._segid_counter) == _SEGID_BASE
        assert not comm._xpmem_attached
    finally:
        pool.release(spec.arch, node, comm)


# -- reset contract units ----------------------------------------------------


def test_simulator_reset_restarts_sequence_stream():
    from repro.sim.engine import Delay, Simulator

    def worker():
        yield Delay(1.0)
        yield Delay(0.0)

    sim = Simulator()
    sim.spawn(worker(), name="w")
    sim.run()
    events_first = sim.events_processed
    seq_first = next(sim._seq)

    sim.reset()
    assert sim.now == 0.0 and sim.events_processed == 0
    assert not sim._heap and not sim._ready and not sim._procs
    sim.spawn(worker(), name="w")
    sim.run()
    assert sim.events_processed == events_first
    assert next(sim._seq) == seq_first


def test_address_space_arena_recycles_same_size_zeroed():
    from repro.kernel.address_space import AddressSpaceManager

    mgr = AddressSpaceManager(page_size=4096)
    space = mgr.create(pid=1)
    buf = space.allocate(8192, "a")
    addr_first = buf.addr
    backing = buf.data
    backing[:] = 7  # dirty it, like a finished collective would

    space.reset()
    again = space.allocate(8192, "b")
    assert again.data is backing, "same-size request must reuse the arena array"
    assert again.addr == addr_first, "addresses must restart at va_base"
    assert not again.data.any(), "recycled arrays must be re-zeroed"
    # a different size allocates fresh and must not collide
    other = space.allocate(4096, "c")
    assert other.data is not backing


def test_address_space_arena_is_replaced_not_accumulated():
    from repro.kernel.address_space import AddressSpaceManager

    mgr = AddressSpaceManager(page_size=4096)
    space = mgr.create(pid=1)
    space.allocate(4096)
    space.reset()  # arena: one 4096 array
    space.allocate(8192)
    space.reset()  # arena must now hold only the 8192 array
    assert set(space._arena) == {8192}


def test_node_pool_discards_failed_runs():
    spec = CollectiveSpec(
        "scatter", "parallel_read", get_arch("knl"), procs=4, eta=1024
    )
    pool = NodePool()
    run_collective_pooled(spec, pool)  # seed the pool with a warm node

    node, comm = pool.node_for(spec.arch, spec.procs, spec.verify, spec.trace)
    # sabotage the next run: denied pid makes every CMA access raise EPERM
    node.cma.denied_pids.add(comm.pid_of(0))
    pool.release(spec.arch, node, comm)  # reset clears the sabotage...
    bad = run_collective_pooled(spec, pool)
    assert bad.latency_us > 0

    # ...and a genuinely failing run never goes back into the pool
    from repro.core import runner as runner_mod

    real_execute = runner_mod._execute

    def failing(spec_, fn, node_, comm_):
        raise RuntimeError("boom")

    runner_mod._execute = failing
    try:
        with pytest.raises(RuntimeError):
            run_collective_pooled(spec, pool)
    finally:
        runner_mod._execute = real_execute
    assert not pool._entries, "a failed run's node must be discarded"
    # the next pooled run rebuilds and still matches fresh
    assert _fields(run_collective_pooled(spec, pool)) == _fields(
        run_collective(spec)
    )


def test_node_pool_rebuilds_on_arch_value_change():
    import dataclasses

    arch = get_arch("knl")
    spec = CollectiveSpec("scatter", "parallel_read", arch, procs=4, eta=1024)
    pool = NodePool()
    run_collective_pooled(spec, pool)

    # same name, different parameters: must NOT reuse the pooled node
    params2 = dataclasses.replace(arch.params, l_page=arch.params.l_page * 2)
    arch2 = dataclasses.replace(arch, params=params2)
    spec2 = CollectiveSpec("scatter", "parallel_read", arch2, procs=4, eta=1024)
    pooled = run_collective_pooled(spec2, pool)
    fresh = run_collective(spec2)
    assert _fields(pooled) == _fields(fresh)
    assert pooled.latency_us != run_collective(spec).latency_us


def test_recycled_buffers_cannot_fake_verification():
    """A stale correct answer left in a recycled recvbuf must not satisfy
    verification: arena arrays are re-zeroed on allocate."""
    from repro.core import patterns

    spec = CollectiveSpec(
        "scatter", "parallel_read", get_arch("knl"), procs=4, eta=1024
    )
    pool = NodePool()
    run_collective_pooled(spec, pool)  # leaves correct bytes in the arena

    # Re-run the same spec on the warm node with a broken "algorithm" that
    # moves nothing: if recycled buffers kept their bytes, verification
    # would wrongly pass.
    node, comm = pool.node_for(spec.arch, spec.procs, spec.verify, spec.trace)

    def lazy_rank(ctx):
        from repro.sim import Delay

        yield Delay(1.0)

    sendbufs, recvbufs = patterns.setup_buffers(comm, spec)
    procs = [
        comm.spawn_rank(r, lambda ctx: lazy_rank(ctx), root=0, eta=spec.eta,
                        sendbuf=sendbufs[r], recvbuf=recvbufs[r])
        for r in range(spec.procs)
    ]
    node.sim.run_all(procs)
    with pytest.raises(patterns.VerificationError):
        patterns.verify_buffers(comm, spec, sendbufs, recvbufs)
