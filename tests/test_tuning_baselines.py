"""Tests for the tuner (the "Proposed" design) and the baseline libraries."""

import pytest

from repro.core.baselines import LIBRARY_NAMES, library
from repro.core.p2p_colls import FORCE_EAGER, FORCE_RNDV
from repro.core.runner import CollectiveSpec, run_collective
from repro.core.tuning import Tuner
from repro.machine import get_arch, make_generic

COLLECTIVES = ("scatter", "gather", "bcast", "allgather", "alltoall")


def small_arch():
    return make_generic(sockets=1, cores_per_socket=10, default_procs=10)


class TestP2PCollectives:
    """The baseline building blocks must satisfy full MPI semantics too."""

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 12])
    @pytest.mark.parametrize("threshold", [FORCE_EAGER, FORCE_RNDV])
    @pytest.mark.parametrize(
        "coll,alg",
        [
            ("bcast", "binomial_p2p"),
            ("scatter", "binomial_p2p"),
            ("gather", "binomial_p2p"),
            ("allgather", "ring_p2p"),
        ],
    )
    def test_p2p_trees_verify(self, p, threshold, coll, alg):
        spec = CollectiveSpec(
            coll,
            alg,
            make_generic(sockets=1, cores_per_socket=max(p, 2)),
            procs=p,
            eta=6000,
            params={"threshold": threshold},
        )
        run_collective(spec)

    @pytest.mark.parametrize("p", [2, 4, 7, 9])
    @pytest.mark.parametrize(
        "coll,alg", [("scatter", "fanout_rndv"), ("gather", "fanin_rndv")]
    )
    def test_rndv_fanout_fanin_verify(self, p, coll, alg):
        spec = CollectiveSpec(
            coll,
            alg,
            make_generic(sockets=1, cores_per_socket=max(p, 2)),
            procs=p,
            eta=50_000,
        )
        run_collective(spec)

    @pytest.mark.parametrize("root", [1, 4])
    def test_p2p_trees_nonzero_root(self, root):
        for coll, alg in [
            ("bcast", "binomial_p2p"),
            ("scatter", "binomial_p2p"),
            ("gather", "binomial_p2p"),
        ]:
            spec = CollectiveSpec(
                coll,
                alg,
                small_arch(),
                procs=7,
                eta=3000,
                root=root,
                params={"threshold": FORCE_RNDV},
            )
            run_collective(spec)

    def test_shm_slab_bcast_verifies(self):
        for p, eta in [(2, 100), (8, 50_000), (13, 4096)]:
            spec = CollectiveSpec(
                "bcast",
                "shm_slab",
                make_generic(sockets=1, cores_per_socket=max(p, 2)),
                procs=p,
                eta=eta,
                root=1 % p,
            )
            run_collective(spec)

    def test_fanout_hits_contention_wall(self):
        """The contention-unaware baseline really does contend."""
        arch = get_arch("knl")
        fan = run_collective(
            CollectiveSpec(
                "scatter", "fanout_rndv", arch, procs=32, eta=256 * 1024,
                verify=False,
            )
        )
        thr = run_collective(
            CollectiveSpec(
                "scatter",
                "throttled_read",
                get_arch("knl"),
                procs=32,
                eta=256 * 1024,
                params={"k": 8},
                verify=False,
            )
        )
        assert fan.latency_us > 2 * thr.latency_us


class TestLibraries:
    def test_registry(self):
        assert set(LIBRARY_NAMES) == {"mvapich2", "intelmpi", "openmpi"}
        with pytest.raises(KeyError):
            library("mpich1")

    @pytest.mark.parametrize("lib", LIBRARY_NAMES)
    @pytest.mark.parametrize("coll", COLLECTIVES)
    def test_selection_rules_cover_all_sizes(self, lib, coll):
        model = library(lib)
        for eta in (1024, 16 * 1024, 1 << 20, 8 << 20):
            alg, params = model.select(coll, eta, 16)
            assert isinstance(alg, str) and isinstance(params, dict)

    @pytest.mark.parametrize("lib", LIBRARY_NAMES)
    @pytest.mark.parametrize("coll", COLLECTIVES)
    def test_libraries_produce_correct_collectives(self, lib, coll):
        """Baselines are real algorithms: they must verify too."""
        res = library(lib).run(
            coll, small_arch(), eta=40_000, procs=8, verify=True
        )
        assert res.latency_us > 0

    def test_ctrl_factor_changes_arch_copy(self):
        om = library("openmpi")
        arch = get_arch("knl")
        tuned = om.tuned_arch(arch)
        assert tuned.params.t_ctrl == pytest.approx(arch.params.t_ctrl * 1.2)
        assert arch.params.t_ctrl == get_arch("knl").params.t_ctrl  # untouched


class TestTuner:
    @pytest.fixture(scope="class")
    def knl_tuner(self):
        return Tuner(get_arch("knl"))

    @pytest.mark.parametrize("coll", COLLECTIVES)
    def test_choices_are_valid_algorithms(self, knl_tuner, coll):
        for eta in (1024, 64 * 1024, 1 << 20, 4 << 20):
            choice = knl_tuner.choose(coll, eta, 64)
            spec = knl_tuner.spec(coll, eta, 64)
            assert spec.algorithm == choice.algorithm

    def test_scatter_picks_throttled_for_large(self, knl_tuner):
        choice = knl_tuner.choose("scatter", 1 << 20, 64)
        assert choice.algorithm == "throttled_read"
        assert 2 <= choice.params_dict["k"] <= 16

    def test_bcast_picks_a_contention_free_design_large_knl(self, knl_tuner):
        choice = knl_tuner.choose("bcast", 8 << 20, 64)
        assert choice.algorithm in ("scatter_allgather", "knomial", "chain")

    def test_bcast_picks_shm_small_on_broadwell(self):
        tuner = Tuner(get_arch("broadwell"))
        small = tuner.choose("bcast", 64 * 1024, 28)
        large = tuner.choose("bcast", 8 << 20, 28)
        assert small.algorithm == "shm_slab"
        assert large.algorithm != "shm_slab"

    def test_power8_throttle_around_one_socket(self):
        tuner = Tuner(get_arch("power8"))
        choice = tuner.choose("scatter", 1 << 20, 160)
        assert choice.algorithm == "throttled_write" or choice.algorithm == "throttled_read"
        assert choice.params_dict["k"] == 10

    def test_alltoall_bruck_only_for_tiny(self, knl_tuner):
        assert knl_tuner.choose("alltoall", 1 << 20, 64).algorithm == "pairwise"

    def test_allgather_respects_validity(self):
        # p where recursive doubling is non-power-of-two: still returns
        # something runnable
        tuner = Tuner(get_arch("broadwell"))
        choice = tuner.choose("allgather", 256 * 1024, 28)
        spec = tuner.spec("allgather", 256 * 1024, 28)
        run_collective(
            CollectiveSpec(
                spec.collective,
                spec.algorithm,
                make_generic(sockets=2, cores_per_socket=4),
                procs=8,
                eta=2000,
                params=spec.params,
            )
        )
        assert choice.predicted_us > 0

    def test_choice_caching(self, knl_tuner):
        a = knl_tuner.choose("scatter", 65536, 64)
        b = knl_tuner.choose("scatter", 65536, 64)
        assert a is b  # lru-cached

    def test_tuned_run_verifies(self):
        tuner = Tuner(small_arch())
        res = tuner.run("gather", 30_000, procs=10, verify=True)
        assert res.latency_us > 0

    def test_best_throttle_matches_choice_region(self, knl_tuner):
        k = knl_tuner.best_throttle("scatter", 1 << 20, 64)
        assert 2 <= k <= 16
        with pytest.raises(KeyError):
            knl_tuner.best_throttle("bcast", 1024, 64)

    def test_calibrated_tuner_runs(self):
        tuner = Tuner.calibrated(small_arch())
        choice = tuner.choose("scatter", 1 << 20, 10)
        assert choice.predicted_us > 0

    def test_describe(self, knl_tuner):
        c = knl_tuner.choose("scatter", 1 << 20, 64)
        assert "k=" in c.describe()


class TestProposedBeatsBaselines:
    """Table VI's headline, in miniature: the tuned design wins."""

    @pytest.mark.parametrize("coll", ["scatter", "gather"])
    def test_personalized_collectives_win_big(self, coll):
        arch_name = "knl"
        tuner = Tuner.calibrated(get_arch(arch_name))
        eta, p = 256 * 1024, 32
        ours = tuner.run(coll, eta, p).latency_us
        for lib in LIBRARY_NAMES:
            theirs = library(lib).run(coll, get_arch(arch_name), eta, p).latency_us
            assert theirs > 1.5 * ours, lib

    def test_alltoall_wins_medium(self):
        tuner = Tuner.calibrated(get_arch("knl"))
        eta, p = 64 * 1024, 16
        ours = tuner.run("alltoall", eta, p).latency_us
        for lib in LIBRARY_NAMES:
            theirs = library(lib).run("alltoall", get_arch("knl"), eta, p).latency_us
            assert theirs > ours, lib
