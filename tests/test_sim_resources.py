"""Unit tests for the FIFO mutex: exclusion, ordering, contender visibility."""

import pytest

from repro.sim import Acquire, Delay, Mutex, Release, SimError, Simulator


def test_uncontended_acquire_is_instant():
    sim = Simulator()
    lock = Mutex(sim, "l")

    def proc():
        yield Acquire(lock)
        t = sim.now
        yield Release(lock)
        return t

    p = sim.spawn(proc())
    sim.run()
    assert p.result == pytest.approx(0.0)


def test_mutual_exclusion():
    sim = Simulator()
    lock = Mutex(sim, "l")
    in_cs = []

    def proc(name):
        yield Acquire(lock)
        in_cs.append(name)
        assert len(in_cs) == 1, "two holders inside the critical section"
        yield Delay(1.0)
        in_cs.remove(name)
        yield Release(lock)

    for i in range(4):
        sim.spawn(proc(i))
    sim.run()
    assert sim.now == pytest.approx(4.0)


def test_fifo_grant_order():
    sim = Simulator()
    lock = Mutex(sim, "l")
    grants = []

    def proc(name, arrival):
        yield Delay(arrival)
        yield Acquire(lock)
        grants.append(name)
        yield Delay(10.0)
        yield Release(lock)

    sim.spawn(proc("a", 0.0))
    sim.spawn(proc("b", 1.0))
    sim.spawn(proc("c", 2.0))
    sim.run()
    assert grants == ["a", "b", "c"]


def test_contender_count_visible_to_holder():
    sim = Simulator()
    lock = Mutex(sim, "l")
    seen = []

    def proc():
        yield Acquire(lock)
        seen.append(lock.n_contenders)
        yield Delay(1.0)
        yield Release(lock)

    for _ in range(5):
        sim.spawn(proc())
    sim.run()
    # first holder sees all 5 (itself + 4 waiters), last sees only itself
    assert seen[0] == 5
    assert seen[-1] == 1
    assert seen == sorted(seen, reverse=True)


def test_contention_profile_by_socket():
    sim = Simulator()
    lock = Mutex(sim, "l")
    profile = {}

    def proc(socket, delay, record):
        yield Delay(delay)
        yield Acquire(lock)
        if record:
            # hold long enough for every other contender to queue up
            yield Delay(1.0)
            profile["p"] = lock.contention_profile(socket)
            yield Delay(4.0)
        yield Release(lock)

    # holder on socket 0; two waiters on socket 0, one on socket 1
    for i, sock in enumerate([0, 0, 0, 1]):
        p = sim.spawn(proc(sock, i * 0.1, record=(i == 0)))
        p.socket = sock
    sim.run()
    same, other = profile["p"]
    assert (same, other) == (3, 1)


def test_release_by_non_holder_fails():
    sim = Simulator()
    lock = Mutex(sim, "l")

    def a():
        yield Acquire(lock)
        yield Delay(10.0)
        yield Release(lock)

    def b():
        yield Delay(1.0)
        yield Release(lock)

    sim.spawn(a())
    pb = sim.spawn(b())
    sim.run()
    assert pb.state == "failed"
    assert isinstance(pb.error, SimError)


def test_reacquire_while_holding_fails():
    sim = Simulator()
    lock = Mutex(sim, "l")

    def proc():
        yield Acquire(lock)
        yield Acquire(lock)

    p = sim.spawn(proc())
    sim.run()
    assert p.state == "failed"


def test_wait_statistics():
    sim = Simulator()
    lock = Mutex(sim, "l")

    def proc():
        yield Acquire(lock)
        yield Delay(2.0)
        yield Release(lock)

    for _ in range(3):
        sim.spawn(proc())
    sim.run()
    assert lock.acquisitions == 3
    # second waits 2, third waits 4
    assert lock.total_wait_us == pytest.approx(6.0)
    assert lock.max_contenders == 3


def test_no_wait_state_leak_after_deadlock():
    """Waiters that are never granted must not corrupt the lock's books:
    the (proc, since) queue entries carry the wait-start time, so a
    deadlocked teardown leaves total_wait_us untouched and the contender
    accounting consistent."""
    from repro.sim import DeadlockError

    sim = Simulator()
    lock = Mutex(sim, "l")

    def hog():
        yield Acquire(lock)
        # never releases

    def victim():
        yield Delay(1.0)
        yield Acquire(lock)

    sim.spawn(hog())
    victims = [sim.spawn(victim()) for _ in range(3)]
    with pytest.raises(DeadlockError):
        sim.run()
    assert lock.total_wait_us == 0.0  # nobody was ever granted
    assert lock.acquisitions == 1
    assert lock.n_contenders == 4
    assert lock.contention_profile(0) == (4, 0)
    assert all(not v.done for v in victims)


def test_contention_profile_decrements_on_release():
    sim = Simulator()
    lock = Mutex(sim, "l")
    snapshots = []

    def proc(sock, arrival):
        yield Delay(arrival)
        yield Acquire(lock)
        yield Delay(5.0)  # let later arrivals queue before snapshotting
        snapshots.append(lock.contention_profile(0))
        yield Delay(5.0)
        yield Release(lock)

    for i, sock in enumerate([0, 0, 1]):
        p = sim.spawn(proc(sock, i * 1.0))
        p.socket = sock
    sim.run()
    # holder 0 sees (2 same, 1 other); after it departs the next same-socket
    # holder sees (1, 1); the socket-1 holder alone sees (0, 1) rel. socket 0
    assert snapshots == [(2, 1), (1, 1), (0, 1)]
    assert lock.contention_profile(0) == (0, 0)
    assert lock._socket_counts == {}


def test_semaphore_blocks_at_capacity_and_wakes_fifo():
    from repro.sim import Semaphore

    sim = Simulator()
    sem = Semaphore(sim, capacity=2, name="slots")
    order = []

    def proc(tag):
        yield Acquire(sem)
        order.append(("in", tag, sim.now))
        yield Delay(2.0)
        yield Release(sem)

    for tag in range(4):
        sim.spawn(proc(tag))
    sim.run()
    assert [o[1] for o in order] == [0, 1, 2, 3]
    # 0 and 1 enter instantly; 2 and 3 wait one full hold each
    assert [o[2] for o in order] == pytest.approx([0.0, 0.0, 2.0, 2.0])


def test_semaphore_wait_statistics():
    from repro.sim import Semaphore

    sim = Simulator()
    sem = Semaphore(sim, capacity=1, name="slots")

    def proc():
        yield Acquire(sem)
        yield Delay(3.0)
        yield Release(sem)

    for _ in range(3):
        sim.spawn(proc())
    sim.run()
    assert sem.acquisitions == 3
    # second waits 3, third waits 6
    assert sem.total_wait_us == pytest.approx(9.0)
    assert sem.max_waiters == 2
    assert sem.available == sem.capacity


def test_semaphore_release_past_capacity_fails():
    from repro.sim import Semaphore

    sim = Simulator()
    sem = Semaphore(sim, capacity=1, name="slots")

    def proc():
        yield Release(sem)

    p = sim.spawn(proc())
    sim.run()
    assert p.state == "failed"
    assert isinstance(p.error, SimError)
