"""Unit tests for the FIFO mutex: exclusion, ordering, contender visibility."""

import pytest

from repro.sim import Acquire, Delay, Mutex, Release, SimError, Simulator


def test_uncontended_acquire_is_instant():
    sim = Simulator()
    lock = Mutex(sim, "l")

    def proc():
        yield Acquire(lock)
        t = sim.now
        yield Release(lock)
        return t

    p = sim.spawn(proc())
    sim.run()
    assert p.result == pytest.approx(0.0)


def test_mutual_exclusion():
    sim = Simulator()
    lock = Mutex(sim, "l")
    in_cs = []

    def proc(name):
        yield Acquire(lock)
        in_cs.append(name)
        assert len(in_cs) == 1, "two holders inside the critical section"
        yield Delay(1.0)
        in_cs.remove(name)
        yield Release(lock)

    for i in range(4):
        sim.spawn(proc(i))
    sim.run()
    assert sim.now == pytest.approx(4.0)


def test_fifo_grant_order():
    sim = Simulator()
    lock = Mutex(sim, "l")
    grants = []

    def proc(name, arrival):
        yield Delay(arrival)
        yield Acquire(lock)
        grants.append(name)
        yield Delay(10.0)
        yield Release(lock)

    sim.spawn(proc("a", 0.0))
    sim.spawn(proc("b", 1.0))
    sim.spawn(proc("c", 2.0))
    sim.run()
    assert grants == ["a", "b", "c"]


def test_contender_count_visible_to_holder():
    sim = Simulator()
    lock = Mutex(sim, "l")
    seen = []

    def proc():
        yield Acquire(lock)
        seen.append(lock.n_contenders)
        yield Delay(1.0)
        yield Release(lock)

    for _ in range(5):
        sim.spawn(proc())
    sim.run()
    # first holder sees all 5 (itself + 4 waiters), last sees only itself
    assert seen[0] == 5
    assert seen[-1] == 1
    assert seen == sorted(seen, reverse=True)


def test_contention_profile_by_socket():
    sim = Simulator()
    lock = Mutex(sim, "l")
    profile = {}

    def proc(socket, delay, record):
        yield Delay(delay)
        yield Acquire(lock)
        if record:
            # hold long enough for every other contender to queue up
            yield Delay(1.0)
            profile["p"] = lock.contention_profile(socket)
            yield Delay(4.0)
        yield Release(lock)

    # holder on socket 0; two waiters on socket 0, one on socket 1
    for i, sock in enumerate([0, 0, 0, 1]):
        p = sim.spawn(proc(sock, i * 0.1, record=(i == 0)))
        p.socket = sock
    sim.run()
    same, other = profile["p"]
    assert (same, other) == (3, 1)


def test_release_by_non_holder_fails():
    sim = Simulator()
    lock = Mutex(sim, "l")

    def a():
        yield Acquire(lock)
        yield Delay(10.0)
        yield Release(lock)

    def b():
        yield Delay(1.0)
        yield Release(lock)

    sim.spawn(a())
    pb = sim.spawn(b())
    sim.run()
    assert pb.state == "failed"
    assert isinstance(pb.error, SimError)


def test_reacquire_while_holding_fails():
    sim = Simulator()
    lock = Mutex(sim, "l")

    def proc():
        yield Acquire(lock)
        yield Acquire(lock)

    p = sim.spawn(proc())
    sim.run()
    assert p.state == "failed"


def test_wait_statistics():
    sim = Simulator()
    lock = Mutex(sim, "l")

    def proc():
        yield Acquire(lock)
        yield Delay(2.0)
        yield Release(lock)

    for _ in range(3):
        sim.spawn(proc())
    sim.run()
    assert lock.acquisitions == 3
    # second waits 2, third waits 4
    assert lock.total_wait_us == pytest.approx(6.0)
    assert lock.max_contenders == 3
