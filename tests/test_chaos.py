"""Seeded chaos harness: plan grammar, determinism, and soak batteries.

The contract under test (ISSUE 10 tentpole #3): under an armed
``REPRO_CHAOS`` plan — workers SIGKILLed mid-chunk, cache publications
corrupted, truncated, or torn — every sweep still completes with results
bit-identical to a clean serial run, and no worker process leaks.
"""

import multiprocessing
import os
import pickle
import time

import pytest

from repro.exec import ExecContext, use_context
from repro.exec import chaos
from repro.exec.cache import ResultCache
from repro.exec.chaos import (
    ENV_CHAOS,
    ChaosPlan,
    ChaosSpec,
    parse_chaos,
)
from repro.exec.sweep import sweep


def _double(x):
    return x * 2


def _square(x):
    return x * x


@pytest.fixture
def armed(monkeypatch):
    """Arm a chaos plan via the env for the duration of one test."""

    def _arm(text):
        monkeypatch.setenv(ENV_CHAOS, text)
        chaos.reset_state()

    yield _arm
    monkeypatch.delenv(ENV_CHAOS, raising=False)
    chaos.reset_state()


# -- plan grammar -------------------------------------------------------------


class TestParse:
    def test_full_grammar(self):
        plan = parse_chaos("7:kill@0.05,stall@0.02@30,corrupt")
        assert plan.seed == 7
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["kill", "stall", "corrupt"]
        assert plan.specs[0].prob == 0.05
        assert plan.specs[1].factor == 30.0
        assert plan.specs[2].prob == 0.2  # per-kind default

    @pytest.mark.parametrize(
        "bad",
        ["", "kill", "x:kill", "1:", "1:frob", "1:kill@zap", "1:kill@1@2@3"],
    )
    def test_rejects_malformed_plans(self, bad):
        with pytest.raises(ValueError):
            parse_chaos(bad)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ChaosSpec("kill", prob=1.5)
        with pytest.raises(ValueError):
            ChaosSpec("stall", factor=-1.0)
        with pytest.raises(ValueError):
            ChaosSpec("meteor")


# -- draw determinism ---------------------------------------------------------


class TestDraws:
    def _sequence(self, plan, role, op, n=64):
        st = plan.arm(role)
        return [spec.kind if spec else None for spec in
                (st.draw(op) for _ in range(n))]

    def test_same_seed_same_role_replays_identically(self):
        plan = parse_chaos("42:kill@0.3")
        assert (self._sequence(plan, "w0", "point")
                == self._sequence(plan, "w0", "point"))

    def test_roles_draw_independent_streams(self):
        plan = parse_chaos("42:kill@0.3")
        seqs = {tuple(self._sequence(plan, r, "point"))
                for r in ("w0", "w1", "main")}
        assert len(seqs) == 3  # distinct patterns per process slot

    def test_op_scoping_is_enforced(self):
        plan = parse_chaos("1:kill@1.0")
        st = plan.arm("w0")
        assert all(st.draw("cache") is None for _ in range(16))
        assert st.draw("point").kind == "kill"

    def test_calls_scheduled_spec_fires_exactly_there(self):
        plan = ChaosPlan(seed=0, specs=(ChaosSpec("kill", calls=(2, 5)),))
        st = plan.arm("w0")
        fired = [i for i in range(8) if st.draw("point") is not None]
        assert fired == [2, 5]
        assert st.counts() == {"kill": 2}

    def test_armed_state_rearms_when_env_changes(self, armed):
        armed("1:kill@1.0")
        assert chaos.state() is not None
        os.environ[ENV_CHAOS] = ""
        assert chaos.state() is None


# -- cache attacks ------------------------------------------------------------


class TestCacheChaos:
    def _entry_path(self, cache, key):
        hit, _ = cache.get(key)
        # Path derivation is internal; locate the entry on disk instead.
        files = [p for p in cache.root.rglob("*") if p.is_file()
                 and "quarantine" not in p.parts and key[:8] in p.name]
        return files

    def test_corrupt_is_quarantined_then_recomputed(self, tmp_path, armed):
        cache = ResultCache(tmp_path)
        key = cache.key_for("chaos-test", 1)
        armed("1:corrupt@1.0")
        cache.put(key, {"v": 1})
        chaos.reset_state()
        os.environ[ENV_CHAOS] = ""
        hit, _ = cache.get(key)
        assert not hit  # CRC caught the flipped byte
        assert cache.quarantine_count() >= 1
        cache.put(key, {"v": 1})  # healthy re-publication heals the entry
        hit, value = cache.get(key)
        assert hit and value == {"v": 1}

    def test_truncate_is_quarantined(self, tmp_path, armed):
        cache = ResultCache(tmp_path)
        key = cache.key_for("chaos-test", 2)
        armed("1:truncate@1.0")
        cache.put(key, list(range(100)))
        chaos.reset_state()
        os.environ[ENV_CHAOS] = ""
        hit, _ = cache.get(key)
        assert not hit
        assert cache.quarantine_count() >= 1

    def test_tear_leaves_target_untouched(self, tmp_path, armed):
        cache = ResultCache(tmp_path)
        key = cache.key_for("chaos-test", 3)
        cache.put(key, "committed")
        armed("1:tear@1.0")
        cache.put(key, "torn-away")  # swap abandoned mid-rename
        chaos.reset_state()
        os.environ[ENV_CHAOS] = ""
        hit, value = cache.get(key)
        assert hit and value == "committed"  # old entry intact, not torn
        tmps = [p for p in cache.root.rglob(".tmp-*")]
        assert tmps, "the abandoned temp file is the only residue"

    def test_sweep_survives_fully_corrupted_cache(self, tmp_path, armed):
        """Every publication of the first run is corrupted; the second run
        must quarantine all of them and recompute bit-identically."""
        points = list(range(8))
        armed("9:corrupt@1.0")
        with use_context(ExecContext(workers=1, cache=tmp_path)):
            first = sweep("chaos-sweep", _square, points)
        chaos.reset_state()
        os.environ[ENV_CHAOS] = ""
        with use_context(ExecContext(workers=1, cache=tmp_path)) as ctx:
            second = sweep("chaos-sweep", _square, points)
        assert pickle.dumps(second) == pickle.dumps(first)
        assert ctx.stats.cache_hits == 0  # nothing corrupt was trusted
        assert ctx.stats.points_run == len(points)
        assert ctx.stats.cache_quarantined >= 1


# -- worker-kill soak ---------------------------------------------------------


def _live_pids():
    return {p.pid for p in multiprocessing.active_children()}


def _assert_no_new_children(before, deadline_s=10.0):
    deadline = time.monotonic() + deadline_s
    while True:
        leftover = [p for p in multiprocessing.active_children()
                    if p.pid not in before]
        if not leftover:
            return
        if time.monotonic() > deadline:
            raise AssertionError(f"stray workers survived chaos: {leftover}")
        time.sleep(0.05)


class TestKillSoak:
    def test_scheduled_run_survives_seeded_worker_kills(self, armed):
        """Workers are SIGKILLed by the plan mid-sweep; supervision
        (respawn + poison ladder + sandbox) must still deliver results
        bit-identical to a serial run, with no leaked processes."""
        from repro.exec.sched import StickyPool

        points = list(range(8))
        serial = [_double(x) for x in points]
        before = _live_pids()
        armed("3:kill@0.5")
        try:
            pool = StickyPool(2, max_respawns=60, poison_strikes=2)
        except Exception as exc:  # pragma: no cover - fork-restricted hosts
            pytest.skip(f"cannot start scheduler workers: {exc}")
        try:
            results, stats = pool.run(
                _double, points, costs=[1.0] * len(points)
            )
        finally:
            pool.close()
        chaos.reset_state()
        os.environ[ENV_CHAOS] = ""
        assert pickle.dumps(results) == pickle.dumps(serial)
        assert stats.respawns >= 1, "the seeded plan must actually fire"
        assert not pool.broken
        _assert_no_new_children(before)
