"""Tests for the semaphore and the shared-segment eager pool."""

import pytest

from repro.machine import make_generic
from repro.mpi import Comm, Node, p2p_recv, p2p_send
from repro.shm import SegmentPool, ShmTransport
from repro.sim import Acquire, Delay, Release, SimError, Simulator
from repro.sim.resources import Semaphore


class TestSemaphore:
    def test_capacity_validation(self):
        with pytest.raises(SimError):
            Semaphore(Simulator(), 0)

    def test_concurrent_holders_up_to_capacity(self):
        sim = Simulator()
        sem = Semaphore(sim, 3, "s")
        peak = []

        def proc():
            yield Acquire(sem)
            peak.append(sem.in_use)
            yield Delay(1.0)
            yield Release(sem)

        for _ in range(5):
            sim.spawn(proc())
        sim.run()
        assert max(peak) == 3
        assert sem.in_use == 0
        assert sem.max_waiters == 2

    def test_release_past_capacity_fails(self):
        sim = Simulator()
        sem = Semaphore(sim, 1, "s")

        def proc():
            yield Release(sem)

        p = sim.spawn(proc())
        sim.run()
        assert p.state == "failed"

    def test_fifo_wakeup(self):
        sim = Simulator()
        sem = Semaphore(sim, 1, "s")
        order = []

        def proc(tag, arrive):
            yield Delay(arrive)
            yield Acquire(sem)
            order.append(tag)
            yield Delay(5.0)
            yield Release(sem)

        for i in range(3):
            sim.spawn(proc(i, i * 0.1))
        sim.run()
        assert order == [0, 1, 2]


class TestSegmentPool:
    def test_capacity_accounting(self):
        sim = Simulator()
        params = make_generic().params
        pool = SegmentPool(sim, params, nslots=4)
        assert pool.bytes_capacity == 4 * params.shm_chunk
        assert pool.slots_in_use == 0

    def test_exhaustion_serializes_eager_traffic(self):
        """With a tiny pool, many concurrent eager transfers queue on slots;
        with a big pool they run concurrently."""
        n = 8192  # one chunk per message

        def total_time(slots):
            arch = make_generic(
                sockets=1, cores_per_socket=16, shm_segment_slots=slots
            )
            node = Node(arch, verify=False)
            comm = Comm(node, 16)
            bufs = {
                r: (comm.allocate(r, n), comm.allocate(r, n)) for r in range(16)
            }

            def rank(ctx):
                # 8 disjoint pairs, all eager, all at once
                if ctx.rank % 2 == 0:
                    yield from p2p_send(
                        ctx, ctx.rank + 1, "d", bufs[ctx.rank][0],
                        threshold=1 << 30,
                    )
                else:
                    yield from p2p_recv(
                        ctx, ctx.rank - 1, "d", bufs[ctx.rank][1],
                        threshold=1 << 30,
                    )

            procs = comm.run_ranks(rank)
            return max(p.finish_time for p in procs), comm.shm.segment

        t_small, seg_small = total_time(slots=1)
        t_big, seg_big = total_time(slots=64)
        assert seg_small.peak_waiters > 0  # pool was exhausted
        assert seg_big.peak_waiters == 0
        assert t_small > 3 * t_big  # 8 pairs forced through 1 slot

    def test_slots_returned_after_transfer(self):
        arch = make_generic(sockets=1, cores_per_socket=4)
        node = Node(arch)
        comm = Comm(node, 2)
        a = comm.allocate(0, 30_000)
        b = comm.allocate(1, 30_000)

        def rank(ctx):
            if ctx.rank == 0:
                yield from p2p_send(ctx, 1, "d", a, threshold=1 << 30)
            else:
                yield from p2p_recv(ctx, 0, "d", b, threshold=1 << 30)

        comm.run_ranks(rank)
        assert comm.shm.segment.slots_in_use == 0
