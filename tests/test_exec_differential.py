"""Differential tests for the sweep executor (parallel == serial == cached).

The executor's whole value rests on one guarantee: fanning points over a
process pool or serving them from the on-disk cache returns *bit-identical*
results to running them serially in-process.  These tests pin that contract
on real slices of the paper's artifacts — Fig. 3 (CMA microbenchmarks),
Fig. 7 (scatter collectives), and Table IV (NLLS fits) — plus the
cache-warm speedup criterion on a full ``run_experiment``.
"""

import pytest

import repro.exec.sweep as sweep_mod
from repro.bench.figures import run_experiment
from repro.bench.microbench import one_to_all_latency
from repro.core.fitting import fit_architecture
from repro.core.runner import CollectiveSpec, run_collective
from repro.exec import ExecContext, ResultCache, use_context
from repro.exec.sweep import run_specs, sweep_microbench
from repro.machine import get_arch


def _result_fields(res):
    return (
        res.latency_us,
        tuple(res.per_rank_us),
        res.ctrl_messages,
        res.cma_reads,
        res.cma_writes,
        res.sim_events,
    )


def _fig07_slice_specs():
    """A small slice of Fig. 7: scatter algorithms on the KNL model."""
    arch = get_arch("knl")
    specs = []
    for eta in (16 * 1024, 256 * 1024):
        for alg, params in (
            ("parallel_read", {}),
            ("sequential_write", {}),
            ("throttled_read", {"k": 4}),
        ):
            specs.append(
                CollectiveSpec(
                    "scatter", alg, arch, procs=12, eta=eta, params=params
                )
            )
    return specs


@pytest.mark.parametrize("workers", [2, 4])
def test_collective_slice_parallel_matches_serial(workers):
    specs = _fig07_slice_specs()
    serial = [run_collective(s) for s in specs]
    with use_context(ExecContext(workers=workers)):
        pooled = run_specs(specs)
    assert [_result_fields(r) for r in pooled] == [
        _result_fields(r) for r in serial
    ]


def test_collective_slice_cached_matches_serial(tmp_path):
    specs = _fig07_slice_specs()
    serial = [run_collective(s) for s in specs]
    cache = ResultCache(tmp_path / "cache")
    with use_context(ExecContext(workers=2, cache=cache)) as cold:
        first = run_specs(specs)
    with use_context(ExecContext(workers=2, cache=cache)) as warm:
        second = run_specs(specs)
    expect = [_result_fields(r) for r in serial]
    assert [_result_fields(r) for r in first] == expect
    assert [_result_fields(r) for r in second] == expect
    assert cold.stats.cache_hits == 0 and cold.stats.points_run == len(specs)
    assert warm.stats.cache_hits == len(specs) and warm.stats.points_run == 0


def test_microbench_slice_parallel_and_cached_match_serial(tmp_path):
    """Fig. 3 slice: one-to-all CMA latency on the Broadwell model."""
    arch = get_arch("broadwell")
    calls = [
        (arch, (readers, nbytes), {})
        for readers in (1, 4)
        for nbytes in (16 * 1024, 64 * 1024)
    ]
    serial = [one_to_all_latency(arch, readers, nbytes)
              for _, (readers, nbytes), _ in calls]
    cache = ResultCache(tmp_path / "cache")
    with use_context(ExecContext(workers=2, cache=cache)):
        pooled = sweep_microbench("one_to_all_latency", calls)
    with use_context(ExecContext(workers=2, cache=cache)) as warm:
        cached = sweep_microbench("one_to_all_latency", calls)
    assert pooled == serial
    assert cached == serial
    assert warm.stats.cache_hits == len(calls)


def test_fitted_params_parallel_and_cached_match_serial(tmp_path):
    """Table IV slice: the NLLS fit is identical serial, pooled, and cached."""
    arch = get_arch("broadwell")
    axes = dict(page_counts=(10, 20), reader_counts=[1, 2, 4, 8])
    serial = fit_architecture(arch, **axes)
    cache = ResultCache(tmp_path / "cache")
    with use_context(ExecContext(workers=2, cache=cache)):
        pooled = fit_architecture(arch, **axes)
    with use_context(ExecContext(workers=2, cache=cache)) as warm:
        cached = fit_architecture(arch, **axes)
    assert pooled == serial
    assert cached == serial
    assert warm.stats.cache_hits >= 1


def test_run_experiment_cache_warm_is_cheaper(tmp_path, monkeypatch):
    """Full-figure acceptance criterion: a cache-warm ``run_experiment`` does
    at least 5x fewer ``run_collective`` invocations than a cold one, and
    produces identical output."""
    calls = {"n": 0}
    real = sweep_mod._compute_collective

    def counting(spec, warm):
        calls["n"] += 1
        return real(spec, warm)

    monkeypatch.setattr(sweep_mod, "_compute_collective", counting)

    cache = ResultCache(tmp_path / "cache")
    cold = run_experiment("fig07", quick=True, workers=1, cache=cache)
    cold_calls = calls["n"]
    calls["n"] = 0
    warm = run_experiment("fig07", quick=True, workers=1, cache=cache)
    warm_calls = calls["n"]

    assert cold_calls > 0
    assert warm_calls * 5 <= cold_calls
    assert warm.data == cold.data
    assert [t.render() for t in warm.tables] == [t.render() for t in cold.tables]
    assert warm.stats is not None and warm.stats.cache_hits >= cold_calls
