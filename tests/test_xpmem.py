"""Mapped-window (XPMEM-style) lane differential battery.

The fourth kernel mechanism must honour the same three-mode contract as
the CMA convoy machinery (``tests/test_convoy.py``): every workload runs
under

* ``unfused``  — ``Simulator(use_pin_convoy=False)``, the reference;
* ``record``   — ``Simulator(use_convoy_burst=False)``, fused commands
  executed record-at-a-time;
* ``burst``    — ``Simulator()``, the default fast path (the cold
  fault-in storm rides a :class:`~repro.sim.engine.FaultConvoy` with the
  pin-free copy fused on as its tail);

and all three must agree bit-exactly: timestamps, FIFO grant order, mutex
statistics, event counts, and the xpmem accounting counters.  Tracing is
the fourth mode: it shares one code path across engines, and its
timestamps must equal the untraced runs'.

Coverage: the five native xpmem collectives x three architectures, cold
versus warm attach, a mid-run attacher joining a drained window, and a
hypothesis-randomized attach/copy interleaving whose property is exact
map/fault accounting — map cost charged once per (owner, attacher) pair,
each window page faulted exactly once per pair, however the copies
interleave.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import CollectiveSpec, _execute, _validated_algorithm
from repro.machine import get_arch
from repro.machine.arch import ARCH_NAMES
from repro.mpi.communicator import Comm, Node
from repro.sim import Delay, Simulator

MODES = {
    "unfused": {"use_pin_convoy": False},
    "record": {"use_convoy_burst": False},
    "burst": {},
}

_MIB = 1 << 20


def _lock_stats(node):
    """Exact per-mm-lock statistics, in pid order (as in test_convoy)."""
    out = []
    for pid in sorted(node.cma._mm_locks):
        mm = node.cma._mm_locks[pid]
        m = mm.mutex
        out.append(
            (
                pid,
                mm.pages_pinned,
                m.acquisitions,
                m.total_wait_us,
                m.max_contenders,
                m.generation,
                m.holder is None,
                len(m._waiters),
            )
        )
    return out


def _xpmem_stats(node):
    x = node.xpmem
    return (x.attaches, x.maps_charged, x.page_faults, x.reads, x.writes)


def _run_spec(spec: CollectiveSpec, sim_kw: dict):
    fn = _validated_algorithm(spec)
    node = Node(spec.arch, verify=spec.verify, trace=spec.trace,
                sim=Simulator(**sim_kw))
    comm = Comm(node, spec.procs)
    res = _execute(spec, fn, node, comm)
    return (
        res.latency_us,
        tuple(res.per_rank_us),
        res.ctrl_messages,
        res.sim_events,
        _xpmem_stats(node),
        _lock_stats(node),
        tuple(sorted(res.trace_by_phase.items())) if spec.trace else None,
    )


def _assert_modes_agree(run_one):
    ref = run_one(MODES["unfused"])
    for name in ("record", "burst"):
        got = run_one(MODES[name])
        assert got == ref, f"{name} diverged from unfused reference"
    return ref


# -- collective battery ------------------------------------------------------

_BATTERY = [
    ("scatter", "xpmem_read", {}),
    ("gather", "xpmem_write", {}),
    ("bcast", "xpmem_read", {}),
    ("allgather", "xpmem_ring", {}),
    ("alltoall", "xpmem_pairwise", {}),
]


@pytest.mark.parametrize("archname", ARCH_NAMES)
@pytest.mark.parametrize("coll,alg,params", _BATTERY)
def test_collectives_bit_exact_across_modes(archname, coll, alg, params):
    spec_kw = dict(
        collective=coll,
        algorithm=alg,
        arch=get_arch(archname),
        procs=6,
        eta=180_000,
        params=params,
        verify=False,
    )
    ref = _assert_modes_agree(
        lambda kw: _run_spec(CollectiveSpec(**spec_kw), kw)
    )
    attaches, maps, faults, reads, writes = ref[4]
    assert maps > 0 and attaches >= maps  # the lane actually ran cold
    assert faults > 0
    assert (reads + writes) > 0


@pytest.mark.parametrize("archname", ARCH_NAMES)
@pytest.mark.parametrize("coll,alg", [("scatter", "xpmem_read"),
                                      ("bcast", "xpmem_read")])
def test_traced_run_identical_across_modes(archname, coll, alg):
    """Tracing pins the kernel to its unfused path in every engine mode, so
    traced runs must agree on *everything* — and their timestamps must
    equal the untraced fused run's (tracing never changes simulated time).
    """
    spec_kw = dict(
        collective=coll,
        algorithm=alg,
        arch=get_arch(archname),
        procs=6,
        eta=120_000,
        verify=False,
    )
    untraced = _run_spec(CollectiveSpec(**spec_kw), MODES["burst"])

    def run_traced(kw):
        return _run_spec(CollectiveSpec(**spec_kw, trace=True), kw)

    ref = run_traced(MODES["unfused"])
    for name in ("record", "burst"):
        assert run_traced(MODES[name]) == ref
    assert ref[0] == untraced[0]  # latency
    assert ref[1] == untraced[1]  # per-rank timestamps
    assert ref[4] == untraced[4]  # xpmem accounting
    spans = dict(ref[6])
    for phase in ("xmake", "xattach", "xmap", "fault", "copy"):
        assert phase in spans, f"traced run recorded no {phase!r} span"


# -- window workloads built directly on a node -------------------------------


def _window_workload(node, comm, n_owners, window_bytes, scripts):
    """Owners export one window each; reader scripts attach and copy.

    ``scripts[i]`` drives reader rank ``n_owners + i``: a list of
    ``(owner, delay, offset, nbytes, rounds)`` entries — attach to
    ``owner``'s window (every entry re-attaches: the map cost must still
    be charged only once per pair), then copy ``rounds`` times from
    ``[offset, offset + nbytes)``.

    Returns (procs, windows) where ``windows[o]`` is owner ``o``'s buffer.
    """
    windows = [
        comm.allocate(o, max(window_bytes, 1), name=f"win{o}")
        for o in range(n_owners)
    ]
    box = {}

    def owner(ctx):
        segid = yield from node.xpmem.make_segid(
            ctx.proc, windows[ctx.rank].addr, window_bytes
        )
        box[ctx.rank] = segid
        yield from ctx.sm_barrier("xw-ready")

    def reader(ctx, script):
        yield from ctx.sm_barrier("xw-ready")
        for owner_idx, delay, offset, nbytes, rounds in script:
            if delay:
                yield Delay(delay)
            segid = box[owner_idx]
            yield from node.xpmem.attach(ctx.proc, segid)
            base = windows[owner_idx].addr
            for _ in range(rounds):
                yield from node.xpmem.copy_from(
                    ctx.proc, segid, (0, nbytes), (base + offset, nbytes)
                )

    procs = [comm.spawn_rank(o, owner) for o in range(n_owners)]
    for i, script in enumerate(scripts):
        procs.append(
            comm.spawn_rank(
                n_owners + i,
                lambda ctx, s=script: reader(ctx, s),
            )
        )
    return procs, windows


def _snapshot(node, procs):
    return (
        node.sim.now,
        tuple(p.finish_time for p in procs),
        node.sim.events_processed,
        _xpmem_stats(node),
        _lock_stats(node),
    )


def _expected_accounting(node, comm, n_owners, windows, scripts):
    """(distinct pairs, exact per-pair faulted page sets) from the scripts."""
    ps = node.arch.params.page_size
    expected: dict[tuple[int, int], set[int]] = {}
    for i, script in enumerate(scripts):
        reader_pid = comm.pid_of(n_owners + i)
        for owner_idx, _delay, offset, nbytes, _rounds in script:
            pair = (comm.pid_of(owner_idx), reader_pid)
            base = windows[owner_idx].addr
            lo = (base + offset) // ps
            hi = (base + offset + nbytes - 1) // ps
            expected.setdefault(pair, set()).update(range(lo, hi + 1))
    return expected


def test_cold_then_warm_attach_bit_exact():
    """Round 1 is the cold storm (map + fault-in under the owner's lock);
    rounds 2..n are warm, pin-free copies.  Bit-exact in every mode, map
    cost charged once per pair despite one attach call per entry."""
    window = 12 * 4096
    scripts = [[(0, 0.0, 0, window, 1), (0, 0.0, 0, window, 3)]
               for _ in range(5)]

    def run_one(kw):
        node = Node(get_arch("knl"), verify=False, trace=False,
                    sim=Simulator(**kw))
        comm = Comm(node, 6)
        procs, _ = _window_workload(node, comm, 1, window, scripts)
        node.sim.run_all(procs)
        return _snapshot(node, procs)

    snap = _assert_modes_agree(run_one)
    attaches, maps, faults, reads, _w = snap[3]
    assert attaches == 10  # two attach calls per reader
    assert maps == 5  # ...but one map charge per (owner, reader) pair
    assert faults == 5 * 12  # every window page faulted once per pair
    assert reads == 5 * 4


def test_warm_copies_never_touch_the_mm_lock():
    """After the cold round, further copies must not acquire the owner's
    mm lock at all: acquisitions == pages faulted, regardless of rounds."""
    window = 8 * 4096
    node = Node(get_arch("knl"), verify=False, trace=False)
    comm = Comm(node, 4)
    scripts = [[(0, 0.0, 0, window, 6)] for _ in range(3)]
    procs, _ = _window_workload(node, comm, 1, window, scripts)
    node.sim.run_all(procs)
    mm = node.cma._mm_locks[comm.pid_of(0)]
    assert node.xpmem.page_faults == 3 * 8
    assert mm.mutex.acquisitions == 3 * 8  # cold faults only, no warm locks
    assert node.xpmem.reads == 3 * 6


def test_mid_run_attacher_join_bit_exact():
    """A late attacher joining after the early readers' windows are warm
    pays its own full map + fault-in — and the join must not disturb the
    steady-state readers' timestamps in any mode."""
    window = 10 * 4096
    scripts = [[(0, 0.0, 0, window, 4)] for _ in range(4)]
    scripts.append([(0, 150.0, 0, window, 2)])  # the latecomer

    def run_one(kw):
        node = Node(get_arch("broadwell"), verify=False, trace=False,
                    sim=Simulator(**kw))
        comm = Comm(node, 6)
        procs, _ = _window_workload(node, comm, 1, window, scripts)
        node.sim.run_all(procs)
        return _snapshot(node, procs)

    snap = _assert_modes_agree(run_one)
    _attaches, maps, faults, _r, _w = snap[3]
    assert maps == 5  # the latecomer's map is charged like anyone's
    assert faults == 5 * 10


def test_reset_dangles_segids_and_restarts_the_counter():
    node = Node(get_arch("knl"), verify=False, trace=False)
    comm = Comm(node, 3)
    window = 4 * 4096
    scripts = [[(0, 0.0, 0, window, 1)] for _ in range(2)]
    procs, _ = _window_workload(node, comm, 1, window, scripts)
    node.sim.run_all(procs)
    stale = next(iter(node.xpmem._segids))
    node.reset()
    comm.reset()
    # the old segid dangles: attaching it must fail with ENOENT
    from repro.kernel.errors import CMAError, ENOENT

    def attacher(ctx):
        yield from node.xpmem.attach(ctx.proc, stale)

    p = comm.spawn_rank(1, attacher)
    with pytest.raises(CMAError) as err:
        node.sim.run_all([p])
    assert err.value.errno == ENOENT
    # ...and a fresh export mints the same first segid a fresh node would
    node.reset()
    comm.reset()
    procs, _ = _window_workload(node, comm, 1, window, scripts)
    node.sim.run_all(procs)
    assert stale in node.xpmem._segids


def test_make_segid_idempotent_per_region():
    node = Node(get_arch("knl"), verify=False, trace=False)
    comm = Comm(node, 2)
    win = comm.allocate(0, 8 * 4096, name="w")
    got = {}

    def owner(ctx):
        a = yield from node.xpmem.make_segid(ctx.proc, win.addr, 4096)
        t_mid = ctx.sim.now
        b = yield from node.xpmem.make_segid(ctx.proc, win.addr, 4096)
        got["free_repeat"] = ctx.sim.now == t_mid  # repeat export is free
        c = yield from node.xpmem.make_segid(ctx.proc, win.addr, 2 * 4096)
        got["ids"] = (a, b, c)

    node.sim.run_all([comm.spawn_rank(0, owner)])
    a, b, c = got["ids"]
    assert a == b and c != a  # same region -> same segid; new size -> new id
    assert got["free_repeat"]


# -- randomized interleavings (the accounting property) ----------------------


@settings(deadline=None, max_examples=25)
@given(
    n_owners=st.integers(min_value=1, max_value=2),
    window_pages=st.integers(min_value=2, max_value=5),
    scripts=st.lists(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),      # owner (mod n)
                st.floats(min_value=0.0, max_value=40.0,
                          allow_nan=False, allow_infinity=False),  # delay
                st.integers(min_value=0, max_value=4 * 4096 - 1),  # offset
                st.integers(min_value=1, max_value=3 * 4096),      # nbytes
                st.integers(min_value=1, max_value=2),      # rounds
            ),
            min_size=1,
            max_size=3,
        ),
        min_size=2,
        max_size=4,
    ),
)
def test_random_interleavings_charge_once_and_fault_once(
    n_owners, window_pages, scripts
):
    """However attaches and copies interleave across processes: the map
    cost lands exactly once per (owner, attacher) pair, and every touched
    page faults exactly once per pair — total faulted == distinct touched.
    And the whole interleaving is bit-exact across engine modes."""
    ps = 4096  # knl page size
    window = window_pages * ps
    # clamp script entries into the window and onto real owners
    scripts = [
        [
            (o % n_owners, d, off % window, min(n, window - off % window), r)
            for o, d, off, n, r in script
        ]
        for script in scripts
    ]

    def run_one(kw):
        node = Node(get_arch("knl"), verify=False, trace=False,
                    sim=Simulator(**kw))
        comm = Comm(node, n_owners + len(scripts))
        procs, windows = _window_workload(node, comm, n_owners, window, scripts)
        node.sim.run_all(procs)
        return _snapshot(node, procs), node, comm, windows

    ref, node, comm, windows = run_one(MODES["unfused"])
    for name in ("record", "burst"):
        got = run_one(MODES[name])[0]
        assert got == ref, f"{name} diverged from unfused reference"

    expected = _expected_accounting(node, comm, n_owners, windows, scripts)
    assert node.xpmem.maps_charged == len(expected)
    assert node.xpmem.page_faults == sum(len(s) for s in expected.values())
    assert {
        pair: pages for pair, pages in node.xpmem._faulted.items()
    } == expected
    assert node.xpmem.attaches == sum(len(s) for s in scripts)
