"""Supervision layer: hung-chunk detection, randomized worker loss, and
the circuit breaker's degradation ladder.

The contract under test (ISSUE 10 tentpole #2): worker-level trouble —
dead workers, hung chunks, repeat-killer points — is absorbed below the
sweep (respawn, poison ladder, sandbox), and *pool-level* trouble
degrades dispatch sched → legacy → serial without ever changing results.
"""

import multiprocessing
import os
import pickle
import time

import pytest

from repro.exec import ExecContext, use_context
from repro.exec import chaos
from repro.exec.chaos import ENV_CHAOS
from repro.exec.sched import (
    DEFAULT_HUNG_S,
    CircuitBreaker,
    StickyPool,
    resolve_hung_s,
    resolve_max_respawns,
    resolve_poison_strikes,
)
from repro.exec.sweep import sweep


def _triple(x):
    return x * 3


def _square(x):
    return x * x


def _stall_in_sched_worker(x):
    """Hang forever — but only inside a scheduler worker process; the
    sandbox and inline salvage (different process names) compute fine."""
    name = multiprocessing.current_process().name
    if name.startswith("repro-sched-") and "sandbox" not in name:
        time.sleep(600)
    return x * 3


def _live_pids():
    return {p.pid for p in multiprocessing.active_children()}


def _assert_no_new_children(before, deadline_s=10.0):
    deadline = time.monotonic() + deadline_s
    while True:
        leftover = [p for p in multiprocessing.active_children()
                    if p.pid not in before]
        if not leftover:
            return
        if time.monotonic() > deadline:
            raise AssertionError(f"stray workers survived: {leftover}")
        time.sleep(0.05)


def _make_pool(**kwargs):
    try:
        return StickyPool(2, **kwargs)
    except Exception as exc:  # pragma: no cover - fork-restricted hosts
        pytest.skip(f"cannot start scheduler workers: {exc}")


# -- knob resolution ----------------------------------------------------------


class TestKnobs:
    def test_hung_s(self, monkeypatch):
        assert resolve_hung_s(None) == DEFAULT_HUNG_S
        assert resolve_hung_s(12.5) == 12.5
        assert resolve_hung_s(0) is None  # <= 0 disables detection
        monkeypatch.setenv("REPRO_HUNG_CHUNK_S", "7")
        assert resolve_hung_s(None) == 7.0
        with pytest.raises(ValueError):
            resolve_hung_s("soon")

    def test_max_respawns(self, monkeypatch):
        assert resolve_max_respawns(None, 4) == 16
        assert resolve_max_respawns(3, 4) == 3
        monkeypatch.setenv("REPRO_SCHED_RESPAWNS", "9")
        assert resolve_max_respawns(None, 4) == 9

    def test_poison_strikes(self, monkeypatch):
        assert resolve_poison_strikes(None) == 2
        assert resolve_poison_strikes(0) == 1  # floor: one strike minimum
        monkeypatch.setenv("REPRO_POISON_STRIKES", "5")
        assert resolve_poison_strikes(None) == 5


# -- hung-chunk detection -----------------------------------------------------


class TestHungChunks:
    def test_hung_worker_is_killed_and_point_rescued(self):
        """A chunk that stalls forever must be detected by heartbeat age
        (the worker is *alive*, just silent), the worker killed, and the
        blamed point rescued in the sandbox — the sweep completes with
        correct values instead of hanging for REPRO_HUNG_CHUNK_S."""
        points = list(range(4))
        before = _live_pids()
        pool = _make_pool(hung_s=0.75, poison_strikes=1, max_respawns=50)
        try:
            t0 = time.monotonic()
            results, stats = pool.run(
                _stall_in_sched_worker, points, costs=[1.0] * len(points)
            )
            wall = time.monotonic() - t0
        finally:
            pool.close()
        assert results == [x * 3 for x in points]
        assert stats.hung_kills >= 1
        assert stats.sandbox_rescues >= 1
        assert stats.poisoned == 0
        assert wall < 60.0, f"hung detection took {wall:.1f}s"
        _assert_no_new_children(before)

    def test_hung_detection_can_be_disabled(self):
        pool = _make_pool(hung_s=0)  # <= 0 resolves to None: never kill
        try:
            assert pool.hung_s is None
            # Healthy work still flows with detection off.
            results, stats = pool.run(_triple, [1, 2, 3, 4], costs=[1.0] * 4)
        finally:
            pool.close()
        assert results == [3, 6, 9, 12]
        assert stats.hung_kills == 0


# -- randomized worker loss ---------------------------------------------------


class TestRandomizedWorkerLoss:
    def test_seeded_kill_storms_keep_bit_identity(self):
        """Property-style battery: across randomized chaos seeds and sweep
        sizes, SIGKILLed workers mid-chunk must never change results —
        whatever mix of respawn, salvage, sandbox rescue, or inline
        fallback each seed happens to exercise."""
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import HealthCheck, given, settings, strategies as st

        @settings(
            max_examples=5,
            deadline=None,
            suppress_health_check=list(HealthCheck),
        )
        @given(seed=st.integers(0, 10_000), npoints=st.integers(4, 12))
        def battery(seed, npoints):
            points = list(range(npoints))
            serial = [_triple(x) for x in points]
            os.environ[ENV_CHAOS] = f"{seed}:kill@0.4"
            chaos.reset_state()
            try:
                pool = _make_pool(max_respawns=40, poison_strikes=2)
                try:
                    results, _stats = pool.run(
                        _triple, points, costs=[1.0] * npoints
                    )
                finally:
                    pool.close()
            finally:
                os.environ.pop(ENV_CHAOS, None)
                chaos.reset_state()
            assert pickle.dumps(results) == pickle.dumps(serial)

        before = _live_pids()
        battery()
        _assert_no_new_children(before)

    def test_killed_sweep_workers_with_journal_replays_cleanly(
        self, tmp_path, monkeypatch
    ):
        """Full-stack: a journalled scheduled sweep under a kill plan must
        finish bit-identical to serial and retire its journal (nothing
        half-recorded left behind)."""
        points = list(range(10))
        serial = [x * x for x in points]
        before = _live_pids()
        monkeypatch.setenv(ENV_CHAOS, "11:kill@0.3")
        monkeypatch.setenv("REPRO_SCHED_RESPAWNS", "64")
        chaos.reset_state()
        try:
            ctx = ExecContext(workers=2, journal=tmp_path)
            # Adopt an explicit pool: a one-usable-CPU host would pick
            # inline dispatch, where worker-scoped chaos never fires.
            ctx.adopt_sched_pool(_make_pool())
            with use_context(ctx):
                results = sweep("supervision-kill", _square, points)
        finally:
            monkeypatch.delenv(ENV_CHAOS, raising=False)
            chaos.reset_state()
        assert pickle.dumps(results) == pickle.dumps(serial)
        assert list(tmp_path.glob("*.wal")) == []
        assert ctx.stats.poisoned == 0
        _assert_no_new_children(before)


# -- circuit breaker ----------------------------------------------------------


class TestCircuitBreaker:
    def test_degradation_ladder(self):
        b = CircuitBreaker(threshold=2)
        assert b.state == "sched" and not b.tripped
        b.record_sched_failure()
        assert b.state == "sched"
        b.record_sched_failure()
        assert b.state == "legacy" and b.tripped
        b.record_legacy_failure()
        b.record_legacy_failure()
        assert b.state == "serial"
        assert "serial" in b.describe()

    def test_tripped_breaker_stops_sched_pool_creation(self):
        ctx = ExecContext(workers=2)
        try:
            ctx.breaker.record_sched_failure()
            ctx.breaker.record_sched_failure()
            assert ctx.breaker.state == "legacy"
            assert ctx.sched_pool() is None
        finally:
            ctx.close()

    def test_serial_breaker_forces_inline_sweep(self):
        ctx = ExecContext(workers=2)
        for _ in range(2):
            ctx.breaker.record_sched_failure()
            ctx.breaker.record_legacy_failure()
        assert ctx.breaker.state == "serial"
        try:
            with use_context(ctx):
                results = sweep("breaker-serial", _square, list(range(6)))
        finally:
            ctx.close()
        assert results == [x * x for x in range(6)]
        assert ctx.stats.breaker_state == "serial"
