"""The work-stealing sweep scheduler's contract battery.

Three layers, mirroring DESIGN.md §5:

* **Bit-identity** (hypothesis): whatever the scheduler does — chunking,
  stealing, sticky routing, sharded vs flat cache — results must be
  byte-for-byte what a serial uncached run produces, across
  ``workers ∈ {1, 2, 8}`` × stealing on/off × shard layouts.
* **Routing invariants** (unit): a warm group never runs on two workers
  concurrently (asserted both structurally on :class:`_Router` and
  empirically from profile timelines of a real :class:`StickyPool`),
  stealing moves whole non-busy groups only, and chunks respect the cost
  target and ``MAX_CHUNK``.
* **Robustness**: worker death salvages inline with identical results;
  point exceptions propagate without poisoning the pool; the deadline
  path runs points concurrently and retries on idle workers.
"""

import itertools
import os
import shutil
import tempfile
import time
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.exec.sched as sched_mod
from repro.bench.report import sweep_summary
from repro.core.model import AnalyticModel
from repro.core.runner import CollectiveSpec, run_collective
from repro.exec import ExecContext, ResultCache, use_context
from repro.exec.cache import resolve_shards
from repro.exec.context import resolve_sched
from repro.exec.pool import map_points
from repro.exec.sched import (
    MAX_CHUNK,
    CostModel,
    PoisonedPoint,
    StickyPool,
    _Router,
    build_chunks,
    run_scheduled,
)
from repro.exec.sweep import (
    _exec_point,
    _pool_group_key,
    _slim_point,
    run_specs,
)
from repro.machine import get_arch


# -- module-level so pool workers can pickle them ---------------------------


def _double(x):
    return x * 2


def _timed_point(pt):
    """Sleep for the point's duration, then echo it back."""
    _gid, _idx, dur = pt
    time.sleep(dur)
    return pt


def _raise_on_neg(x):
    if x < 0:
        raise ValueError(f"negative point {x}")
    return x + 1


def _exit_in_worker(x):
    """Kill the hosting process — but only when it isn't the test parent
    (inline salvage must be able to run this very function safely).
    Also kills the poison sandbox, which is not the parent either."""
    if str(os.getpid()) != os.environ.get("SCHED_TEST_PARENT_PID", ""):
        os._exit(23)
    return x * 3


def _exit_in_sched_worker(x):
    """Kill scheduler worker processes only: the poison-retry sandbox
    (named ``repro-sched-sandbox``) and the parent run it fine."""
    import multiprocessing as mp

    if mp.current_process().name.startswith("repro-sched-") and \
            "sandbox" not in mp.current_process().name:
        os._exit(23)
    return x * 3


def _sleep_quarter(x):
    time.sleep(0.25)
    return x


def _hang_first_attempt(pt):
    """Hangs (bounded) the first time the flagged point runs; the retry —
    which must land on an *idle* worker — sees the flag file and returns."""
    flag, value = pt
    if flag is not None and not os.path.exists(flag):
        with open(flag, "w") as f:
            f.write("x")
        time.sleep(3.0)
    return value


# -- shared fixtures --------------------------------------------------------


def _fig07_slice_specs():
    arch = get_arch("knl")
    specs = []
    for eta in (16 * 1024, 256 * 1024):
        for alg, params in (
            ("parallel_read", {}),
            ("sequential_write", {}),
            ("throttled_read", {"k": 4}),
        ):
            specs.append(
                CollectiveSpec(
                    "scatter", alg, arch, procs=12, eta=eta, params=params
                )
            )
    return specs


def _result_fields(res):
    return (
        res.latency_us,
        tuple(res.per_rank_us),
        res.ctrl_messages,
        res.cma_reads,
        res.cma_writes,
        res.sim_events,
    )


_BASELINE = None


def _serial_baseline():
    global _BASELINE
    if _BASELINE is None:
        _BASELINE = [_result_fields(run_collective(s)) for s in _fig07_slice_specs()]
    return _BASELINE


def _make_pool(workers, **kwargs):
    try:
        return StickyPool(workers, **kwargs)
    except Exception as exc:  # pragma: no cover - fork-restricted hosts
        pytest.skip(f"cannot start scheduler workers: {exc}")


# -- bit-identity battery ----------------------------------------------------


class TestBitIdentity:
    @settings(max_examples=24, deadline=None)
    @given(
        workers=st.sampled_from([1, 2, 8]),
        mode=st.sampled_from(["steal", "nosteal"]),
        shards=st.sampled_from([1, 256]),
    )
    def test_scheduled_sweep_matches_serial(self, workers, mode, shards):
        """workers x stealing x sharded/flat cache: all bit-identical."""
        specs = _fig07_slice_specs()
        expect = _serial_baseline()
        tmp = tempfile.mkdtemp(prefix="sched-cache-")
        try:
            cache = ResultCache(tmp, shards=shards)
            with use_context(
                ExecContext(workers=workers, sched=mode, cache=cache)
            ) as cold:
                first = run_specs(specs)
            with use_context(
                ExecContext(workers=workers, sched=mode, cache=cache)
            ) as warm:
                second = run_specs(specs)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        assert [_result_fields(r) for r in first] == expect
        assert [_result_fields(r) for r in second] == expect
        assert cold.stats.cache_hits == 0
        assert cold.stats.points_run == len(specs)
        assert warm.stats.cache_hits == len(specs)
        assert warm.stats.points_run == 0

    def test_sticky_pool_matches_serial(self):
        """Actual multi-process dispatch returns exactly the serial values."""
        specs = _fig07_slice_specs()
        points = [_slim_point(s, warm=True) for s in specs]
        serial = [_exec_point(p) for p in points]
        cm = CostModel()
        costs = [cm.cost(p) for p in points]
        groups = [_pool_group_key(p) for p in points]
        pool = _make_pool(2)
        try:
            results, stats = pool.run(
                _exec_point, points, costs=costs, groups=groups, stealing=True
            )
        finally:
            pool.close()
        assert results == serial
        assert stats.pooled and stats.points == len(points)
        assert sum(stats.chunk_sizes) == len(points)

    def test_on_result_streams_every_point(self):
        seen = {}
        results, stats = run_scheduled(
            _double,
            list(range(10)),
            workers=1,
            costs=[1.0] * 10,
            on_result=lambda i, v: seen.__setitem__(i, v),
        )
        assert results == [x * 2 for x in range(10)]
        assert seen == {i: i * 2 for i in range(10)}
        assert stats.chunks >= 1


# -- routing invariants ------------------------------------------------------


def _overlapping(a, b):
    return a["start_s"] < b["end_s"] and b["start_s"] < a["end_s"]


def _assert_groups_exclusive(profile):
    """No group's chunks may overlap in time across different workers."""
    by_group = {}
    for rec in profile:
        by_group.setdefault(rec["group"], []).append(rec)
    for group, recs in by_group.items():
        for a, b in itertools.combinations(recs, 2):
            if a["worker"] != b["worker"]:
                assert not _overlapping(a, b), (
                    f"group {group} ran concurrently on workers "
                    f"{a['worker']} and {b['worker']}: {a} vs {b}"
                )
    return by_group


class TestStickyRouting:
    def _uneven_points(self):
        """Four equal-cost groups, two slow and two fast: LPT pairs them
        (fast, fast) vs (slow, slow), so the fast worker drains first and
        a steal is guaranteed while one slow group is still in flight."""
        points, groups = [], []
        for gid in range(4):
            dur = 0.08 if gid % 2 else 0.004
            for idx in range(3):
                points.append((gid, idx, dur))
                groups.append(("grp", gid))
        return points, groups

    def test_warm_group_never_on_two_workers_concurrently(self):
        points, groups = self._uneven_points()
        pool = _make_pool(2)
        try:
            results, stats = pool.run(
                _timed_point,
                points,
                costs=[1.0] * len(points),
                groups=groups,
                stealing=True,
                profile=True,
            )
        finally:
            pool.close()
        assert results == points
        assert stats.steals >= 1  # the drained worker stole a slow group
        assert stats.profile and len(stats.profile) == stats.chunks
        _assert_groups_exclusive(stats.profile)

    def test_nosteal_keeps_each_group_on_one_worker(self):
        points, groups = self._uneven_points()
        pool = _make_pool(2)
        try:
            results, stats = pool.run(
                _timed_point,
                points,
                costs=[1.0] * len(points),
                groups=groups,
                stealing=False,
                profile=True,
            )
        finally:
            pool.close()
        assert results == points
        assert stats.steals == 0
        by_group = _assert_groups_exclusive(stats.profile)
        for recs in by_group.values():
            assert len({r["worker"] for r in recs}) == 1

    def test_router_never_steals_a_busy_group(self):
        # Group A: two single-point chunks on w0; group B: one chunk on w1.
        plans = build_chunks(
            [2.0, 2.0, 1.0], ["A", "A", "B"], workers=2, oversub=1, max_chunk=1
        )
        router = _Router(plans, workers=2, stealing=True)
        first = router.next_for(0)
        assert first.group == "A"  # A is the costliest, LPT-assigned to w0
        assert router.next_for(1).group == "B"
        router.on_done(1)
        # A still has a chunk queued on w0 but is busy: unstealable.
        assert router.next_for(1) is None
        assert router.steals == 0
        router.on_done(0)
        stolen = router.next_for(1)
        assert stolen is not None and stolen.group == "A" and stolen.stolen
        assert router.steals == 1
        # The stolen group left w0's queue entirely (whole-group steals).
        assert router.next_for(0) is None

    def test_router_nosteal_idles_instead(self):
        plans = build_chunks(
            [2.0, 2.0, 1.0], ["A", "A", "B"], workers=2, oversub=1, max_chunk=1
        )
        router = _Router(plans, workers=2, stealing=False)
        assert router.next_for(1).group == "B"
        router.on_done(1)
        assert router.next_for(1) is None  # w0's work is not up for grabs
        assert router.steals == 0

    def test_router_dispatches_front_group_to_completion(self):
        plans = build_chunks(
            [3.0, 3.0, 1.0], ["A", "A", "C"], workers=1, oversub=1, max_chunk=1
        )
        router = _Router(plans, workers=1, stealing=True)
        order = []
        while True:
            ch = router.next_for(0)
            if ch is None:
                break
            order.append(ch.group)
            router.on_done(0)
        assert order == ["A", "A", "C"]  # sticky: A finishes before C starts

    def test_warm_hint_prefers_matching_worker(self):
        # Group key embeds the NodePool key in its first four fields.
        # Plain LPT would give the first (warm) group to w0; the hint —
        # within the 1.5x-mean load guard — routes it to warm w1 instead.
        g = ("knl", 12, True, False, False, "cma")
        h = ("bdw", 8, True, False, False, "cma")
        plans = build_chunks([1.0, 1.0], [g, h], workers=2)
        router = _Router(
            plans, workers=2, stealing=True,
            warm_hint={1: (("knl", 12, True, False),)},
        )
        assert [p.group for p in router.queues[1]] == [g]
        assert [p.group for p in router.queues[0]] == [h]


class TestChunking:
    def test_max_chunk_cap(self):
        plans = build_chunks([1.0] * 100, None, workers=1)
        sizes = [len(c.indices) for p in plans for c in p.chunks]
        assert sum(sizes) == 100
        assert max(sizes) <= MAX_CHUNK

    def test_cost_target_splits_heavy_points(self):
        # target = 13 / (2*1) = 6.5: the 10-cost point rides alone.
        plans = build_chunks(
            [10.0, 1.0, 1.0, 1.0], ["g"] * 4, workers=2, oversub=1
        )
        assert len(plans) == 1
        sizes = [len(c.indices) for c in plans[0].chunks]
        assert sizes == [1, 3]

    def test_biggest_group_first(self):
        plans = build_chunks([5.0, 20.0], ["small", "big"], workers=2)
        assert [p.group for p in plans] == ["big", "small"]

    def test_input_order_within_group(self):
        plans = build_chunks([1.0] * 6, ["g"] * 6, workers=1, max_chunk=2)
        indices = [i for c in plans[0].chunks for i in c.indices]
        assert indices == list(range(6))

    def test_ungrouped_chunks_are_individually_stealable(self):
        plans = build_chunks([1.0] * 4, None, workers=1, oversub=1, max_chunk=2)
        assert len(plans) == 2  # one pseudo-group per chunk
        assert all(len(p.chunks) == 1 for p in plans)
        assert {i for p in plans for i in p.chunks[0].indices} == {0, 1, 2, 3}


class TestCostModel:
    def test_collective_uses_analytic_model(self):
        arch = get_arch("knl")
        spec = CollectiveSpec("scatter", "parallel_read", arch, procs=12,
                              eta=64 * 1024)
        pt = _slim_point(spec, warm=True)
        cost = CostModel().cost(pt)
        expect = AnalyticModel(arch).predict(
            "scatter", "parallel_read", 12, 64 * 1024
        )
        assert cost == pytest.approx(expect)

    def test_bigger_messages_cost_more(self):
        arch = get_arch("knl")
        cm = CostModel()
        costs = [
            cm.cost(_slim_point(
                CollectiveSpec("scatter", "parallel_read", arch,
                               procs=12, eta=eta),
                warm=True,
            ))
            for eta in (4 * 1024, 64 * 1024, 1024 * 1024)
        ]
        assert costs == sorted(costs) and costs[0] < costs[-1]

    def test_unmodeled_algorithm_falls_back_to_heuristic(self):
        pt = SimpleNamespace(
            collective="scatter", algorithm="no_such_alg", arch="knl",
            procs=12, eta=65536, params=(), lane="cma",
        )
        cm = CostModel()
        assert cm.cost(pt) == pytest.approx(cm.heuristic(12, 65536, "cma"))

    def test_engine_resolves_unmodeled_algorithm(self):
        calls = []

        class _StubEngine:
            def lookup(self, collective, eta, procs):
                calls.append((collective, eta, procs))
                return SimpleNamespace(algorithm="parallel_read", params={})

        pt = SimpleNamespace(
            collective="scatter", algorithm="no_such_alg", arch="knl",
            procs=12, eta=65536, params=(), lane="cma",
        )
        cost = CostModel(engine=_StubEngine()).cost(pt)
        expect = AnalyticModel(get_arch("knl")).predict(
            "scatter", "parallel_read", 12, 65536
        )
        assert cost == pytest.approx(expect)
        assert calls == [("scatter", 65536, 12)]

    def test_microbench_points_price_by_size(self):
        cm = CostModel()
        small = SimpleNamespace(kwargs=(("nbytes", 1024), ("readers", 2)))
        big = SimpleNamespace(kwargs=(("nbytes", 1 << 20), ("readers", 2)))
        assert cm.cost(small) < cm.cost(big)

    def test_memoized(self):
        arch = get_arch("knl")
        pt = _slim_point(
            CollectiveSpec("scatter", "parallel_read", arch, procs=12,
                           eta=64 * 1024),
            warm=True,
        )
        cm = CostModel()
        assert cm.cost(pt) == cm.cost(pt)
        assert len(cm._memo) == 1


# -- robustness --------------------------------------------------------------


class TestSchedRobustness:
    def test_respawn_budget_exhaustion_salvages_inline(self, monkeypatch):
        """Old salvage contract, now behind the respawn budget: when the
        pool cannot keep workers alive it breaks and recomputes inline."""
        monkeypatch.setenv("SCHED_TEST_PARENT_PID", str(os.getpid()))
        pool = _make_pool(2, max_respawns=1, poison_strikes=99)
        try:
            results, stats = pool.run(
                _exit_in_worker, [1, 2, 3, 4], costs=[1.0] * 4
            )
        finally:
            pool.close()
        assert results == [3, 6, 9, 12]
        assert stats.fallback_points >= 1
        assert pool.broken

    def test_repeat_killer_points_are_quarantined(self, monkeypatch):
        """A point that keeps killing workers (and the sandbox) becomes a
        PoisonedPoint; the sweep completes and the pool stays usable."""
        monkeypatch.setenv("SCHED_TEST_PARENT_PID", str(os.getpid()))
        pool = _make_pool(2, max_respawns=50, poison_strikes=2)
        try:
            results, stats = pool.run(
                _exit_in_worker, [1, 2, 3, 4], costs=[1.0] * 4
            )
            assert not pool.broken
            assert all(isinstance(r, PoisonedPoint) for r in results)
            assert stats.poisoned == 4
            assert sorted(stats.poisoned_indices) == [0, 1, 2, 3]
            assert stats.respawns >= 4
            # The pool survived the quarantine: a healthy run still works.
            healthy, _ = pool.run(_double, [5, 6], costs=[1.0] * 2)
        finally:
            pool.close()
        assert healthy == [10, 12]

    def test_sandbox_rescues_worker_killer(self):
        """A point that only kills *scheduler workers* is rescued by the
        sandboxed one-shot retry — full results, zero quarantines."""
        pool = _make_pool(2, max_respawns=50, poison_strikes=1)
        try:
            results, stats = pool.run(
                _exit_in_sched_worker, [1, 2, 3, 4], costs=[1.0] * 4
            )
        finally:
            pool.close()
        assert results == [3, 6, 9, 12]
        assert stats.sandbox_rescues >= 1
        assert stats.poisoned == 0
        assert not pool.broken

    def test_point_exception_propagates_and_pool_survives(self):
        pool = _make_pool(2)
        try:
            with pytest.raises(ValueError, match="negative point"):
                pool.run(_raise_on_neg, [1, -2, 3], costs=[1.0] * 3)
            assert not pool.broken
            results, _ = pool.run(_double, [5, 6, 7, 8], costs=[1.0] * 4)
        finally:
            pool.close()
        assert results == [10, 12, 14, 16]

    def test_run_scheduled_inline_on_one_cpu(self, monkeypatch):
        monkeypatch.setattr(sched_mod, "usable_cpus", lambda: 1)
        results, stats = run_scheduled(
            _double, list(range(10)), workers=8, costs=[1.0] * 10
        )
        assert results == [x * 2 for x in range(10)]
        assert not stats.pooled
        assert stats.chunks >= 1


class TestDeadlinePath:
    def test_deadline_points_run_concurrently(self):
        """Satellite regression: with a timeout set, a full window of
        points is in flight — 8 quarter-second sleeps on 4 workers must
        beat the 2 s serial wall by a wide margin."""
        t0 = time.monotonic()
        out = map_points(
            _sleep_quarter, list(range(8)), workers=4, timeout=30.0
        )
        wall = time.monotonic() - t0
        assert out == list(range(8))
        assert wall < 1.5, f"deadline path serialized the window ({wall:.2f}s)"

    def test_retry_lands_on_idle_worker(self, tmp_path):
        flag = str(tmp_path / "hung-once")
        points = [(None, "a"), (flag, "slow"), (None, "b")]
        t0 = time.monotonic()
        out = map_points(
            _hang_first_attempt, points, workers=2, timeout=0.6, retries=2
        )
        wall = time.monotonic() - t0
        assert out == ["a", "slow", "b"]
        assert wall < 30.0  # retry ran concurrently, not after the hang


# -- context wiring and reporting -------------------------------------------


class TestContextIntegration:
    def test_sweep_records_sched_stats(self):
        specs = _fig07_slice_specs()
        with use_context(ExecContext(workers=2, sched="steal")) as ctx:
            run_specs(specs)
        assert ctx.stats.sched_points == len(specs)
        assert ctx.stats.sched_chunks >= 1
        line = sweep_summary(ctx.stats)
        assert "sched:" in line and "steals" in line

    def test_sched_off_uses_legacy_path(self):
        specs = _fig07_slice_specs()
        with use_context(ExecContext(workers=1, sched="off")) as ctx:
            results = run_specs(specs)
        assert [_result_fields(r) for r in results] == _serial_baseline()
        assert ctx.stats.sched_chunks == 0
        assert "sched:" not in sweep_summary(ctx.stats)

    def test_quarantine_count_surfaces_in_stats(self, tmp_path):
        specs = _fig07_slice_specs()[:2]
        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("collective", specs[0])
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"definitely not a pickle")
        with use_context(ExecContext(workers=1, cache=cache)) as ctx:
            results = run_specs(specs)
        assert [_result_fields(r) for r in results] == _serial_baseline()[:2]
        assert ctx.stats.cache_quarantined == 1
        assert "1 quarantined" in sweep_summary(ctx.stats)

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED", "nosteal")
        assert ExecContext(workers=1).sched == "nosteal"
        monkeypatch.setenv("REPRO_SCHED", "legacy")
        assert ExecContext(workers=1).sched == "off"
        monkeypatch.delenv("REPRO_SCHED")
        assert ExecContext(workers=1).sched == "steal"
        assert resolve_sched(" Steal ") == "steal"
        with pytest.raises(ValueError):
            resolve_sched("sideways")
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "16")
        assert resolve_shards() == 16
        with pytest.raises(ValueError):
            resolve_shards(7)
        with pytest.raises(ValueError):
            resolve_shards("lots")

    def test_sched_pool_gated_off(self, monkeypatch):
        assert ExecContext(workers=1).sched_pool() is None
        assert ExecContext(workers=4, sched="off").sched_pool() is None
        monkeypatch.setattr(sched_mod, "usable_cpus", lambda: 1)
        ctx = ExecContext(workers=4, sched="steal")
        try:
            assert ctx.sched_pool() is None  # 1 usable CPU: inline wins
        finally:
            ctx.close()
