"""Serve-layer battery: compiled tables must equal the live tuner.

The contract under test is exactness — every lookup a
:class:`~repro.serve.query.QueryEngine` answers, scalar or batched, at a
breakpoint or anywhere between, must name the same (algorithm, params)
the live :class:`~repro.core.tuning.Tuner` would pick — plus the serving
invariants around it: artifact round-trips, bounded tuner memo, refits
that recompile only perturbed rows, and table swaps that stay atomic
under concurrent readers.
"""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fitting import GammaSample, StreamingGammaFit
from repro.core.tuning import Tuner, apply_gamma
from repro.exec.cache import ResultCache
from repro.exec.context import ExecContext, use_context
from repro.bench.report import sweep_summary
from repro.machine import get_arch
from repro.serve import (
    DEFAULT_COLLECTIVES,
    CompileStats,
    Decision,
    DecisionTable,
    GammaRefitter,
    QueryEngine,
    Row,
    TableSpec,
    compile_table,
    load_table,
    store_table,
)
from repro.serve.query import HAVE_NUMPY

ETA_MAX = 1 << 18  # small enough to compile in ~a second, page-rich enough
                   # to produce multi-breakpoint rows


@pytest.fixture(scope="module")
def arch():
    return get_arch("knl")


@pytest.fixture(scope="module")
def table(arch):
    return compile_table(arch, eta_max=ETA_MAX)


@pytest.fixture(scope="module")
def tuner(arch):
    return Tuner(arch, choose_cache_size=1 << 15)


@pytest.fixture(scope="module")
def engine(table):
    return QueryEngine(table)


def _live(tuner, collective, eta, p):
    c = tuner.choose(collective, eta, p)
    return (c.algorithm, c.params)


def _compiled(engine, collective, eta, p):
    d = engine.lookup(collective, eta, p)
    return (d.algorithm, d.params)


class TestDifferential:
    def test_rows_cover_every_collective(self, table, arch):
        assert set(table.collectives) == set(DEFAULT_COLLECTIVES)
        assert set(table.rows) == {
            (c, arch.default_procs) for c in DEFAULT_COLLECTIVES
        }
        assert any(len(r.breaks) > 1 for r in table.rows.values()), (
            "axis too small: every row degenerated to one regime, the "
            "breakpoint machinery is untested"
        )

    def test_exact_at_every_breakpoint_and_neighbours(
        self, table, engine, tuner
    ):
        """eta exactly at, one below, and one above every compiled break."""
        for (coll, p), row in table.rows.items():
            for b in row.breaks:
                for eta in (b - 1, b, b + 1):
                    if not 1 <= eta <= row.eta_max:
                        continue
                    assert _compiled(engine, coll, eta, p) == _live(
                        tuner, coll, eta, p
                    ), f"{coll} p={p} eta={eta} (breakpoint {b})"

    def test_exact_at_domain_endpoints(self, table, engine, tuner):
        for (coll, p), row in table.rows.items():
            for eta in (1, 2, row.eta_max - 1, row.eta_max):
                assert _compiled(engine, coll, eta, p) == _live(
                    tuner, coll, eta, p
                )

    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_exact_on_random_queries(self, data, table, engine, tuner):
        coll = data.draw(st.sampled_from(DEFAULT_COLLECTIVES))
        eta = data.draw(st.integers(min_value=1, max_value=ETA_MAX))
        p = next(p for c, p in table.rows if c == coll)
        assert _compiled(engine, coll, eta, p) == _live(tuner, coll, eta, p)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_batch_equals_scalar_on_random_arrays(self, data, table, engine):
        n = data.draw(st.integers(min_value=1, max_value=64))
        picks = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(DEFAULT_COLLECTIVES),
                    st.integers(min_value=1, max_value=ETA_MAX),
                ),
                min_size=n,
                max_size=n,
            )
        )
        p = next(iter(table.rows))[1]
        coll_ids = [engine.collective_id(c) for c, _ in picks]
        etas = [e for _, e in picks]
        procs = [p] * n
        decs = engine.lookup_batch(coll_ids, etas, procs, as_decisions=True)
        for (coll, eta), d in zip(picks, decs):
            assert engine.lookup(coll, eta, p) == d


class TestBatch:
    def test_numpy_and_fallback_agree(self, table, engine):
        p = next(iter(table.rows))[1]
        colls = table.collectives
        coll_ids = [engine.collective_id(colls[i % len(colls)]) for i in range(500)]
        etas = [(37 * i * i + 11) % ETA_MAX + 1 for i in range(500)]
        procs = [p] * 500
        fallback = QueryEngine(table, force_scalar_batch=True)
        a = [int(i) for i in engine.lookup_batch(coll_ids, etas, procs)]
        b = [int(i) for i in fallback.lookup_batch(coll_ids, etas, procs)]
        assert a == b
        if HAVE_NUMPY:
            assert engine.stats()["batch_backend"] == "numpybatch"
        assert fallback.stats()["batch_backend"] == "scalarbatch"

    def test_batch_rejects_out_of_domain_and_unknown_rows(self, table, engine):
        p = next(iter(table.rows))[1]
        cid = engine.collective_id(table.collectives[0])
        with pytest.raises(ValueError):
            engine.lookup_batch([cid], [0], [p])
        with pytest.raises(ValueError):
            engine.lookup_batch([cid], [ETA_MAX + 1], [p])
        with pytest.raises(KeyError):
            engine.lookup_batch([cid], [4096], [p + 1])
        with pytest.raises(ValueError):
            engine.lookup_batch([cid, cid], [1], [p])

    def test_scalar_rejects_out_of_domain(self, table, engine):
        coll, p = next(iter(table.rows))
        with pytest.raises(ValueError):
            engine.lookup(coll, 0, p)
        with pytest.raises(ValueError):
            engine.lookup(coll, ETA_MAX + 1, p)
        with pytest.raises(KeyError):
            engine.lookup("notacollective", 1, p)


class TestRowValidation:
    def test_breaks_must_start_at_one(self):
        with pytest.raises(ValueError):
            Row("bcast", 8, 100, breaks=(2,), dec_ids=(0,))

    def test_breaks_strictly_ascending(self):
        with pytest.raises(ValueError):
            Row("bcast", 8, 100, breaks=(1, 50, 50), dec_ids=(0, 1, 0))

    def test_one_decision_per_segment(self):
        with pytest.raises(ValueError):
            Row("bcast", 8, 100, breaks=(1, 50), dec_ids=(0,))

    def test_breaks_inside_domain(self):
        with pytest.raises(ValueError):
            Row("bcast", 8, 100, breaks=(1, 101), dec_ids=(0, 1))


class TestArtifacts:
    def test_json_roundtrip(self, table):
        clone = DecisionTable.from_json(json.loads(json.dumps(table.to_json())))
        assert clone == table

    def test_cache_roundtrip_and_spec_sensitivity(self, arch, table, tmp_path):
        cache = ResultCache(tmp_path)
        spec = TableSpec(
            arch=arch,
            collectives=table.collectives,
            procs=(arch.default_procs,),
            eta_max=ETA_MAX,
        )
        assert table.key == store_table(table, cache)
        assert load_table(spec, cache) == table
        perturbed = TableSpec(
            arch=arch,
            collectives=table.collectives,
            procs=(arch.default_procs,),
            eta_max=ETA_MAX,
            verify_probes=5,
        )
        assert load_table(perturbed, cache) is None
        refitted = TableSpec(
            arch=apply_gamma(arch, StreamingGammaFit().observe(
                [GammaSample(16, c, arch.params.gamma(c) * 1.3) for c in (1, 2, 4, 8)]
            )),
            collectives=table.collectives,
            procs=(arch.default_procs,),
            eta_max=ETA_MAX,
        )
        assert load_table(refitted, cache) is None

    def test_compile_is_a_cache_read_the_second_time(self, arch, tmp_path):
        first = CompileStats()
        with use_context(ExecContext(cache=tmp_path)) as ctx:
            t1 = compile_table(
                arch, collectives=("alltoall",), eta_max=1 << 14, stats=first
            )
            assert ctx.stats.by_kind["serve.compile_row"] == [1, 1, 0]
        assert (first.cache_hits, first.cache_misses) == (0, 1)
        assert first.probes > 0
        second = CompileStats()
        with use_context(ExecContext(cache=tmp_path)) as ctx:
            t2 = compile_table(
                arch, collectives=("alltoall",), eta_max=1 << 14, stats=second
            )
            assert ctx.stats.by_kind["serve.compile_row"] == [1, 0, 1]
        assert (second.cache_hits, second.cache_misses) == (1, 0)
        # cached rows carry the probe counters of the compile that made
        # them — identical rows, identical embodied cost, zero new misses
        assert second.probes == first.probes
        assert t1 == t2

    def test_sweep_summary_breaks_out_compile_kind(self, arch, tmp_path):
        """The report line must split serve row compiles from other sweep
        traffic, so a compile-cache regression can't hide in aggregates."""
        with use_context(ExecContext(cache=tmp_path)) as ctx:
            compile_table(arch, collectives=("bcast",), eta_max=1 << 14)
            ctx.stats.record_kind("collective", 10, 2, 8)
            line = sweep_summary(ctx.stats)
        assert "serve.compile_row 1 run/0 hit" in line
        assert "collective 2 run/8 hit" in line


class TestTunerMemo:
    def test_identity_caching_and_counters(self, arch):
        t = Tuner(arch)
        a = t.choose("bcast", 4096, 8)
        b = t.choose("bcast", 4096, 8)
        assert a is b
        stats = t.choose_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["maxsize"] == Tuner.CHOOSE_CACHE_SIZE

    def test_memo_is_bounded(self, arch):
        t = Tuner(arch, choose_cache_size=4)
        for eta in (1, 2, 3, 4, 5, 6):
            t.choose("bcast", eta, 8)
        stats = t.choose_cache_stats()
        assert stats["maxsize"] == 4
        assert stats["size"] <= 4
        assert stats["misses"] == 6
        # eta=1 was evicted by the later four: re-choosing misses again
        t.choose("bcast", 1, 8)
        assert t.choose_cache_stats()["misses"] == 7


class TestRefit:
    def test_identical_fit_skips_recompile_and_swap(self, arch, table):
        engine = QueryEngine(table)
        refitter = GammaRefitter(engine, arch)
        samples = [
            GammaSample(16, c, arch.params.gamma(c)) for c in range(1, 33)
        ]
        refitter.observe(samples)
        first_key = engine.table.key
        rep = refitter.observe([])  # same pooled samples -> same fit
        assert rep.swapped is False
        assert rep.rows_recompiled == 0
        assert engine.table.key == first_key

    def test_only_perturbed_rows_recompile(self, arch, table, monkeypatch):
        import repro.serve.refit as refit_mod

        engine = QueryEngine(table)
        refitter = GammaRefitter(engine, arch)
        recompiled_keys = []
        real = refit_mod.compile_rows

        def spy(a, keys, eta_max, verify_probes, stats=None):
            recompiled_keys.extend(keys)
            return real(a, keys, eta_max, verify_probes, stats=stats)

        monkeypatch.setattr(refit_mod, "compile_rows", spy)
        # Steepen gamma hard: contention-sensitive regimes flip, the rest
        # of the surface stays put.
        samples = [
            GammaSample(16, c, arch.params.gamma(c) * (1.0 + 2.0 * c / 64))
            for c in range(1, 65)
        ]
        rep = refitter.observe(samples)
        assert rep.swapped is True
        assert 0 < rep.rows_recompiled < rep.rows_checked
        assert sorted(recompiled_keys) == sorted(rep.recompiled)
        # untouched rows were reused verbatim
        for rk, row in table.rows.items():
            if rk not in rep.recompiled:
                new_row = engine.table.rows[rk]
                assert new_row.breaks == row.breaks
        # the swapped table answers exactly like a live tuner on the
        # refitted architecture
        live = Tuner(refitter.arch)
        for (coll, p), row in engine.table.rows.items():
            for b in row.breaks:
                for eta in (b - 1, b, b + 1):
                    if 1 <= eta <= row.eta_max:
                        assert _compiled(engine, coll, eta, p) == _live(
                            live, coll, eta, p
                        )

    def test_swap_is_atomic_under_concurrent_readers(self):
        d_a0 = Decision("alpha", ())
        d_a1 = Decision("alpha", (("k", 4),))
        d_b = Decision("beta", ())
        row_a = Row("bcast", 8, 1000, breaks=(1, 100), dec_ids=(0, 1))
        row_b = Row("bcast", 8, 1000, breaks=(1,), dec_ids=(0,))
        table_a = DecisionTable(
            "x", "key-a", ("bcast",), (d_a0, d_a1), {("bcast", 8): row_a}
        )
        table_b = DecisionTable(
            "x", "key-b", ("bcast",), (d_b,), {("bcast", 8): row_b}
        )
        engine = QueryEngine(table_a)
        valid_scalar = {d_a1, d_b}  # eta=500 under either table
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    d = engine.lookup("bcast", 500, 8)
                    if d not in valid_scalar:
                        errors.append(f"scalar saw {d}")
                    # one batch must answer from ONE table — a mixed pair
                    # means the reader caught a torn surface mid-swap
                    decs = engine.lookup_batch(
                        [0, 0], [50, 500], [8, 8], as_decisions=True
                    )
                    if list(decs) not in ([d_a0, d_a1], [d_b, d_b]):
                        errors.append(f"torn batch {decs}")
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(repr(exc))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for i in range(400):
            engine.swap(table_b if i % 2 == 0 else table_a)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        assert engine.swaps == 400
        stats = engine.stats()
        # retired front counters survived every swap
        assert stats["front"]["hits"] + stats["front"]["misses"] > 0


class TestEngineFront:
    def test_front_lru_counts_hits_and_survives_swap(self, table):
        engine = QueryEngine(table, front_size=8)
        coll, p = next(iter(table.rows))
        for _ in range(5):
            engine.lookup(coll, 4096, p)
        s = engine.stats()["front"]
        assert s["misses"] == 1
        assert s["hits"] == 4
        assert s["maxsize"] == 8
        engine.swap(table)
        s = engine.stats()["front"]
        assert s["misses"] == 1 and s["hits"] == 4  # retired, not lost
        engine.lookup(coll, 4096, p)
        assert engine.stats()["front"]["misses"] == 2  # fresh front, cold


class TestCLI:
    def test_compile_query_and_json_export(self, tmp_path, capsys):
        from repro.serve.__main__ import main

        out = tmp_path / "table.json"
        assert main(
            [
                "compile", "--arch", "knl", "--collectives", "alltoall",
                "--eta-max", str(1 << 14), "--json", str(out),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        ) == 0
        text = capsys.readouterr().out
        assert "alltoall" in text
        assert "serve.compile_row 1 run/0 hit" in text
        payload = json.loads(out.read_text())
        assert DecisionTable.from_json(payload).rows
        # second compile is served from the artifact cache
        assert main(
            [
                "compile", "--arch", "knl", "--collectives", "alltoall",
                "--eta-max", str(1 << 14),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        ) == 0
        assert "artifact cache" in capsys.readouterr().out
        assert main(
            [
                "query", "--arch", "knl", "--collective", "alltoall",
                "--eta", "4096", "--collectives", "alltoall",
                "--eta-max", str(1 << 14),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        ) == 0
        assert "alltoall" in capsys.readouterr().out
