"""Pattern memoization must be observably transparent.

:func:`repro.core.patterns.pattern` (and the stacked/reduced variants) now
memoize their arrays.  The contract: a cached block is byte-identical to a
fresh computation, is read-only so no caller can corrupt it for everyone
else, and a full simulated collective never mutates one in place — fill
sites copy into buffers (``buf.view(...)[:] = pattern(...)``), they never
alias.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import patterns
from repro.core.patterns import (
    _block_stack,
    _pattern_raw,
    _reduce_expected,
    _stack_raw,
    pattern,
)


@settings(max_examples=100, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=300),
    b=st.integers(min_value=0, max_value=300),
    eta=st.integers(min_value=1, max_value=20_000),
)
def test_cached_pattern_equals_uncached(a, b, eta):
    cached = pattern(a, b, eta)
    raw = _pattern_raw(a, b, eta)
    assert cached.dtype == np.uint8
    assert np.array_equal(cached, raw)
    # calling again returns equal bytes (and the identical object while the
    # memo holds it, though identity is not part of the contract)
    assert np.array_equal(pattern(a, b, eta), raw)


@settings(max_examples=100, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=300),
    b=st.integers(min_value=0, max_value=300),
    eta=st.integers(min_value=1, max_value=20_000),
)
def test_pattern_blocks_are_read_only(a, b, eta):
    blk = pattern(a, b, eta)
    assert not blk.flags.writeable
    with pytest.raises(ValueError):
        blk[0] = 0


@settings(max_examples=50, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=0, max_value=40),
        ),
        min_size=1,
        max_size=12,
    ),
    eta=st.integers(min_value=1, max_value=5_000),
)
def test_block_stack_matches_per_block_patterns(pairs, eta):
    pairs = tuple(pairs)
    stacked = _block_stack(pairs, eta)
    assert not stacked.flags.writeable
    assert np.array_equal(stacked, _stack_raw(pairs, eta))
    expect = np.concatenate([_pattern_raw(a, b, eta) for a, b in pairs])
    assert np.array_equal(stacked, expect)


@settings(max_examples=50, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=24),
    eta=st.integers(min_value=1, max_value=5_000),
)
def test_reduce_expected_matches_elementwise_sum(p, eta):
    got = _reduce_expected(p, eta)
    total = np.zeros(eta, dtype=np.uint32)
    for r in range(p):
        total += _pattern_raw(r, 0, eta).astype(np.uint32)
    assert np.array_equal(got, (total % 256).astype(np.uint8))


def test_large_blocks_bypass_memo_but_stay_read_only():
    eta = patterns._MEMO_BLOCK_LIMIT + 1
    blk = pattern(0, 0, eta)
    assert not blk.flags.writeable
    assert blk is not pattern(0, 0, eta)  # recomputed, not pinned in memory
    assert np.array_equal(blk, _pattern_raw(0, 0, eta))


def test_collectives_do_not_mutate_cached_blocks():
    """End to end: running verified collectives (which fill and check every
    buffer) must leave each memoized pattern block bit-identical to a fresh
    recomputation — i.e. no fill/verify site writes through a cached array."""
    from repro.core.runner import CollectiveSpec, run_collective
    from repro.machine import get_arch

    arch = get_arch("knl")
    eta = 2048
    for coll, alg, params in (
        ("scatter", "throttled_read", {"k": 2}),
        ("gather", "parallel_write", {}),
        ("alltoall", "pairwise", {}),
        ("allgather", "ring_source_read", {}),
        ("allreduce", "ring", {}),
    ):
        run_collective(
            CollectiveSpec(coll, alg, arch, procs=6, eta=eta, params=params)
        )

    # these (a, b, eta) keys were served from the memo during the runs above
    for a in range(6):
        for b in range(6):
            assert np.array_equal(pattern(a, b, eta), _pattern_raw(a, b, eta)), (a, b)
