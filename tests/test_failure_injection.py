"""Failure injection: the machinery must fail loudly, never silently.

Covers: permission denial mid-collective, protocol bugs surfacing as
deadlocks, data corruption surfacing as verification errors, and runaway
simulations hitting the event guard.
"""

import numpy as np
import pytest

from repro.core.patterns import VerificationError, pattern
from repro.core.runner import CollectiveSpec, run_collective
from repro.kernel import CMAError
from repro.machine import make_generic
from repro.mpi import Comm, Node
from repro.sim import DeadlockError, Delay


def small_arch(p=6):
    return make_generic(sockets=1, cores_per_socket=max(p, 2))


class TestPermissionDenial:
    def test_denied_pid_fails_the_collective(self):
        """A rank whose memory cannot be attached (ptrace denial) aborts
        the whole operation with EPERM, like a real job would."""
        arch = small_arch()
        node = Node(arch)
        comm = Comm(node, 4)
        node.cma.denied_pids.add(comm.pid_of(0))  # root unreadable
        from repro.core import patterns as pat

        class FakeSpec:
            collective, algorithm = "scatter", "parallel_read"
            procs, eta, root, in_place = 4, 4096, 0, False

        sendbufs, recvbufs = pat.setup_buffers(comm, FakeSpec)
        from repro.core.registry import get_algorithm

        fn = get_algorithm("scatter", "parallel_read").make()
        procs = [
            comm.spawn_rank(
                r, fn, root=0, eta=4096,
                sendbuf=sendbufs[r], recvbuf=recvbufs[r], in_place=False,
            )
            for r in range(4)
        ]
        with pytest.raises(CMAError):
            node.sim.run_all(procs)


class TestProtocolBugs:
    def test_missing_notification_is_a_deadlock(self):
        """A collective that waits for a token nobody sends must surface as
        DeadlockError, not hang or silently pass."""
        arch = small_arch()
        node = Node(arch)
        comm = Comm(node, 2)

        def broken(ctx):
            if ctx.rank == 0:
                yield ctx.ctrl_recv(1, "never-sent")
            else:
                yield Delay(1.0)

        procs = [comm.spawn_rank(r, broken) for r in range(2)]
        with pytest.raises(DeadlockError):
            node.sim.run_all(procs)

    def test_mismatched_collective_order_deadlocks(self):
        """Ranks calling control collectives in different orders deadlock
        (the op-counter discipline these algorithms rely on)."""
        arch = small_arch()
        node = Node(arch)
        comm = Comm(node, 2)

        def skewed(ctx):
            if ctx.rank == 0:
                yield from ctx.sm_bcast(("op", 1), payload="x", root=0)
            else:
                yield from ctx.sm_bcast(("op", 2), payload=None, root=0)

        procs = [comm.spawn_rank(r, skewed) for r in range(2)]
        with pytest.raises(DeadlockError):
            node.sim.run_all(procs)


class TestVerificationCatchesCorruption:
    def test_wrong_offset_detected(self):
        """An algorithm that reads the wrong block fails verification."""
        arch = small_arch()
        node = Node(arch)
        comm = Comm(node, 3)
        from repro.core import patterns as pat

        class Spec:
            collective, algorithm = "scatter", "buggy"
            procs, eta, root, in_place = 3, 1000, 0, False

        sendbufs, recvbufs = pat.setup_buffers(comm, Spec)

        def buggy(ctx):
            # everyone reads block 0 instead of their own block
            op = ctx.next_op()
            payload = ctx.sendbuf.addr if ctx.is_root else None
            addr = yield from ctx.sm_bcast(("b", op), payload, root=0)
            if not ctx.is_root:
                yield from ctx.cma_read(0, ctx.recvbuf.iov(0, 1000), (addr, 1000))
            yield from ctx.sm_gather(("bf", op), value=True, root=0)
            if ctx.is_root:
                yield from ctx.memcpy(ctx.recvbuf, 0, ctx.sendbuf, 0, 1000)

        procs = [
            comm.spawn_rank(
                r, buggy, root=0, eta=1000,
                sendbuf=sendbufs[r], recvbuf=recvbufs[r],
            )
            for r in range(3)
        ]
        node.sim.run_all(procs)
        with pytest.raises(VerificationError):
            pat.verify_buffers(comm, Spec, sendbufs, recvbufs)

    def test_verification_error_is_specific(self):
        arch = small_arch()
        node = Node(arch)
        comm = Comm(node, 2)
        buf = comm.allocate(0, 16)
        buf.fill(pattern(0, 0, 16))
        buf.view(3, 1)[0] = np.uint8(buf.view(3, 1)[0] + 1)  # flip one byte
        from repro.core import patterns as pat

        class Spec:
            collective, algorithm = "bcast", "x"
            procs, eta, root, in_place = 2, 16, 0, False

        with pytest.raises(VerificationError, match="byte 3"):
            pat.verify_buffers(comm, Spec, [None, None], [buf, buf])


class TestRunawayGuard:
    def test_spec_runs_have_bounded_events(self):
        """Normal collectives stay far under the runaway guard."""
        res = run_collective(
            CollectiveSpec("bcast", "knomial", small_arch(), procs=6, eta=4096,
                           params={"k": 2})
        )
        assert res.sim_events < 100_000
