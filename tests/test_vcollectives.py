"""Tests for the vector collectives (Scatterv/Gatherv) extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import CollectiveSpec, run_collective
from repro.core.vcollectives import displacements
from repro.machine import make_generic


def run(coll, alg, counts, root=0, in_place=False, **params):
    p = len(counts)
    spec = CollectiveSpec(
        coll,
        alg,
        make_generic(sockets=1, cores_per_socket=max(p, 2)),
        procs=p,
        root=root,
        in_place=in_place,
        params=params,
        counts=list(counts),
    )
    return run_collective(spec)


SCATTERV_ALGS = [("parallel_read", {}), ("sequential_write", {}), ("throttled_read", {"k": 2})]
GATHERV_ALGS = [("parallel_write", {}), ("sequential_read", {}), ("throttled_write", {"k": 2})]


class TestDisplacements:
    def test_prefix_sums(self):
        assert displacements([3, 0, 5]) == [0, 3, 3]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            displacements([1, -2])


class TestScatterv:
    @pytest.mark.parametrize("alg,params", SCATTERV_ALGS)
    def test_uneven_blocks(self, alg, params):
        run("scatterv", alg, [100, 5000, 1, 9000, 0, 250], **params)

    @pytest.mark.parametrize("alg,params", SCATTERV_ALGS)
    def test_nonzero_root(self, alg, params):
        run("scatterv", alg, [10, 20, 30, 40, 50], root=3, **params)

    @pytest.mark.parametrize("alg,params", SCATTERV_ALGS)
    def test_zero_blocks_skip_transfer(self, alg, params):
        res = run("scatterv", alg, [0, 4096, 0, 4096], **params)
        assert res.cma_reads + res.cma_writes == 2

    def test_in_place_root(self):
        run("scatterv", "throttled_read", [100, 200, 300], in_place=True, k=1)

    def test_equal_counts_match_scatter(self):
        """With equal counts, scatterv costs the same as plain scatter."""
        p, eta = 8, 50_000
        v = run("scatterv", "throttled_read", [eta] * p, k=3).latency_us
        s = run_collective(
            CollectiveSpec(
                "scatter", "throttled_read",
                make_generic(sockets=1, cores_per_socket=8),
                procs=p, eta=eta, params={"k": 3},
            )
        ).latency_us
        assert v == pytest.approx(s, rel=0.02)

    def test_imbalance_straggles_waves(self):
        """One huge block makes its wave straggle: total latency tracks the
        largest block, not the average block size."""
        p = 9
        tiny = [8 * 1024] * p
        skewed = [8 * 1024] * (p - 1) + [512 * 1024]
        t_tiny = run("scatterv", "throttled_read", tiny, k=2).latency_us
        t_skew = run("scatterv", "throttled_read", skewed, k=2).latency_us
        assert t_skew > 3 * t_tiny


class TestGatherv:
    @pytest.mark.parametrize("alg,params", GATHERV_ALGS)
    def test_uneven_blocks(self, alg, params):
        run("gatherv", alg, [4096, 0, 123, 50_000, 7], **params)

    @pytest.mark.parametrize("alg,params", GATHERV_ALGS)
    def test_nonzero_root(self, alg, params):
        run("gatherv", alg, [10, 0, 30, 999], root=2, **params)

    def test_in_place_root(self):
        run("gatherv", "sequential_read", [500, 600, 700], in_place=True)


class TestSpecValidation:
    def test_counts_length_checked(self):
        with pytest.raises(ValueError, match="counts"):
            CollectiveSpec(
                "scatterv", "parallel_read", make_generic(), procs=4,
                counts=[1, 2, 3],
            )

    def test_counts_rejected_for_plain_collectives(self):
        with pytest.raises(ValueError):
            CollectiveSpec(
                "scatter", "parallel_read", make_generic(), procs=4,
                counts=[1, 2, 3, 4],
            )

    def test_counts_default_to_eta(self):
        spec = CollectiveSpec(
            "gatherv", "sequential_read", make_generic(), procs=4, eta=77
        )
        assert spec.counts == [77] * 4

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            CollectiveSpec(
                "gatherv", "sequential_read", make_generic(), procs=2,
                counts=[5, -1],
            )


@settings(max_examples=30, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=0, max_value=20_000), min_size=2, max_size=10),
    root=st.integers(min_value=0, max_value=9),
    which=st.integers(min_value=0, max_value=2),
)
def test_property_vcollectives_any_counts(counts, root, which):
    root %= len(counts)
    s_alg, s_params = SCATTERV_ALGS[which]
    g_alg, g_params = GATHERV_ALGS[which]
    if "k" in s_params:
        clamp = {"k": min(2, len(counts) - 1)}
        s_params, g_params = clamp, clamp
    run("scatterv", s_alg, counts, root=root, **s_params)
    run("gatherv", g_alg, counts, root=root, **g_params)


class TestAlltoallv:
    def test_uneven_matrix(self):
        counts = [
            [0, 100, 5000, 1],
            [2048, 0, 0, 300],
            [7, 7, 7, 7],
            [0, 0, 0, 0],
        ]
        spec = CollectiveSpec(
            "alltoallv", "pairwise",
            make_generic(sockets=1, cores_per_socket=4),
            procs=4, counts=counts,
        )
        run_collective(spec)

    def test_equal_matrix_matches_alltoall(self):
        p, eta = 8, 20_000
        matrix = [[eta] * p for _ in range(p)]
        spec_v = CollectiveSpec(
            "alltoallv", "pairwise",
            make_generic(sockets=1, cores_per_socket=p),
            procs=p, counts=matrix,
        )
        spec_p = CollectiveSpec(
            "alltoall", "pairwise",
            make_generic(sockets=1, cores_per_socket=p),
            procs=p, eta=eta,
        )
        tv = run_collective(spec_v).latency_us
        tp = run_collective(spec_p).latency_us
        # identical schedule; alltoallv recomputes displacements only
        assert tv == pytest.approx(tp, rel=0.02)

    def test_matrix_shape_validated(self):
        with pytest.raises(ValueError, match="p x p"):
            CollectiveSpec(
                "alltoallv", "pairwise", make_generic(), procs=3,
                counts=[[1, 2], [3, 4]],
            )

    def test_default_matrix_from_eta(self):
        spec = CollectiveSpec(
            "alltoallv", "pairwise", make_generic(), procs=3, eta=5
        )
        assert spec.counts == [[5, 5, 5]] * 3


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
)
def test_property_alltoallv_random_matrices(p, seed):
    import random

    rng = random.Random(seed)
    matrix = [[rng.randrange(0, 5000) for _ in range(p)] for _ in range(p)]
    spec = CollectiveSpec(
        "alltoallv", "pairwise",
        make_generic(sockets=1, cores_per_socket=max(p, 2)),
        procs=p, counts=matrix,
    )
    run_collective(spec)
