"""Golden-parity replay: the engine's simulated results are pinned.

``tests/golden/engine_parity.json`` records simulated-microsecond outputs
for Fig. 3 / Fig. 7 / Table IV slices.  This test recomputes them and
compares with *exact* float equality — no tolerance.  Engine, resource,
and kernel optimisations must be bit-preserving; if this fails, either a
fast path diverged from the reference semantics (a bug) or the model
genuinely changed, in which case regenerate the fixture AND bump
``repro.exec.cache.CACHE_VERSION`` (see ``tests/golden/capture.py``).
"""

import importlib.util
import json
from pathlib import Path

import pytest

_spec = importlib.util.spec_from_file_location(
    "engine_parity_capture", Path(__file__).parent / "golden" / "capture.py"
)
_capture_mod = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_capture_mod)
GOLDEN_PATH = _capture_mod.GOLDEN_PATH
capture = _capture_mod.capture


@pytest.fixture(scope="module")
def recomputed():
    return capture()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def test_fig03_latencies_bit_exact(recomputed, golden):
    assert recomputed["fig03"] == golden["fig03"]


def test_fig07_collectives_bit_exact(recomputed, golden):
    assert recomputed["fig07"] == golden["fig07"]


def test_tab04_fit_bit_exact(recomputed, golden):
    assert recomputed["tab04"] == golden["tab04"]


def test_xpmem_traces_bit_exact(recomputed, golden):
    """The mapped-window lane's traced runs — attach/map charging, the
    per-page fault-in convoy, and the steady-state copies — are pinned
    down to the per-phase time aggregates."""
    assert recomputed["xpmem"] == golden["xpmem"]


def test_fixture_survives_json_roundtrip(recomputed):
    """The fixture stores floats via json; the comparison above is only
    bit-exact if serialisation is lossless for every captured value."""
    assert json.loads(json.dumps(recomputed)) == recomputed
