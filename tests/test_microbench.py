"""Tests for the kernel-level microbenchmark harness (repro.bench.microbench)."""

import pytest

from repro.bench import microbench
from repro.machine import make_generic


@pytest.fixture(scope="module")
def arch():
    return make_generic(sockets=1, cores_per_socket=12, default_procs=12)


class TestOneToAll:
    def test_single_reader_matches_model(self, arch):
        n = 16 * 4096
        t = microbench.one_to_all_latency(arch, 1, n)
        p = arch.params
        assert t == pytest.approx(p.cma_time(n, 1), rel=0.01)

    def test_iterations_average(self, arch):
        a = microbench.one_to_all_latency(arch, 1, 4096, iters=1)
        b = microbench.one_to_all_latency(arch, 1, 4096, iters=5)
        assert a == pytest.approx(b, rel=0.01)

    def test_patterns_both_run(self, arch):
        same = microbench.one_to_all_latency(arch, 4, 65536, pattern="same-buffer")
        diff = microbench.one_to_all_latency(arch, 4, 65536, pattern="different-buffers")
        assert same == pytest.approx(diff, rel=0.05)


class TestAllToAll:
    def test_flat_scaling(self, arch):
        big = make_generic(sockets=1, cores_per_socket=24)
        t1 = microbench.all_to_all_latency(big, 1, 65536)
        t8 = microbench.all_to_all_latency(big, 8, 65536)
        assert t8 == pytest.approx(t1, rel=0.05)


class TestStepTiming:
    def test_all_steps_ordered(self, arch):
        t = [
            microbench.step_timing(arch, s, pages=8)
            for s in ("syscall", "check", "lock_pin", "copy")
        ]
        assert t == sorted(t)

    def test_unknown_step(self, arch):
        with pytest.raises(KeyError, match="teleport"):
            microbench.step_timing(arch, "teleport")


class TestLockPinAndBreakdown:
    def test_uncontended_lock_pin_is_l(self, arch):
        per_page = microbench.lock_pin_per_page(arch, 1, 32)
        assert per_page == pytest.approx(arch.params.l_page, rel=0.05)

    def test_breakdown_sums_to_sane_total(self, arch):
        ph = microbench.phase_breakdown(arch, 1, 16)
        n = 16 * arch.params.page_size
        total = sum(ph.values())
        assert total == pytest.approx(arch.params.cma_time(n, 1), rel=0.05)

    def test_relative_throughput_baseline(self, arch):
        # throughput of c readers relative to 1: at c=1 it is exactly 1
        assert microbench.relative_throughput(arch, 1, 65536) == pytest.approx(1.0)
