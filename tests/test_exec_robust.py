"""Harness robustness: checksummed cache entries and per-point timeouts.

The cache must detect (and quarantine, not serve) corrupted entries; the
pool must bound how long one sweep point can hang, retry it, and raise a
:class:`~repro.exec.pool.PointTimeoutError` that the broken-pool fallback
clause cannot swallow.
"""

import pickle
import time
import zlib

import pytest

from repro.exec import context as exec_context
from repro.exec.cache import CACHE_VERSION, ResultCache
from repro.exec.pool import PointTimeoutError, map_points


# -- module-level so pool workers can pickle them ---------------------------


def _double(x):
    return x * 2


def _sleep_marker(x):
    """Sleeps long when given the marker value, else returns instantly."""
    if x == "hang":
        time.sleep(60)
    return x


# -- cache: checksum + quarantine -------------------------------------------


class TestChecksummedCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("k", {"x": 1})
        cache.put(key, [1, 2, 3])
        hit, value = cache.get(key)
        assert hit and value == [1, 2, 3]

    def test_entry_is_checksummed_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("k", "payload")
        cache.put(key, "payload")
        with open(cache.path_for(key), "rb") as f:
            entry = pickle.load(f)
        assert entry["salt"] == CACHE_VERSION
        assert entry["crc"] == zlib.crc32(entry["payload"])
        assert pickle.loads(entry["payload"]) == "payload"

    def test_unpicklable_garbage_is_quarantined_then_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("k", "v")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle at all")
        hit, _ = cache.get(key)
        assert not hit
        assert cache.quarantined == 1
        qfile = tmp_path / "quarantine" / path.name
        assert qfile.read_bytes() == b"not a pickle at all"  # evidence kept
        cache.put(key, "fresh")
        assert cache.get(key) == (True, "fresh")

    def test_bitflip_in_payload_is_caught_by_crc(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("k", "v")
        cache.put(key, {"answer": 42})
        path = cache.path_for(key)
        entry = pickle.loads(path.read_bytes())
        payload = bytearray(entry["payload"])
        payload[-1] ^= 0xFF  # valid envelope, corrupt payload bytes
        entry["payload"] = bytes(payload)
        path.write_bytes(pickle.dumps(entry))
        hit, _ = cache.get(key)
        assert not hit
        assert cache.quarantined == 1
        assert not path.exists()  # moved aside, ready for the recompute

    def test_stale_salt_is_dropped_not_quarantined(self, tmp_path):
        old = ResultCache(tmp_path, salt="ancient-version")
        new = ResultCache(tmp_path)
        key = new.key_for("k", "v")
        # write a well-formed entry under the old salt at the new key's path
        path = new.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps("old value")
        path.write_bytes(
            pickle.dumps(
                {"salt": old.salt, "crc": zlib.crc32(payload), "payload": payload}
            )
        )
        hit, _ = new.get(key)
        assert not hit
        assert new.quarantined == 0  # versioning, not corruption
        assert not path.exists()
        assert not (tmp_path / "quarantine").exists()

    def test_no_tmp_litter(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(cache.key_for("k", i), i)
        assert not list(tmp_path.rglob("*.tmp*"))


# -- pool: per-point timeout + bounded retry --------------------------------


class TestPointTimeout:
    def test_fast_points_unaffected_by_timeout(self):
        out = map_points(_double, list(range(8)), workers=2, timeout=30.0)
        assert out == [x * 2 for x in range(8)]

    def test_hung_point_raises_after_retries(self):
        t0 = time.monotonic()
        with pytest.raises(PointTimeoutError) as exc:
            map_points(
                _sleep_marker,
                ["a", "hang", "b"],
                workers=2,
                timeout=0.5,
                retries=1,
            )
        assert time.monotonic() - t0 < 30  # bounded, not the full sleep
        assert exc.value.index == 1
        assert exc.value.attempts == 2  # original + one retry
        assert exc.value.timeout == 0.5

    def test_point_timeout_error_is_not_an_oserror(self):
        # On 3.11+ TimeoutError subclasses OSError; the pool's serial
        # fallback catches OSError, so the timeout error must not be one.
        assert not issubclass(PointTimeoutError, OSError)
        assert issubclass(PointTimeoutError, RuntimeError)

    def test_serial_path_ignores_timeout(self):
        # workers=1 never submits to a pool, so the budget doesn't apply
        out = map_points(_double, [1, 2, 3], workers=1, timeout=0.001)
        assert out == [2, 4, 6]


# -- context knobs -----------------------------------------------------------


class TestContextKnobs:
    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(exec_context.ENV_POINT_TIMEOUT, "2.5")
        monkeypatch.setenv(exec_context.ENV_POINT_RETRIES, "3")
        ctx = exec_context.ExecContext(workers=1)
        assert ctx.point_timeout == 2.5
        assert ctx.point_retries == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(exec_context.ENV_POINT_TIMEOUT, "2.5")
        ctx = exec_context.ExecContext(workers=1, point_timeout=9)
        assert ctx.point_timeout == 9.0

    def test_zero_means_unbounded(self):
        ctx = exec_context.ExecContext(workers=1, point_timeout=0)
        assert ctx.point_timeout is None

    def test_bad_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            exec_context.ExecContext(workers=1, point_timeout="soon")
        with pytest.raises(ValueError):
            exec_context.ExecContext(workers=1, point_retries="many")

    def test_from_env_inherits_parent(self):
        parent = exec_context.ExecContext(
            workers=1, point_timeout=7, point_retries=2
        )
        with exec_context.use_context(parent):
            child = exec_context.from_env()
        assert child.point_timeout == 7.0
        assert child.point_retries == 2
