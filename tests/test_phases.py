"""Differential battery for fused phase-shape commands and the batch drain.

The fused engine commands (:class:`RingStage`, :class:`TreeRound`,
:class:`PairwiseExchange`) and the opt-in vectorized batch executor
promise *bit-identity* with the unfused per-step path: same timestamps,
same FIFO grant order, same lock statistics, same event counts, same
global sequence-number allocation points.  Every test here runs the same
workload through four engine modes and compares full result snapshots:

* ``unfused`` — fusion off, the per-step reference path;
* ``record``  — fused commands, per-record stepping (burst off);
* ``burst``   — fused commands with the uncontended burst fast path;
* ``batch``   — everything above plus the numpy multi-phase drain.

The batch mode is skipped (with the other three still compared) when
numpy is unavailable: the executor is opt-in sugar, not a dependency.
"""

import pytest

try:
    import numpy  # noqa: F401  (presence gates the batch mode)
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy ships in the test image
    HAVE_NUMPY = False

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the test image
    HAVE_HYPOTHESIS = False

from repro.core.runner import CollectiveSpec, _execute, _validated_algorithm
from repro.faults import FaultPlan
from repro.machine import get_arch
from repro.mpi.communicator import Comm, Node
from repro.sim import Simulator
from repro.sim.engine import (
    Acquire,
    Delay,
    PhaseCommand,
    Release,
    RingStage,
    SimError,
)

MODES = {
    "unfused": {"use_phase_fusion": False},
    "record": {"use_phase_burst": False},
    "burst": {},
    "batch": {"use_batch_executor": True},
}

#: (collective, algorithm, warm repeats) — every fused shape builder.
#: CMA shapes repeat 3x so the drain sees warm (plan-cached) rounds;
#: xpmem shapes run twice so round two rides the warm attach cache.
SHAPES = [
    ("allgather", "ring_source_read", 3),
    ("allgather", "ring_source_write", 3),
    ("alltoall", "pairwise", 3),
    ("bcast", "direct_write", 3),
    ("allgather", "xpmem_ring", 2),
    ("alltoall", "xpmem_pairwise", 2),
]

ARCHS = ["generic", "broadwell", "knl"]


def _mode_items():
    for mode, kw in MODES.items():
        if mode == "batch" and not HAVE_NUMPY:
            continue
        yield mode, kw


def _lock_stats(node):
    """Full per-mm lock statistics: the observables the drain's
    closed-form writebacks must reproduce exactly."""
    out = []
    for pid in sorted(node.cma._mm_locks):
        mm = node.cma._mm_locks[pid]
        m = mm.mutex
        out.append((
            pid, mm.pages_pinned, m.acquisitions, m.total_wait_us,
            m.max_contenders, m.generation, m.holder is None,
            len(m._waiters),
        ))
    return tuple(out)


def _snapshot(res):
    return (
        res.latency_us, tuple(res.per_rank_us), res.sim_events,
        res.ctrl_messages, res.cma_reads, res.cma_writes,
        res.xpmem_reads, res.xpmem_writes, res.xpmem_attaches,
        res.xpmem_page_faults, res.fallbacks, res.retries,
    )


def _run_workload(spec_args, sim_kw, repeats, interloper=None):
    """Run ``repeats`` rounds of one collective on a single warm node and
    return every round's snapshot plus the final engine/lock state."""
    spec = CollectiveSpec(**spec_args)
    fn = _validated_algorithm(spec)
    node = Node(spec.arch, verify=spec.verify, trace=spec.trace,
                faults=spec.faults, sim=Simulator(**sim_kw))
    comm = Comm(node, spec.procs)
    snaps = []
    for rep in range(repeats):
        if interloper is not None:
            node.sim.spawn(interloper(node), name=f"interloper{rep}")
        res = _execute(spec, fn, node, comm)
        snaps.append(_snapshot(res))
    return (tuple(snaps), _lock_stats(node),
            node.sim.events_processed, node.sim.now)


def _assert_modes_identical(spec_args, repeats, interloper=None):
    ref = ref_mode = None
    for mode, kw in _mode_items():
        got = _run_workload(spec_args, kw, repeats, interloper)
        if ref is None:
            ref, ref_mode = got, mode
        else:
            assert got == ref, f"{mode} diverged from {ref_mode}"


@pytest.mark.parametrize("trace", [False, True], ids=["untraced", "traced"])
@pytest.mark.parametrize("arch", ARCHS)
@pytest.mark.parametrize(
    "collective,algorithm,repeats",
    SHAPES, ids=[f"{c}-{a}" for c, a, _ in SHAPES],
)
def test_four_mode_battery(arch, trace, collective, algorithm, repeats):
    """Warm-repeat workloads across archs and trace settings: all four
    modes bit-identical on every round (traced runs exercise the fusion
    refusal path — emitters must fall back without drift)."""
    _assert_modes_identical(
        dict(collective=collective, algorithm=algorithm,
             arch=get_arch(arch), procs=6, eta=180_000, trace=trace),
        repeats,
    )


def test_armed_but_empty_fault_plan_forces_fallback():
    """An armed plan — even one injecting nothing — routes through the
    resilient ladder, which refuses fusion; all modes must agree."""
    _assert_modes_identical(
        dict(collective="allgather", algorithm="ring_source_read",
             arch=get_arch("generic"), procs=6, eta=180_000,
             faults=FaultPlan(seed=7)),
        2,
    )


@pytest.mark.parametrize("start_us", [0.0, 37.5, 900.0])
def test_mid_phase_interloper(start_us):
    """A foreign process grabbing an mm mutex mid-collective must push
    every mode down the identical contended path (the drain declines,
    scalar grants queue) — no mode may fast-forward past the contention."""
    def interloper(node):
        mutex = node.cma._mm_locks[min(node.cma._mm_locks)].mutex

        def gen():
            yield Delay(start_us)
            yield Acquire(mutex)
            yield Delay(53.0)
            yield Release(mutex)

        return gen()

    _assert_modes_identical(
        dict(collective="allgather", algorithm="ring_source_read",
             arch=get_arch("generic"), procs=6, eta=180_000),
        2,
        interloper=interloper,
    )


if HAVE_HYPOTHESIS:

    _shape_ix = st.integers(min_value=0, max_value=len(SHAPES) - 1)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        mix=st.lists(
            st.tuples(_shape_ix, st.sampled_from([96_000, 180_000])),
            min_size=1, max_size=4,
        ),
        procs=st.sampled_from([4, 6]),
    )
    def test_randomized_schedule_mixes(mix, procs):
        """Randomized back-to-back collective mixes on one warm node:
        fused-vs-unfused and batch-vs-scalar stay bit-identical however
        shapes and sizes interleave (cross-collective warm state — seg
        caches, drain plans, xpmem attach maps — must never leak drift)."""
        arch = get_arch("generic")

        def run_mix(sim_kw):
            node = Node(arch, verify=False, trace=False,
                        sim=Simulator(**sim_kw))
            comm = Comm(node, procs)
            snaps = []
            for six, eta in mix:
                collective, algorithm, _ = SHAPES[six]
                spec = CollectiveSpec(
                    collective=collective, algorithm=algorithm, arch=arch,
                    procs=procs, eta=eta, verify=False,
                )
                fn = _validated_algorithm(spec)
                snaps.append(_snapshot(_execute(spec, fn, node, comm)))
            return (tuple(snaps), _lock_stats(node),
                    node.sim.events_processed, node.sim.now)

        ref = ref_mode = None
        for mode, kw in _mode_items():
            got = run_mix(kw)
            if ref is None:
                ref, ref_mode = got, mode
            else:
                assert got == ref, f"{mode} diverged from {ref_mode}"


@pytest.mark.skipif(not HAVE_NUMPY, reason="batch executor needs numpy")
def test_raising_callback_truncates_batch_drain_exactly():
    """A segment callback raising mid-drain must fail at the scalar
    failure point: same callback order across processes, same clock,
    same event count, same draw position — the victim's schedule is cut
    at the raising record while independent processes run to completion.
    """
    class Boom(RuntimeError):
        pass

    def build(sim_kw):
        sim = Simulator(**sim_kw)
        calls = []

        def seg(d, tag=None):
            cb = (lambda: calls.append(tag)) if tag else None
            return PhaseCommand.chain(d, 0.0, cb)

        def boom():
            calls.append("boom")
            raise Boom("cb failed")

        def victim():
            yield RingStage([seg(10.0, "a"), ("c", 7.0, 0.0, boom),
                             seg(5.0, "z")])

        def bystander():
            yield RingStage([seg(4.0, "b1"), seg(4.0, "b2"),
                             seg(4.0, "b3"), seg(50.0, "b4")])
            yield Delay(1.0)

        pv = sim.spawn(victim(), name="victim")
        pb = sim.spawn(bystander(), name="bystander")
        with pytest.raises(Boom):
            sim.run_all([pv, pb])
        return (tuple(calls), sim.now, sim.events_processed,
                next(sim._seq))

    scalar = build({})
    batch = build({"use_batch_executor": True})
    assert batch == scalar
    # The failure is per-process: the victim's trailing segment is cut,
    # while the bystander — independent of the failed phase — completes.
    assert "z" not in scalar[0] and "b4" in scalar[0]
    assert scalar[0].index("boom") == scalar[0].index("b3") + 1


def test_phase_command_rejects_malformed_segments():
    with pytest.raises(SimError):
        RingStage([])
    with pytest.raises(SimError):
        RingStage([PhaseCommand.chain(-1.0)])
    with pytest.raises(SimError):
        RingStage([("p", None, None, [], None, 0, None, True, None)])
