"""Unit tests for topologies, placement policy, and architecture presets."""

import pytest

from repro.machine import (
    ARCH_NAMES,
    Topology,
    get_arch,
    make_broadwell,
    make_generic,
    make_knl,
    make_power8,
)


class TestTopology:
    def test_counts(self):
        t = Topology(sockets=2, cores_per_socket=14, threads_per_core=2)
        assert t.physical_cores == 28
        assert t.hw_threads == 56
        assert t.threads_per_socket == 28

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Topology(sockets=0, cores_per_socket=4)

    def test_placement_fills_cores_before_smt(self):
        t = Topology(sockets=1, cores_per_socket=4, threads_per_core=2)
        cores = [t.place(r).core for r in range(4)]
        assert cores == [0, 1, 2, 3]
        assert t.place(4).core == 0 and t.place(4).thread == 1

    def test_placement_socket_spill_matches_paper(self):
        # Broadwell: ranks 0-13 on socket 0, 14-27 on socket 1 (bump at >14)
        bdw = make_broadwell().topology
        assert all(bdw.socket_of(r) == 0 for r in range(14))
        assert all(bdw.socket_of(r) == 1 for r in range(14, 28))
        # POWER8: spill past 10 (one socket's cores)
        p8 = make_power8().topology
        assert all(p8.socket_of(r) == 0 for r in range(10))
        assert p8.socket_of(10) == 1

    def test_oversubscription_wraps(self):
        t = Topology(sockets=2, cores_per_socket=2, threads_per_core=1)
        assert t.place(4).core == t.place(0).core

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            Topology(1, 4).place(-1)

    def test_intra_socket_fraction(self):
        t = Topology(sockets=2, cores_per_socket=2)
        pairs = [(0, 1), (0, 2)]  # (intra, inter)
        assert t.intra_socket_fraction(pairs) == 0.5
        assert t.intra_socket_fraction([]) == 1.0

    def test_ranks_on_socket(self):
        t = Topology(sockets=2, cores_per_socket=3)
        assert t.ranks_on_socket(0, 6) == [0, 1, 2]
        assert t.ranks_on_socket(1, 6) == [3, 4, 5]


class TestParams:
    def test_alpha_is_syscall_plus_check(self):
        p = make_knl().params
        assert p.alpha == pytest.approx(1.43, abs=0.01)

    def test_beta_unit_conversion(self):
        p = make_knl().params
        # 3.29 GB/s -> one 4 KiB page in ~1.245 us
        assert 4096 * p.beta == pytest.approx(1.245, rel=0.01)

    def test_pages_ceiling(self):
        p = make_knl().params
        assert p.pages(0) == 0
        assert p.pages(1) == 1
        assert p.pages(4096) == 1
        assert p.pages(4097) == 2

    def test_power8_large_pages(self):
        p = make_power8().params
        assert p.page_size == 65536
        assert p.pages(65536) == 1
        # 1 MiB: POWER8 locks 16 pages where x86 locks 256
        assert p.pages(1 << 20) == 16
        assert make_knl().params.pages(1 << 20) == 256

    def test_gamma_no_contention_is_one(self):
        for name in ARCH_NAMES:
            p = get_arch(name).params
            assert p.gamma(1) == 1.0
            assert p.gamma(0) == 1.0

    def test_gamma_monotone_increasing(self):
        for name in ARCH_NAMES:
            p = get_arch(name).params
            vals = [p.gamma(c) for c in range(1, 129)]
            assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_gamma_superlinear_on_knl(self):
        p = make_knl().params
        # doubling concurrency should more than double gamma at scale
        assert p.gamma(64) > 2.5 * p.gamma(32)

    def test_gamma_socket_spill_bump(self):
        p = make_broadwell().params
        # slope increases past the spill point
        below = p.gamma(14) - p.gamma(13)
        above = p.gamma(20) - p.gamma(19)
        assert above > below

    def test_cma_time_components(self):
        p = make_knl().params
        n = 8192
        expected = p.alpha + n * p.beta + p.l_page * p.gamma(4) * 2
        assert p.cma_time(n, concurrency=4) == pytest.approx(expected)

    def test_with_updates_is_functional(self):
        p = make_knl().params
        q = p.with_updates(gamma_g1=9.0)
        assert q.gamma_g1 == 9.0
        assert p.gamma_g1 != 9.0


class TestArch:
    def test_registry_roundtrip(self):
        for name in ARCH_NAMES:
            arch = get_arch(name)
            assert arch.name == name

    def test_unknown_arch(self):
        with pytest.raises(KeyError):
            get_arch("sparc")

    def test_fresh_instances(self):
        a, b = get_arch("knl"), get_arch("knl")
        assert a is not b

    def test_default_procs_match_paper(self):
        assert get_arch("knl").default_procs == 64
        assert get_arch("broadwell").default_procs == 28
        assert get_arch("power8").default_procs == 160

    def test_throttle_candidates_divide_sensibly(self):
        for name in ARCH_NAMES:
            arch = get_arch(name)
            assert all(
                1 < k <= arch.default_procs for k in arch.throttle_candidates
            )

    def test_generic_configurable(self):
        arch = make_generic(sockets=2, cores_per_socket=4, l_page=0.9)
        assert arch.topology.sockets == 2
        assert arch.params.l_page == 0.9
        assert arch.default_procs == 8

    def test_generic_requires_two_procs(self):
        with pytest.raises(ValueError):
            make_generic(sockets=1, cores_per_socket=1, default_procs=1)
