"""Write-ahead sweep journal: framing, replay, torn tails, SIGKILL resume.

The contract under test (ISSUE 10 tentpole #1): a sweep interrupted by
``kill -9`` resumes from its journal — completed points are *replayed*
(the logged value is the value; nothing re-executes) and the resumed
run's results are byte-identical to an uninterrupted run's, with the
journal file deleted once the sweep completes.
"""

import os
import pickle
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.exec import ExecContext, use_context
from repro.exec.journal import (
    ENV_JOURNAL,
    SweepJournal,
    SweepLog,
    _pack,
    sweep_fingerprint,
)
from repro.exec.sweep import sweep


def _square(x):
    return x * x


# -- frame / replay unit layer ------------------------------------------------


class TestSweepLog:
    def _open(self, tmp_path, fp="fp0", kind="k", n=8):
        return SweepLog(tmp_path / "j.wal", fp, kind, n).open()

    def test_record_replay_round_trip(self, tmp_path):
        log = self._open(tmp_path)
        log.record(0, {"v": 1})
        log.record(3, [1, 2, 3])
        log.close()
        again = self._open(tmp_path)
        assert again.replayed == {0: {"v": 1}, 3: [1, 2, 3]}
        again.close()

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        log = self._open(tmp_path)
        log.record(0, "a")
        log.record(1, "b")
        log.close()
        path = tmp_path / "j.wal"
        intact = path.stat().st_size
        with open(path, "ab") as f:
            f.write(_pack(("done", 2, pickle.dumps("c")))[:-3])  # torn frame
        again = self._open(tmp_path)
        assert again.replayed == {0: "a", 1: "b"}  # the tail cost nothing
        again.close()
        assert path.stat().st_size == intact  # and was truncated away

    def test_mid_file_corruption_drops_the_suffix(self, tmp_path):
        log = self._open(tmp_path)
        for i in range(4):
            log.record(i, i * 10)
        log.close()
        path = tmp_path / "j.wal"
        buf = bytearray(path.read_bytes())
        buf[len(buf) // 2] ^= 0xFF  # flip a byte somewhere in the middle
        path.write_bytes(bytes(buf))
        again = self._open(tmp_path)
        # Every frame before the flipped byte replays; nothing after does,
        # and none of the replayed values is wrong.
        for i, v in again.replayed.items():
            assert v == i * 10
        assert len(again.replayed) < 4
        again.close()

    def test_fingerprint_mismatch_resets_the_file(self, tmp_path):
        log = self._open(tmp_path, fp="fp0")
        log.record(0, "old")
        log.close()
        other = self._open(tmp_path, fp="fp1")  # same path, different sweep
        assert other.replayed == {}  # stale journal discarded, not replayed
        other.record(1, "new")
        other.close()
        again = self._open(tmp_path, fp="fp1")
        assert again.replayed == {1: "new"}
        again.close()

    def test_npoints_mismatch_resets_the_file(self, tmp_path):
        log = self._open(tmp_path, n=8)
        log.record(2, "x")
        log.close()
        resized = self._open(tmp_path, n=9)
        assert resized.replayed == {}
        resized.close()

    def test_poison_frames_replay_as_history_not_completion(self, tmp_path):
        log = self._open(tmp_path)
        log.record(0, "ok")
        log.record_poison(5, "killed workers twice")
        log.close()
        again = self._open(tmp_path)
        assert again.replayed == {0: "ok"}
        assert again.prior_poisons == {5: "killed workers twice"}
        again.close()

    def test_finish_deletes_close_keeps(self, tmp_path):
        path = tmp_path / "j.wal"
        log = self._open(tmp_path)
        log.record(0, 1)
        log.close()
        assert path.exists()
        log = self._open(tmp_path)
        log.finish()
        assert not path.exists()

    def test_out_of_range_indices_treated_as_torn(self, tmp_path):
        log = self._open(tmp_path, n=4)
        log.record(0, "ok")
        log.close()
        with open(tmp_path / "j.wal", "ab") as f:
            f.write(_pack(("done", 99, pickle.dumps("bad"))))
        again = self._open(tmp_path, n=4)
        assert again.replayed == {0: "ok"}
        again.close()


class TestFingerprint:
    def test_kind_and_points_and_order_all_matter(self):
        a = sweep_fingerprint("k", ["d0", "d1"])
        assert a == sweep_fingerprint("k", ["d0", "d1"])
        assert a != sweep_fingerprint("other", ["d0", "d1"])
        assert a != sweep_fingerprint("k", ["d1", "d0"])
        assert a != sweep_fingerprint("k", ["d0"])

    def test_journal_names_files_by_fingerprint(self, tmp_path):
        j = SweepJournal(tmp_path)
        log = j.open_sweep("k", ["d0", "d1"])
        assert log.path.parent == tmp_path
        assert log.path.name == f"{sweep_fingerprint('k', ['d0', 'd1'])}.wal"
        log.finish()


# -- sweep integration --------------------------------------------------------


class TestSweepJournalIntegration:
    def test_completed_sweep_leaves_no_journal(self, tmp_path):
        with use_context(ExecContext(workers=1, journal=tmp_path)) as ctx:
            out = sweep("jtest", _square, list(range(6)))
        assert out == [x * x for x in range(6)]
        assert list(tmp_path.glob("*.wal")) == []
        assert ctx.stats.journal_replayed == 0

    def test_resume_replays_and_restores_cache(self, tmp_path):
        points = list(range(8))
        cache_dir = tmp_path / "cache"
        # Simulate the killed first attempt: journal holds points 0-4.
        with use_context(ExecContext(workers=1, cache=cache_dir)) as ctx:
            keys = [ctx.cache.key_for("jtest", p) for p in points]
        fp = sweep_fingerprint("jtest", keys)
        log = SweepLog(tmp_path / f"{fp}.wal", fp, "jtest", len(points)).open()
        for i in range(5):
            log.record(i, points[i] * points[i])
        log.close()
        with use_context(
            ExecContext(workers=1, cache=cache_dir, journal=tmp_path)
        ) as ctx:
            out = sweep("jtest", _square, points)
            # Replayed values also restore cache-state parity.
            hits = sum(1 for hit, _ in ctx.cache.get_many(keys) if hit)
        assert out == [x * x for x in points]
        assert ctx.stats.journal_replayed == 5
        assert ctx.stats.points_run == 3
        assert hits == len(points)
        assert list(tmp_path.glob("*.wal")) == []


_KILL_SCRIPT = textwrap.dedent(
    """
    import os, signal, sys
    sys.path.insert(0, {src!r})
    from repro.exec import ExecContext, use_context
    from repro.exec.sweep import sweep

    KILL_AT = int(os.environ["KILL_AT"])

    def runner(x):
        if x == KILL_AT:
            os.kill(os.getpid(), signal.SIGKILL)  # power-loss simulation
        return x * x

    with use_context(ExecContext(workers=1, journal=os.environ["JDIR"])):
        sweep("jtest-kill", runner, list(range(int(os.environ["NPOINTS"]))))
    """
)


def _square_kill_immune(x):
    return x * x


class TestSigkillResume:
    @pytest.mark.parametrize("kill_at", [0, 7, 15])
    def test_sigkilled_sweep_resumes_bit_identical(self, tmp_path, kill_at):
        """Kill the sweep *process* at a midpoint; the resumed run must
        produce byte-identical results and delete the journal."""
        npoints = 16
        env = dict(
            os.environ,
            JDIR=str(tmp_path),
            KILL_AT=str(kill_at),
            NPOINTS=str(npoints),
        )
        env.pop("REPRO_CACHE_DIR", None)
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_SCRIPT.format(src="src")],
            env=env,
            cwd=os.getcwd(),
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        wals = list(tmp_path.glob("*.wal"))
        assert len(wals) == 1, "the killed run must leave its journal"
        serial = [x * x for x in range(npoints)]
        with use_context(ExecContext(workers=1, journal=tmp_path)) as ctx:
            out = sweep("jtest-kill", _square_kill_immune, list(range(npoints)))
        assert pickle.dumps(out) == pickle.dumps(serial)
        # Everything the killed run logged was replayed, never recomputed;
        # the kill point itself was not logged, so at least one point ran.
        assert ctx.stats.journal_replayed + ctx.stats.points_run == npoints
        assert ctx.stats.points_run >= 1
        if kill_at > 0:
            assert ctx.stats.journal_replayed >= 1
        assert list(tmp_path.glob("*.wal")) == []

    def test_env_knob_reaches_the_context(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_JOURNAL, str(tmp_path))
        ctx = ExecContext(workers=1)
        assert ctx.journal_dir == tmp_path
        assert ctx.journal() is not None
        monkeypatch.delenv(ENV_JOURNAL)
        assert ExecContext(workers=1).journal() is None
