"""Deterministic fault injection: the stack degrades, never breaks.

Covers the PR-5 acceptance battery: faults-off bit-identity, scheduled
single-fault behaviour of the retry/fallback ladder, seeded probabilistic
plans completing every core collective with verified buffers and
reproducible counters, straggler slowdowns, and the exec-layer plumbing
(cache keys, warm-pool bypass, sweep counter transport).
"""

import pytest

from repro.core.runner import (
    CollectiveSpec,
    NodePool,
    run_collective,
    run_collective_pooled,
)
from repro.faults import (
    ENV_FAULTS,
    FaultPlan,
    FaultSpec,
    parse_plan,
    plan_from_env,
)
from repro.machine import make_generic

#: the five core collectives the issue's acceptance battery names
CORE = [
    ("scatter", "parallel_read"),
    ("gather", "parallel_write"),
    ("bcast", "direct_read"),
    ("allgather", "ring_source_read"),
    ("alltoall", "pairwise"),
]

#: a plan exercising every fault kind at once
FULL_PLAN = parse_plan(
    "11:partial@0.3,eperm@0.1,esrch@0.05,efault@0.05,eintr@0.15,straggler@2.0"
)


def arch8():
    return make_generic(sockets=1, cores_per_socket=8)


def spec_for(coll, alg, faults=None, **kw):
    kw.setdefault("procs", 8)
    kw.setdefault("eta", 16384)
    return CollectiveSpec(
        collective=coll, algorithm=alg, arch=arch8(), faults=faults, **kw
    )


def fingerprint(r):
    return (r.latency_us, tuple(r.per_rank_us), r.sim_events, r.ctrl_messages)


class TestPlanConstruction:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("ebadf")

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("eperm", op="mmap")

    def test_straggler_takes_no_trigger(self):
        with pytest.raises(ValueError):
            FaultSpec("straggler", prob=0.5)
        with pytest.raises(ValueError):
            FaultSpec("straggler", calls=(0,))

    def test_prob_range_enforced(self):
        with pytest.raises(ValueError):
            FaultSpec("eperm", prob=1.5)

    def test_spec_requires_faultplan_type(self):
        with pytest.raises(ValueError):
            spec_for("scatter", "parallel_read", faults="7:eperm")

    def test_parse_plan(self):
        plan = parse_plan("7:partial@0.4,eperm,straggler@2.5")
        assert plan.seed == 7
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["partial", "eperm", "straggler"]
        assert plan.specs[0].prob == 0.4
        assert plan.specs[1].prob == 0.1  # per-kind default
        assert plan.specs[2].resolved_factor == 2.5

    def test_parse_plan_rejects_garbage(self):
        for bad in ("", "7:", "x:eperm", "7:ebadf", "7:eperm@zero"):
            with pytest.raises(ValueError):
                parse_plan(bad)

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULTS, raising=False)
        assert plan_from_env() is None
        monkeypatch.setenv(ENV_FAULTS, "3:eintr@0.2")
        plan = plan_from_env()
        assert plan.seed == 3 and plan.specs[0].kind == "eintr"


class TestDrawMechanics:
    def test_call_index_advances_once_per_draw(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("eperm", calls=(1,)),))
        st = plan.arm()
        assert st.draw("readv", 5, 9, pages=4) is None  # idx 0
        assert st.draw("readv", 5, 9, pages=4).kind == "eperm"  # idx 1
        assert st.draw("readv", 5, 9, pages=4) is None  # idx 2
        assert st.injected == {"eperm": 1}

    def test_first_matching_spec_wins(self):
        plan = FaultPlan(
            seed=0,
            specs=(FaultSpec("eintr", calls=(0,)), FaultSpec("eperm", calls=(0,))),
        )
        st = plan.arm()
        assert st.draw("readv", 5, 9, pages=4).kind == "eintr"

    def test_partial_needs_two_pages(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("partial", calls=(0, 1)),))
        st = plan.arm()
        assert st.draw("readv", 5, 9, pages=1) is None
        assert st.draw("readv", 5, 9, pages=2).kind == "partial"

    def test_op_and_pid_filters(self):
        plan = FaultPlan(
            seed=0, specs=(FaultSpec("eperm", op="writev", pid=7, calls=(0,)),)
        )
        st = plan.arm()
        assert st.draw("readv", 7, 9) is None  # wrong op (idx 0 consumed)
        assert st.draw("writev", 8, 9) is None  # wrong pid
        assert st.draw("writev", 7, 9).kind == "eperm"

    def test_straggler_scale_is_a_product(self):
        plan = FaultPlan(
            seed=0,
            specs=(FaultSpec("straggler", factor=2.0), FaultSpec("straggler", pid=7)),
        )
        st = plan.arm()
        assert st.scale(7) == 4.0  # 2.0 * default 2.0
        assert st.scale(8) == 2.0
        assert st.total_injected == 0  # stragglers never "fire"

    def test_rearm_restarts_streams(self):
        plan = FaultPlan(seed=42, specs=(FaultSpec("eperm", prob=0.5),))
        a = [plan.arm().draw("readv", 5, 9) is not None for _ in range(3)]
        b = [plan.arm().draw("readv", 5, 9) is not None for _ in range(3)]
        assert a == b


class TestBitIdentityWhenOff:
    """Faults off (or vacuously armed) must not perturb the simulation."""

    @pytest.mark.parametrize("coll,alg", [CORE[0], CORE[4]])
    def test_empty_armed_plan_matches_no_plan(self, coll, alg):
        with_plan = run_collective(spec_for(coll, alg, faults=FaultPlan(seed=3)))
        without = run_collective(spec_for(coll, alg))
        assert fingerprint(with_plan) == fingerprint(without)
        assert with_plan.fallbacks == 0
        assert with_plan.retries == 0
        assert with_plan.faults_injected == 0

    def test_unit_straggler_matches_no_plan(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("straggler", factor=1.0),))
        a = run_collective(spec_for("scatter", "parallel_read", faults=plan))
        b = run_collective(spec_for("scatter", "parallel_read"))
        assert fingerprint(a) == fingerprint(b)


class TestScheduledFaults:
    """One exact fault, one exact consequence on the ladder."""

    def test_eperm_first_call_falls_back(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("eperm", calls=(0,)),))
        r = run_collective(spec_for("scatter", "parallel_read", faults=plan))
        assert r.faults_injected == 1
        assert r.fallbacks == 1  # verdict cached False, shm path used
        assert r.retries == 0

    def test_eintr_first_call_retries(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("eintr", calls=(0,)),))
        r = run_collective(spec_for("scatter", "parallel_read", faults=plan))
        assert r.faults_injected == 1
        assert r.retries == 1
        assert r.fallbacks == 0  # the re-issued call succeeds

    def test_partial_first_call_resumes_from_offset(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("partial", calls=(0,)),))
        r = run_collective(spec_for("scatter", "parallel_read", faults=plan))
        assert r.faults_injected == 1
        assert r.retries == 1  # resume-from-offset is a retry
        assert r.fallbacks == 0

    def test_esrch_mid_collective_falls_back(self):
        # call indices are per (op, target-pid): pin the spec to rank 0's
        # pid (20000, the deterministic pid_base) so exactly one of the
        # eight read streams hits index 2.
        plan = FaultPlan(
            seed=0, specs=(FaultSpec("esrch", calls=(2,), pid=20_000),)
        )
        r = run_collective(spec_for("alltoall", "pairwise", faults=plan))
        assert r.faults_injected == 1
        assert r.fallbacks == 1

    def test_efault_falls_back_without_verdict(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("efault", calls=(0,)),))
        r = run_collective(spec_for("scatter", "parallel_read", faults=plan))
        assert r.faults_injected == 1
        assert r.fallbacks == 1

    def test_traced_path_injects_too(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("eperm", calls=(0,)),))
        r = run_collective(
            spec_for("scatter", "parallel_read", faults=plan, trace=True)
        )
        assert r.fallbacks == 1
        assert r.trace_by_phase  # tracing still works under injection


class TestSeededBattery:
    """Every core collective completes, verified, under the full matrix."""

    @pytest.mark.parametrize("coll,alg", CORE)
    def test_completes_with_nonzero_counters(self, coll, alg):
        r = run_collective(spec_for(coll, alg, faults=FULL_PLAN))
        # verify=True (the default) already checked MPI semantics on the
        # buffers; the counters prove the degraded path actually ran.
        assert r.faults_injected > 0
        assert r.fallbacks + r.retries > 0

    @pytest.mark.parametrize("coll,alg", CORE)
    def test_same_seed_reproduces_exactly(self, coll, alg):
        a = run_collective(spec_for(coll, alg, faults=FULL_PLAN))
        b = run_collective(spec_for(coll, alg, faults=FULL_PLAN))
        assert fingerprint(a) == fingerprint(b)
        assert (a.fallbacks, a.retries, a.faults_injected) == (
            b.fallbacks,
            b.retries,
            b.faults_injected,
        )

    def test_different_seed_differs_somewhere(self):
        other = FaultPlan(seed=12345, specs=FULL_PLAN.specs)
        diffs = 0
        for coll, alg in CORE:
            a = run_collective(spec_for(coll, alg, faults=FULL_PLAN))
            b = run_collective(spec_for(coll, alg, faults=other))
            diffs += fingerprint(a) != fingerprint(b)
        assert diffs > 0

    def test_aggressive_eperm_routes_everything_through_shm(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec("eperm", prob=1.0),))
        clean = run_collective(spec_for("allgather", "ring_source_read"))
        r = run_collective(spec_for("allgather", "ring_source_read", faults=plan))
        assert r.fallbacks > 0
        assert r.cma_reads == 0 and r.cma_writes == 0  # no CMA call succeeded
        assert r.latency_us > clean.latency_us  # two-copy path costs more

    def test_straggler_slows_the_collective(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec("straggler", factor=3.0),))
        clean = run_collective(spec_for("scatter", "parallel_read"))
        slow = run_collective(spec_for("scatter", "parallel_read", faults=plan))
        assert slow.latency_us > 1.5 * clean.latency_us
        assert slow.faults_injected == 0  # stragglers are ambient, not events

    def test_env_plan_battery(self, monkeypatch):
        """REPRO_FAULTS drives a full plan with observable counters."""
        monkeypatch.setenv(ENV_FAULTS, "5:partial@0.4,eintr@0.2")
        plan = plan_from_env()
        for coll, alg in CORE:
            a = run_collective(spec_for(coll, alg, faults=plan))
            b = run_collective(spec_for(coll, alg, faults=plan))
            assert fingerprint(a) == fingerprint(b)

    def test_live_env_plan_battery(self):
        """The CI fault-matrix job's hook: arm whatever REPRO_FAULTS says
        (falling back to a default when unset) and require completion +
        exact reproducibility.  No counter assertions: straggler-only
        plans legitimately produce zero fallbacks/retries."""
        plan = plan_from_env() or parse_plan("5:partial@0.4,eintr@0.2")
        for coll, alg in CORE:
            a = run_collective(spec_for(coll, alg, faults=plan))
            b = run_collective(spec_for(coll, alg, faults=plan))
            assert fingerprint(a) == fingerprint(b)
            assert (a.fallbacks, a.retries, a.faults_injected) == (
                b.fallbacks,
                b.retries,
                b.faults_injected,
            )


class TestExecPlumbing:
    def test_plan_changes_cache_key(self, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path)
        clean = spec_for("scatter", "parallel_read")
        faulted = spec_for("scatter", "parallel_read", faults=FULL_PLAN)
        reseeded = spec_for(
            "scatter",
            "parallel_read",
            faults=FaultPlan(seed=99, specs=FULL_PLAN.specs),
        )
        keys = {
            cache.key_for("collective", s) for s in (clean, faulted, reseeded)
        }
        assert len(keys) == 3

    def test_pooled_runner_bypasses_warm_pool(self):
        pool = NodePool()
        faulted = run_collective_pooled(
            spec_for("scatter", "parallel_read", faults=FULL_PLAN), pool=pool
        )
        assert faulted.faults_injected > 0
        assert pool.leases == 0  # faulted spec never touched the pool
        # and a clean pooled run afterwards is still bit-identical to fresh
        a = run_collective_pooled(spec_for("scatter", "parallel_read"), pool=pool)
        b = run_collective(spec_for("scatter", "parallel_read"))
        assert fingerprint(a) == fingerprint(b)

    def test_sweep_transports_counters_and_caches(self, tmp_path):
        from repro.exec import context as exec_context
        from repro.exec.sweep import run_specs

        specs = lambda: [  # noqa: E731 - rebuilt per call, specs are mutable
            spec_for("scatter", "parallel_read", faults=FULL_PLAN),
            spec_for("scatter", "parallel_read"),
        ]
        with exec_context.use_context(
            exec_context.ExecContext(workers=1, cache=tmp_path)
        ):
            first = run_specs(specs())
        with exec_context.use_context(
            exec_context.ExecContext(workers=1, cache=tmp_path)
        ) as ctx:
            second = run_specs(specs())
            assert ctx.stats.cache_hits == 2
        for a, b in zip(first, second):
            assert fingerprint(a) == fingerprint(b)
            assert (a.fallbacks, a.retries, a.faults_injected) == (
                b.fallbacks,
                b.retries,
                b.faults_injected,
            )
        assert first[0].faults_injected > 0
        assert first[1].faults_injected == 0


class TestSetupOpInjection:
    """KNEM declare / LiMIC tx ride the same draw machinery."""

    def _node_comm(self, plan):
        from repro.mpi import Comm, Node

        node = Node(arch8(), faults=plan)
        comm = Comm(node, 2)
        return node, comm

    def test_knem_declare_eperm(self):
        from repro.kernel.errors import CMAError
        from repro.kernel.knem import KnemKernel

        plan = FaultPlan(
            seed=0, specs=(FaultSpec("eperm", op="declare", calls=(0,)),)
        )
        node, comm = self._node_comm(plan)
        knem = KnemKernel(node.cma)
        buf = comm.allocate(0, 4096)

        def rank0(ctx):
            with pytest.raises(CMAError) as exc:
                yield from knem.declare_region(ctx.proc, buf.addr, 4096)
            assert exc.value.errno == 1  # EPERM
            # the very next declare succeeds (calls=(0,) fired once)
            cookie = yield from knem.declare_region(ctx.proc, buf.addr, 4096)
            assert cookie is not None

        proc = comm.spawn_rank(0, rank0)
        node.sim.run_all([proc])

    def test_limic_tx_eintr(self):
        from repro.kernel.errors import CMAError
        from repro.kernel.limic import LimicKernel

        plan = FaultPlan(seed=0, specs=(FaultSpec("eintr", op="tx", calls=(0,)),))
        node, comm = self._node_comm(plan)
        limic = LimicKernel(node.cma)
        buf = comm.allocate(0, 4096)

        def rank0(ctx):
            with pytest.raises(CMAError) as exc:
                yield from limic.tx_init(ctx.proc, buf.addr, 4096)
            assert exc.value.errno == 4  # EINTR
            txid = yield from limic.tx_init(ctx.proc, buf.addr, 4096)
            assert txid is not None

        proc = comm.spawn_rank(0, rank0)
        node.sim.run_all([proc])
