"""Correctness tests for every collective algorithm (Sections IV-V).

Every run moves real bytes through the simulated address spaces and the
runner checks full MPI postconditions, so these tests cover offsets,
synchronization protocols, and non-power-of-two handling — not just "it
didn't crash".
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import ALGORITHMS, algorithms_for, get_algorithm
from repro.core.runner import CollectiveSpec, run_collective
from repro.machine import make_generic


def arch_for(p, sockets=1):
    return make_generic(
        sockets=sockets, cores_per_socket=max(-(-p // sockets), 2)
    )


def run(coll, alg, p=6, eta=4000, root=0, in_place=False, sockets=1, **params):
    spec = CollectiveSpec(
        collective=coll,
        algorithm=alg,
        arch=arch_for(p, sockets),
        procs=p,
        eta=eta,
        root=root,
        in_place=in_place,
        params=params,
    )
    return run_collective(spec)  # raises VerificationError on bad bytes


SIZES = [2, 3, 4, 5, 8, 13, 16]


class TestScatter:
    @pytest.mark.parametrize("p", SIZES)
    def test_parallel_read(self, p):
        run("scatter", "parallel_read", p=p)

    @pytest.mark.parametrize("p", SIZES)
    def test_sequential_write(self, p):
        run("scatter", "sequential_write", p=p)

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("k", [1, 2, 3, 7])
    def test_throttled_read(self, p, k):
        if k > p - 1:
            pytest.skip("k exceeds reader count")
        run("scatter", "throttled_read", p=p, k=k)

    @pytest.mark.parametrize("alg", algorithms_for("scatter"))
    @pytest.mark.parametrize("root", [1, 3])
    def test_nonzero_root(self, alg, root):
        params = {"k": 2} if alg == "throttled_read" else {}
        run("scatter", alg, p=6, root=root, **params)

    @pytest.mark.parametrize("alg", algorithms_for("scatter"))
    def test_in_place_root(self, alg):
        params = {"k": 2} if alg == "throttled_read" else {}
        run("scatter", alg, p=5, in_place=True, **params)

    def test_tiny_message(self):
        run("scatter", "throttled_read", p=5, eta=1, k=2)

    def test_multi_page_message(self):
        run("scatter", "throttled_read", p=4, eta=3 * 4096 + 17, k=2)

    def test_throttled_bounds_concurrency(self):
        """No more than k readers ever contend on the root's mm lock."""
        for k in (1, 2, 4):
            spec = CollectiveSpec(
                "scatter",
                "throttled_read",
                arch_for(9),
                procs=9,
                eta=64 * 1024,
                params={"k": k},
            )
            res = run_collective(spec)
            node_lock = None
            # reach into the kernel: the root's mm lock
            assert res.cma_reads == 8
            del node_lock

    def test_throttle_k_vs_latency_tradeoff(self):
        """k=1 equals sequential behaviour; large k approaches parallel."""
        p, eta = 9, 256 * 1024
        lat = {
            k: run("scatter", "throttled_read", p=p, eta=eta, k=k).latency_us
            for k in (1, 2, 8)
        }
        seq = run("scatter", "sequential_write", p=p, eta=eta).latency_us
        par = run("scatter", "parallel_read", p=p, eta=eta).latency_us
        # throttling interpolates between the two extremes
        assert min(lat.values()) <= max(seq, par)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            run("scatter", "throttled_read", p=4, k=0)
        with pytest.raises(ValueError):
            run("scatter", "throttled_read", p=4, k=9)


class TestGather:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("alg", algorithms_for("gather"))
    def test_all_algorithms(self, p, alg):
        params = {"k": min(2, p - 1)} if alg == "throttled_write" else {}
        run("gather", alg, p=p, **params)

    @pytest.mark.parametrize("alg", algorithms_for("gather"))
    def test_nonzero_root(self, alg):
        params = {"k": 3} if alg == "throttled_write" else {}
        run("gather", alg, p=7, root=4, **params)

    @pytest.mark.parametrize("alg", algorithms_for("gather"))
    def test_in_place_root(self, alg):
        params = {"k": 2} if alg == "throttled_write" else {}
        run("gather", alg, p=5, in_place=True, **params)

    def test_gather_mirrors_scatter_cost(self):
        """Read and write paths are symmetric in the model; the mirrored
        algorithms should land within a few percent of each other."""
        p, eta = 8, 128 * 1024
        s = run("scatter", "parallel_read", p=p, eta=eta).latency_us
        g = run("gather", "parallel_write", p=p, eta=eta).latency_us
        assert g == pytest.approx(s, rel=0.10)


class TestAlltoall:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("alg", algorithms_for("alltoall"))
    def test_all_algorithms(self, p, alg):
        run("alltoall", alg, p=p, eta=2000)

    def test_native_uses_fewer_ctrl_messages_than_pt2pt(self):
        """The point of native CMA collectives: no RTS/CTS per transfer."""
        p, eta = 8, 64 * 1024
        coll = run("alltoall", "pairwise", p=p, eta=eta)
        p2p = run("alltoall", "pairwise_pt2pt", p=p, eta=eta)
        assert coll.ctrl_messages < p2p.ctrl_messages / 2
        assert coll.latency_us < p2p.latency_us

    def test_shm_loses_for_large_messages(self):
        p, eta = 6, 256 * 1024
        coll = run("alltoall", "pairwise", p=p, eta=eta)
        shm = run("alltoall", "pairwise_shm", p=p, eta=eta)
        assert coll.latency_us < shm.latency_us

    def test_bruck_loses_for_large_messages(self):
        p, eta = 8, 128 * 1024
        pw = run("alltoall", "pairwise", p=p, eta=eta)
        bk = run("alltoall", "bruck", p=p, eta=eta)
        assert pw.latency_us < bk.latency_us

    def test_single_syscall_per_bruck_step(self):
        """Bruck moves ~p/2 blocks per step in ONE multi-iovec read."""
        res = run("alltoall", "bruck", p=8, eta=1000)
        assert res.cma_reads == 8 * 3  # lg 8 = 3 steps per rank


class TestAllgather:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize(
        "alg", ["ring_source_read", "ring_source_write", "recursive_doubling", "bruck"]
    )
    def test_all_algorithms(self, p, alg):
        run("allgather", alg, p=p, eta=3000)

    @pytest.mark.parametrize("p,j", [(5, 1), (5, 2), (5, 4), (8, 3), (9, 2), (13, 5)])
    def test_ring_neighbor_valid_strides(self, p, j):
        run("allgather", "ring_neighbor", p=p, j=j)

    @pytest.mark.parametrize("p,j", [(8, 2), (8, 4), (9, 3), (6, 3)])
    def test_ring_neighbor_invalid_strides_rejected(self, p, j):
        with pytest.raises(ValueError, match="gcd"):
            run("allgather", "ring_neighbor", p=p, j=j)

    @pytest.mark.parametrize("alg", algorithms_for("allgather"))
    def test_in_place(self, alg):
        if alg == "ring_source_read":
            pytest.skip("ring-source-read reads original sendbufs")
        params = {"j": 1} if alg == "ring_neighbor" else {}
        run("allgather", alg, p=6, in_place=False, **params)

    def test_recursive_doubling_power_of_two_uses_lg_steps(self):
        res = run("allgather", "recursive_doubling", p=8, eta=1000)
        assert res.cma_reads == 8 * 3  # 3 multi-iovec reads per rank

    def test_recursive_doubling_non_power_of_two_pays_extra(self):
        """Fold-in/pull-out costs a full extra transfer (paper: advantage
        lost on non-power-of-two counts)."""
        pow2 = run("allgather", "recursive_doubling", p=8, eta=64 * 1024)
        ring = run("allgather", "ring_source_read", p=8, eta=64 * 1024)
        n12 = run("allgather", "recursive_doubling", p=12, eta=64 * 1024)
        r12 = run("allgather", "ring_source_read", p=12, eta=64 * 1024)
        # at p=8 RD is at least competitive with ring; at p=12 it loses
        assert pow2.latency_us < 1.2 * ring.latency_us
        assert n12.latency_us > r12.latency_us

    def test_intra_socket_stride_beats_cross_socket(self):
        """Fig 10(b): Ring-Neighbor-1 vs Ring-Neighbor-5 on two sockets."""
        p, eta = 13, 256 * 1024
        t1 = run("allgather", "ring_neighbor", p=p, eta=eta, sockets=2, j=1)
        t5 = run("allgather", "ring_neighbor", p=p, eta=eta, sockets=2, j=6)
        assert t1.latency_us < t5.latency_us


class TestBcast:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("alg", ["direct_read", "direct_write", "scatter_allgather"])
    def test_all_algorithms(self, p, alg):
        run("bcast", alg, p=p, eta=5000)

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_knomial(self, p, k):
        run("bcast", "knomial", p=p, k=k)

    @pytest.mark.parametrize("alg", algorithms_for("bcast"))
    @pytest.mark.parametrize("root", [2, 5])
    def test_nonzero_root(self, alg, root):
        params = {"k": 2} if alg == "knomial" else {}
        run("bcast", alg, p=7, root=root, **params)

    def test_eta_smaller_than_procs(self):
        """scatter-allgather chunking with zero-length chunks."""
        run("bcast", "scatter_allgather", p=8, eta=5)

    def test_knomial_beats_direct_read_at_scale(self):
        p, eta = 16, 256 * 1024
        kn = run("bcast", "knomial", p=p, eta=eta, k=4)
        dr = run("bcast", "direct_read", p=p, eta=eta)
        assert kn.latency_us < dr.latency_us

    def test_scatter_allgather_wins_large(self):
        """Fig 11: contention avoidance wins for large payloads."""
        p, eta = 16, 1 << 20
        sa = run("bcast", "scatter_allgather", p=p, eta=eta)
        dr = run("bcast", "direct_read", p=p, eta=eta)
        dw = run("bcast", "direct_write", p=p, eta=eta)
        assert sa.latency_us < dr.latency_us
        assert sa.latency_us < dw.latency_us


class TestRunnerInterface:
    def test_unknown_collective(self):
        with pytest.raises(KeyError):
            get_algorithm("barrier", "dissemination")

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            get_algorithm("scatter", "quantum")

    def test_algorithms_for_lists_everything(self):
        assert set(ALGORITHMS) == {
            "scatter",
            "gather",
            "alltoall",
            "allgather",
            "bcast",
            "reduce",
            "allreduce",
            "scatterv",
            "gatherv",
            "alltoallv",
        }
        assert "throttled_read" in algorithms_for("scatter")

    def test_spec_validation(self):
        arch = arch_for(4)
        with pytest.raises(ValueError):
            CollectiveSpec("scatter", "parallel_read", arch, procs=1)
        with pytest.raises(ValueError):
            CollectiveSpec("scatter", "parallel_read", arch, procs=4, eta=0)
        with pytest.raises(ValueError):
            CollectiveSpec("scatter", "parallel_read", arch, procs=4, root=4)

    def test_plain_algorithms_reject_params(self):
        with pytest.raises(TypeError):
            get_algorithm("scatter", "parallel_read").make(k=3)

    def test_result_counters(self):
        res = run("scatter", "sequential_write", p=5, eta=10_000)
        assert res.cma_writes == 4
        assert res.cma_reads == 0
        assert res.latency_us > 0
        assert len(res.per_rank_us) == 5
        assert res.mean_us <= res.latency_us

    def test_trace_collection(self):
        spec = CollectiveSpec(
            "bcast",
            "direct_read",
            arch_for(4),
            procs=4,
            eta=32 * 1024,
            trace=True,
        )
        res = run_collective(spec)
        assert res.trace_by_phase is not None
        assert res.trace_by_phase["copy"] > 0

    def test_timing_only_mode_is_deterministic(self):
        spec = dict(
            collective="allgather",
            algorithm="ring_source_read",
            arch=arch_for(6),
            procs=6,
            eta=50_000,
        )
        a = run_collective(CollectiveSpec(**spec, verify=False)).latency_us
        b = run_collective(CollectiveSpec(**spec, verify=True)).latency_us
        assert a == pytest.approx(b)


# ---------------------------------------------------------------------------
# Property-based sweeps: any (p, eta, root) must satisfy MPI semantics.
# ---------------------------------------------------------------------------

_rootful = [
    ("scatter", "parallel_read", {}),
    ("scatter", "sequential_write", {}),
    ("scatter", "throttled_read", {"k": 2}),
    ("gather", "throttled_write", {"k": 3}),
    ("bcast", "knomial", {"k": 3}),
    ("bcast", "scatter_allgather", {}),
]


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=14),
    eta=st.integers(min_value=1, max_value=20_000),
    root=st.integers(min_value=0, max_value=13),
    which=st.integers(min_value=0, max_value=len(_rootful) - 1),
)
def test_property_rooted_collectives(p, eta, root, which):
    coll, alg, params = _rootful[which]
    root %= p
    if alg.startswith("throttled") and params["k"] > p - 1:
        params = {**params, "k": p - 1}
    run(coll, alg, p=p, eta=eta, root=root, **params)


_symmetric = [
    ("alltoall", "pairwise", {}),
    ("alltoall", "bruck", {}),
    ("allgather", "ring_source_read", {}),
    ("allgather", "recursive_doubling", {}),
    ("allgather", "bruck", {}),
]


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=12),
    eta=st.integers(min_value=1, max_value=10_000),
    which=st.integers(min_value=0, max_value=len(_symmetric) - 1),
)
def test_property_symmetric_collectives(p, eta, which):
    coll, alg, params = _symmetric[which]
    run(coll, alg, p=p, eta=eta, **params)


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=16),
    j=st.integers(min_value=1, max_value=15),
)
def test_property_ring_neighbor_stride(p, j):
    """Any coprime stride works; any non-coprime stride is rejected."""
    import math

    if math.gcd(j, p) == 1:
        run("allgather", "ring_neighbor", p=p, eta=500, j=j)
    else:
        with pytest.raises(ValueError):
            run("allgather", "ring_neighbor", p=p, eta=500, j=j)


def test_mean_us_matches_per_rank_average():
    res = run("bcast", "direct_read", p=4, eta=2048)
    assert res.mean_us == pytest.approx(sum(res.per_rank_us) / 4)
    assert res.mean_us <= res.latency_us


def test_mean_us_empty_per_rank_raises_clear_error():
    res = run("bcast", "direct_read", p=4, eta=2048)
    from dataclasses import replace

    hollow = replace(res, per_rank_us=[])
    with pytest.raises(ValueError, match="per_rank_us is empty"):
        hollow.mean_us
