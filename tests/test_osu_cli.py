"""Tests for the OSU-style sweep CLI (`python -m repro.osu`)."""

import pytest

from repro.osu import main as _osu_cli


def test_proposed_sweep(capsys):
    assert _osu_cli(["scatter", "--arch", "knl", "--procs", "8",
                     "--max", "65536"]) == 0
    out = capsys.readouterr().out
    assert "throttled" in out or "parallel" in out
    assert "64K" in out
    assert out.startswith("# scatter latency")


def test_library_impl(capsys):
    assert _osu_cli(["gather", "--impl", "intelmpi", "--procs", "6",
                     "--max", "16384"]) == 0
    out = capsys.readouterr().out
    assert "binomial_p2p" in out


def test_explicit_algorithm_with_params(capsys):
    assert _osu_cli(["bcast", "--impl", "knomial", "--param", "k=3",
                     "--procs", "6", "--max", "16384"]) == 0
    out = capsys.readouterr().out
    assert "knomial" in out


def test_verified_run(capsys):
    assert _osu_cli(["allreduce", "--impl", "ring", "--procs", "5",
                     "--min", "2048", "--max", "2048", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "verified" in out
    assert "2K" in out


def test_unknown_impl_rejected():
    with pytest.raises(SystemExit):
        _osu_cli(["scatter", "--impl", "warpdrive", "--max", "1024"])


def test_bad_param_rejected():
    with pytest.raises(SystemExit):
        _osu_cli(["bcast", "--impl", "knomial", "--param", "k8",
                  "--max", "1024"])


def test_unknown_collective_rejected():
    with pytest.raises(SystemExit):
        _osu_cli(["barrier"])
