"""Fig. 16 — MPI_Allgather: Proposed vs library models.

Shape criteria (paper Section VII-E): the native design wins across the
range (1.5-2x on KNL in the paper) and keeps an edge through the largest
sizes; socket awareness helps the two-socket Broadwell most.
"""


def bench_fig16_allgather_vs_libs(regen):
    exp = regen("fig16")
    # Gains vs the *best* baseline compress toward parity here because our
    # baseline pt2pt ring shares the native single-copy data path (real
    # 2017 stacks were heavier — see EXPERIMENTS.md); the paper's multi-x
    # headline is against the libraries whose tuning picked the wrong
    # algorithm (recursive doubling at 28 procs, two-copy shm), which we
    # assert via the worst-library gain.
    libs = ("mvapich2", "intelmpi", "openmpi")
    for name, d in exp.data.items():
        grid = d["grid"]
        best_gains, worst_gains = [], []
        for eta, row in grid.items():
            ours = row["proposed"]
            assert ours <= min(row[l] for l in libs) * 1.05, (name, eta)
            best_gains.append(min(row[l] for l in libs) / ours)
            worst_gains.append(max(row[l] for l in libs) / ours)
        assert max(best_gains) > 0.999, name  # never loses
        assert max(worst_gains) > 1.5, name  # multi-x vs mistuned baselines
    # the RD tax on the non-power-of-two Broadwell is what bites hardest
    bdw = exp.data["broadwell"]["grid"]
    big = max(bdw)
    assert max(bdw[big][l] for l in libs) > 1.5 * bdw[big]["proposed"]
