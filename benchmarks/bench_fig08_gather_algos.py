"""Fig. 8 — Gather algorithms: the Scatter designs mirrored.

Shape criteria (paper Section IV-B4): trends mirror Scatter — throttled
writes win the medium/large range, with k ~ 4-8 on KNL and ~10 on POWER8.
"""


def bench_fig08_gather_algos(regen):
    exp = regen("fig08")
    knl = exp.data["knl"]["grid"]
    big = max(knl)

    assert min(knl[big], key=knl[big].get) in ("thr-4", "thr-8")
    # worst-two claim is about the paper's CMA algorithms; the extension
    # xpmem lane loses one-shot large gathers by design (cold map+fault-in,
    # see EXPERIMENTS.md) and would displace par-write here
    cma_row = {k: v for k, v in knl[big].items() if k != "xpmem"}
    worst_two = sorted(cma_row, key=cma_row.get)[-2:]
    assert "par-write" in worst_two

    p8 = exp.data["power8"]["grid"]
    assert min(p8[max(p8)], key=p8[max(p8)].get) == "thr-10"

    # mirror symmetry with Scatter: same winner family at large sizes
    for name in ("knl", "broadwell", "power8"):
        grid = exp.data[name]["grid"]
        row = grid[max(grid)]
        best = min(row, key=row.get)
        assert best.startswith("thr-"), name
