"""Fig. 3 — One-to-all degradation on KNL, Broadwell, and POWER8.

Shape criteria: every architecture degrades with concurrency; KNL (slow
cores, strong bouncing) degrades hardest, Broadwell (few fast cores)
mildest — the paper's cross-architecture generality claim.
"""


def bench_fig03_arch_sweep(regen):
    exp = regen("fig03")
    big_ratio = {}
    for name, d in exp.data.items():
        readers = d["readers"]
        grid = d["grid"]
        big = max(grid)
        lo, hi = f"{readers[0]}r", f"{readers[-1]}r"
        ratio = grid[big][hi] / grid[big][lo]
        big_ratio[name] = ratio
        assert ratio > 2.5, f"{name} should degrade under one-to-all"
    assert big_ratio["knl"] > big_ratio["broadwell"]
