"""Fig. 2 — CMA read latency under three access patterns on KNL.

Shape criteria: all-to-all (disjoint pairs) scales flat; one-to-all
degrades badly with reader count; same-buffer vs different-buffers makes
no difference (the bottleneck is the source *process*, not the buffer).
"""


def bench_fig02_patterns(regen):
    exp = regen("fig02")
    readers = exp.data["readers"]
    sizes = exp.data["sizes"]
    grid = exp.data["grid"]
    big = max(sizes)
    lo, hi = f"{min(readers)}r", f"{max(readers)}r"

    a2a = grid["all-to-all (disjoint pairs)"]
    same = grid["one-to-all (same buffer)"]
    diff = grid["one-to-all (different buffers)"]

    # disjoint pairs: flat in reader count
    assert a2a[big][hi] < 1.3 * a2a[big][lo]
    # one-to-all: strong degradation
    assert same[big][hi] > 4 * same[big][lo]
    # the buffer doesn't matter, the source process does
    for n in sizes:
        assert abs(same[n][hi] - diff[n][hi]) < 0.1 * same[n][hi]
