"""Fig. 13 — MPI_Scatter: Proposed vs MVAPICH2/Intel MPI/Open MPI models.

Shape criteria (paper Section VII-B): the proposed design wins at every
message size on every architecture, by several-fold in the medium/large
range; improvements are largest where contention-unaware baselines hit
the mm-lock wall.
"""


def bench_fig13_scatter_vs_libs(regen):
    exp = regen("fig13")
    for name, d in exp.data.items():
        grid = d["grid"]
        best_gain = 0.0
        for eta, row in grid.items():
            ours = row["proposed"]
            for lib in ("mvapich2", "intelmpi", "openmpi"):
                assert ours <= row[lib] * 1.15, (name, eta, lib)
                best_gain = max(best_gain, row[lib] / ours)
        assert best_gain > 3.0, f"{name}: expected multi-x scatter win"
