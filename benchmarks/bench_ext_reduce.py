"""Extension — the reduction family (the paper's future-work direction).

Shape criteria: binomial reduce (parallel combines, one reader per source)
beats the root-serial throttled fan-in as vectors grow; the ring designs
win the large-vector regime by spreading both bandwidth and combine work;
recursive doubling wins small Allreduce (fewest rounds).
"""


def bench_ext_reduce(regen):
    exp = regen("ext_reduce")
    red = exp.data["reduce"]
    ar = exp.data["allreduce"]
    small, big = min(red), max(red)

    # large vectors: ring reduce-scatter spreads the work
    assert red[big]["ring-rs"] < red[big]["binomial"]
    assert red[big]["ring-rs"] < red[big]["gather-thr8"]
    # the tree parallelizes combines that the fan-in design serializes
    assert red[big]["binomial"] < red[big]["gather-thr8"]

    # allreduce: latency-optimal vs bandwidth-optimal crossover
    assert ar[small]["rec-dbl"] < ar[small]["ring"]
    assert ar[big]["ring"] < ar[big]["rec-dbl"]
    # composing reduce+bcast is never the best extreme at large sizes
    assert ar[big]["ring"] < ar[big]["red+bcast"]
