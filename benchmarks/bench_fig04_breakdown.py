"""Fig. 4 — ftrace-style breakdown of a CMA read on Broadwell.

Shape criteria: with one reader, copy dominates and lock waiting is ~zero;
under 27-way contention the lock(+pin) share explodes — the paper's
"majority of the time is spent inside get_user_pages" observation.
"""


def bench_fig04_breakdown(regen):
    exp = regen("fig04")
    data = exp.data["breakdown"]
    pages = max(p for p, _ in data)

    solo = data[(pages, 1)]
    crowd = data[(pages, 27)]

    # uncontended: no queueing, copy is the dominant phase
    assert solo.get("lock", 0.0) < 0.05 * solo["copy"]
    # contended: lock waiting grows by orders of magnitude...
    assert crowd["lock"] > 50 * max(solo.get("lock", 0.0), 1e-6)
    # ...and lock+pin overtakes the copy itself
    assert crowd["lock"] + crowd["pin"] > crowd["copy"]
    # per-call pin time also inflates (cache-line bouncing, not just queueing)
    assert crowd["pin"] > 1.5 * solo["pin"]
