"""Fig. 14 — MPI_Gather: Proposed vs library models.

Shape criteria (paper Section VII-C): like Scatter, multi-x improvements
across the size range; CMA already pays off at small sizes ("beneficial
for messages as small as 1KB").
"""

from repro.core.baselines import library
from repro.core.tuning import Tuner
from repro.machine import get_arch


def bench_fig14_gather_vs_libs(regen):
    exp = regen("fig14")
    for name, d in exp.data.items():
        grid = d["grid"]
        best_gain = 0.0
        for eta, row in grid.items():
            ours = row["proposed"]
            for lib in ("mvapich2", "intelmpi", "openmpi"):
                assert ours <= row[lib] * 1.15, (name, eta, lib)
                best_gain = max(best_gain, row[lib] / ours)
        assert best_gain > 3.0, name

    # the small-message claim: CMA gather already wins at a few KB
    tuner = Tuner(get_arch("knl"))
    ours = tuner.run("gather", 2048, 32).latency_us
    theirs = library("intelmpi").run("gather", get_arch("knl"), 2048, 32).latency_us
    assert ours < theirs
