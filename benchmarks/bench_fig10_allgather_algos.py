"""Fig. 10 — Allgather algorithms across architectures.

Shape criteria (paper Section V-A5): Bruck loses for large messages
(extra copies); recursive doubling is competitive only at power-of-two
process counts; on the two-socket Broadwell, Ring-Neighbor-1 (intra-socket
hops) beats Ring-Neighbor-5 (inter-socket hops).
"""


def bench_fig10_allgather_algos(regen):
    exp = regen("fig10")

    knl = exp.data["knl"]["grid"]  # quick mode: 32 procs = power of two
    big = max(knl)
    assert knl[big]["bruck"] > 1.3 * knl[big]["ring-src-rd"]
    assert knl[big]["rec-dbl"] < 1.25 * knl[big]["ring-src-rd"]

    bdw = exp.data["broadwell"]["grid"]  # 28 procs: not a power of two
    big_b = max(bdw)
    # RD's fold/pull tax at 28 procs
    assert bdw[big_b]["rec-dbl"] > bdw[big_b]["ring-src-rd"]
    # socket-aware stride choice (Fig 10(b))
    assert bdw[big_b]["ring-nbr-1"] < bdw[big_b]["ring-nbr-5"]

    # reading straight from the source never loses to the neighbor ring
    for name in exp.data:
        grid = exp.data[name]["grid"]
        row = grid[max(grid)]
        assert row["ring-src-rd"] <= row["ring-nbr-1"] * 1.1, name
