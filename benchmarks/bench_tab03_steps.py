"""Table III — isolating CMA steps by iovec games (T1 <= T2 <= T3 <= T4)."""


def bench_tab03_steps(regen):
    exp = regen("tab03")
    steps = exp.data["steps"]
    for (arch, pages), s in steps.items():
        assert s.t1_syscall < s.t2_check < s.t3_lock_pin < s.t4_copy, (arch, pages)
    # lock+pin grows with the page count; syscall cost does not
    for arch in ("knl", "broadwell", "power8"):
        small, big = steps[(arch, 4)], steps[(arch, 64)]
        assert big.t3_lock_pin - big.t2_check > 2 * (small.t3_lock_pin - small.t2_check)
        assert abs(big.t1_syscall - small.t1_syscall) < 1e-9
