"""Fig. 17 — multi-node Gather: two-level vs flat on 2/4/8 KNL nodes.

Shape criteria (paper Section VII-G): the two-level design wins at every
node count, and — the counter-intuitive result — the improvement *grows*
with node count (paper: 2x/3x/5x); the pipelined extension improves on
plain two-level.
"""


def bench_fig17_multinode(regen):
    exp = regen("fig17")
    mids = {}
    for nodes, grid in exp.data["model"].items():
        for eta, pt in grid.items():
            assert pt["two_level"] < pt["flat"], (nodes, eta)
            assert pt["pipelined"] < pt["two_level"] * 1.01, (nodes, eta)
        mids[nodes] = grid[64 * 1024]["speedup"]
    # the paper's counter-intuitive trend, at the paper's message scale
    assert mids[2] < mids[4] < mids[8]
    assert mids[2] > 1.3
    assert mids[8] > 2.5
    # the discrete-event cluster shows the same monotone trend with real,
    # verified byte movement (smaller magnitudes: same intra design on
    # both sides isolates the fabric effect)
    sim = exp.data["sim_speedups"]
    assert sim[2] < sim[4] < sim[8]
    assert sim[8] > 1.1
