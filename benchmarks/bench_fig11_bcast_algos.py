"""Fig. 11 — Broadcast algorithms across architectures.

Shape criteria (paper Section V-B4): k-nomial beats both direct designs
on every architecture; scatter-allgather has overhead for small messages
but wins the large-message range through contention avoidance.
"""


def bench_fig11_bcast_algos(regen):
    exp = regen("fig11")
    for name, d in exp.data.items():
        grid = d["grid"]
        sizes = sorted(grid)
        small, big = sizes[0], sizes[-1]
        knoms = [k for k in grid[big] if k.startswith("knom-")]
        best_knom_big = min(grid[big][k] for k in knoms)
        best_knom_small = min(grid[small][k] for k in knoms)
        # k-nomial beats the direct designs (the throttled analogue)
        assert best_knom_big < grid[big]["dir-read"], name
        assert best_knom_big < grid[big]["dir-write"], name
        # scatter-allgather: overhead for small...
        assert grid[small]["scat-allg"] > best_knom_small, name
    # ...but wins (or ties k-nomial) at the top end on KNL
    knl = exp.data["knl"]["grid"]
    big = max(knl)
    best_knom = min(v for k, v in knl[big].items() if k.startswith("knom-"))
    assert knl[big]["scat-allg"] < 1.1 * best_knom
    assert knl[big]["scat-allg"] < knl[big]["dir-read"]
