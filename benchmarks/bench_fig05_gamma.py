"""Fig. 5 — the contention factor gamma(c) and its NLLS best fit.

Shape criteria: gamma is ~independent of the page count and grows
super-linearly in the reader count; the two-socket machines (Broadwell,
POWER8) show the inter-socket knee; the fit tracks the samples.
"""


def bench_fig05_gamma(regen):
    exp = regen("fig05")
    for name, d in exp.data.items():
        samples, fit = d["samples"], d["fit"]
        by_pages = {}
        for s in samples:
            by_pages.setdefault(s.readers, {})[s.pages] = s.gamma
        # page-count independence (the paper's key modelling assumption);
        # short transfers desynchronize the queue, so allow some scatter —
        # the paper's own Fig 5 shows spread between the page-count curves.
        # POWER8 is exempt past the socket boundary: its SMT-8 cores and
        # X-bus make the measured factor noisy across page counts, which is
        # why Fig 5(c) plots only averages.
        for c, per_page in by_pages.items():
            vals = list(per_page.values())
            if c >= 4 and not (name == "power8" and c > 10):
                assert max(vals) < 3.0 * min(vals), (name, c)
        # super-linearity of the fit
        top = max(s.readers for s in samples)
        if top >= 8:
            assert fit(top) > top, f"{name}: gamma should exceed linear"
        # fit quality: rms residual small vs the largest gamma
        assert fit.residual < 0.25 * max(s.gamma for s in samples), name
    # socket knee present only on the two-socket machines
    assert exp.data["broadwell"]["fit"].spill > 0
    assert exp.data["power8"]["fit"].spill > 0
    assert exp.data["knl"]["fit"].spill == 0
