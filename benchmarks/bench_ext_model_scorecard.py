"""Extension — model-vs-simulation scorecard across the algorithm matrix.

Shape criteria: the closed forms for contention-free designs (sequential,
pairwise, ring, chain, recursive doubling) are near-exact; the contended
designs (parallel/throttled/k-nomial) carry the fitted-gamma error, which
stays well-bounded — the quantitative backing for Fig 12's "closely
matches" claim plus an honest bound on where the model is soft.
"""

UNCONTENDED = {
    ("scatter", "sequential_write"),
    ("alltoall", "pairwise"),
    ("allgather", "ring_source_read"),
    ("allgather", "recursive_doubling"),
    ("bcast", "direct_write"),
    ("bcast", "scatter_allgather"),
    ("bcast", "chain"),
    ("reduce", "binomial"),
    ("allreduce", "ring"),
}


def bench_ext_model_scorecard(regen):
    exp = regen("ext_model_scorecard")
    errors = exp.data["errors"]
    means = []
    for key, (mean_err, max_err) in errors.items():
        means.append(mean_err)
        if key in UNCONTENDED:
            assert mean_err < 0.12, (key, mean_err)
        else:
            # contended designs: fitted gamma vs transient queue dynamics
            assert mean_err < 0.60, (key, mean_err)
        assert max_err < 0.80, (key, max_err)
    assert sum(means) / len(means) < 0.25
