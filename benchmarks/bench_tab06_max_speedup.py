"""Table VI — maximum speedup of Proposed vs each library, per collective
and architecture.

Shape criteria: the paper reports up to ~50x for the personalized
collectives (Scatter/Gather), up to ~4-5x for Bcast/Allgather/Alltoall.
We assert the same structure: Proposed never loses; personalized
collectives show order-of-magnitude peaks; non-personalized show
small-multiple peaks.
"""


def bench_tab06_max_speedup(regen):
    exp = regen("tab06")
    grid = exp.data["grid"]

    for (arch, coll, lib), (speedup, _at) in grid.items():
        assert speedup >= 0.95, (arch, coll, lib, speedup)

    personalized_peak = max(
        s for (a, c, l), (s, _) in grid.items() if c in ("scatter", "gather")
    )
    assert personalized_peak > 15.0

    bcast_peak = max(s for (a, c, l), (s, _) in grid.items() if c == "bcast")
    assert bcast_peak > 2.0

    a2a_peak = max(s for (a, c, l), (s, _) in grid.items() if c == "alltoall")
    assert 1.05 < a2a_peak < 10.0
