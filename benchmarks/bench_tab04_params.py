"""Table IV — recovered model parameters per architecture.

Shape criteria: the measurement pipeline recovers the ground-truth
uncontended constants (alpha, beta, l, s) to within 2%, and every fitted
gamma is super-linear (positive quadratic term).
"""

from repro.machine import get_arch


def bench_tab04_params(regen):
    exp = regen("tab04")
    fits = exp.data["fits"]
    for name, fa in fits.items():
        truth = get_arch(name).params
        assert abs(fa.base.alpha - truth.alpha) < 0.02 * truth.alpha, name
        assert abs(fa.base.l_page - truth.l_page) < 0.02 * truth.l_page, name
        assert abs(fa.base.beta - truth.beta) < 0.02 * truth.beta, name
        assert fa.base.page_size == truth.page_size
        superlinear = fa.gamma.g2 > 0.001 or fa.gamma.spill > 0.01
        assert superlinear, f"{name}: gamma must be super-linear"
    # POWER8's huge pages: 16x fewer locks per byte than x86
    assert fits["power8"].base.page_size == 16 * fits["knl"].base.page_size
