"""Fig. 6 — relative aggregate throughput vs concurrency: the sweet spot.

Shape criteria: a moderate degree of concurrency maximizes aggregate
throughput (more than 1 reader helps; the maximum reader count is *not*
the best for large messages) — the observation the throttled designs
exploit.
"""


def bench_fig06_throughput(regen):
    exp = regen("fig06")
    for name, d in exp.data.items():
        readers, grid = d["readers"], d["grid"]
        big = max(grid)
        row = grid[big]
        lo, hi = f"{readers[0]}r", f"{readers[-1]}r"
        # some concurrency beats a single reader
        assert max(row.values()) > 1.2, name
        # the sweet spot is interior: max throughput not at max concurrency
        best = max(row, key=row.get)
        assert best != hi, f"{name}: sweet spot should not be max readers"
    # KNL at full subscription: aggregate throughput *collapses below one
    # reader's* for large messages — the strongest form of the paper's
    # motivation (Fig 6(a)'s 64-reader curve)
    knl = exp.data["knl"]["grid"]
    top = f"{exp.data['knl']['readers'][-1]}r"
    assert knl[max(knl)][top] < 1.5
