"""Fig. 18 — MPI_Bcast: Proposed vs library models on Broadwell and POWER8.

Shape criteria (paper Section VII-F): on Broadwell, shared memory remains
the right choice below ~2MB (the tuner *selects* it, so Proposed ties the
shm-based libraries there) and CMA wins beyond; on POWER8 the k-nomial
read wins from a few tens of KB; overall 3-4x reduction in the large range.
"""

from repro.core.tuning import Tuner
from repro.machine import get_arch


def bench_fig18_bcast_vs_libs(regen):
    exp = regen("fig18")
    for name, d in exp.data.items():
        grid = d["grid"]
        for eta, row in grid.items():
            best_lib = min(row[l] for l in ("mvapich2", "intelmpi", "openmpi"))
            assert row["proposed"] <= best_lib * 1.10, (name, eta)
        big = max(grid)
        best_lib = min(grid[big][l] for l in ("mvapich2", "intelmpi", "openmpi"))
        assert grid[big]["proposed"] < 0.95 * best_lib, name

    # the Broadwell tuning decision itself: shm below ~2MB, CMA above
    tuner = Tuner(get_arch("broadwell"))
    assert tuner.choose("bcast", 256 * 1024, 28).algorithm == "shm_slab"
    assert tuner.choose("bcast", 8 << 20, 28).algorithm != "shm_slab"
    # POWER8: kernel-assisted k-nomial from medium sizes up
    p8 = Tuner(get_arch("power8"))
    assert p8.choose("bcast", 128 * 1024, 160).algorithm in (
        "knomial",
        "scatter_allgather",
    )
