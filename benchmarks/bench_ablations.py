"""Ablations for the design choices DESIGN.md calls out.

* bounce — without the cache-line bounce term, contention collapses to
  ~queueing-linear and throttling loses most of its edge: super-linearity
  is what the contention-aware designs exploit.
* batch — coarser pin batches amortize lock fights; batch=1 is the
  pathological case.
* throttle — the model-derived k* agrees with exhaustive simulation.
"""


def bench_ablation_bounce(regen):
    exp = regen("ablation_bounce")
    gamma = exp.data["gamma"]
    top = max(gamma["with"])
    # with bounce: super-linear; without: at most ~linear queueing
    assert gamma["with"][top] > 1.3 * top
    assert gamma["without"][top] < 1.3 * top
    # throttling pays off far more when contention is super-linear
    ratios = exp.data["scatter_ratio"]
    assert ratios["with"] > ratios["without"]
    assert ratios["with"] > 1.5


def bench_ablation_batch(regen):
    exp = regen("ablation_batch")
    lat = exp.data["latency"]
    # per-page locking is the worst; the kernel's batching helps
    assert lat[1] > lat[16]
    # diminishing returns: 16 -> 64 is a much smaller step than 1 -> 16
    gain_1_16 = lat[1] / lat[16]
    gain_16_64 = lat[16] / lat[64]
    assert gain_1_16 > gain_16_64


def bench_ablation_throttle(regen):
    exp = regen("ablation_throttle")
    model_k, sim_k = exp.data["model_k"], exp.data["sim_k"]
    sim = exp.data["sim"]
    # the model's pick is within 25% of the simulated optimum's latency
    assert sim[model_k] <= 1.25 * sim[sim_k], (model_k, sim_k)
