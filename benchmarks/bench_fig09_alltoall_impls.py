"""Fig. 9 — three implementations of the pairwise Alltoall schedule.

Shape criteria (paper Section IV-C3): CMA-pt2pt beats SHMEM for large
messages (single copy); native CMA-coll beats CMA-pt2pt in the small and
medium range (no RTS/CTS per transfer); for the largest messages the two
CMA variants converge (control traffic is amortized away).
"""


def bench_fig09_alltoall_impls(regen):
    exp = regen("fig09")
    for name, d in exp.data.items():
        grid = d["grid"]
        sizes = sorted(grid)
        big = sizes[-1]
        # single-copy beats two-copy at the top end
        assert grid[big]["CMA-pt2pt"] < grid[big]["SHMEM"], name
        # native collective never loses to pt2pt, and wins visibly somewhere
        gains = []
        for eta in sizes:
            assert grid[eta]["CMA-coll"] <= grid[eta]["CMA-pt2pt"] * 1.02, (name, eta)
            gains.append(grid[eta]["CMA-pt2pt"] / grid[eta]["CMA-coll"])
        assert max(gains) > 1.05, name
        # convergence at the largest size: RTS/CTS no longer matters much
        assert gains[-1] < gains[0] or gains[-1] < 1.2, name
