"""Table VII — speedup at the largest evaluated message size.

Shape criteria: Scatter/Gather keep multi-x factors even at the largest
sizes; Alltoall/Allgather shrink toward parity (data movement dominates,
the paper reports 10-50% there); nothing regresses below ~parity.
"""


def bench_tab07_large_speedup(regen):
    exp = regen("tab07")
    grid = exp.data["grid"]

    for (arch, coll, lib), (speedup, _at) in grid.items():
        assert speedup >= 0.9, (arch, coll, lib, speedup)

    # personalized collectives: still factors of improvement at max size
    pers = [s for (a, c, l), (s, _) in grid.items() if c in ("scatter", "gather")]
    assert max(pers) > 5.0
    assert min(pers) > 1.2

    # low-contention collectives: modest but present
    a2a = [s for (a, c, l), (s, _) in grid.items() if c == "alltoall"]
    assert all(s < 6.0 for s in a2a)
