"""Extension — kernel-copy mechanism comparison (Table I context).

Shape criteria (paper Section I): "the raw communication performance of
LiMIC, CMA and KNEM are quite similar"; all three share the
get_user_pages contention; CMA avoids KNEM's cookie / LiMIC's descriptor
setup, which is visible for small transfers and amortized away for large.
"""


def bench_ext_mechanisms(regen):
    exp = regen("ext_mechanisms")
    grid = exp.data["grid"]
    small, big = min(grid), max(grid)

    # setup-cost ordering at small sizes: CMA < LiMIC < KNEM
    assert grid[small]["CMA"] < grid[small]["LiMIC"] < grid[small]["KNEM"]
    # "quite similar" overall: within ~15% even at the smallest size
    assert grid[small]["KNEM"] < 1.15 * grid[small]["CMA"]
    # amortized away at the largest size (< 1%)
    assert grid[big]["KNEM"] < 1.01 * grid[big]["CMA"]
