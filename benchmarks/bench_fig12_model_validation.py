"""Fig. 12 — model validation: predicted vs observed Bcast latency.

Shape criteria (paper Section VI): the analytic model (with fitted
parameters) tracks the simulated latencies — every point within a factor
of two, most much closer, and the relative ordering of the algorithms is
preserved at the large-message end where the model terms dominate.
"""


def bench_fig12_model_validation(regen):
    exp = regen("fig12")
    algs = ("direct_re", "direct_wr", "scatter_a")
    for name, d in exp.data.items():
        grid = d["grid"]
        sizes = sorted(grid)
        errors = []
        for eta in sizes:
            for alg in algs:
                act = grid[eta][f"act:{alg}"]
                mod = grid[eta][f"mod:{alg}"]
                ratio = mod / act
                errors.append(abs(ratio - 1.0))
                assert 0.45 < ratio < 2.2, (name, eta, alg, ratio)
        # the fit is good on average, not just within loose bounds
        assert sum(errors) / len(errors) < 0.45, name
        # ordering preserved at the largest size
        big = sizes[-1]
        act_order = sorted(algs, key=lambda a: grid[big][f"act:{a}"])
        mod_order = sorted(algs, key=lambda a: grid[big][f"mod:{a}"])
        assert act_order == mod_order, name
