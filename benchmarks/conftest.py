"""Shared helpers for the figure/table benchmarks.

Every bench regenerates one evaluation artifact in quick mode, asserts the
paper's *shape* criteria on the raw data (who wins, where the crossovers
fall), and reports the regeneration time through pytest-benchmark.
"""

import pytest

from repro.bench.figures import run_experiment


@pytest.fixture
def regen(benchmark):
    """Run an experiment once under the benchmark timer and return it."""

    def _run(exp_id: str):
        return benchmark.pedantic(
            run_experiment, args=(exp_id,), kwargs={"quick": True},
            rounds=1, iterations=1,
        )

    return _run
