"""Shared helpers for the figure/table benchmarks.

Every bench regenerates one evaluation artifact in quick mode, asserts the
paper's *shape* criteria on the raw data (who wins, where the crossovers
fall), and reports the regeneration time through pytest-benchmark.

The ``regen`` fixture doubles as a determinism harness: each experiment is
regenerated once serially (under the benchmark timer, populating a shared
on-disk cache) and once through the sweep executor, and the two runs must
produce identical data and rendered tables.  The second run is served from
the warm cache, so the equality check costs almost nothing.
"""

import math

import pytest

from repro.bench.figures import run_experiment
from repro.exec import ExecContext, ResultCache, use_context


@pytest.fixture(scope="session")
def sweep_cache(tmp_path_factory):
    """One content-addressed result cache shared by the whole bench session."""
    return ResultCache(tmp_path_factory.mktemp("sweep-cache"))


def _equal(a, b) -> bool:
    """Recursive equality that tolerates numpy scalars/arrays in exp.data."""
    if type(a) is not type(b) and not (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ):
        return False
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    try:
        result = a == b
    except Exception:
        return False
    if result is True or result is False:
        return result
    try:  # numpy arrays compare elementwise
        return bool(result.all())
    except AttributeError:
        return False


@pytest.fixture
def regen(benchmark, sweep_cache):
    """Run an experiment serially under the benchmark timer, then again via
    the sweep executor, assert the two are identical, and return the first."""

    def _run(exp_id: str):
        with use_context(ExecContext(workers=1, cache=sweep_cache)):
            serial = benchmark.pedantic(
                run_experiment, args=(exp_id,), kwargs={"quick": True},
                rounds=1, iterations=1,
            )
        with use_context(ExecContext(workers=2, cache=sweep_cache)):
            pooled = run_experiment(exp_id, quick=True)
        assert _equal(serial.data, pooled.data), (
            f"{exp_id}: executor run diverged from serial run"
        )
        assert [t.render() for t in serial.tables] == [
            t.render() for t in pooled.tables
        ], f"{exp_id}: rendered tables diverged between serial and executor runs"
        return serial

    return _run
