"""Fig. 7 — Scatter algorithms: parallel read / sequential write /
throttled-k across the three architectures.

Shape criteria (paper Section IV-A4): parallel read wins small messages
but is the worst for large ones on KNL; throttled k in {4,8} wins the
medium/large range on KNL; POWER8's best throttle is ~10 (one socket's
cores); every algorithm result verified for MPI semantics elsewhere.
"""


def _winner(row):
    return min(row, key=row.get)


def bench_fig07_scatter_algos(regen):
    exp = regen("fig07")
    knl = exp.data["knl"]["grid"]
    small, big = min(knl), max(knl)

    # KNL: over-throttling (k=2, nearly serial) loses to parallel read at
    # large sizes; the tuned k is interior (thr-8 beats both thr-2 and the
    # largest k) — the optimum the paper's Fig 6/7 sweet spot predicts.
    # (The paper's small-message par-read advantage does not reproduce:
    # our wave-synchronization tokens are cheaper than a real MPI stack's;
    # see EXPERIMENTS.md deviations.)
    assert knl[big]["par-read"] > knl[big]["thr-2"]
    best_thr = min(v for k, v in knl[big].items() if k.startswith("thr-"))
    assert knl[big]["thr-2"] > best_thr
    thr_keys = sorted(
        (k for k in knl[big] if k.startswith("thr-")),
        key=lambda k: int(k.split("-")[1]),
    )
    assert knl[big][thr_keys[-1]] > best_thr  # largest k not optimal either
    # the best throttle beats parallel read by a wide margin at large sizes
    assert knl[big]["par-read"] > 1.8 * best_thr
    # parallel read is one of the two losers for large messages among the
    # paper's CMA algorithms (the extension xpmem lane sits outside this
    # Fig 7 claim: its cold one-shot map+fault-in cost makes it lose large
    # scatters by design — see EXPERIMENTS.md)
    cma_row = {k: v for k, v in knl[big].items() if k != "xpmem"}
    worst_two = sorted(cma_row, key=cma_row.get)[-2:]
    assert "par-read" in worst_two
    # and the mapped window indeed never wins a one-shot large scatter
    assert knl[big]["xpmem"] > best_thr
    # throttled 4/8 take the large-message win on KNL
    assert _winner(knl[big]) in ("thr-4", "thr-8")
    # throttling beats both extremes at every size beyond the smallest
    for eta in list(knl)[1:]:
        best_thr = min(v for k, v in knl[eta].items() if k.startswith("thr-"))
        assert best_thr < knl[eta]["par-read"]
        assert best_thr < knl[eta]["seq-write"]

    # POWER8: large system bandwidth + big pages favour k ~ one socket
    p8 = exp.data["power8"]["grid"]
    assert _winner(p8[max(p8)]) == "thr-10"

    # Broadwell: contention costs the least there (paper: "the performance
    # difference between different algorithms is smaller for Broadwell") —
    # measured as how much parallel read loses to the best throttle
    def contention_spread(grid):
        row = grid[max(grid)]
        best_thr = min(v for k, v in row.items() if k.startswith("thr-"))
        return row["par-read"] / best_thr

    assert contention_spread(exp.data["broadwell"]["grid"]) < contention_spread(knl)
