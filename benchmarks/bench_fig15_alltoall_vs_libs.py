"""Fig. 15 — MPI_Alltoall: Proposed vs library models.

Shape criteria (paper Section VII-D): native CMA pairwise wins in the
small/medium range (no RTS/CTS, single copy) and the advantage shrinks to
a few percent for the largest messages, where raw data movement dominates
every design.
"""


def bench_fig15_alltoall_vs_libs(regen):
    exp = regen("fig15")
    for name, d in exp.data.items():
        grid = d["grid"]
        sizes = sorted(grid)
        gains = {}
        for eta in sizes:
            row = grid[eta]
            ours = row["proposed"]
            best_lib = min(row[l] for l in ("mvapich2", "intelmpi", "openmpi"))
            gains[eta] = best_lib / ours
            assert ours <= best_lib * 1.05, (name, eta)
        # visible win somewhere in the range...
        assert max(gains.values()) > 1.05, name
        # ...but only modest improvement at the top end (bandwidth-bound)
        assert gains[sizes[-1]] < 2.0, name
