"""Experiment harness: microbenchmarks and figure/table generators.

``python -m repro.bench <experiment-id>`` regenerates any evaluation
artifact (``fig02`` .. ``fig18``, ``tab03`` .. ``tab07``, ``ablation-*``);
see :mod:`repro.bench.figures` for the catalogue and DESIGN.md for the
experiment index.
"""

from repro.bench import microbench
from repro.bench.report import Table, Series, format_bytes

__all__ = ["microbench", "Table", "Series", "format_bytes"]
