"""ASCII reporting: the tables and series the paper's figures show.

Benchmarks print these so a run of ``python -m repro.bench fig07`` produces
the same rows/columns as the paper's Figure 7 — message sizes down the
side, algorithms across the top, latency in microseconds in the cells.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

__all__ = ["format_bytes", "format_us", "sweep_summary", "Table", "Series"]


def format_bytes(n: int) -> str:
    """1024 -> '1K', 4194304 -> '4M' (the paper's x-axis labels)."""
    for unit, div in (("G", 1 << 30), ("M", 1 << 20), ("K", 1 << 10)):
        if n >= div and n % div == 0:
            return f"{n // div}{unit}"
        if n >= div:
            return f"{n / div:.1f}{unit}"
    return str(n)


def _format_count(n: int) -> str:
    """12_345_678 -> '12.3M' (compact event counts for the sweep line)."""
    if n >= 10_000_000:
        return f"{n / 1_000_000:.0f}M"
    if n >= 1_000_000:
        return f"{n / 1_000_000:.1f}M"
    if n >= 10_000:
        return f"{n / 1000:.0f}k"
    return str(n)


def sweep_summary(stats) -> str:
    """One-line execution summary for a sweep (duck-typed
    :class:`~repro.exec.context.SweepStats`): how many points actually ran
    vs. came from the cache, on how many workers, and what the run points
    cost in simulator events / compute wall time.  When the stats carry a
    per-kind breakdown (``by_kind``), each kind's run/hit counts are
    appended, so a table-compile run's cache misses can't hide inside a
    figure sweep's aggregate hit count."""
    line = (
        f"[sweep: {stats.points_total} points, {stats.points_run} run, "
        f"{stats.cache_hits} cache hits, {stats.workers} worker(s), "
        f"{stats.wall_s:.1f}s"
    )
    sim_events = getattr(stats, "sim_events", 0)
    if sim_events:
        line += (
            f"; {_format_count(sim_events)} sim events "
            f"in {stats.run_wall_s:.1f}s"
        )
    sched_chunks = getattr(stats, "sched_chunks", 0)
    if sched_chunks:
        sched_points = getattr(stats, "sched_points", 0) or 0
        mean = sched_points / sched_chunks
        line += (
            f"; sched: {sched_chunks} chunks (mean {mean:.1f} pts), "
            f"{getattr(stats, 'sched_steals', 0)} steals"
        )
        err = getattr(stats, "sched_cost_err_pct", None)
        if err is not None:
            line += f", cost err {err:.0f}%"
        fallbacks = getattr(stats, "sched_fallbacks", 0)
        if fallbacks:
            line += f", {fallbacks} fallback pts"
    quarantined = getattr(stats, "cache_quarantined", 0)
    if quarantined:
        line += f"; {quarantined} quarantined"
    resilience = []
    replayed = getattr(stats, "journal_replayed", 0)
    if replayed:
        resilience.append(f"{replayed} journal-replayed")
    respawns = getattr(stats, "sched_respawns", 0)
    if respawns:
        resilience.append(f"{respawns} respawns")
    hung = getattr(stats, "sched_hung_kills", 0)
    if hung:
        resilience.append(f"{hung} hung-killed")
    rescued = getattr(stats, "sandbox_rescues", 0)
    if rescued:
        resilience.append(f"{rescued} sandbox-rescued")
    poisoned = getattr(stats, "poisoned", 0)
    if poisoned:
        resilience.append(f"{poisoned} poisoned")
    breaker = getattr(stats, "breaker_state", "sched")
    if breaker != "sched":
        resilience.append(f"breaker={breaker}")
    if resilience:
        line += "; resilience: " + "/".join(resilience)
    by_kind = getattr(stats, "by_kind", None)
    if by_kind:
        parts = [
            f"{kind} {run} run/{hits} hit"
            for kind, (_total, run, hits) in sorted(by_kind.items())
        ]
        line += "; " + ", ".join(parts)
    return line + "]"


def format_us(t: float) -> str:
    if t >= 100_000:
        return f"{t / 1000:.0f}ms"
    if t >= 1000:
        return f"{t:.0f}"
    if t >= 10:
        return f"{t:.1f}"
    return f"{t:.2f}"


class Table:
    """A simple aligned table with a title."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class Series(Table):
    """A figure-like table: x values (message sizes) vs named series."""

    def __init__(self, title: str, xlabel: str, names: Sequence[str]):
        super().__init__(title, [xlabel, *names])
        self.names = list(names)

    def add_point(self, x: int, values: dict[str, float]) -> None:
        self.add(
            format_bytes(x),
            *(format_us(values[n]) if n in values else "-" for n in self.names),
        )

    def add_raw_point(self, xlabel: str, values: dict[str, float]) -> None:
        self.add(
            xlabel,
            *(format_us(values[n]) if n in values else "-" for n in self.names),
        )
