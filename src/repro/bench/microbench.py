"""Kernel-level microbenchmarks: the paper's Section I/II measurements.

These run raw CMA syscalls on a simulated node (no collective algorithms)
and feed Figures 2, 3, 4, 6, Table III and — through
:mod:`repro.core.fitting` — Figure 5 and Table IV.
"""

from __future__ import annotations

import functools
from typing import Literal

from repro.machine.arch import Architecture
from repro.mpi.communicator import Comm, Node

__all__ = [
    "one_to_all_latency",
    "all_to_all_latency",
    "step_timing",
    "lock_pin_per_page",
    "phase_breakdown",
    "relative_throughput",
]

Pattern = Literal["same-buffer", "different-buffers"]


def _sweepable(fn):
    """Route a microbench point through the active exec context's cache.

    With no active :mod:`repro.exec` context this is a plain call; sweep
    fan-outs reach the undecorated function via ``__wrapped__``, so pool
    workers never double-consult the cache.
    """

    @functools.wraps(fn)
    def wrapper(arch, *args, **kwargs):
        from repro.exec import sweep as _sweep

        point = _sweep.microbench_point(fn.__name__, arch, args, kwargs)
        return _sweep.cached_call(
            f"microbench.{fn.__name__}", point, lambda: fn(arch, *args, **kwargs)
        )

    return wrapper


def _build(arch: Architecture, nranks: int, trace: bool = False) -> Comm:
    node = Node(arch, verify=False, trace=trace)
    return Comm(node, nranks)


@_sweepable
def one_to_all_latency(
    arch: Architecture,
    readers: int,
    nbytes: int,
    pattern: Pattern = "different-buffers",
    iters: int = 3,
) -> float:
    """Mean per-read latency with ``readers`` concurrent readers of rank 0.

    ``same-buffer`` has every reader target one region of the source
    (Fig. 2(b)); ``different-buffers`` gives each reader its own region
    (Fig. 2(c)).  The paper's point: both degrade identically, because the
    bottleneck is the source *process's* mm lock.  ``iters`` back-to-back
    reads per reader reach the steady contention state.
    """
    comm = _build(arch, readers + 1)
    if pattern == "same-buffer":
        shared = comm.allocate(0, nbytes, "src")
        srcs = [shared] * readers
    else:
        srcs = [comm.allocate(0, nbytes, f"src{i}") for i in range(readers)]
    dsts = [comm.allocate(r + 1, nbytes, "dst") for r in range(readers)]

    def reader(ctx):
        if ctx.rank == 0:
            return
        i = ctx.rank - 1
        t0 = ctx.sim.now
        for _ in range(iters):
            yield from ctx.cma_read(0, dsts[i].iov(), srcs[i].iov())
        return (ctx.sim.now - t0) / iters

    procs = comm.run_ranks(reader)
    times = [p.result for p in procs[1:]]
    return sum(times) / len(times)


@_sweepable
def all_to_all_latency(arch: Architecture, pairs: int, nbytes: int) -> float:
    """Mean read latency over ``pairs`` disjoint reader->source pairs
    (Fig. 2(a)): no lock is shared, so this should stay flat."""
    comm = _build(arch, 2 * pairs)
    srcs = [comm.allocate(i, nbytes, "src") for i in range(pairs)]
    dsts = [comm.allocate(pairs + i, nbytes, "dst") for i in range(pairs)]

    def worker(ctx):
        if ctx.rank < pairs:
            return
        i = ctx.rank - pairs
        t0 = ctx.sim.now
        yield from ctx.cma_read(i, dsts[i].iov(), srcs[i].iov())
        return ctx.sim.now - t0

    procs = comm.run_ranks(worker)
    times = [p.result for p in procs[pairs:]]
    return sum(times) / len(times)


@_sweepable
def step_timing(arch: Architecture, step: str, pages: int = 4) -> float:
    """Table III: trigger individual steps of a CMA read via iovec games.

    ``step`` is one of ``syscall`` (T1), ``check`` (T2), ``lock_pin`` (T3),
    ``copy`` (T4); each measured time includes the previous steps.
    """
    comm = _build(arch, 2)
    n = pages * arch.params.page_size
    src = comm.allocate(0, n, "src")
    dst = comm.allocate(1, n, "dst")
    configs = {
        "syscall": ([], []),
        "check": ([], [(src.addr, 0)]),
        "lock_pin": ([], [src.iov()]),
        "copy": ([dst.iov()], [src.iov()]),
    }
    try:
        liov, riov = configs[step]
    except KeyError:
        raise KeyError(f"unknown step {step!r}; known: {sorted(configs)}") from None

    def caller(ctx):
        if ctx.rank == 0:
            return
        t0 = ctx.sim.now
        yield from ctx.cma.process_vm_readv(ctx.proc, ctx.pid_of(0), liov, riov)
        return ctx.sim.now - t0

    procs = comm.run_ranks(caller)
    return procs[1].result


@_sweepable
def lock_pin_per_page(
    arch: Architecture, readers: int, pages: int, iters: int = 3
) -> float:
    """Mean lock+pin time per page with ``readers`` concurrent readers.

    This is the quantity whose ratio to the single-reader value is the
    paper's contention factor gamma (Fig. 5): measured from trace spans,
    exactly as ftrace isolates ``get_user_pages`` time.
    """
    comm = _build(arch, readers + 1, trace=True)
    n = pages * arch.params.page_size
    srcs = [comm.allocate(0, n, f"src{i}") for i in range(readers)]
    dsts = [comm.allocate(r + 1, n, "dst") for r in range(readers)]

    def reader(ctx):
        if ctx.rank == 0:
            return
        i = ctx.rank - 1
        for _ in range(iters):
            yield from ctx.cma_read(0, dsts[i].iov(), srcs[i].iov())

    comm.run_ranks(reader)
    ph = comm.node.tracer.total_by_phase()
    total = ph.get("lock", 0.0) + ph.get("pin", 0.0)
    return total / (readers * iters * pages)


@_sweepable
def phase_breakdown(
    arch: Architecture, readers: int, pages: int
) -> dict[str, float]:
    """Fig. 4: per-phase time of one reader's CMA read under contention.

    Returns mean microseconds per call for syscall / check / lock / pin /
    copy, averaged across readers.
    """
    comm = _build(arch, readers + 1, trace=True)
    n = pages * arch.params.page_size
    srcs = [comm.allocate(0, n, f"src{i}") for i in range(readers)]
    dsts = [comm.allocate(r + 1, n, "dst") for r in range(readers)]

    def reader(ctx):
        if ctx.rank == 0:
            return
        i = ctx.rank - 1
        yield from ctx.cma_read(0, dsts[i].iov(), srcs[i].iov())

    comm.run_ranks(reader)
    totals = comm.node.tracer.total_by_phase()
    return {k: v / readers for k, v in totals.items()}


@_sweepable
def relative_throughput(
    arch: Architecture, readers: int, nbytes: int, iters: int = 3
) -> float:
    """Fig. 6: aggregate throughput of ``readers`` concurrent readers
    relative to a single reader: c * T(1) / T(c)."""
    t1 = one_to_all_latency(arch, 1, nbytes, iters=iters)
    tc = one_to_all_latency(arch, readers, nbytes, iters=iters)
    return readers * t1 / tc
