"""Figure/table generators: one function per evaluation artifact.

Every generator returns an :class:`Experiment` holding rendered ASCII
tables (the figure's rows/series) plus the raw data dict the benchmark
harness asserts shape criteria against.  ``quick=True`` (the default used
by pytest benchmarks) trims sweeps to keep a full regeneration under a
few minutes; ``quick=False`` reproduces the paper's full axes.

Experiment ids match DESIGN.md's per-experiment index: ``fig02``..``fig18``,
``tab03``..``tab07``, ``ablation_*``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.bench import microbench
from repro.bench.report import Series, Table, format_bytes, sweep_summary
from repro.core import fitting
from repro.core.baselines import LIBRARY_NAMES, library
from repro.core.model import AnalyticModel
from repro.core.multinode import MultiNodeModel
from repro.core.runner import CollectiveSpec
from repro.core.tuning import Tuner
from repro.exec import context as exec_context
from repro.exec.sweep import cached_call, run_specs, sweep_microbench
from repro.exec.sweep import run_collective as run_point
from repro.machine import ARCH_NAMES, get_arch

__all__ = ["Experiment", "CATALOGUE", "run_experiment", "experiment_ids"]


@dataclass
class Experiment:
    """One regenerated evaluation artifact."""

    id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    #: how the sweep executed (points, cache hits, workers, wall time)
    stats: Optional[exec_context.SweepStats] = None

    def render(self) -> str:
        parts = [f"### {self.id}: {self.title}"]
        parts += [t.render() for t in self.tables]
        if self.stats is not None and self.stats.points_total:
            parts.append(sweep_summary(self.stats))
        return "\n\n".join(parts)


def _sizes(quick: bool, lo: int = 4096, hi: int = 4 << 20) -> list[int]:
    sizes, n = [], lo
    step = 16 if quick else 4
    while n <= hi:
        sizes.append(n)
        n *= step
    if sizes[-1] != hi:
        sizes.append(hi)
    return sizes


def _sim_latency(coll, alg, arch, p, eta, params=None) -> float:
    spec = CollectiveSpec(
        coll, alg, arch, procs=p, eta=eta, params=params or {}, verify=False
    )
    return run_point(spec).latency_us


# ---------------------------------------------------------------------------
# Section I/II microbenchmarks
# ---------------------------------------------------------------------------


def fig02(quick: bool = True) -> Experiment:
    """CMA read latency under three access patterns on KNL (Fig. 2)."""
    arch = get_arch("knl")
    readers = [1, 4, 8, 16] if quick else [1, 4, 8, 16, 32, 64]
    sizes = _sizes(quick, 4096, 1 << 20)
    exp = Experiment("fig02", "CMA read latency vs access pattern (KNL)")
    data: dict = {}
    patterns = [
        ("all-to-all (disjoint pairs)", "all_to_all_latency", {}),
        ("one-to-all (same buffer)", "one_to_all_latency", {"pattern": "same-buffer"}),
        (
            "one-to-all (different buffers)",
            "one_to_all_latency",
            {"pattern": "different-buffers"},
        ),
    ]
    for pname, fname, kw in patterns:
        vals = iter(
            sweep_microbench(
                fname,
                [(get_arch("knl"), (c, n), kw) for n in sizes for c in readers],
            )
        )
        s = Series(f"{pname}", "msg", [f"{c}r" for c in readers])
        grid = {}
        for n in sizes:
            row = {f"{c}r": next(vals) for c in readers}
            grid[n] = row
            s.add_point(n, row)
        data[pname] = grid
        exp.tables.append(s)
    exp.data = {"readers": readers, "sizes": sizes, "grid": data}
    return exp


def fig03(quick: bool = True) -> Experiment:
    """One-to-all degradation across the three architectures (Fig. 3)."""
    exp = Experiment("fig03", "One-to-all CMA read latency per architecture")
    sizes = _sizes(quick, 16 * 1024, 4 << 20)
    data = {}
    for name in ARCH_NAMES:
        arch = get_arch(name)
        top = min(arch.default_procs - 1, 64)
        readers = [1, 4, 16, top] if quick else [1, 2, 4, 8, 16, 32, top]
        vals = iter(
            sweep_microbench(
                "one_to_all_latency",
                [(get_arch(name), (c, n), {}) for n in sizes for c in readers],
            )
        )
        s = Series(f"{name}", "msg", [f"{c}r" for c in readers])
        grid = {}
        for n in sizes:
            row = {f"{c}r": next(vals) for c in readers}
            grid[n] = row
            s.add_point(n, row)
        data[name] = {"readers": readers, "grid": grid}
        exp.tables.append(s)
    exp.data = data
    return exp


def fig04(quick: bool = True) -> Experiment:
    """ftrace-style breakdown of a CMA read (Fig. 4, Broadwell)."""
    arch_name = "broadwell"
    pages_list = [10, 100] if quick else [1, 10, 100, 1000]
    readers_list = [1, 4, 27]
    exp = Experiment("fig04", "CMA read phase breakdown (Broadwell)")
    t = Table(
        "per-call phase times (us)",
        ["pages", "readers", "syscall", "check", "lock", "pin", "copy"],
    )
    data = {}
    for pages in pages_list:
        for readers in readers_list:
            ph = microbench.phase_breakdown(get_arch(arch_name), readers, pages)
            data[(pages, readers)] = ph
            t.add(
                pages,
                readers,
                *(f"{ph.get(k, 0.0):.2f}" for k in ("syscall", "check", "lock", "pin", "copy")),
            )
    exp.tables.append(t)
    exp.data = {"breakdown": data}
    return exp


def tab03(quick: bool = True) -> Experiment:
    """Step-triggering measurements T1..T4 (Table III)."""
    exp = Experiment("tab03", "CMA step timings via iovec games")
    t = Table("step timings (us)", ["arch", "pages", "T1 syscall", "T2 check", "T3 lock+pin", "T4 copy"])
    data = {}
    for name in ARCH_NAMES:
        for pages in (4, 64):
            s = fitting.measure_steps(get_arch(name), pages)
            data[(name, pages)] = s
            t.add(
                name,
                pages,
                f"{s.t1_syscall:.2f}",
                f"{s.t2_check:.2f}",
                f"{s.t3_lock_pin:.2f}",
                f"{s.t4_copy:.2f}",
            )
    exp.tables.append(t)
    exp.data = {"steps": data}
    return exp


def tab04(quick: bool = True) -> Experiment:
    """Fitted model parameters per architecture (Table IV)."""
    exp = Experiment("tab04", "Fitted model parameters (alpha, beta, l, s, gamma)")
    t = Table("parameters", ["arch", "alpha", "beta", "l", "s", "gamma(c)"])
    fits = {}
    for name in ARCH_NAMES:
        arch = get_arch(name)
        readers = None
        if quick:
            top = min(arch.default_procs - 1, 32)
            readers = [1, 2, 4, 8, 16, top]
        fa = fitting.fit_architecture(arch, page_counts=(10, 50), reader_counts=readers)
        fits[name] = fa
        row = fa.as_table_row()
        t.add(name, row["alpha"], row["beta"], row["l"], row["s"], row["gamma(c)"])
    exp.tables.append(t)
    exp.data = {"fits": fits}
    return exp


def fig05(quick: bool = True) -> Experiment:
    """Contention factor gamma vs concurrency with NLLS fit (Fig. 5)."""
    exp = Experiment("fig05", "Contention factor gamma(c) and NLLS best fit")
    data = {}
    for name in ARCH_NAMES:
        arch = get_arch(name)
        top = min(arch.default_procs - 1, 32 if quick else 64)
        readers = sorted({1, 2, 4, 8, 12, 16, 20, top} & set(range(1, top + 1)))
        pages = (10, 50) if quick else (10, 50, 100)
        samples = fitting.measure_gamma(arch, pages, readers)
        knee = arch.topology.cores_per_socket if arch.topology.sockets > 1 else None
        fit = fitting.fit_gamma(samples, knee=knee)
        data[name] = {"samples": samples, "fit": fit}
        s = Series(f"{name} (fit g1={fit.g1:.2f} g2={fit.g2:.3f} spill={fit.spill:.3f})",
                   "readers", [f"{p}pg" for p in pages] + ["fit"])
        for c in readers:
            row = {
                f"{p}pg": next(
                    x.gamma for x in samples if x.readers == c and x.pages == p
                )
                for p in pages
            }
            row["fit"] = fit(c)
            s.add_raw_point(str(c), row)
        exp.tables.append(s)
    exp.data = data
    return exp


def fig06(quick: bool = True) -> Experiment:
    """Relative read throughput vs concurrency (Fig. 6): the sweet spot."""
    exp = Experiment("fig06", "Relative CMA read throughput (vs 1 reader)")
    sizes = _sizes(quick, 16 * 1024, 4 << 20)
    data = {}
    for name in ARCH_NAMES:
        arch = get_arch(name)
        top = min(arch.default_procs - 1, 64)
        readers = [2, 4, 8, 16] if quick else [2, 4, 8, 16, 32, top]
        readers = [c for c in readers if c <= top] + ([top] if top not in readers else [])
        vals = iter(
            sweep_microbench(
                "relative_throughput",
                [(get_arch(name), (c, n), {}) for n in sizes for c in readers],
            )
        )
        s = Series(f"{name}", "msg", [f"{c}r" for c in readers])
        grid = {}
        for n in sizes:
            row = {f"{c}r": next(vals) for c in readers}
            grid[n] = row
            s.add_point(n, row)
        data[name] = {"readers": readers, "grid": grid}
        exp.tables.append(s)
    exp.data = data
    return exp


# ---------------------------------------------------------------------------
# Algorithm comparisons (Figs 7-11) and model validation (Fig 12)
# ---------------------------------------------------------------------------

_ALGO_PROCS = {"knl": 64, "broadwell": 28, "power8": 160}
_QUICK_PROCS = {"knl": 32, "broadwell": 28, "power8": 40}


def _procs_for(name: str, quick: bool) -> int:
    return (_QUICK_PROCS if quick else _ALGO_PROCS)[name]


def _algo_figure(
    exp_id: str,
    title: str,
    collective: str,
    variants: Callable[[str, int], list[tuple[str, str, dict]]],
    quick: bool,
    archs=ARCH_NAMES,
    lo: int = 16 * 1024,
    hi: int = 4 << 20,
) -> Experiment:
    exp = Experiment(exp_id, title)
    sizes = _sizes(quick, lo, hi)
    data = {}
    # One flat spec list across (arch x size x variant) so the whole figure
    # fans out over the executor at once.
    per_arch = {}
    specs, where = [], []
    for name in archs:
        p = _procs_for(name, quick)
        vs = variants(name, p)
        per_arch[name] = (p, vs)
        for eta in sizes:
            for label, alg, params in vs:
                specs.append(
                    CollectiveSpec(
                        collective, alg, get_arch(name),
                        procs=p, eta=eta, params=params, verify=False,
                    )
                )
                where.append((name, eta, label))
    lats = {w: r.latency_us for w, r in zip(where, run_specs(specs))}
    for name in archs:
        p, vs = per_arch[name]
        s = Series(f"{name}, {p} processes", "msg", [v[0] for v in vs])
        grid = {}
        for eta in sizes:
            row = {label: lats[(name, eta, label)] for label, _, _ in vs}
            grid[eta] = row
            s.add_point(eta, row)
        data[name] = {"procs": p, "grid": grid, "variants": [v[0] for v in vs]}
        exp.tables.append(s)
    exp.data = data
    return exp


def _throttles(name: str, p: int) -> list[int]:
    ks = [k for k in get_arch(name).throttle_candidates if k < p]
    return ks


def fig07(quick: bool = True) -> Experiment:
    """Scatter algorithms per architecture (Fig. 7)."""

    def variants(name, p):
        out = [("par-read", "parallel_read", {}), ("seq-write", "sequential_write", {})]
        out += [
            (f"thr-{k}", "throttled_read", {"k": k}) for k in _throttles(name, p)
        ]
        out.append(("xpmem", "xpmem_read", {}))
        return out

    return _algo_figure("fig07", "Scatter algorithm comparison", "scatter", variants, quick)


def fig08(quick: bool = True) -> Experiment:
    """Gather algorithms per architecture (Fig. 8)."""

    def variants(name, p):
        out = [("par-write", "parallel_write", {}), ("seq-read", "sequential_read", {})]
        out += [
            (f"thr-{k}", "throttled_write", {"k": k}) for k in _throttles(name, p)
        ]
        out.append(("xpmem", "xpmem_write", {}))
        return out

    return _algo_figure("fig08", "Gather algorithm comparison", "gather", variants, quick)


def fig09(quick: bool = True) -> Experiment:
    """Alltoall: SHMEM vs CMA-pt2pt vs CMA-coll (Fig. 9)."""

    def variants(name, p):
        return [
            ("SHMEM", "pairwise_shm", {}),
            ("CMA-pt2pt", "pairwise_pt2pt", {}),
            ("CMA-coll", "pairwise", {}),
            ("XPMEM", "xpmem_pairwise", {}),
        ]

    return _algo_figure(
        "fig09",
        "Alltoall pairwise implementations",
        "alltoall",
        variants,
        quick,
        archs=("knl", "broadwell"),
        lo=4096,
        hi=(256 * 1024 if quick else 1 << 20),
    )


def fig10(quick: bool = True) -> Experiment:
    """Allgather algorithms, including socket-aware ring strides (Fig. 10)."""

    def variants(name, p):
        out = [
            ("ring-src-rd", "ring_source_read", {}),
            ("ring-src-wr", "ring_source_write", {}),
            ("rec-dbl", "recursive_doubling", {}),
            ("bruck", "bruck", {}),
        ]
        out.append(("ring-nbr-1", "ring_neighbor", {"j": 1}))
        if name == "broadwell":
            out.append(("ring-nbr-5", "ring_neighbor", {"j": 5}))
        out.append(("xpmem-ring", "xpmem_ring", {}))
        return out

    return _algo_figure(
        "fig10",
        "Allgather algorithm comparison",
        "allgather",
        variants,
        quick,
        lo=16 * 1024,
        hi=(512 * 1024 if quick else 1 << 20),
    )


def fig11(quick: bool = True) -> Experiment:
    """Broadcast algorithms (Fig. 11)."""

    def variants(name, p):
        out = [
            ("dir-read", "direct_read", {}),
            ("dir-write", "direct_write", {}),
            ("scat-allg", "scatter_allgather", {}),
        ]
        ks = (2, 4, 8) if name != "power8" else (4, 10)
        out += [(f"knom-{k}", "knomial", {"k": k}) for k in ks]
        out.append(("xpmem", "xpmem_read", {}))
        return out

    return _algo_figure("fig11", "Broadcast algorithm comparison", "bcast", variants, quick)


def fig12(quick: bool = True) -> Experiment:
    """Model validation: predicted vs simulated Bcast latency (Fig. 12)."""
    exp = Experiment("fig12", "Model validation (Bcast: actual vs modeled)")
    algs = [
        ("direct_read", {}),
        ("direct_write", {}),
        ("scatter_allgather", {}),
    ]
    sizes = _sizes(quick, 16 * 1024, 4 << 20)
    data = {}
    for name in ("knl", "broadwell"):
        p = _procs_for(name, quick)
        tuner = Tuner.calibrated(get_arch(name))
        model = AnalyticModel(tuner.arch)
        cols = []
        for alg, _ in algs:
            cols += [f"act:{alg[:9]}", f"mod:{alg[:9]}"]
        s = Series(f"{name}, {p} processes", "msg", cols)
        grid = {}
        for eta in sizes:
            row = {}
            for alg, params in algs:
                act = _sim_latency("bcast", alg, get_arch(name), p, eta, params)
                mod = model.predict("bcast", alg, p, eta, **params)
                row[f"act:{alg[:9]}"] = act
                row[f"mod:{alg[:9]}"] = mod
            grid[eta] = row
            s.add_point(eta, row)
        data[name] = {"procs": p, "grid": grid}
        exp.tables.append(s)
    exp.data = data
    return exp


# ---------------------------------------------------------------------------
# Library comparisons (Figs 13-16, 18; Tables VI, VII)
# ---------------------------------------------------------------------------


def _lib_figure(
    exp_id: str,
    title: str,
    collective: str,
    quick: bool,
    archs=ARCH_NAMES,
    lo: int = 16 * 1024,
    hi: int = 4 << 20,
) -> Experiment:
    exp = Experiment(exp_id, title)
    sizes = _sizes(quick, lo, hi)
    data = {}
    for name in archs:
        p = _procs_for(name, quick)
        tuner = Tuner.calibrated(get_arch(name))
        specs, where = [], []
        for eta in sizes:
            specs.append(tuner.spec(collective, eta, p))
            where.append((eta, "proposed"))
            for lib in LIBRARY_NAMES:
                specs.append(library(lib).spec(collective, get_arch(name), eta, p))
                where.append((eta, lib))
        lats = {w: r.latency_us for w, r in zip(where, run_specs(specs))}
        cols = ["proposed"] + list(LIBRARY_NAMES)
        s = Series(f"{name}, {p} processes", "msg", cols)
        grid = {}
        for eta in sizes:
            row = {col: lats[(eta, col)] for col in cols}
            grid[eta] = row
            s.add_point(eta, row)
        data[name] = {"procs": p, "grid": grid}
        exp.tables.append(s)
    exp.data = data
    return exp


def fig13(quick: bool = True) -> Experiment:
    """MPI_Scatter: Proposed vs libraries (Fig. 13)."""
    return _lib_figure("fig13", "MPI_Scatter vs state-of-the-art libraries", "scatter", quick)


def fig14(quick: bool = True) -> Experiment:
    """MPI_Gather: Proposed vs libraries (Fig. 14)."""
    return _lib_figure("fig14", "MPI_Gather vs state-of-the-art libraries", "gather", quick)


def fig15(quick: bool = True) -> Experiment:
    """MPI_Alltoall: Proposed vs libraries (Fig. 15)."""
    return _lib_figure(
        "fig15",
        "MPI_Alltoall vs state-of-the-art libraries",
        "alltoall",
        quick,
        archs=("knl", "broadwell"),
        lo=4096,
        hi=(256 * 1024 if quick else 1 << 20),
    )


def fig16(quick: bool = True) -> Experiment:
    """MPI_Allgather: Proposed vs libraries (Fig. 16)."""
    return _lib_figure(
        "fig16",
        "MPI_Allgather vs state-of-the-art libraries",
        "allgather",
        quick,
        archs=("knl", "broadwell"),
        lo=16 * 1024,
        hi=(512 * 1024 if quick else 1 << 20),
    )


def fig18(quick: bool = True) -> Experiment:
    """MPI_Bcast: Proposed vs libraries (Fig. 18)."""
    return _lib_figure(
        "fig18",
        "MPI_Bcast vs state-of-the-art libraries",
        "bcast",
        quick,
        archs=("broadwell", "power8"),
        lo=16 * 1024,
        hi=(8 << 20 if quick else 16 << 20),
    )


def fig17(quick: bool = True) -> Experiment:
    """Multi-node Gather scalability: two-level vs flat (Fig. 17).

    Analytic sweep at the paper's scale, plus a discrete-event validation
    at reduced scale: the simulated cluster runs both designs with real
    bytes over the fabric and verifies the gathered result.
    """
    import functools

    from repro.core.hierarchical import flat_gather, two_level_gather
    from repro.machine import make_generic
    from repro.mpi.cluster import Cluster

    exp = Experiment("fig17", "Multi-node Gather: two-level vs single-level")
    mn = MultiNodeModel(get_arch("knl"))
    ppn = 64
    sizes = _sizes(False, 16 * 1024, 1 << 20)  # analytic: full axis is cheap
    data = {}
    for nodes in (2, 4, 8):
        s = Series(
            f"{nodes} nodes, {nodes * ppn} processes", "msg",
            ["flat", "two_level", "pipelined", "speedup"],
        )
        grid = {}
        for eta in sizes:
            pt = mn.fig17_point(nodes, ppn, eta)
            grid[eta] = pt
            s.add_point(eta, pt)
        data[nodes] = grid
        exp.tables.append(s)
    # DES validation at reduced scale (8 ranks/node)
    sim_ppn = 8
    af = functools.partial(make_generic, sockets=1, cores_per_socket=sim_ppn)
    sim_table = Table(
        f"DES validation ({sim_ppn} ranks/node, 16K, verified bytes)",
        ["nodes", "flat (us)", "two-level (us)", "speedup"],
    )
    sim_data = {}
    for nodes in (2, 4, 8):
        flat = cached_call(
            "figures.fig17_des",
            ("flat", nodes, sim_ppn, 16 * 1024),
            lambda: flat_gather(Cluster(af, nodes, sim_ppn), 16 * 1024),
        )
        two = cached_call(
            "figures.fig17_des",
            ("two_level", nodes, sim_ppn, 16 * 1024),
            lambda: two_level_gather(Cluster(af, nodes, sim_ppn), 16 * 1024),
        )
        ratio = flat.latency_us / two.latency_us
        sim_data[nodes] = ratio
        sim_table.add(nodes, f"{flat.latency_us:.0f}", f"{two.latency_us:.0f}",
                      f"{ratio:.2f}x")
    exp.tables.append(sim_table)
    exp.data = {"model": data, "sim_speedups": sim_data}
    return exp


_TABLE_COLLECTIVES = ("bcast", "scatter", "gather", "allgather", "alltoall")


def _speedup_grid(quick: bool, largest_only: bool) -> dict:
    # Enumerate the full (arch x collective x size x impl) grid up front
    # and fan it out in one sweep; ratios are assembled afterwards.
    axes: dict[tuple[str, str], list[int]] = {}
    specs, where = [], []
    for name in ARCH_NAMES:
        p = _procs_for(name, quick)
        arch = get_arch(name)
        hi = min(arch.max_msg, 4 << 20) if quick else arch.max_msg
        tuner = Tuner.calibrated(get_arch(name))
        for coll in _TABLE_COLLECTIVES:
            top = hi
            if coll in ("alltoall", "allgather"):
                top = min(hi, 512 * 1024 if quick else 1 << 20)
            sizes = [top] if largest_only else _sizes(quick, 16 * 1024, top)
            axes[(name, coll)] = sizes
            for eta in sizes:
                specs.append(tuner.spec(coll, eta, p))
                where.append((name, coll, eta, "ours"))
                for lib in LIBRARY_NAMES:
                    specs.append(library(lib).spec(coll, get_arch(name), eta, p))
                    where.append((name, coll, eta, lib))
    lats = {w: r.latency_us for w, r in zip(where, run_specs(specs))}
    out = {}
    for name in ARCH_NAMES:
        for coll in _TABLE_COLLECTIVES:
            sizes = axes[(name, coll)]
            for lib in LIBRARY_NAMES:
                best = 0.0
                at = None
                for eta in sizes:
                    ratio = lats[(name, coll, eta, lib)] / lats[(name, coll, eta, "ours")]
                    if ratio > best:
                        best, at = ratio, eta
                out[(name, coll, lib)] = (best, at)
    return out


def tab06(quick: bool = True) -> Experiment:
    """Maximum speedup vs each library (Table VI)."""
    exp = Experiment("tab06", "Max speedup of Proposed vs libraries")
    grid = _speedup_grid(quick, largest_only=False)
    t = Table("max speedup (x)", ["collective", *(f"{a}:{l}" for a in ARCH_NAMES for l in LIBRARY_NAMES)])
    for coll in _TABLE_COLLECTIVES:
        t.add(
            coll,
            *(
                f"{grid[(a, coll, l)][0]:.1f}"
                for a in ARCH_NAMES
                for l in LIBRARY_NAMES
            ),
        )
    exp.tables.append(t)
    exp.data = {"grid": grid}
    return exp


def tab07(quick: bool = True) -> Experiment:
    """Speedup at the largest evaluated message size (Table VII)."""
    exp = Experiment("tab07", "Speedup at the largest message size")
    grid = _speedup_grid(quick, largest_only=True)
    t = Table("speedup at max size (x)", ["collective", *(f"{a}:{l}" for a in ARCH_NAMES for l in LIBRARY_NAMES)])
    for coll in _TABLE_COLLECTIVES:
        t.add(
            coll,
            *(
                f"{grid[(a, coll, l)][0]:.2f}"
                for a in ARCH_NAMES
                for l in LIBRARY_NAMES
            ),
        )
    exp.tables.append(t)
    exp.data = {"grid": grid}
    return exp


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md Section 5)
# ---------------------------------------------------------------------------


def ablation_bounce(quick: bool = True) -> Experiment:
    """Disable cache-line bouncing: contention collapses to ~linear and the
    throttled designs lose most of their edge."""
    from dataclasses import replace

    exp = Experiment("ablation_bounce", "mm-lock bounce term on/off")
    base = get_arch("knl")
    flat = replace(base, params=base.params.with_updates(kappa_intra=0.0, kappa_inter=0.0))
    readers = [1, 4, 16] if quick else [1, 4, 16, 32, 63]
    t = Table("per-page lock+pin ratio vs 1 reader", ["readers", "with bounce", "no bounce"])
    data = {}
    for which, arch in (("with", base), ("without", flat)):
        base_t = microbench.lock_pin_per_page(arch, 1, 32)
        data[which] = {
            c: microbench.lock_pin_per_page(arch, c, 32) / base_t for c in readers
        }
    for c in readers:
        t.add(c, f"{data['with'][c]:.1f}", f"{data['without'][c]:.1f}")
    exp.tables.append(t)
    p, eta = (32, 1 << 20) if quick else (64, 4 << 20)
    ratios = {}
    for which, arch_base in (("with", "knl"), ("without", None)):
        arch = get_arch("knl") if which == "with" else replace(
            get_arch("knl"),
            params=get_arch("knl").params.with_updates(kappa_intra=0.0, kappa_inter=0.0),
        )
        par = _sim_latency("scatter", "parallel_read", arch, p, eta)
        thr = _sim_latency("scatter", "throttled_read", arch, p, eta, {"k": 8})
        ratios[which] = par / thr
    t2 = Table("parallel-read / throttled-8 scatter latency", ["bounce", "ratio"])
    t2.add("with", f"{ratios['with']:.2f}")
    t2.add("without", f"{ratios['without']:.2f}")
    exp.tables.append(t2)
    exp.data = {"gamma": data, "scatter_ratio": ratios}
    return exp


def ablation_batch(quick: bool = True) -> Experiment:
    """Page-pin batch size: more batching = fewer lock fights per byte."""
    from dataclasses import replace

    exp = Experiment("ablation_batch", "pin batch size sweep")
    batches = [1, 4, 16, 64]
    readers, pages = (16, 64) if quick else (32, 256)
    t = Table("one-to-all latency (us)", ["pin_batch", "latency"])
    data = {}
    for b in batches:
        base = get_arch("knl")
        arch = replace(base, params=base.params.with_updates(pin_batch=b))
        lat = microbench.one_to_all_latency(arch, readers, pages * 4096)
        data[b] = lat
        t.add(b, f"{lat:.1f}")
    exp.tables.append(t)
    exp.data = {"latency": data}
    return exp


def ablation_throttle(quick: bool = True) -> Experiment:
    """Model-derived k* vs exhaustive simulation sweep."""
    exp = Experiment("ablation_throttle", "throttle factor: model pick vs simulation")
    name = "knl"
    p = _procs_for(name, quick)
    eta = 1 << 20
    tuner = Tuner.calibrated(get_arch(name))
    model_k = tuner.best_throttle("scatter", eta, p)
    ks = sorted({1, 2, 4, 8, 16, model_k, p - 1})
    t = Table(f"scatter {format_bytes(eta)} x{p} (KNL)", ["k", "sim latency (us)", "model (us)"])
    sim = {}
    for k in ks:
        lat = _sim_latency("scatter", "throttled_read", get_arch(name), p, eta, {"k": k})
        sim[k] = lat
        t.add(k, f"{lat:.1f}", f"{tuner.model.scatter_throttled(p, eta, k):.1f}")
    sim_k = min(sim, key=sim.get)
    exp.tables.append(t)
    exp.data = {"model_k": model_k, "sim_k": sim_k, "sim": sim}
    return exp


def ext_model_scorecard(quick: bool = True) -> Experiment:
    """Extension: Fig 12's validation extended to the whole algorithm matrix.

    For every (collective, algorithm) with a closed form, compare the
    calibrated model's prediction against simulation across sizes and
    report the mean absolute relative error — the quantitative version of
    "the proposed model is able to accurately predict the actual
    performance".
    """
    exp = Experiment(
        "ext_model_scorecard", "Model vs simulation across the algorithm matrix"
    )
    name = "knl"
    p = 16 if quick else 32
    sizes = [16 * 1024, 256 * 1024, 2 << 20]
    tuner = Tuner.calibrated(get_arch(name))
    model = AnalyticModel(tuner.arch)
    matrix = [
        ("scatter", "parallel_read", {}),
        ("scatter", "sequential_write", {}),
        ("scatter", "throttled_read", {"k": 4}),
        ("scatter", "xpmem_read", {}),
        ("gather", "throttled_write", {"k": 4}),
        ("alltoall", "pairwise", {}),
        ("alltoall", "xpmem_pairwise", {}),
        ("allgather", "ring_source_read", {}),
        ("allgather", "xpmem_ring", {}),
        ("allgather", "recursive_doubling", {}),
        ("bcast", "direct_read", {}),
        ("bcast", "direct_write", {}),
        ("bcast", "knomial", {"k": 4}),
        ("bcast", "scatter_allgather", {}),
        ("bcast", "chain", {"segsize": 128 * 1024}),
        ("reduce", "binomial", {}),
        ("allreduce", "ring", {}),
    ]
    t = Table(
        f"mean |model/sim - 1| over {len(sizes)} sizes ({name}, {p} procs)",
        ["collective", "algorithm", "mean err", "max err"],
    )
    data = {}
    for coll, alg, params in matrix:
        errs = []
        for eta in sizes:
            sim = _sim_latency(coll, alg, get_arch(name), p, eta, params)
            mod = model.predict(coll, alg, p, eta, **params)
            errs.append(abs(mod / sim - 1.0))
        data[(coll, alg)] = (sum(errs) / len(errs), max(errs))
        t.add(coll, alg, f"{data[(coll, alg)][0]:.0%}", f"{data[(coll, alg)][1]:.0%}")
    exp.tables.append(t)
    exp.data = {"errors": data}
    return exp


def ext_mechanisms(quick: bool = True) -> Experiment:
    """Extension: CMA vs KNEM vs LiMIC mechanism comparison (Table I context).

    The paper notes the three mechanisms' raw performance is "quite
    similar" and that all share the get_user_pages bottleneck — CMA just
    avoids cookie/descriptor setup.  This experiment reproduces exactly
    that: same one-to-all pattern, same contention, different setup costs.
    """
    from repro.kernel.knem import KnemKernel
    from repro.kernel.limic import LimicKernel
    from repro.mpi.communicator import Comm, Node

    exp = Experiment("ext_mechanisms", "CMA vs KNEM vs LiMIC (KNL)")
    readers = 8
    sizes = _sizes(quick, 16 * 1024, 1 << 20)

    def one_to_all(mechanism: str, nbytes: int) -> float:
        node = Node(get_arch("knl"), verify=False)
        comm = Comm(node, readers + 1)
        knem = KnemKernel(node.cma)
        limic = LimicKernel(node.cma)
        src = comm.allocate(0, nbytes, "src")
        dsts = [comm.allocate(r + 1, nbytes, "dst") for r in range(readers)]
        handle = {}

        def owner(ctx):
            if mechanism == "knem":
                handle["h"] = yield from knem.declare_region(
                    ctx.proc, src.addr, nbytes
                )
            elif mechanism == "limic":
                handle["h"] = yield from limic.tx_init(ctx.proc, src.addr, nbytes)
            else:
                handle["h"] = None
            yield from ctx.sm_bcast("own", payload=True, root=0)

        def reader(ctx):
            yield from ctx.sm_bcast("own", payload=None, root=0)
            t0 = ctx.sim.now
            if mechanism == "knem":
                yield from knem.inline_copy_from(
                    ctx.proc, handle["h"], dsts[ctx.rank - 1].iov()
                )
            elif mechanism == "limic":
                yield from limic.tx_copy_from(
                    ctx.proc, handle["h"], dsts[ctx.rank - 1].iov()
                )
            else:
                yield from ctx.cma_read(0, dsts[ctx.rank - 1].iov(), src.iov())
            return ctx.sim.now - t0

        procs = [
            comm.spawn_rank(r, owner if r == 0 else reader)
            for r in range(readers + 1)
        ]
        node.sim.run_all(procs)
        # end-to-end: setup (cookie / descriptor) included, like an MPI
        # library would pay it on the message path
        return max(p.finish_time for p in procs)

    def one_to_all_cached(mechanism: str, nbytes: int) -> float:
        return cached_call(
            "figures.ext_mechanisms",
            ("knl", readers, mechanism, nbytes),
            lambda: one_to_all(mechanism, nbytes),
        )

    s = Series(f"one-to-all, {readers} readers", "msg", ["CMA", "KNEM", "LiMIC"])
    grid = {}
    for n in sizes:
        row = {
            "CMA": one_to_all_cached("cma", n),
            "KNEM": one_to_all_cached("knem", n),
            "LiMIC": one_to_all_cached("limic", n),
        }
        grid[n] = row
        s.add_point(n, row)
    exp.tables.append(s)
    exp.data = {"grid": grid}
    return exp


def ext_reduce(quick: bool = True) -> Experiment:
    """Extension: the reduction family (the paper's future work).

    Reduce/Allreduce algorithm comparison on KNL: binomial / throttled
    fan-in / ring reduce-scatter, and ring vs recursive-doubling Allreduce.
    """
    exp = Experiment("ext_reduce", "Reduce/Allreduce extension (KNL)")
    p = _procs_for("knl", quick)
    sizes = _sizes(quick, 4096, 4 << 20)
    red_variants = [
        ("binomial", "binomial", {}),
        ("gather-thr8", "gather_throttled", {"k": 8}),
        ("ring-rs", "ring_rs", {}),
    ]
    ar_variants = [
        ("red+bcast", "reduce_bcast", {"k": 4}),
        ("ring", "ring", {}),
        ("rec-dbl", "recursive_doubling", {}),
    ]
    data = {}
    for coll, variants in (("reduce", red_variants), ("allreduce", ar_variants)):
        s = Series(f"{coll}, {p} processes (KNL)", "msg", [v[0] for v in variants])
        grid = {}
        for eta in sizes:
            row = {
                label: _sim_latency(coll, alg, get_arch("knl"), p, eta, params)
                for label, alg, params in variants
            }
            grid[eta] = row
            s.add_point(eta, row)
        data[coll] = grid
        exp.tables.append(s)
    exp.data = data
    return exp


# ---------------------------------------------------------------------------
# Catalogue
# ---------------------------------------------------------------------------

CATALOGUE: dict[str, Callable[[bool], Experiment]] = {
    "fig02": fig02,
    "fig03": fig03,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "tab03": tab03,
    "tab04": tab04,
    "tab06": tab06,
    "tab07": tab07,
    "ablation_bounce": ablation_bounce,
    "ablation_batch": ablation_batch,
    "ablation_throttle": ablation_throttle,
    "ext_reduce": ext_reduce,
    "ext_mechanisms": ext_mechanisms,
    "ext_model_scorecard": ext_model_scorecard,
}


def experiment_ids() -> list[str]:
    return sorted(CATALOGUE)


def run_experiment(
    exp_id: str,
    quick: bool = True,
    workers: int | str | None = None,
    cache=None,
) -> Experiment:
    """Regenerate one artifact, optionally parallel and/or cached.

    ``workers``/``cache`` default to the enclosing
    :class:`~repro.exec.context.ExecContext` (if any), then to the
    ``REPRO_EXEC_WORKERS`` / ``REPRO_CACHE_DIR`` environment variables,
    then to serial and uncached — i.e. with nothing configured this
    behaves exactly like the original serial generator.  The returned
    :class:`Experiment` carries per-sweep stats in ``.stats``.
    """
    try:
        fn = CATALOGUE[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {experiment_ids()}"
        ) from None
    parent = exec_context.current()
    ctx = exec_context.from_env(workers=workers, cache=cache)
    t0 = time.perf_counter()
    with exec_context.use_context(ctx):
        exp = fn(quick)
    ctx.stats.wall_s = time.perf_counter() - t0
    exp.stats = ctx.stats
    if parent is not None:
        parent.stats.merge(ctx.stats)
    return exp
