"""Wall-clock performance suite for the simulator (``python -m repro.bench perf``).

Unlike everything else under :mod:`repro.bench`, this module measures
*host* wall-clock time, not simulated microseconds.  It exists so that
engine optimisations are measured rather than asserted: the suite emits
``BENCH_engine.json`` with events/sec for a set of engine microbenches,
per-point wall time for representative Fig 3 / Fig 7 slices, and scalar +
batched selection rates for the compiled serve-layer decision tables, and
CI replays it (``--smoke --check BENCH_engine.json``) to catch gross
regressions.

The benches use only the public simulator API (``Simulator``, ``Delay``,
``Acquire``/``Release``, ``Join``, ``Mutex``), so the same file runs
unchanged against any engine revision — that is how before/after numbers
in README's Performance section were produced.

Usage::

    python -m repro.bench perf                  # full suite -> BENCH_engine.json
    python -m repro.bench perf --smoke          # CI-sized run
    python -m repro.bench perf --smoke --check BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Callable, Optional

__all__ = [
    "run_suite",
    "main",
    "compare_trajectory",
    "SCHEMA",
    "GATED_SECTIONS",
    "GATE_FACTOR",
]

SCHEMA = "bench-engine-v1"

#: Sections whose regressions fail ``--check`` (CI).  The remaining
#: sections (``engine``, ``sweep``) are reported but non-gating: they are
#: dominated by host noise on shared CI runners, while ``convoy``,
#: ``fig07``, and ``xpmem`` directly cover the convoy fast-forward and
#: mapped-window steady-state fast paths, ``ring``/``tree``/``pairwise``
#: plus the ``fig09``/``fig10`` walls cover the phase-shape fast-forward,
#: ``serve`` covers the compiled-decision-table query engine (scalar
#: and batched selection rates), and ``sched`` covers the work-stealing
#: sweep scheduler end to end (mixed fig07+fig13 slice through
#: ``run_specs``, cache-off and cache-warm) — losing one shows up as a
#: >3x events/sec drop.
GATED_SECTIONS = (
    "convoy", "fig07", "xpmem", "ring", "tree", "pairwise", "fig09", "fig10",
    "serve", "sched",
)

#: Regression factor for the gated sections.
GATE_FACTOR = 3.0

#: Convoy bench: contended pure pin convoys at these reader counts.
CONVOY_READERS = (2, 8, 32, 64)
#: pin batches per reader: (full, smoke).  The smoke size stays large
#: enough that per-run setup doesn't dominate the events/sec rate — the
#: CI gate compares a smoke run against the committed full-size baseline.
CONVOY_ROUNDS = (500, 250)

#: xpmem bench: warm mapped-window copy loops at these attacher counts.
XPMEM_READERS = (2, 8, 32)
#: warm copies per attacher: (full, smoke).
XPMEM_ROUNDS = (400, 100)
#: exported window size in pages; each round re-reads a 4-page slice, so
#: after the first round every touched page is faulted and the loop sits
#: on the pin-free steady-state path the gate is meant to protect.
XPMEM_WINDOW_PAGES = 64

# Engine-bench workload sizes: (full, smoke).
_SIZES = {
    "zero_delay": ((128, 1_000), (16, 100)),     # (procs, yields per proc)
    "timer_heap": ((128, 1_000), (16, 100)),
    "mutex_uncontended": ((1, 80_000), (1, 4_000)),
    "mutex_contended": ((64, 400), (8, 60)),
    "spawn_join": ((10_000, 1), (400, 1)),       # (children, -)
}

FIG03_SLICE = [
    ("knl", 8, 256 * 1024),
    ("broadwell", 8, 1 << 20),
    ("knl", 32, 256 * 1024),
]
FIG03_SLICE_SMOKE = [("knl", 8, 256 * 1024)]

FIG07_SLICE = [("parallel_read", {}, 256 * 1024), ("throttled_read", {"k": 4}, 256 * 1024)]
FIG07_SLICE_SMOKE = [("parallel_read", {}, 256 * 1024)]

# End-to-end sweep slices: many points at fixed (arch, p) — the shape every
# figure sweep has, and exactly what warm-node reuse amortises.  Points are
# (collective, algorithm, params, eta).
SWEEP_SLICES = {
    # Fig 7: the scatter algorithm family on the KNL model.
    "fig07_scatter_knl": {
        "arch": "knl",
        "procs": 12,
        "points": [
            ("scatter", alg, params, eta)
            for eta in (16 * 1024, 64 * 1024, 256 * 1024)
            for alg, params in (
                ("parallel_read", {}),
                ("sequential_write", {}),
                ("throttled_read", {"k": 4}),
            )
        ],
    },
    # Fig 13 style: scatter via the algorithms the library models lower to
    # (binomial pt2pt trees, rendezvous fan-out) on the Broadwell model.
    "fig13_scatter_bdw": {
        "arch": "broadwell",
        "procs": 12,
        "points": [
            ("scatter", alg, params, eta)
            for eta in (16 * 1024, 128 * 1024)
            for alg, params in (
                ("parallel_read", {}),
                ("binomial_p2p", {}),
                ("fanout_rndv", {}),
            )
        ],
    },
}
SWEEP_SLICES_SMOKE = {
    "fig07_scatter_knl": {
        "arch": "knl",
        "procs": 8,
        "points": [
            ("scatter", "parallel_read", {}, 16 * 1024),
            ("scatter", "parallel_read", {}, 64 * 1024),
            ("scatter", "throttled_read", {"k": 4}, 16 * 1024),
            ("scatter", "throttled_read", {"k": 4}, 64 * 1024),
        ],
    },
}

#: Phase-shape benches: one uncontended data phase per shape, traced
#: (unfused by construction: spans are recorded between the fused delays)
#: vs untraced (rides RingStage/TreeRound/PairwiseExchange).
SHAPE_PROCS = (8, 32, 64)
#: per-rank block size: (full, smoke)
SHAPE_ETA = (64 * 1024, 16 * 1024)
#: timed warm rounds per repeat: (full, smoke).  One extra warmup round
#: always runs untimed, so the rate prices the steady state the sweeps
#: live in, not node construction or first-touch cache fills.
SHAPE_ROUNDS = (4, 2)
#: collective emitters behind each shape section
_SHAPE_FNS = {
    "ring": ("allgather", "ring_source_read"),
    "tree": ("bcast", "direct_write"),
    "pairwise": ("alltoall", "pairwise"),
}

#: Full-figure acceptance walls: the figure's headline collective swept
#: over several (procs, eta) points, fused vs unfused on the same node
#: model.  Both runs process the *same* event stream (the bit-identity
#: contract), so ``speedup_vs_unfused`` is a pure executor-overhead ratio.
FIG_WALLS = {
    "fig10": ("allgather", "ring_source_read"),
    "fig09": ("alltoall", "pairwise"),
}
#: The figures' headline regime is many-core (the paper's KNL has 64+
#: cores), so the acceptance wall sweeps p ∈ {32, 64} at 64-256 KiB
#: blocks — the geometry where per-phase event volume dwarfs the scalar
#: control plane.  Small-p points live in the ``ring``/``pairwise``
#: shape sections (p ∈ 8/32/64), not here.
FIG_WALL_POINTS = [(32, 256 * 1024), (64, 64 * 1024), (64, 256 * 1024)]
#: One mid-size point: the smoke wall must land in the same events/sec
#: regime as the committed full-size baseline (the 3x gate compares the
#: two), so it cannot drop to small-p geometry where scalar per-round
#: overhead halves the rate.
FIG_WALL_POINTS_SMOKE = [(32, 256 * 1024)]

#: Serve bench: compile one decision table on this preset, then hammer
#: the query engine.  The architecture's full size axis is the paper's
#: headline (16 MiB on KNL); the smoke axis stops at 1 MiB so CI compiles
#: in seconds — per-query cost is size-independent, so the smoke rates
#: land in the same regime as the committed full baseline and the 3x gate
#: stays meaningful.
SERVE_ARCH = "knl"
#: largest compiled message size: (full, smoke)
SERVE_ETA_MAX = (16 << 20, 1 << 20)
#: scalar lookups per timed repeat: (full, smoke)
SERVE_SCALAR_QUERIES = (200_000, 20_000)
#: batched lookups per timed repeat: (full, smoke)
SERVE_BATCH_QUERIES = (1_000_000, 100_000)


def _bestof(walls: list[float]) -> dict:
    """Best-of-N wall summary with spread.

    Every wall in the suite keeps all N raw repeats (``wall_s_all``) plus
    the min and the min-relative spread, so a baseline reader can tell a
    tight measurement from one where the best repeat was a fluke — a 5%
    spread means the rate is trustworthy, a 60% spread means rerun before
    arguing about regressions.
    """
    best = min(walls)
    return {
        "wall_s": round(best, 6),
        "repeats": len(walls),
        "wall_s_all": [round(w, 6) for w in walls],
        "spread_pct": round((max(walls) - best) / best * 100.0, 1)
        if best else None,
    }


# --------------------------------------------------------------------------
# Engine microbenches.  Each builds a Simulator, runs a workload dominated by
# one kind of event traffic, and returns the Simulator (for events_processed).
# --------------------------------------------------------------------------


def _bench_zero_delay(procs: int, yields: int):
    """Zero-delay resumptions: the spawn/grant/continuation fast-path traffic."""
    from repro.sim.engine import Delay, Simulator

    sim = Simulator()

    def worker():
        for _ in range(yields):
            yield Delay(0.0)

    for i in range(procs):
        sim.spawn(worker(), name=f"z{i}")
    sim.run()
    return sim


def _bench_timer_heap(procs: int, yields: int):
    """Distinct-timestamp delays: pure heap scheduling, no fast path."""
    from repro.sim.engine import Delay, Simulator

    sim = Simulator()

    def worker(i: int):
        for j in range(yields):
            yield Delay(0.1 + (i * 7 + j) % 13 * 0.01)

    for i in range(procs):
        sim.spawn(worker(i), name=f"t{i}")
    sim.run()
    return sim


def _bench_mutex_uncontended(_procs: int, rounds: int):
    """Lone process acquiring/releasing a mutex: the uncontended-grant path."""
    from repro.sim.engine import Acquire, Release, Simulator
    from repro.sim.resources import Mutex

    sim = Simulator()
    lock = Mutex(sim, "m")

    def worker():
        for _ in range(rounds):
            yield Acquire(lock)
            yield Release(lock)

    sim.spawn(worker(), name="solo")
    sim.run()
    return sim


def _bench_mutex_contended(procs: int, rounds: int):
    """Many processes hammering one mutex: grant + contention-profile traffic."""
    from repro.sim.engine import Acquire, Delay, Release, Simulator
    from repro.sim.resources import Mutex

    sim = Simulator()
    lock = Mutex(sim, "m")

    def worker(i: int):
        for _ in range(rounds):
            yield Acquire(lock)
            lock.contention_profile(i % 2)
            yield Delay(0.01)
            yield Release(lock)

    for i in range(procs):
        p = sim.spawn(worker(i), name=f"c{i}")
        p.socket = i % 2
    sim.run()
    return sim


def _bench_spawn_join(children: int, _rounds: int):
    """Spawn/finish/join wakeup churn."""
    from repro.sim.engine import Delay, Join, Simulator

    sim = Simulator()

    def child():
        yield Delay(0.0)
        return 1

    def parent():
        kids = [sim.spawn(child(), name=f"k{i}") for i in range(children)]
        total = 0
        for k in kids:
            total += yield Join(k)
        return total

    sim.spawn(parent(), name="parent")
    sim.run()
    return sim


_ENGINE_BENCHES: dict[str, Callable] = {
    "zero_delay": _bench_zero_delay,
    "timer_heap": _bench_timer_heap,
    "mutex_uncontended": _bench_mutex_uncontended,
    "mutex_contended": _bench_mutex_contended,
    "spawn_join": _bench_spawn_join,
}


def _time_engine_bench(name: str, smoke: bool, repeats: int) -> dict:
    a, b = _SIZES[name][1 if smoke else 0]
    fn = _ENGINE_BENCHES[name]
    best = float("inf")
    events = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        sim = fn(a, b)
        dt = time.perf_counter() - t0
        best = min(best, dt)
        events = sim.events_processed
    return {
        "events": events,
        "wall_s": round(best, 6),
        "events_per_sec": round(events / best, 1),
    }


def _bench_convoy(readers: int, rounds: int):
    """Contended pure pin convoys: the steady-state fast-forward workload.

    Every contender is a :class:`~repro.sim.engine.PinConvoy` member with
    no copy time between batches, so after the first grants the epoch is
    closed and pure — exactly the regime the engine collapses to its
    closed-form loop.  The hold model mirrors the mm-lock bounce shape
    (pure in the contender profile, hence memoisable).
    """
    from repro.sim.engine import PinConvoy, Simulator
    from repro.sim.resources import Mutex

    sim = Simulator()
    lock = Mutex(sim, "mm")
    memo: dict = {}

    def hold(pages, proc):
        same, other = lock.contention_profile(proc.socket)
        return pages * 0.05 + 0.8 * max(same - 1, 0) + 2.4 * other

    def worker():
        yield PinConvoy(lock, hold, [(16, 0.0)] * rounds, memo=memo)

    for i in range(readers):
        sim.spawn(worker(), name=f"r{i}", socket=i % 2)
    sim.run()
    return sim


def _run_convoy_bench(smoke: bool, repeats: int) -> dict:
    rounds = CONVOY_ROUNDS[1 if smoke else 0]
    out = {}
    for readers in CONVOY_READERS:
        best = float("inf")
        events = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            sim = _bench_convoy(readers, rounds)
            best = min(best, time.perf_counter() - t0)
            events = sim.events_processed
        out[f"c{readers}"] = {
            "events": events,
            "wall_s": round(best, 6),
            "events_per_sec": round(events / best, 1),
        }
    return out


def _bench_xpmem_steady(readers: int, rounds: int):
    """Warm mapped-window copies: the pin-free steady-state workload.

    One owner exports a window; ``readers`` attachers map it once, fault
    its pages on the first round, then spend ``rounds - 1`` rounds on the
    steady-state path — no mm-lock traffic at all, just priced ``Delay``
    events.  This is the regime the xpmem lane exists for; regressing it
    (say, by re-acquiring the owner's mm lock per warm copy) multiplies
    the event count and trips the events/sec gate.
    """
    from repro.machine import make_generic
    from repro.mpi import Comm, Node

    node = Node(make_generic(sockets=2, cores_per_socket=readers // 2 + 1))
    comm = Comm(node, readers + 1)
    ps = node.arch.params.page_size
    window = comm.allocate(0, XPMEM_WINDOW_PAGES * ps)
    box = {}

    def owner(ctx):
        box["segid"] = yield from node.xpmem.make_segid(
            ctx.proc, window.addr, XPMEM_WINDOW_PAGES * ps
        )

    node.sim.run_all([comm.spawn_rank(0, owner)])

    bufs = {r: comm.allocate(r, 4 * ps) for r in range(1, readers + 1)}

    def reader(ctx):
        segid = box["segid"]
        local = bufs[ctx.rank]
        yield from node.xpmem.attach(ctx.proc, segid)
        for j in range(rounds):
            off = (j % (XPMEM_WINDOW_PAGES // 4)) * 4 * ps
            yield from node.xpmem.copy_from(
                ctx.proc, segid, (local.addr, 4 * ps),
                (window.addr + off, 4 * ps),
            )

    procs = [comm.spawn_rank(r, reader) for r in range(1, readers + 1)]
    node.sim.run_all(procs)
    return node.sim


def _single_reader_cost(arch_name: str, mech: str, rounds: int) -> float:
    """Simulated us for one reader pulling ``rounds`` 4-page slices from a
    peer, either via CMA (pins every round) or via a mapped window (maps
    and faults once, then copies pin-free)."""
    from repro.machine import get_arch
    from repro.mpi import Comm, Node

    node = Node(get_arch(arch_name))
    comm = Comm(node, 2)
    ps = node.arch.params.page_size
    nbytes = 4 * ps
    window = comm.allocate(0, nbytes)
    local = comm.allocate(1, nbytes)
    box = {}

    def owner(ctx):
        box["segid"] = yield from node.xpmem.make_segid(
            ctx.proc, window.addr, nbytes
        )

    node.sim.run_all([comm.spawn_rank(0, owner)])

    def reader(ctx):
        if mech == "xpmem":
            yield from node.xpmem.attach(ctx.proc, box["segid"])
            for _ in range(rounds):
                yield from node.xpmem.copy_from(
                    ctx.proc, box["segid"], (local.addr, nbytes),
                    (window.addr, nbytes),
                )
        else:
            for _ in range(rounds):
                yield from node.cma.process_vm_readv(
                    ctx.proc, comm.pid_of(0), [local.iov()], [window.iov()]
                )

    t0 = node.sim.now
    node.sim.run_all([comm.spawn_rank(1, reader)])
    return node.sim.now - t0


def _xpmem_crossover(arch_name: str) -> dict:
    """Map-amortisation crossover, from two simulated points per mechanism.

    Both costs are affine in the round count r — CMA pays a per-round pin,
    xpmem a one-time map+fault — so two runs each pin slope and intercept
    exactly, and the crossover is where the lines meet: the number of
    re-reads after which the mapped window has paid for itself.  Purely
    simulated time; deterministic, so it doubles as a sanity artifact in
    the committed baseline.
    """
    r1, r2 = 1, 33
    c1 = _single_reader_cost(arch_name, "cma", r1)
    c2 = _single_reader_cost(arch_name, "cma", r2)
    x1 = _single_reader_cost(arch_name, "xpmem", r1)
    x2 = _single_reader_cost(arch_name, "xpmem", r2)
    slope_c = (c2 - c1) / (r2 - r1)
    slope_x = (x2 - x1) / (r2 - r1)
    map_cost = (x1 - slope_x) - (c1 - slope_c)
    saving = slope_c - slope_x
    rounds = None
    if saving > 0:
        import math

        rounds = max(1, math.ceil(map_cost / saving))
    return {
        "map_cost_us": round(map_cost, 4),
        "per_copy_saving_us": round(saving, 4),
        "crossover_rounds": rounds,
    }


def _run_xpmem_bench(smoke: bool, repeats: int) -> dict:
    rounds = XPMEM_ROUNDS[1 if smoke else 0]
    out = {}
    for readers in XPMEM_READERS:
        best = float("inf")
        events = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            sim = _bench_xpmem_steady(readers, rounds)
            best = min(best, time.perf_counter() - t0)
            events = sim.events_processed
        out[f"w{readers}"] = {
            "events": events,
            "wall_s": round(best, 6),
            "events_per_sec": round(events / best, 1),
        }
    # no events_per_sec key: reported in the baseline, skipped by the gate
    out["crossover"] = {
        arch: _xpmem_crossover(arch)
        for arch in ("knl", "broadwell", "power8")
    }
    return out


def _shape_emitter(shape: str):
    from repro.core import allgather, alltoall, bcast

    return {
        "ring": allgather.ring_source_read,
        "tree": bcast.direct_write,
        "pairwise": alltoall.pairwise,
    }[shape]


def _shape_workload(
    shape: str, procs: int, eta: int, trace: bool, fused: bool,
    batch: bool = False,
):
    """Build a node for ``shape`` and return ``(sim, run_round)``.

    ``verify=False``: this times the executor, not the byte movement, and
    the differential battery (``tests/test_phases.py``) already proves
    fused/unfused agree on real bytes.  Tracing forces the per-span
    generator path, so ``trace=True`` doubles as the unfused comparison
    at identical simulated cost structure.  ``batch`` arms the vectorized
    multi-phase drain on top of fusion (a no-op without numpy — the
    Simulator falls back to the scalar burst, so the leg still times
    something meaningful rather than erroring).

    ``run_round`` replays one full collective round on the *same* node —
    the warm regime every figure sweep actually runs in, where the
    kernel's segment cache, the engine's drain plans and the builders'
    phase cache are all hot.  Callers run one warmup round before timing.
    """
    from repro.machine import make_generic
    from repro.mpi import Comm, Node
    from repro.sim import Simulator

    fn = _shape_emitter(shape)
    node = Node(
        make_generic(sockets=2, cores_per_socket=max(1, procs // 2)),
        verify=False,
        trace=trace,
        sim=Simulator(use_phase_fusion=fused, use_batch_executor=batch),
    )
    comm = Comm(node, procs)
    if shape == "ring":
        sb, rb = eta, procs * eta
    elif shape == "tree":
        sb, rb = 0, eta
    else:
        sb = rb = procs * eta
    sbufs = (
        [comm.allocate(r, max(sb, 1), name="s") for r in range(procs)]
        if sb
        else None
    )
    rbufs = [comm.allocate(r, max(rb, 1), name="r") for r in range(procs)]

    def gen(ctx):
        ctx.sendbuf = sbufs[ctx.rank] if sbufs is not None else None
        ctx.recvbuf = rbufs[ctx.rank]
        ctx.eta = eta
        return fn(ctx)

    def run_round():
        ranks = [comm.spawn_rank(r, gen) for r in range(procs)]
        node.sim.run_all(ranks)

    return node.sim, run_round


def _time_shape(
    shape: str, procs: int, eta: int, trace: bool, fused: bool,
    batch: bool, rounds: int, repeats: int,
):
    """Warm-amortized wall for ``rounds`` rounds, best of ``repeats``.

    One warmup round is excluded; events come from ``events_processed``
    deltas, so the rate prices exactly the timed rounds (which process an
    identical stream every repeat — the engine is deterministic).
    """
    sim, run_round = _shape_workload(shape, procs, eta, trace, fused, batch)
    run_round()  # warmup: fill seg/plan/builder caches, fault pages
    walls = []
    events = 0
    for _ in range(repeats):
        e0 = sim.events_processed
        t0 = time.perf_counter()
        for _ in range(rounds):
            run_round()
        walls.append(time.perf_counter() - t0)
        events = sim.events_processed - e0
    return events, walls


def _run_shape_bench(shape: str, smoke: bool, repeats: int) -> dict:
    eta = SHAPE_ETA[1 if smoke else 0]
    rounds = SHAPE_ROUNDS[1 if smoke else 0]
    out = {}
    for procs in SHAPE_PROCS:
        for trace in (False, True):
            events, walls = _time_shape(
                shape, procs, eta, trace, fused=True, batch=not trace,
                rounds=rounds, repeats=repeats,
            )
            key = f"p{procs}_traced" if trace else f"p{procs}"
            summary = _bestof(walls)
            out[key] = {
                "events": events,
                "events_per_sec": round(events / summary["wall_s"], 1),
                **summary,
            }
    return out


def _run_fig_wall(fig: str, smoke: bool, repeats: int) -> dict:
    """Full-figure wall: the headline sweep across all three executors.

    Batch (vectorized drain), burst (scalar fused) and unfused replay the
    identical event stream (bit-identity is what the differential battery
    asserts), so a single ``events`` count prices all three rates and
    ``speedup_vs_unfused`` — batch over unfused — isolates executor
    overhead: the acceptance number for the phase-shape fast-forward.
    """
    shape = {"fig10": "ring", "fig09": "pairwise"}[fig]
    points = FIG_WALL_POINTS_SMOKE if smoke else FIG_WALL_POINTS
    rounds = SHAPE_ROUNDS[1 if smoke else 0]
    legs = {
        "batch": dict(fused=True, batch=True),      # headline fast path
        "burst": dict(fused=True, batch=False),     # scalar fused
        "unfused": dict(fused=False, batch=False),  # per-step reference
    }
    walls: dict[str, list[float]] = {leg: [] for leg in legs}
    events = 0
    for leg, kw in legs.items():
        # One warm workload per sweep point, timed together: the wall is
        # the whole figure's warm sweep, not any single geometry.
        loads = [
            _shape_workload(shape, procs, eta, trace=False, **kw)
            for procs, eta in points
        ]
        for _, run_round in loads:
            run_round()  # warmup
        for _ in range(repeats):
            e0 = sum(sim.events_processed for sim, _ in loads)
            t0 = time.perf_counter()
            for _, run_round in loads:
                for _ in range(rounds):
                    run_round()
            walls[leg].append(time.perf_counter() - t0)
            events = sum(sim.events_processed for sim, _ in loads) - e0
    summary = _bestof(walls["batch"])
    best = summary["wall_s"]
    best_burst = min(walls["burst"])
    best_unf = min(walls["unfused"])
    return {
        "wall": {
            "points": len(points),
            "events": events,
            "events_per_sec": round(events / best, 1),
            **summary,
            "wall_s_burst": round(best_burst, 6),
            "events_per_sec_burst": round(events / best_burst, 1),
            "wall_s_unfused": round(best_unf, 6),
            "wall_s_all_unfused": [round(w, 6) for w in walls["unfused"]],
            "events_per_sec_unfused": round(events / best_unf, 1),
            "speedup_vs_unfused": round(best_unf / best, 2),
        }
    }


def _run_serve_bench(smoke: bool, repeats: int) -> dict:
    """Compile a decision table, then price the serve-layer query paths.

    ``compile`` reports the one-time table build (wall, rows, breakpoints,
    verification probes, the tuner's bounded-memo hit/miss split) but
    carries no ``events_per_sec`` key, so the regression gate skips it —
    compile cost is a build-time concern, not a serving-path one.  The
    ``scalar`` and ``batch`` points *are* gated: each stores its
    queries/sec under ``events_per_sec`` (a query is the serve engine's
    event), so the generic >3x check covers selection throughput with no
    special-casing.  Queries draw random sizes over the whole compiled
    axis — mostly LRU-front misses, i.e. the rate prices the bisect path,
    not the cache.
    """
    import random as _random

    from repro.machine import get_arch
    from repro.serve import CompileStats, QueryEngine, compile_table
    from repro.serve.query import HAVE_NUMPY

    idx = 1 if smoke else 0
    arch = get_arch(SERVE_ARCH)
    eta_max = SERVE_ETA_MAX[idx]
    stats = CompileStats()
    t0 = time.perf_counter()
    table = compile_table(arch, eta_max=eta_max, stats=stats)
    compile_wall = time.perf_counter() - t0
    engine = QueryEngine(table)
    p = arch.default_procs
    colls = table.collectives
    rng = _random.Random("serve-bench")

    n_scalar = SERVE_SCALAR_QUERIES[idx]
    queries = [
        (colls[i % len(colls)], rng.randint(1, eta_max), p)
        for i in range(n_scalar)
    ]
    lookup = engine.lookup
    scalar_walls = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for coll, eta, pp in queries:
            lookup(coll, eta, pp)
        scalar_walls.append(time.perf_counter() - t0)

    n_batch = SERVE_BATCH_QUERIES[idx]
    cids = [engine.collective_id(c) for c in colls]
    coll_ids = [cids[i % len(cids)] for i in range(n_batch)]
    etas = [rng.randint(1, eta_max) for _ in range(n_batch)]
    procs = [p] * n_batch
    if HAVE_NUMPY:
        import numpy as np

        coll_ids = np.asarray(coll_ids, dtype=np.int64)
        etas = np.asarray(etas, dtype=np.int64)
        procs = np.asarray(procs, dtype=np.int64)
    batch_walls = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        engine.lookup_batch(coll_ids, etas, procs)
        batch_walls.append(time.perf_counter() - t0)

    front = engine.stats()["front"]
    scalar_best = _bestof(scalar_walls)
    batch_best = _bestof(batch_walls)
    return {
        # no events_per_sec key: reported in the baseline, skipped by the gate
        "compile": {
            "wall_s": round(compile_wall, 6),
            "rows": len(table.rows),
            "breakpoints": table.breakpoints_total,
            "decisions": len(table.decisions),
            "probes": stats.probes,
            "tuner_hits": stats.tuner_hits,
            "tuner_misses": stats.tuner_misses,
            "eta_max": eta_max,
        },
        "scalar": {
            "queries": n_scalar,
            "events_per_sec": round(n_scalar / scalar_best["wall_s"], 1),
            "queries_per_sec": round(n_scalar / scalar_best["wall_s"], 1),
            "front_hits": front["hits"],
            "front_misses": front["misses"],
            **scalar_best,
        },
        "batch": {
            "queries": n_batch,
            "backend": "numpy" if HAVE_NUMPY else "scalar",
            "events_per_sec": round(n_batch / batch_best["wall_s"], 1),
            "queries_per_sec": round(n_batch / batch_best["wall_s"], 1),
            **batch_best,
        },
    }


# --------------------------------------------------------------------------
# End-to-end slices (uncached, serial: no exec context is active here, so
# the @_sweepable microbenches run as plain calls).
# --------------------------------------------------------------------------


def _run_fig03_slice(points, repeats: int) -> dict:
    from repro.bench.microbench import one_to_all_latency
    from repro.machine import get_arch

    out = {}
    for arch, readers, nbytes in points:
        walls = []
        lat = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            lat = one_to_all_latency(get_arch(arch), readers, nbytes)
            walls.append(time.perf_counter() - t0)
        out[f"{arch}/{readers}r/{nbytes}"] = {
            "latency_us": lat,
            **_bestof(walls),
        }
    return out


def _run_fig07_slice(specs, repeats: int) -> dict:
    """Best-of-``repeats`` wall time per point (latencies are identical
    across repeats — the simulator is deterministic).  A single cold run
    would fold interpreter/import warm-up into the first point's rate and
    make the events/sec gate meaningless across revisions."""
    from repro.core.runner import CollectiveSpec, run_collective
    from repro.machine import get_arch

    out = {}
    for alg, params, eta in specs:
        spec = CollectiveSpec(
            "scatter", alg, get_arch("knl"), procs=12, eta=eta, params=params
        )
        walls = []
        res = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = run_collective(spec)
            walls.append(time.perf_counter() - t0)
        summary = _bestof(walls)
        best = summary["wall_s"]
        out[f"{alg}/{eta}"] = {
            "latency_us": res.latency_us,
            "sim_events": res.sim_events,
            "events_per_sec": round(res.sim_events / best, 1) if best else None,
            **summary,
        }
    return out


def _sweep_specs(slice_def: dict):
    from repro.core.runner import CollectiveSpec
    from repro.machine import get_arch

    arch = get_arch(slice_def["arch"])
    return [
        CollectiveSpec(
            coll, alg, arch, procs=slice_def["procs"], eta=eta, params=params
        )
        for coll, alg, params, eta in slice_def["points"]
    ]


def _run_sweep_bench(slice_def: dict, repeats: int) -> dict:
    """Points/sec over one slice, fresh-node vs warm-node (best-of-N).

    The fresh pass is the pre-warm-pool behaviour (a new Node/Comm per
    point); the warm pass reuses one :class:`~repro.core.runner.NodePool`
    across the slice, pool misses included.  Both produce bit-identical
    latencies — the differential suite enforces that; this bench only
    times them.
    """
    from repro.core.runner import NodePool, run_collective, run_collective_pooled

    specs = _sweep_specs(slice_def)
    n = len(specs)
    fresh_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for s in specs:
            run_collective(s)
        fresh_best = min(fresh_best, time.perf_counter() - t0)
    warm_best = float("inf")
    for _ in range(repeats):
        pool = NodePool()
        t0 = time.perf_counter()
        for s in specs:
            run_collective_pooled(s, pool)
        warm_best = min(warm_best, time.perf_counter() - t0)
    return {
        "points": n,
        "fresh": {
            "wall_s": round(fresh_best, 6),
            "points_per_sec": round(n / fresh_best, 2),
        },
        "warm": {
            "wall_s": round(warm_best, 6),
            "points_per_sec": round(n / warm_best, 2),
        },
        "warm_speedup": round(fresh_best / warm_best, 3),
    }


#: The scheduler bench always runs the *full* mixed slice (15 points over
#: two architectures), smoke included: the section is gated, and shrinking
#: the point set in smoke would move the points/sec regime away from the
#: committed full-size baseline the 3x gate compares against.  At ~150 ms
#: of simulation total it is CI-cheap anyway.
SCHED_SLICE_NAMES = ("fig07_scatter_knl", "fig13_scatter_bdw")


def _run_sched_bench(smoke: bool, repeats: int) -> dict:
    """End-to-end work-stealing scheduler walls over the mixed slice.

    Three legs, all over the same fig07+fig13 scatter mix:

    - ``serial_warm`` — the pre-scheduler reference: one warm
      :class:`~repro.core.runner.NodePool`, points run in a plain loop.
    - ``sched`` — the same points through :func:`repro.exec.sweep.run_specs`
      under ``ExecContext(sched="steal")``, cache off: prices chunking,
      routing, and (on multi-CPU hosts) the sticky pool fan-out.  Chunk,
      steal, and cost-model-error counters ride along as plain fields.
    - ``sched_cached`` — an untimed cold pass fills a throwaway sharded
      :class:`~repro.exec.ResultCache`, then timed warm passes reopen the
      directory fresh: the rate prices the batched ``get_many`` read path
      end to end (the acceptance leg — results served, not recomputed).

    Every leg stores events/sec (sim events the returned results
    represent), so the generic >3x gate covers all three; the
    ``speedup_vs_serial_warm`` fields are reported, not gated.
    """
    import shutil
    import tempfile

    from repro.core.runner import NodePool, run_collective_pooled
    from repro.exec import ExecContext, ResultCache, use_context
    from repro.exec.sweep import run_specs

    specs = [
        s for name in SCHED_SLICE_NAMES
        for s in _sweep_specs(SWEEP_SLICES[name])
    ]
    n = len(specs)

    def leg(events: int, walls: list, extra: Optional[dict] = None) -> dict:
        summary = _bestof(walls)
        best = summary["wall_s"]
        out = {
            "points": n,
            "events": events,
            "points_per_sec": round(n / best, 2),
            "events_per_sec": round(events / best, 1),
            **summary,
        }
        if extra:
            out.update(extra)
        return out

    events = 0
    serial_walls = []
    for _ in range(repeats):
        pool = NodePool()
        ev = 0
        t0 = time.perf_counter()
        for s in specs:
            ev += run_collective_pooled(s, pool).sim_events
        serial_walls.append(time.perf_counter() - t0)
        events = ev

    sched_walls = []
    sched_info: dict = {}
    for _ in range(repeats):
        with use_context(ExecContext(workers="auto", sched="steal")) as ctx:
            t0 = time.perf_counter()
            run_specs(specs)
            sched_walls.append(time.perf_counter() - t0)
        err = ctx.stats.sched_cost_err_pct
        sched_info = {
            "workers": ctx.stats.workers,
            "chunks": ctx.stats.sched_chunks,
            "steals": ctx.stats.sched_steals,
            "cost_err_pct": round(err, 1) if err is not None else None,
        }

    cache_dir = tempfile.mkdtemp(prefix="repro-sched-bench-")
    try:
        with use_context(
            ExecContext(workers="auto", sched="steal", cache=ResultCache(cache_dir))
        ):
            run_specs(specs)  # cold fill, untimed
        cached_walls = []
        hits = 0
        for _ in range(repeats):
            # A fresh ResultCache handle each repeat: the timed path is the
            # sharded batched on-disk read, not a warmed in-process object.
            with use_context(
                ExecContext(
                    workers="auto", sched="steal", cache=ResultCache(cache_dir)
                )
            ) as ctx:
                t0 = time.perf_counter()
                run_specs(specs)
                cached_walls.append(time.perf_counter() - t0)
            hits = ctx.stats.cache_hits
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    out = {
        "serial_warm": leg(events, serial_walls),
        "sched": leg(events, sched_walls, sched_info),
        "sched_cached": leg(events, cached_walls, {"cache_hits": hits}),
    }
    out["sched"]["speedup_vs_serial_warm"] = round(
        min(serial_walls) / min(sched_walls), 2
    )
    out["sched_cached"]["speedup_vs_serial_warm"] = round(
        min(serial_walls) / min(cached_walls), 2
    )
    return out


def run_suite(smoke: bool = False, repeats: Optional[int] = None) -> dict:
    """Run every bench; returns the ``BENCH_engine.json`` payload."""
    if repeats is None:
        repeats = 2 if smoke else 3
    engine = {}
    total_events = 0
    total_wall = 0.0
    for name in _ENGINE_BENCHES:
        r = _time_engine_bench(name, smoke, repeats)
        engine[name] = r
        total_events += r["events"]
        total_wall += r["wall_s"]
    engine["overall_events_per_sec"] = round(total_events / total_wall, 1)
    slices = SWEEP_SLICES_SMOKE if smoke else SWEEP_SLICES
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "engine": engine,
        "convoy": _run_convoy_bench(smoke, repeats),
        "xpmem": _run_xpmem_bench(smoke, repeats),
        "ring": _run_shape_bench("ring", smoke, repeats),
        "tree": _run_shape_bench("tree", smoke, repeats),
        "pairwise": _run_shape_bench("pairwise", smoke, repeats),
        "fig03": _run_fig03_slice(
            FIG03_SLICE_SMOKE if smoke else FIG03_SLICE, repeats
        ),
        "fig07": _run_fig07_slice(
            FIG07_SLICE_SMOKE if smoke else FIG07_SLICE, repeats
        ),
        "fig09": _run_fig_wall("fig09", smoke, repeats),
        "fig10": _run_fig_wall("fig10", smoke, repeats),
        "serve": _run_serve_bench(smoke, repeats),
        "sched": _run_sched_bench(smoke, repeats),
        "sweep": {
            name: _run_sweep_bench(sl, repeats) for name, sl in slices.items()
        },
    }


# --------------------------------------------------------------------------
# Regression check + CLI
# --------------------------------------------------------------------------


def check_sections(
    result: dict, baseline: dict, factor: float = 2.0,
    gate_factor: float = GATE_FACTOR,
) -> dict[str, list[str]]:
    """Per-section regression failures vs ``baseline``.

    Wall-clock comparisons across heterogeneous CI hosts are noisy, hence
    the deliberately loose ``factor`` (2x) gate: it catches "the fast path
    fell off", not single-digit-percent drift.  ``engine`` compares
    events/sec per microbench; ``sweep`` compares warm points/sec per
    slice; ``convoy`` and ``fig07`` compare events/sec per point at
    ``gate_factor`` — only those two sections fail CI (see
    :data:`GATED_SECTIONS`).  Sections missing from either side are
    skipped.
    """
    sections: dict[str, list[str]] = {}
    failures: list[str] = []
    base = baseline.get("engine", {})
    for name, r in result.get("engine", {}).items():
        if name == "overall_events_per_sec":
            continue
        ref = base.get(name)
        if not isinstance(ref, dict):
            continue
        if r["events_per_sec"] * factor < ref["events_per_sec"]:
            failures.append(
                f"{name}: {r['events_per_sec']:.0f} ev/s vs baseline "
                f"{ref['events_per_sec']:.0f} ev/s (>{factor:g}x regression)"
            )
    sections["engine"] = failures
    for sec in GATED_SECTIONS:
        if sec not in result:
            continue
        failures = []
        base = baseline.get(sec, {})
        for name, r in result[sec].items():
            ref = base.get(name)
            if not isinstance(ref, dict):
                continue
            cur = r.get("events_per_sec")
            refv = ref.get("events_per_sec")
            if cur is None or refv is None:
                continue
            if cur * gate_factor < refv:
                failures.append(
                    f"{name}: {cur:.0f} ev/s vs baseline {refv:.0f} ev/s "
                    f"(>{gate_factor:g}x regression)"
                )
        sections[sec] = failures
    if "sweep" in result:
        failures = []
        base = baseline.get("sweep", {})
        for name, r in result["sweep"].items():
            ref = base.get(name)
            if not isinstance(ref, dict):
                continue
            cur = r["warm"]["points_per_sec"]
            refv = ref["warm"]["points_per_sec"]
            if cur * factor < refv:
                failures.append(
                    f"{name}: {cur:.1f} warm points/s vs baseline "
                    f"{refv:.1f} points/s (>{factor:g}x regression)"
                )
        sections["sweep"] = failures
    return sections


def check_regression(result: dict, baseline: dict, factor: float = 2.0) -> list[str]:
    """All regression failures vs ``baseline`` (see :func:`check_sections`)."""
    return [
        f for fails in check_sections(result, baseline, factor).values()
        for f in fails
    ]


def _delta_table(fresh: dict, baseline: dict) -> list[str]:
    """Markdown per-section delta table: fresh vs committed events/sec.

    Pure dict walk over the two payloads — every section whose points
    carry an ``events_per_sec`` on both sides gets a row per point, with
    the percentage delta and a gating marker.  Points missing from either
    side are listed as ``new``/``gone`` rather than silently skipped, so
    a section rename can't masquerade as a clean run.
    """
    rows = [
        "| section | point | baseline ev/s | fresh ev/s | delta | gated |",
        "|---|---|---:|---:|---:|---|",
    ]
    secs = [
        s for s in fresh
        if isinstance(fresh.get(s), dict) and s not in ("sweep",)
    ]
    for sec in secs:
        base_sec = baseline.get(sec)
        if not isinstance(base_sec, dict):
            base_sec = {}
        gated = "yes" if sec in GATED_SECTIONS else ""
        names = sorted(set(fresh[sec]) | set(base_sec))
        for name in names:
            cur = fresh[sec].get(name)
            ref = base_sec.get(name)
            cur_v = cur.get("events_per_sec") if isinstance(cur, dict) else None
            ref_v = ref.get("events_per_sec") if isinstance(ref, dict) else None
            if cur_v is None and ref_v is None:
                continue
            if cur_v is None:
                rows.append(f"| {sec} | {name} | {ref_v:,.0f} | gone | — | {gated} |")
            elif ref_v is None:
                rows.append(f"| {sec} | {name} | new | {cur_v:,.0f} | — | {gated} |")
            else:
                delta = (cur_v - ref_v) / ref_v * 100.0
                rows.append(
                    f"| {sec} | {name} | {ref_v:,.0f} | {cur_v:,.0f} | "
                    f"{delta:+.1f}% | {gated} |"
                )
    return rows


def compare_trajectory(fresh_path: Path, baseline_path: Path) -> int:
    """CI bench-trajectory step: diff a fresh run against the committed
    baseline, post the per-section delta table to ``GITHUB_STEP_SUMMARY``,
    and fail (exit 1) only on gated-section regressions — advisory
    sections drift with runner hardware and must never block a merge."""
    fresh = json.loads(Path(fresh_path).read_text())
    baseline = json.loads(Path(baseline_path).read_text())
    table = _delta_table(fresh, baseline)
    sections = check_sections(fresh, baseline)
    lines = _summary_lines(fresh, sections)
    for row in table:
        print(row)
    for line in lines:
        print(line)
    _write_step_summary(
        ["### Bench trajectory", ""] + table + [""]
        + [f"- {ln}" for ln in lines],
        bullet=False,
    )
    gating = [f for sec in GATED_SECTIONS for f in sections.get(sec, [])]
    if gating:
        print("PERF REGRESSION vs committed baseline:")
        for f in gating:
            print(f"  {f}")
        return 1
    print(
        f"bench trajectory clean: no >{GATE_FACTOR:g}x regression in gated "
        f"sections ({', '.join(GATED_SECTIONS)})"
    )
    return 0


def _summary_lines(result: dict, sections: dict[str, list[str]]) -> list[str]:
    """One pass/fail line per checked section (CI-readable without the
    artifact; also written to ``$GITHUB_STEP_SUMMARY`` when set)."""
    lines = []
    for sec, fails in sections.items():
        status = "FAIL" if fails else "PASS"
        if sec == "engine":
            metric = f"{result['engine']['overall_events_per_sec']:,.0f} events/sec overall"
        elif sec in GATED_SECTIONS:
            metric = ", ".join(
                f"{name} {r['events_per_sec']:,.0f} ev/s"
                for name, r in result[sec].items()
                if r.get("events_per_sec")
            ) or "no points"
        else:
            pps = ", ".join(
                f"{name} {r['warm']['points_per_sec']:.1f} pts/s "
                f"({r['warm_speedup']:.2f}x warm)"
                for name, r in result["sweep"].items()
            )
            metric = pps or "no slices"
        gate = "" if sec in GATED_SECTIONS else " [non-gating]"
        detail = f"; {len(fails)} regression(s)" if fails else ""
        lines.append(f"perf {sec}: {status}{gate} — {metric}{detail}")
    return lines


def _write_step_summary(lines: list[str], bullet: bool = True) -> None:
    import os

    path = os.environ.get("GITHUB_STEP_SUMMARY", "").strip()
    if not path:
        return
    prefix = "- " if bullet else ""
    try:
        with open(path, "a", encoding="utf-8") as fh:
            for line in lines:
                fh.write(f"{prefix}{line}\n")
    except OSError:  # pragma: no cover - CI filesystem hiccup is non-fatal
        pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perf",
        description="Wall-clock perf suite for the simulator engine.",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized workloads (seconds, not minutes)"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per bench (best-of)"
    )
    parser.add_argument(
        "--out",
        default="BENCH_engine.json",
        help="output path (default: ./BENCH_engine.json)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="compare against a baseline JSON; exit 1 on a >2x engine regression",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("FRESH", "BASELINE"),
        default=None,
        help="diff two existing result files (no benches run): per-section "
        "delta table to stdout/GITHUB_STEP_SUMMARY, exit 1 only on gated "
        "regressions",
    )
    args = parser.parse_args(argv)

    if args.compare:
        return compare_trajectory(Path(args.compare[0]), Path(args.compare[1]))

    result = run_suite(smoke=args.smoke, repeats=args.repeats)

    for name, r in result["engine"].items():
        if name == "overall_events_per_sec":
            print(f"engine overall: {r:,.0f} events/sec")
        else:
            print(
                f"engine {name:<18} {r['events']:>7} events  "
                f"{r['wall_s']*1e3:8.1f} ms  {r['events_per_sec']:>12,.0f} ev/s"
            )
    for name, r in result["convoy"].items():
        print(
            f"convoy {name:<18} {r['events']:>7} events  "
            f"{r['wall_s']*1e3:8.1f} ms  {r['events_per_sec']:>12,.0f} ev/s"
        )
    for name, r in result["xpmem"].items():
        if "events_per_sec" in r:
            print(
                f"xpmem  {name:<18} {r['events']:>7} events  "
                f"{r['wall_s']*1e3:8.1f} ms  {r['events_per_sec']:>12,.0f} ev/s"
            )
    for arch, r in result["xpmem"]["crossover"].items():
        print(
            f"xpmem  crossover {arch:<9} map {r['map_cost_us']:8.2f} us  "
            f"saves {r['per_copy_saving_us']:7.3f} us/copy  "
            f"pays off after {r['crossover_rounds']} re-reads"
        )
    for shape in ("ring", "tree", "pairwise"):
        for key, r in result[shape].items():
            print(
                f"{shape:<6} {key:<18} {r['events']:>7} events  "
                f"{r['wall_s']*1e3:8.1f} ms  {r['events_per_sec']:>12,.0f} ev/s"
            )
    for section in ("fig03", "fig07"):
        for key, r in result[section].items():
            print(f"{section} {key:<24} {r['wall_s']*1e3:8.1f} ms  "
                  f"(sim {r['latency_us']:.1f} us)")
    for fig in ("fig09", "fig10"):
        r = result[fig]["wall"]
        print(
            f"{fig} wall  {r['points']} pts  {r['events']:>8} events  "
            f"batch {r['wall_s']*1e3:8.1f} ms ({r['events_per_sec']:,.0f} ev/s)  "
            f"burst {r['wall_s_burst']*1e3:8.1f} ms  "
            f"unfused {r['wall_s_unfused']*1e3:8.1f} ms  "
            f"speedup {r['speedup_vs_unfused']:.2f}x"
        )
    sc = result["serve"]
    print(
        f"serve compile  {sc['compile']['rows']} rows  "
        f"{sc['compile']['breakpoints']} breakpoints  "
        f"{sc['compile']['wall_s']*1e3:8.1f} ms"
    )
    for key in ("scalar", "batch"):
        r = sc[key]
        print(
            f"serve {key:<8} {r['queries']:>9} queries  "
            f"{r['wall_s']*1e3:8.1f} ms  {r['queries_per_sec']:>12,.0f} q/s"
        )
    for name, r in result["sched"].items():
        line = (
            f"sched {name:<13} {r['points']:>3} pts  "
            f"{r['wall_s']*1e3:8.1f} ms  {r['points_per_sec']:8.1f} pts/s  "
            f"{r['events_per_sec']:>12,.0f} ev/s"
        )
        if "chunks" in r:
            line += f"  ({r['chunks']} chunks, {r['steals']} steals)"
        if "speedup_vs_serial_warm" in r:
            line += f"  {r['speedup_vs_serial_warm']:.2f}x vs serial"
        print(line)
    for name, r in result["sweep"].items():
        print(
            f"sweep {name:<20} {r['points']:>3} pts  "
            f"fresh {r['fresh']['points_per_sec']:7.1f} pts/s  "
            f"warm {r['warm']['points_per_sec']:7.1f} pts/s  "
            f"({r['warm_speedup']:.2f}x)"
        )

    out_path = Path(args.out)
    out_path.write_text(json.dumps(result, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        sections = check_sections(result, baseline)
        lines = _summary_lines(result, sections)
        for line in lines:
            print(line)
        _write_step_summary(lines)
        gating = [
            f for sec in GATED_SECTIONS for f in sections.get(sec, [])
        ]
        advisory = [
            f for sec, fails in sections.items()
            if sec not in GATED_SECTIONS for f in fails
        ]
        for f in advisory:
            print(f"  (non-gating) {f}")
        if gating:
            print("PERF REGRESSION vs baseline:")
            for f in gating:
                print(f"  {f}")
            return 1
        print(
            f"no >{GATE_FACTOR:g}x regression in gated sections "
            f"({', '.join(GATED_SECTIONS)}) vs {args.check}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.bench
    import sys

    sys.exit(main())
