"""Scheduler profiling CLI: ``python -m repro.bench sched``.

Runs the perf suite's mixed fig07+fig13 scatter slice through
:func:`repro.exec.sched.run_scheduled` with per-chunk profiling on and
emits a JSON report: scheduling counters (chunks, steals, cost-model
error) plus a per-worker timeline — which chunks each worker ran, which
were stolen, and the idle gaps between them.  ``--profile`` keeps the raw
per-chunk records in the payload; without it only the per-worker
summaries are emitted.  On a one-CPU host the run is inline and the
timeline collapses to worker ``0`` — the counters and chunk records are
still real.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

__all__ = ["build_timeline", "run_profile", "main"]

_SLICE_CHOICES = ("mixed", "fig07", "fig13")


def _slice_specs(which: str):
    from repro.bench.perfsuite import SCHED_SLICE_NAMES, SWEEP_SLICES, _sweep_specs

    names = {
        "mixed": SCHED_SLICE_NAMES,
        "fig07": SCHED_SLICE_NAMES[:1],
        "fig13": SCHED_SLICE_NAMES[1:],
    }[which]
    return [s for name in names for s in _sweep_specs(SWEEP_SLICES[name])]


def build_timeline(stats, keep_chunks: bool = True) -> dict:
    """Per-worker timeline from :class:`~repro.exec.sched.SchedStats`.

    Chunk records carry worker-side monotonic timestamps; on Linux the
    monotonic clock is system-wide, so spans from different worker
    processes share one time base and the idle gaps between a worker's
    consecutive chunks are directly the time its queue sat empty (or a
    steal was in flight).
    """
    by_worker: dict = {}
    for rec in stats.profile or []:
        by_worker.setdefault(rec["worker"], []).append(rec)
    timeline = {}
    for wid, recs in sorted(by_worker.items()):
        recs.sort(key=lambda r: r["start_s"])
        gaps = [
            round(nxt["start_s"] - prev["end_s"], 6)
            for prev, nxt in zip(recs, recs[1:])
            if nxt["start_s"] - prev["end_s"] > 0
        ]
        entry = {
            "chunks_run": len(recs),
            "points_run": sum(r["points"] for r in recs),
            "steals": sum(1 for r in recs if r["stolen"]),
            "busy_s": round(sum(r["wall_s"] for r in recs), 6),
            "span_s": round(recs[-1]["end_s"] - recs[0]["start_s"], 6),
            "idle_gaps": len(gaps),
            "idle_s": round(sum(gaps), 6),
        }
        if keep_chunks:
            entry["chunks"] = recs
        timeline[str(wid)] = entry
    return timeline


def run_profile(
    which: str = "mixed",
    workers=None,
    stealing: bool = True,
    keep_chunks: bool = True,
) -> dict:
    from repro.exec import resolve_workers
    from repro.exec.sched import CostModel, run_scheduled
    from repro.exec.sweep import _exec_point, _pool_group_key, _slim_point

    specs = _slice_specs(which)
    points = [_slim_point(s, warm=True) for s in specs]
    cm = CostModel()
    costs = [cm.cost(p) for p in points]
    groups = [_pool_group_key(p) for p in points]
    nworkers = resolve_workers(workers if workers is not None else "auto")
    t0 = time.perf_counter()
    _results, stats = run_scheduled(
        _exec_point,
        points,
        workers=nworkers,
        costs=costs,
        groups=groups,
        stealing=stealing,
        profile=True,
    )
    wall = time.perf_counter() - t0
    err = stats.cost_err_pct
    return {
        "slice": which,
        "points": stats.points,
        "workers": stats.workers,
        "pooled": stats.pooled,
        "stealing": stealing,
        "chunks": stats.chunks,
        "steals": stats.steals,
        "chunk_sizes": stats.chunk_sizes,
        "predicted_cost": round(stats.predicted_cost, 3),
        "cost_err_pct": round(err, 1) if err is not None else None,
        "fallback_points": stats.fallback_points,
        "wall_s": round(wall, 6),
        "points_per_sec": round(stats.points / wall, 2) if wall > 0 else None,
        "workers_timeline": build_timeline(stats, keep_chunks=keep_chunks),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench sched",
        description="Profile the work-stealing sweep scheduler: per-worker "
        "timeline (chunks, steals, idle gaps) as JSON.",
    )
    parser.add_argument(
        "--slice",
        choices=_SLICE_CHOICES,
        default="mixed",
        help="which sweep slice to run (default: mixed fig07+fig13)",
    )
    parser.add_argument(
        "--workers",
        default=None,
        help="worker count (default: auto = CPU count; inline on 1-CPU hosts)",
    )
    parser.add_argument(
        "--nosteal", action="store_true", help="disable whole-group stealing"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="include the raw per-chunk records in each worker's timeline",
    )
    parser.add_argument(
        "--out", default="-", help="output path (default: stdout)"
    )
    args = parser.parse_args(argv)

    payload = run_profile(
        which=args.slice,
        workers=args.workers,
        stealing=not args.nosteal,
        keep_chunks=args.profile,
    )
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.bench
    sys.exit(main())
