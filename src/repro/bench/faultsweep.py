"""Degraded-mode fault-matrix sweep: latency under injected kernel faults.

``python -m repro.bench faults`` runs every core collective twice per
fault plan — once clean, once with the plan armed — and reports the
latency inflation next to the degraded-mode counters (CMA→shm fallbacks,
retries, injections).  This is the robustness twin of the paper figures:
the numbers show the stack *completing with verified buffers* while the
simulated kernel misbehaves, and how much the two-copy fallback path
costs relative to the kernel-assisted one.

Determinism note: the whole table is a pure function of (plans, arch,
procs, eta) — same seeds, same counters, same timestamps — so results
cache like any other sweep point.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.core.runner import CollectiveResult, CollectiveSpec
from repro.exec import context as exec_context
from repro.exec.sweep import run_specs
from repro.faults import ENV_FAULTS, FaultPlan, parse_plan, plan_from_env

__all__ = ["DEFAULT_MATRIX", "run_fault_matrix", "render_table", "main"]

#: the five core collectives the acceptance battery exercises
COLLECTIVES = (
    ("scatter", "parallel_read"),
    ("gather", "parallel_write"),
    ("bcast", "direct_read"),
    ("allgather", "ring_source_read"),
    ("alltoall", "pairwise"),
)

#: default fault matrix (seed:kinds strings, see :func:`repro.faults.parse_plan`)
DEFAULT_MATRIX = (
    "3:partial@0.4",
    "5:eperm@0.2",
    "7:eintr@0.3",
    "9:straggler@2.5",
    "11:partial@0.3,eperm@0.1,esrch@0.05,efault@0.05,eintr@0.15",
)


def run_fault_matrix(
    plans: Sequence[FaultPlan],
    arch,
    procs: Optional[int] = None,
    eta: int = 32768,
) -> List[List[CollectiveResult]]:
    """Run the collective battery clean + once per plan.

    Returns one row per ``(collective, plan-or-clean)`` combination,
    grouped as ``[clean_results, plan0_results, plan1_results, ...]``.
    All points flow through :func:`repro.exec.sweep.run_specs`, so the
    active context's pool and cache apply.
    """
    specs: List[CollectiveSpec] = []
    for faults in (None, *plans):
        for coll, alg in COLLECTIVES:
            specs.append(
                CollectiveSpec(
                    collective=coll,
                    algorithm=alg,
                    arch=arch,
                    procs=procs,
                    eta=eta,
                    faults=faults,
                )
            )
    flat = run_specs(specs)
    n = len(COLLECTIVES)
    return [flat[i : i + n] for i in range(0, len(flat), n)]


def render_table(
    plan_texts: Sequence[str], groups: List[List[CollectiveResult]]
) -> str:
    """Format the matrix as one aligned text table."""
    clean = {r.spec.collective: r for r in groups[0]}
    lines = [
        f"{'plan':<44} {'collective':<10} {'latency_us':>12} {'xclean':>7} "
        f"{'fallbacks':>9} {'retries':>8} {'injected':>9}"
    ]
    for label, results in zip(("(none)", *plan_texts), groups):
        for r in results:
            base = clean[r.spec.collective].latency_us
            ratio = r.latency_us / base if base else float("nan")
            lines.append(
                f"{label:<44} {r.spec.collective:<10} {r.latency_us:>12.3f} "
                f"{ratio:>7.2f} {r.fallbacks:>9d} {r.retries:>8d} "
                f"{r.faults_injected:>9d}"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench faults",
        description="Sweep the core collectives under a deterministic "
        "fault matrix and report latency + degraded-mode counters.",
    )
    parser.add_argument(
        "--faults",
        action="append",
        default=None,
        metavar="PLAN",
        help="fault plan '<seed>:<kind>[@value],...' (repeatable; default: "
        f"a built-in matrix, or {ENV_FAULTS} when set)",
    )
    parser.add_argument("--arch", default="broadwell", help="architecture preset")
    parser.add_argument(
        "--procs", type=int, default=None, help="process count (default: arch's)"
    )
    parser.add_argument(
        "--eta", type=int, default=32768, help="message size in bytes per block"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="sweep points in N processes"
    )
    parser.add_argument(
        "--cache", action="store_true", help="use the on-disk result cache"
    )
    args = parser.parse_args(argv)

    if args.faults:
        plan_texts = list(args.faults)
    elif plan_from_env() is not None:
        plan_texts = [os.environ[ENV_FAULTS].strip()]
    else:
        plan_texts = list(DEFAULT_MATRIX)
    plans = [parse_plan(t) for t in plan_texts]

    from repro.machine import get_arch

    arch = get_arch(args.arch)
    ctx = exec_context.from_env(
        workers=args.workers, cache=True if args.cache else None
    )
    with exec_context.use_context(ctx):
        groups = run_fault_matrix(plans, arch, procs=args.procs, eta=args.eta)
    print(render_table(plan_texts, groups))
    print(f"\n[{ctx.stats.describe()}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
