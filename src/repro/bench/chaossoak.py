"""Chaos soak battery: prove sweeps out-survive a hostile harness.

``python -m repro.bench chaos`` arms a seeded :mod:`repro.exec.chaos`
plan against the execution stack itself — workers SIGKILLed mid-chunk,
points stalled past the hung-chunk deadline, cache publications
corrupted, truncated, or torn — then verifies the two properties the
resilience layer promises:

* **bit-identity**: the chaos run's results equal a clean serial run's,
  byte for byte, whatever mix of respawn, sandbox rescue, or inline
  salvage the plan happened to force;
* **convergent state**: a follow-up run over the same cache quarantines
  whatever the plan damaged and still reproduces the same bytes.

``--resume-smoke`` exercises the write-ahead journal instead: a
journalled sweep is run in a subprocess, SIGKILLed at a seeded midpoint,
resumed in-process, and the resumed results are diffed against an
uninterrupted run (the journal must replay the completed prefix and be
retired on success).

Either mode emits one JSON document (injection, respawn, poison, and
resume counters included) and exits non-zero if any property failed —
the contract the gated CI chaos jobs consume.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pickle
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.exec import ExecContext, use_context
from repro.exec import chaos
from repro.exec.chaos import ENV_CHAOS
from repro.exec.journal import ENV_JOURNAL
from repro.exec.sched import ENV_HUNG_S, ENV_MAX_RESPAWNS
from repro.exec.sweep import sweep

__all__ = ["PLAN_TEMPLATES", "run_soak_case", "run_resume_smoke", "main"]

#: per-kind chaos plan templates (seed interpolated per case).  ``hang``
#: pairs a default 30 s stall with a 1.5 s hung-chunk deadline so the
#: supervision path — not patience — is what completes the sweep.
PLAN_TEMPLATES = {
    "kill": "{seed}:kill@0.3",
    "hang": "{seed}:stall@0.15",
    "corrupt": "{seed}:corrupt@0.5",
    "truncate": "{seed}:truncate@0.5",
    "tear": "{seed}:tear@0.5",
}


def _soak_point(x: int) -> tuple:
    """A cheap, pure, deterministic stand-in for a sweep point."""
    acc = 0
    for i in range(64):
        acc = (acc * 1103515245 + x + i) % (1 << 31)
    return (x, acc)


def _resume_point(x: int):
    """Soak point that simulates power loss at one env-named point."""
    kill_at = os.environ.get("_REPRO_RESUME_KILL_AT")
    if kill_at is not None and x == int(kill_at):
        os.kill(os.getpid(), signal.SIGKILL)
    return _soak_point(x)


def _resume_child() -> None:
    """Subprocess body for the resume smoke (dies mid-sweep by design)."""
    jdir = os.environ["_REPRO_RESUME_JDIR"]
    n = int(os.environ["_REPRO_RESUME_N"])
    with use_context(ExecContext(workers=1, journal=jdir)):
        sweep("chaos.resume", _resume_point, list(range(n)))


class _env_overlay:
    """Apply env vars for one case; restore (and re-arm chaos) on exit."""

    def __init__(self, **vars):
        self.vars = {k: v for k, v in vars.items() if v is not None}
        self.saved: dict = {}

    def __enter__(self):
        for k, v in self.vars.items():
            self.saved[k] = os.environ.get(k)
            os.environ[k] = v
        chaos.reset_state()
        return self

    def __exit__(self, *exc):
        for k, old in self.saved.items():
            if old is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = old
        chaos.reset_state()


def run_soak_case(
    kind: str,
    seed: int,
    npoints: int,
    workers: int,
    tmp: Path,
) -> dict:
    """One (kind, seed) soak: chaos run + convergence pass, both diffed
    against the clean serial baseline."""
    points = list(range(npoints))
    baseline = pickle.dumps([_soak_point(x) for x in points])
    plan = PLAN_TEMPLATES[kind].format(seed=seed)
    cache_dir = tmp / f"cache-{kind}-{seed}"
    journal_dir = tmp / f"journal-{kind}-{seed}"
    sweep_kind = f"chaos.soak.{kind}"
    before = {p.pid for p in multiprocessing.active_children()}
    t0 = time.monotonic()
    with _env_overlay(
        **{
            ENV_CHAOS: plan,
            ENV_HUNG_S: "1.5" if kind == "hang" else None,
            # A generous respawn budget keeps supervision (not the
            # broken-pool salvage floor) as the path under test.
            ENV_MAX_RESPAWNS: "64",
        }
    ):
        ctx = ExecContext(
            workers=workers, cache=cache_dir, journal=journal_dir
        )
        # Hand the context an explicit pool: on a host whose usable-CPU
        # count would pick inline dispatch, worker-scoped chaos (kill,
        # stall) would never even fire.
        pooled = False
        try:
            from repro.exec.sched import StickyPool

            ctx.adopt_sched_pool(StickyPool(max(workers, 2)))
            pooled = True
        except Exception:
            pass  # fork-restricted host: the case still runs inline
        with use_context(ctx):
            got = sweep(sweep_kind, _soak_point, points)
        st = chaos.state()
        parent_injections = st.counts() if st is not None else {}
    chaos_identical = pickle.dumps(got) == baseline
    # Convergence pass: chaos disarmed, same cache — damaged entries must
    # be quarantined and recomputed, reproducing the same bytes.
    with use_context(ExecContext(workers=1, cache=cache_dir)) as ctx2:
        again = sweep(sweep_kind, _soak_point, points)
    converged = pickle.dumps(again) == baseline
    leaked = [
        p.pid for p in multiprocessing.active_children() if p.pid not in before
    ]
    return {
        "kind": kind,
        "seed": seed,
        "plan": plan,
        "points": npoints,
        "workers": workers,
        "pooled": pooled,
        "wall_s": round(time.monotonic() - t0, 3),
        "bit_identical": chaos_identical,
        "converged": converged,
        "leaked_pids": leaked,
        "parent_injections": parent_injections,
        "respawns": ctx.stats.sched_respawns,
        "hung_kills": ctx.stats.sched_hung_kills,
        "sandbox_rescues": ctx.stats.sandbox_rescues,
        "poisoned": ctx.stats.poisoned,
        "journal_replayed": ctx.stats.journal_replayed,
        "breaker_state": ctx.stats.breaker_state,
        "cache_quarantined": max(
            ctx.stats.cache_quarantined, ctx2.stats.cache_quarantined
        ),
        "recomputed_on_converge": ctx2.stats.points_run,
        "ok": bool(chaos_identical and converged and not leaked),
    }


def run_resume_smoke(seed: int, npoints: int, tmp: Path) -> dict:
    """Journal smoke: run, SIGKILL at a seeded midpoint, resume, diff."""
    import random

    points = list(range(npoints))
    baseline = pickle.dumps([_soak_point(x) for x in points])
    kill_at = random.Random(f"resume/{seed}").randrange(1, npoints - 1)
    jdir = tmp / f"journal-resume-{seed}"
    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["_REPRO_RESUME_JDIR"] = str(jdir)
    env["_REPRO_RESUME_N"] = str(npoints)
    env["_REPRO_RESUME_KILL_AT"] = str(kill_at)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root, env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env.pop(ENV_CHAOS, None)
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.bench.chaossoak import _resume_child; _resume_child()",
        ],
        env=env,
        capture_output=True,
        timeout=300,
    )
    died_by_kill = proc.returncode == -signal.SIGKILL
    journal_left = len(list(jdir.glob("*.wal"))) if jdir.is_dir() else 0
    with _env_overlay(**{ENV_JOURNAL: None}):
        with use_context(ExecContext(workers=1, journal=jdir)) as ctx:
            resumed = sweep("chaos.resume", _soak_point, points)
    identical = pickle.dumps(resumed) == baseline
    retired = len(list(jdir.glob("*.wal"))) == 0 if jdir.is_dir() else True
    return {
        "seed": seed,
        "points": npoints,
        "kill_at": kill_at,
        "child_sigkilled": died_by_kill,
        "journal_left_by_child": journal_left,
        "journal_replayed": ctx.stats.journal_replayed,
        "recomputed": ctx.stats.points_run,
        "bit_identical": identical,
        "journal_retired": retired,
        "ok": bool(
            died_by_kill
            and journal_left == 1
            and ctx.stats.journal_replayed >= 1
            and identical
            and retired
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench chaos",
        description="Soak the execution harness under seeded chaos and "
        "verify bit-identical completion; emits a JSON summary.",
    )
    parser.add_argument(
        "--kinds",
        default="kill,hang,corrupt",
        help=f"comma-separated chaos kinds ({','.join(PLAN_TEMPLATES)})",
    )
    parser.add_argument(
        "--seeds", default="3,11", help="comma-separated plan seeds"
    )
    parser.add_argument(
        "--points", type=int, default=12, help="sweep points per case"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="scheduler workers per case"
    )
    parser.add_argument(
        "--resume-smoke",
        action="store_true",
        help="run the journal resume smoke instead of the soak matrix "
        "(run, SIGKILL at a seeded midpoint, resume, diff)",
    )
    args = parser.parse_args(argv)

    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    for k in kinds:
        if k not in PLAN_TEMPLATES:
            parser.error(
                f"unknown chaos kind {k!r} (choose from {','.join(PLAN_TEMPLATES)})"
            )
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    if args.points < 4:
        parser.error("--points must be >= 4")

    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    try:
        if args.resume_smoke:
            runs = [
                run_resume_smoke(seed, args.points, tmp) for seed in seeds
            ]
            summary = {
                "mode": "resume-smoke",
                "runs": runs,
                "resumes_ok": sum(1 for r in runs if r["ok"]),
                "ok": all(r["ok"] for r in runs),
            }
        else:
            cases = [
                run_soak_case(kind, seed, args.points, args.workers, tmp)
                for kind in kinds
                for seed in seeds
            ]
            summary = {
                "mode": "soak",
                "cases": cases,
                "injections": {
                    "respawns": sum(c["respawns"] for c in cases),
                    "hung_kills": sum(c["hung_kills"] for c in cases),
                    "sandbox_rescues": sum(c["sandbox_rescues"] for c in cases),
                    "poisoned": sum(c["poisoned"] for c in cases),
                    "cache_quarantined": sum(
                        c["cache_quarantined"] for c in cases
                    ),
                },
                "ok": all(c["ok"] for c in cases),
            }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    print(json.dumps(summary, indent=2))
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
