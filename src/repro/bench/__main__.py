"""CLI: regenerate any evaluation table or figure.

Usage::

    python -m repro.bench fig07            # quick axes
    python -m repro.bench fig07 --full     # the paper's full axes
    python -m repro.bench all              # everything (quick)
    python -m repro.bench --list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import experiment_ids, run_experiment


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "perf":
        # Wall-clock perf suite: separate CLI surface (different flags, no
        # sweep machinery) — see repro.bench.perfsuite.
        from repro.bench import perfsuite

        return perfsuite.main(argv[1:])
    if argv and argv[0] == "sched":
        # Work-stealing scheduler profiler: per-worker timeline (chunks,
        # steals, idle gaps) as JSON — see repro.bench.schedprof.
        from repro.bench import schedprof

        return schedprof.main(argv[1:])
    if argv and argv[0] == "faults":
        # Degraded-mode fault matrix: latency + fallback/retry counters
        # under injected kernel faults — see repro.bench.faultsweep.
        from repro.bench import faultsweep

        return faultsweep.main(argv[1:])
    if argv and argv[0] == "chaos":
        # Harness chaos soak + journal resume smoke: seeded worker kills,
        # stalls, and cache attacks, verified bit-identical — see
        # repro.bench.chaossoak.
        from repro.bench import chaossoak

        return chaossoak.main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig02..fig18, tab03..tab07, ablation_*) or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full sweep axes (slower)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep points in N processes (default: REPRO_EXEC_WORKERS or serial)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse/store per-point results in the on-disk cache "
             "(REPRO_CACHE_DIR or ~/.cache/repro-exec)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (implies --cache)",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("Available experiments:")
        for eid in experiment_ids():
            print(f"  {eid}")
        return 0

    cache = args.cache_dir if args.cache_dir else (True if args.cache else None)
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    for eid in ids:
        t0 = time.time()
        exp = run_experiment(
            eid, quick=not args.full, workers=args.workers, cache=cache
        )
        print(exp.render())
        print(f"\n[{eid} regenerated in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
