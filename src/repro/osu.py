"""OSU-microbenchmark-style CLI for the simulated collectives.

Mirrors the familiar ``osu_bcast``/``osu_scatter`` interface so results
read like the tool every MPI user already knows::

    python -m repro.osu scatter --arch knl --procs 64
    python -m repro.osu bcast --arch broadwell --impl mvapich2
    python -m repro.osu allreduce --impl ring --min 1024 --max 1048576

``--impl`` selects who runs the collective:

* ``proposed`` (default) — the calibrated tuner picks the paper's
  contention-aware algorithm per size;
* a library name (``mvapich2``/``intelmpi``/``openmpi``) — that baseline
  model's tuning table;
* an algorithm name from the registry (e.g. ``throttled_read``), with
  ``--param k=8``-style overrides.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.bench.report import format_bytes
from repro.core.baselines import LIBRARY_NAMES, library
from repro.core.registry import ALGORITHMS, algorithms_for
from repro.core.runner import CollectiveSpec, run_collective
from repro.core.tuning import Tuner
from repro.machine import ARCH_NAMES, get_arch

__all__ = ["main"]


def _parse_params(pairs: list[str]) -> dict:
    out: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        try:
            out[key] = int(value)
        except ValueError:
            out[key] = value
    return out


def _latency(
    collective: str,
    impl: str,
    arch_name: str,
    procs: int,
    eta: int,
    params: dict,
    tuner: Optional[Tuner],
    verify: bool,
) -> tuple[float, str]:
    """One measurement point; returns (latency_us, algorithm label)."""
    if impl == "proposed":
        assert tuner is not None
        choice = tuner.choose(collective, eta, procs)
        res = tuner.run(collective, eta, procs, verify=verify)
        return res.latency_us, choice.describe()
    if impl in LIBRARY_NAMES:
        lib = library(impl)
        alg, lib_params = lib.select(collective, eta, procs)
        res = lib.run(collective, get_arch(arch_name), eta, procs, verify=verify)
        return res.latency_us, alg
    # explicit algorithm
    spec = CollectiveSpec(
        collective,
        impl,
        get_arch(arch_name),
        procs=procs,
        eta=eta,
        params=params,
        verify=verify,
    )
    return run_collective(spec).latency_us, impl


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.osu",
        description="OSU-style latency sweeps on the simulated node.",
    )
    parser.add_argument("collective", choices=sorted(ALGORITHMS))
    parser.add_argument("--arch", default="knl", choices=ARCH_NAMES)
    parser.add_argument("--procs", type=int, default=None,
                        help="ranks (default: a manageable fraction of the arch)")
    parser.add_argument("--impl", default="proposed",
                        help="'proposed', a library (mvapich2/intelmpi/openmpi), "
                             "or an algorithm name")
    parser.add_argument("--param", action="append", default=[],
                        help="algorithm parameter, e.g. --param k=8")
    parser.add_argument("--min", type=int, default=1024, dest="min_size")
    parser.add_argument("--max", type=int, default=1 << 22, dest="max_size")
    parser.add_argument("--verify", action="store_true",
                        help="move and check real bytes (slower)")
    args = parser.parse_args(argv)

    arch = get_arch(args.arch)
    procs = args.procs or min(arch.default_procs, 32)
    params = _parse_params(args.param)

    if args.impl not in ("proposed", *LIBRARY_NAMES) and args.impl not in algorithms_for(
        args.collective
    ):
        known = ["proposed", *LIBRARY_NAMES, *algorithms_for(args.collective)]
        raise SystemExit(
            f"unknown --impl {args.impl!r} for {args.collective}; known: {known}"
        )

    tuner = Tuner.calibrated(get_arch(args.arch)) if args.impl == "proposed" else None

    print(f"# {args.collective} latency ({args.arch} model, {procs} processes, "
          f"impl={args.impl}{', verified' if args.verify else ''})")
    print(f"# {'Size':<10}{'Latency(us)':>14}  Algorithm")
    eta = args.min_size
    while eta <= args.max_size:
        lat, label = _latency(
            args.collective, args.impl, args.arch, procs, eta, params,
            tuner, args.verify,
        )
        print(f"{format_bytes(eta):<12}{lat:>14.2f}  {label}")
        eta *= 4
    return 0


if __name__ == "__main__":
    sys.exit(main())
