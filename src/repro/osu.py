"""OSU-microbenchmark-style CLI for the simulated collectives.

Mirrors the familiar ``osu_bcast``/``osu_scatter`` interface so results
read like the tool every MPI user already knows::

    python -m repro.osu scatter --arch knl --procs 64
    python -m repro.osu bcast --arch broadwell --impl mvapich2
    python -m repro.osu allreduce --impl ring --min 1024 --max 1048576

``--impl`` selects who runs the collective:

* ``proposed`` (default) — the calibrated tuner picks the paper's
  contention-aware algorithm per size;
* a library name (``mvapich2``/``intelmpi``/``openmpi``) — that baseline
  model's tuning table;
* an algorithm name from the registry (e.g. ``throttled_read``), with
  ``--param k=8``-style overrides.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.bench.report import format_bytes, sweep_summary
from repro.core.baselines import LIBRARY_NAMES, library
from repro.core.registry import ALGORITHMS, algorithms_for
from repro.core.runner import CollectiveSpec
from repro.core.tuning import Tuner
from repro.exec import ExecContext, from_env, use_context
from repro.exec.sweep import run_specs
from repro.machine import ARCH_NAMES, get_arch

__all__ = ["main"]


def _parse_params(pairs: list[str]) -> dict:
    out: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        try:
            out[key] = int(value)
        except ValueError:
            out[key] = value
    return out


def _point_spec(
    collective: str,
    impl: str,
    arch_name: str,
    procs: int,
    eta: int,
    params: dict,
    tuner: Optional[Tuner],
    verify: bool,
) -> tuple[CollectiveSpec, str]:
    """One measurement point; returns (spec, algorithm label)."""
    if impl == "proposed":
        assert tuner is not None
        choice = tuner.choose(collective, eta, procs)
        return tuner.spec(collective, eta, procs, verify=verify), choice.describe()
    if impl in LIBRARY_NAMES:
        lib = library(impl)
        alg, _lib_params = lib.select(collective, eta, procs)
        return lib.spec(collective, get_arch(arch_name), eta, procs, verify=verify), alg
    # explicit algorithm
    spec = CollectiveSpec(
        collective,
        impl,
        get_arch(arch_name),
        procs=procs,
        eta=eta,
        params=params,
        verify=verify,
    )
    return spec, impl


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.osu",
        description="OSU-style latency sweeps on the simulated node.",
    )
    parser.add_argument("collective", choices=sorted(ALGORITHMS))
    parser.add_argument("--arch", default="knl", choices=ARCH_NAMES)
    parser.add_argument("--procs", type=int, default=None,
                        help="ranks (default: a manageable fraction of the arch)")
    parser.add_argument("--impl", default="proposed",
                        help="'proposed', a library (mvapich2/intelmpi/openmpi), "
                             "or an algorithm name")
    parser.add_argument("--param", action="append", default=[],
                        help="algorithm parameter, e.g. --param k=8")
    parser.add_argument("--min", type=int, default=1024, dest="min_size")
    parser.add_argument("--max", type=int, default=1 << 22, dest="max_size")
    parser.add_argument("--verify", action="store_true",
                        help="move and check real bytes (slower)")
    parser.add_argument("--workers", type=int, default=None,
                        help="sweep points in N processes "
                             "(default: REPRO_EXEC_WORKERS or serial)")
    parser.add_argument("--cache", action="store_true",
                        help="reuse/store per-point results in the on-disk "
                             "cache (REPRO_CACHE_DIR or ~/.cache/repro-exec)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (implies --cache)")
    args = parser.parse_args(argv)

    arch = get_arch(args.arch)
    procs = args.procs or min(arch.default_procs, 32)
    params = _parse_params(args.param)

    if args.impl not in ("proposed", *LIBRARY_NAMES) and args.impl not in algorithms_for(
        args.collective
    ):
        known = ["proposed", *LIBRARY_NAMES, *algorithms_for(args.collective)]
        raise SystemExit(
            f"unknown --impl {args.impl!r} for {args.collective}; known: {known}"
        )

    sizes = []
    eta = args.min_size
    while eta <= args.max_size:
        sizes.append(eta)
        eta *= 4

    cache = args.cache_dir if args.cache_dir else (True if args.cache else None)
    ctx = from_env(workers=args.workers, cache=cache)
    t0 = time.perf_counter()
    with use_context(ctx):
        tuner = (
            Tuner.calibrated(get_arch(args.arch))
            if args.impl == "proposed"
            else None
        )
        specs, labels = [], []
        for eta in sizes:
            spec, label = _point_spec(
                args.collective, args.impl, args.arch, procs, eta, params,
                tuner, args.verify,
            )
            specs.append(spec)
            labels.append(label)
        results = run_specs(specs)
    ctx.stats.wall_s = time.perf_counter() - t0

    print(f"# {args.collective} latency ({args.arch} model, {procs} processes, "
          f"impl={args.impl}{', verified' if args.verify else ''})")
    print(f"# {'Size':<10}{'Latency(us)':>14}  Algorithm")
    for eta, res, label in zip(sizes, results, labels):
        print(f"{format_bytes(eta):<12}{res.latency_us:>14.2f}  {label}")
    print(f"# {sweep_summary(ctx.stats)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
