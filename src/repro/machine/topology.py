"""Node topology: sockets, cores, hardware threads, and rank placement.

The collective designs in the paper are socket-aware in two places:

* the mm-lock bounce is worse when contenders span sockets (Fig. 5(b)/(c)
  show a jump past one socket's worth of readers on Broadwell and POWER8);
* ring Allgather variants differ by whether neighbours are intra- or
  inter-socket (Fig. 10(b): Ring-Neighbor-1 vs Ring-Neighbor-5).

Placement follows the common MPI default of *block* mapping: ranks fill
socket 0's hardware threads core-first, then socket 1, wrapping if the job
oversubscribes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Topology", "Placement"]


@dataclass(frozen=True)
class Placement:
    """Where a rank landed: hardware coordinates."""

    socket: int
    core: int  # global core index
    thread: int  # hardware thread within the core


@dataclass(frozen=True)
class Topology:
    """Sockets x cores x SMT threads of one node."""

    sockets: int
    cores_per_socket: int
    threads_per_core: int = 1

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1 or self.threads_per_core < 1:
            raise ValueError("topology dimensions must be >= 1")

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def hw_threads(self) -> int:
        return self.physical_cores * self.threads_per_core

    @property
    def threads_per_socket(self) -> int:
        return self.cores_per_socket * self.threads_per_core

    def place(self, rank: int) -> Placement:
        """Place ``rank`` onto hardware threads, one SMT level at a time.

        Physical cores fill first (socket 0's cores, then socket 1's), and
        only then does the second SMT thread of each core get used.  This
        matches the paper's observed socket-spill points: on Broadwell
        (2 x 14 cores) contention jumps past 14 concurrent readers, on
        POWER8 (2 x 10 cores) past 10 — i.e. exactly when ranks start
        landing on the second socket.  Oversubscription wraps around.
        """
        if rank < 0:
            raise ValueError("rank must be non-negative")
        slot = rank % self.hw_threads
        level = slot // self.physical_cores  # SMT level being filled
        idx = slot % self.physical_cores  # physical core index, socket-major
        socket = idx // self.cores_per_socket
        return Placement(socket=socket, core=idx, thread=level)

    def socket_of(self, rank: int) -> int:
        return self.place(rank).socket

    def same_socket(self, a: int, b: int) -> bool:
        return self.socket_of(a) == self.socket_of(b)

    def ranks_on_socket(self, socket: int, nranks: int) -> list[int]:
        """Which of ranks [0, nranks) land on ``socket``."""
        return [r for r in range(nranks) if self.socket_of(r) == socket]

    def intra_socket_fraction(self, pairs: list[tuple[int, int]]) -> float:
        """Fraction of (src, dst) pairs that stay within one socket.

        Used by tests to check the Ring-Neighbor-j socket-awareness claims.
        """
        if not pairs:
            return 1.0
        intra = sum(1 for a, b in pairs if self.same_socket(a, b))
        return intra / len(pairs)
