"""Architecture presets for the paper's three evaluation platforms (Table V).

=============  =======================  =====================  ====================
Spec           Xeon (Broadwell)         Xeon Phi (KNL 7250)    OpenPOWER (POWER8)
=============  =======================  =====================  ====================
Sockets        2                        1                      2
Cores/socket   14                       68                     10
Threads/core   2                        4                      8
Page size      4 KiB                    4 KiB                  64 KiB
Default procs  28                       64                     160
=============  =======================  =====================  ====================

Cost constants come from Table IV (alpha, beta, l, s); the gamma polynomial
coefficients and the mechanistic kappa bounce terms are calibrated so the
simulator reproduces Table IV / Fig. 5 shapes: KNL contends hardest (slow
cores, one big mesh), Broadwell mildest (few fast cores), POWER8 in between
with far fewer pages to lock (64 KiB pages) but a sharp inter-socket bump.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.params import ModelParams
from repro.machine.topology import Topology

__all__ = [
    "Architecture",
    "make_knl",
    "make_broadwell",
    "make_power8",
    "make_generic",
    "get_arch",
    "ARCH_NAMES",
]


@dataclass
class Architecture:
    """A named machine: topology + cost parameters + evaluation defaults."""

    name: str
    topology: Topology
    params: ModelParams
    default_procs: int
    #: throttle factors the paper sweeps on this machine (Figs 7/8)
    throttle_candidates: tuple[int, ...] = (2, 4, 8, 16)
    #: largest message the paper evaluates on this machine
    max_msg: int = 4 << 20

    def placement(self, rank: int):
        return self.topology.place(rank)

    def __post_init__(self) -> None:
        if self.default_procs < 2:
            raise ValueError("need at least 2 processes")


def make_knl() -> Architecture:
    """Intel Xeon Phi 7250 'Knights Landing': 68 slow cores, one socket."""
    params = ModelParams(
        alpha_syscall=0.95,
        alpha_check=0.48,  # alpha = 1.43 us (Table IV)
        beta_gbps=3.29,
        l_page=0.25,
        page_size=4096,
        pin_batch=16,
        # single socket: inter == intra; strong bouncing on the mesh
        # (kappa is the per-acquisition line-migration cost in units of
        # l_page per contender; ~0.115 per page x 16-page batches)
        kappa_intra=1.85,
        kappa_inter=1.85,
        gamma_g1=1.6,
        gamma_g2=0.10,
        gamma_spill=0.0,
        spill_point=10 ** 9,
        t_ctrl=0.55,  # slow cores make software overheads larger
        shm_gbps=2.6,
        shm_cache_bytes=256 << 10,  # small shared L2 slices on the mesh
        memcpy_gbps=5.0,
    )
    return Architecture(
        name="knl",
        topology=Topology(sockets=1, cores_per_socket=68, threads_per_core=4),
        params=params,
        default_procs=64,
        throttle_candidates=(2, 4, 8, 16),
        max_msg=16 << 20,
    )


def make_broadwell() -> Architecture:
    """Intel Xeon E5-2680 v4 'Broadwell': 2 x 14 fast cores.

    High clock + lower DDR bandwidth shrink the relative cost of lock
    contention (paper: only ~2x spread across reader counts, Fig. 6(b)).
    """
    params = ModelParams(
        alpha_syscall=0.68,
        alpha_check=0.30,  # alpha = 0.98 us
        beta_gbps=3.12,
        l_page=0.10,
        page_size=4096,
        pin_batch=16,
        kappa_intra=0.55,
        kappa_inter=2.00,
        inter_socket_beta=1.35,
        gamma_g1=0.8,
        gamma_g2=0.04,
        gamma_spill=0.045,
        spill_point=14,  # one socket's worth of cores
        t_ctrl=0.30,
        shm_gbps=3.4,
        shm_cache_bytes=2 << 20,  # big shared LLC: shm Bcast wins < ~2 MB
        shm_large_factor=3.5,
        memcpy_gbps=7.0,
    )
    return Architecture(
        name="broadwell",
        topology=Topology(sockets=2, cores_per_socket=14, threads_per_core=2),
        params=params,
        default_procs=28,
        throttle_candidates=(2, 4, 7, 14),
        max_msg=16 << 20,
    )


def make_power8() -> Architecture:
    """IBM POWER8: 2 x 10 cores, SMT-8, 64 KiB pages, huge bandwidth.

    The big pages mean 16x fewer locks per byte, and the big system
    bandwidth favours *more* concurrency (the paper's best throttle factor
    is ~10, i.e. one socket's worth of cores, Fig. 7(c)).
    """
    params = ModelParams(
        alpha_syscall=0.50,
        alpha_check=0.25,  # alpha = 0.75 us
        beta_gbps=3.70,
        l_page=0.53,
        page_size=65536,
        pin_batch=4,  # a batch covers the same bytes as 64 x86 pages
        kappa_intra=0.10,
        kappa_inter=4.50,  # X-bus cacheline migration is expensive
        inter_socket_beta=1.40,
        gamma_g1=1.0,
        gamma_g2=0.02,
        gamma_spill=1.200,
        spill_point=10,
        t_ctrl=0.40,
        shm_gbps=1.2,  # single SMT thread drives the two-copy path
        shm_cache_bytes=32 << 10,  # CMA k-nomial already wins >= 32 KiB
        shm_large_factor=3.0,
        memcpy_gbps=9.0,
    )
    return Architecture(
        name="power8",
        topology=Topology(sockets=2, cores_per_socket=10, threads_per_core=8),
        params=params,
        default_procs=160,
        throttle_candidates=(2, 4, 10, 20),
        max_msg=2 << 20,
    )


def make_generic(
    sockets: int = 1,
    cores_per_socket: int = 8,
    threads_per_core: int = 1,
    default_procs: int | None = None,
    **param_overrides,
) -> Architecture:
    """A small configurable machine for tests and quick experiments."""
    base = dict(
        alpha_syscall=0.7,
        alpha_check=0.3,
        beta_gbps=3.0,
        l_page=0.2,
        page_size=4096,
        pin_batch=16,
        kappa_intra=0.80,
        kappa_inter=2.40,
        inter_socket_beta=1.3 if sockets > 1 else 1.0,
        gamma_g1=1.0,
        gamma_g2=0.05,
        gamma_spill=0.05 if sockets > 1 else 0.0,
        spill_point=cores_per_socket if sockets > 1 else 10 ** 9,
    )
    base.update(param_overrides)
    topo = Topology(sockets, cores_per_socket, threads_per_core)
    procs = default_procs if default_procs is not None else topo.physical_cores
    return Architecture(
        name="generic",
        topology=topo,
        params=ModelParams(**base),
        default_procs=procs,
        throttle_candidates=(2, 4, 8),
        max_msg=4 << 20,
    )


_FACTORIES = {
    "knl": make_knl,
    "broadwell": make_broadwell,
    "power8": make_power8,
    "generic": make_generic,
}

ARCH_NAMES = ("knl", "broadwell", "power8")


def get_arch(name: str) -> Architecture:
    """Look up an architecture preset by name (fresh instance every call)."""
    try:
        return _FACTORIES[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
