"""Machine models: node topology and calibrated cost parameters.

One :class:`~repro.machine.arch.Architecture` bundles a socket/core/thread
topology with the Table-IV cost parameters (``alpha``, ``beta``, ``l``,
page size) plus the lock-bounce coefficients that make contention emerge in
the simulated kernel.  Presets exist for the paper's three evaluation
platforms (Table V): Intel Xeon Broadwell, Intel Xeon Phi Knights Landing,
and IBM POWER8.
"""

from repro.machine.topology import Topology, Placement
from repro.machine.params import ModelParams
from repro.machine.arch import (
    Architecture,
    make_knl,
    make_broadwell,
    make_power8,
    make_generic,
    get_arch,
    ARCH_NAMES,
)

__all__ = [
    "Topology",
    "Placement",
    "ModelParams",
    "Architecture",
    "make_knl",
    "make_broadwell",
    "make_power8",
    "make_generic",
    "get_arch",
    "ARCH_NAMES",
]
