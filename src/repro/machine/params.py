"""Cost-model parameters (the paper's Table II notation, Table IV values).

All times are microseconds, all sizes bytes.  The analytic model and the
simulated kernel share one :class:`ModelParams` instance per architecture:

* ``alpha`` (= syscall entry + permission check), ``beta`` (copy time per
  byte), ``l`` (lock+pin one page, uncontended) and ``page_size`` are the
  Table IV columns.
* ``kappa_intra`` / ``kappa_inter`` are *mechanistic* inputs to the
  simulated mm lock: each lock acquisition pays a cache-line migration
  cost of ``l_page * (kappa_intra*(c_same-1) + kappa_inter*c_other)``
  where ``c_same`` / ``c_other`` count contenders on the holder's socket /
  the other socket.  FIFO queueing on top of that inflated hold time is
  what *produces* the super-linear contention factor gamma(c); gamma is
  then fitted from simulated measurements (``repro.core.fitting``) exactly
  as the paper fits it from real ones (Fig. 5).
* ``gamma_*`` coefficients are the fitted polynomial the *analytic* model
  uses: ``gamma(c) = 1 + g1*(c-1) + g2*(c-1)^2 (+ spill term)``.  Presets
  carry values consistent with Table IV; ``core.fitting`` can refit them
  from the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ModelParams"]

_GBPS_TO_US_PER_BYTE = 1.0 / 1000.0  # 1 GB/s == 1000 bytes/us


@dataclass
class ModelParams:
    """Per-architecture calibration constants.  Times in us, sizes in bytes."""

    # --- CMA transfer (Table IV) ---
    alpha_syscall: float  # syscall entry/exit cost (T1 in Table III)
    alpha_check: float  # permission/access check (T2 - T1)
    beta_gbps: float  # single-copy bandwidth, GB/s
    l_page: float  # lock+pin one page, no contention
    page_size: int  # s
    pin_batch: int = 16  # pages pinned per mm-lock acquisition

    # --- mm-lock bounce (mechanistic; drives emergent gamma) ---
    # per-acquisition line-migration cost, in units of l_page per contender
    kappa_intra: float = 0.80
    kappa_inter: float = 2.40

    # --- cross-socket copy penalty (QPI/X-bus hop): beta multiplier ---
    inter_socket_beta: float = 1.0

    # --- fitted contention factor gamma(c) (analytic model input) ---
    gamma_g1: float = 1.0  # linear term on (c-1)
    gamma_g2: float = 0.05  # quadratic term on (c-1)^2
    gamma_spill: float = 0.0  # extra quadratic term past one socket
    spill_point: int = 10 ** 9  # concurrency where readers spill sockets

    # --- shared-memory path ---
    t_ctrl: float = 0.35  # one small control message (addr, ready, fin)
    shm_gbps: float = 3.0  # shm copy bandwidth (each of the two copies)
    shm_chunk: int = 8192  # pipeline chunk for large shm transfers
    shm_chunk_overhead: float = 0.08  # per-chunk bookkeeping
    #: payload size beyond which the shm slab stops being cache-resident
    #: and its copies run at DRAM cost (Section VII-F's ~2 MB Broadwell knee)
    shm_cache_bytes: int = 1 << 20
    shm_large_factor: float = 2.0  # copy slowdown once cache-busting
    shm_segment_slots: int = 64  # eager-pool chunk slots per node

    # --- plain memcpy (root copying its own block) ---
    memcpy_gbps: float = 6.0

    # --- reduction combine throughput (extension: Reduce/Allreduce) ---
    reduce_gbps: float = 4.0

    # --- kernel-module variants (KNEM / LiMIC related-work models) ---
    t_cookie: float = 2.0  # KNEM region-declaration cost
    t_limic_setup: float = 0.8

    # --- XPMEM-style mapped windows ---
    t_xpmem_make: float = 1.2  # owner export (segid creation), per region
    t_xpmem_attach: float = 0.9  # fixed attach/lookup cost per call
    t_xpmem_page: float = 0.02  # map-table setup per window page (cold)
    t_xpmem_copy: float = 0.05  # fixed per-copy cost, steady state

    # --- inter-node network (multi-node experiments, Fig 17) ---
    alpha_net: float = 1.8  # per-message network latency
    net_gbps: float = 10.0  # ~100 Gb/s EDR IB / Omni-Path
    t_match: float = 0.15  # root-side matching cost per queued message

    # -- derived -------------------------------------------------------------

    @property
    def alpha(self) -> float:
        """Total startup cost per CMA call (Table II's alpha)."""
        return self.alpha_syscall + self.alpha_check

    @property
    def beta(self) -> float:
        """Copy time per byte (us/B)."""
        return _GBPS_TO_US_PER_BYTE / self.beta_gbps

    @property
    def shm_beta(self) -> float:
        return _GBPS_TO_US_PER_BYTE / self.shm_gbps

    @property
    def memcpy_beta(self) -> float:
        return _GBPS_TO_US_PER_BYTE / self.memcpy_gbps

    @property
    def reduce_beta(self) -> float:
        """Time per byte to combine two operands (us/B)."""
        return _GBPS_TO_US_PER_BYTE / self.reduce_gbps

    @property
    def net_beta(self) -> float:
        return _GBPS_TO_US_PER_BYTE / self.net_gbps

    # -- model pieces ---------------------------------------------------------

    def pages(self, nbytes: int) -> int:
        """ceil(n / s): pages touched by an n-byte transfer."""
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.page_size)

    def gamma(self, c: float) -> float:
        """Fitted contention factor with ``c`` concurrent readers/writers.

        ``c <= 1`` means no contention (gamma == 1).  Past ``spill_point``
        contenders the extra inter-socket term kicks in (Fig. 5(b)/(c)).
        """
        if c <= 1:
            return 1.0
        x = c - 1.0
        g = 1.0 + self.gamma_g1 * x + self.gamma_g2 * x * x
        over = c - self.spill_point
        if over > 0:
            g += self.gamma_spill * over * over
        return g

    def lock_pin_time(self, nbytes: int, concurrency: float = 1.0) -> float:
        """Analytic lock+pin cost: l * gamma(c) * ceil(n/s)."""
        return self.l_page * self.gamma(concurrency) * self.pages(nbytes)

    def cma_time(self, nbytes: int, concurrency: float = 1.0) -> float:
        """Analytic cost of one CMA transfer: alpha + n*beta + l*gamma*ceil(n/s)."""
        return self.alpha + nbytes * self.beta + self.lock_pin_time(
            nbytes, concurrency
        )

    def with_updates(self, **kw) -> "ModelParams":
        """Functional update (used when fitting overwrites gamma terms)."""
        return replace(self, **kw)
