"""repro — Contention-Aware Kernel-Assisted MPI Collectives (CLUSTER 2017).

A full-system reproduction of Chakraborty, Subramoni & Panda's
contention-aware CMA collectives paper:

* :mod:`repro.sim` — discrete-event simulator (virtual microseconds).
* :mod:`repro.machine` — KNL / Broadwell / POWER8 node models (Table V/IV).
* :mod:`repro.kernel` — simulated ``process_vm_readv``/``writev`` with the
  mm-lock contention that motivates the paper, plus KNEM/LiMIC variants.
* :mod:`repro.shm` — two-copy shared-memory transport and control-message
  collectives.
* :mod:`repro.mpi` — a mini-MPI: communicators, eager/rendezvous pt2pt.
* :mod:`repro.core` — the paper's contribution: the analytic cost model,
  NLLS gamma fitting, every collective algorithm from Sections IV-V, the
  tuning layer ("Proposed"), baseline library models, and multi-node
  two-level designs.
* :mod:`repro.realcma` — ctypes bindings to the real syscalls, with a
  multiprocessing microbenchmark harness.
* :mod:`repro.bench` — regenerates every evaluation table and figure.

Quickstart::

    from repro import get_arch, run_collective, CollectiveSpec
    spec = CollectiveSpec(collective="scatter", algorithm="throttled_read",
                          arch=get_arch("knl"), procs=16, eta=65536,
                          params={"k": 4})
    result = run_collective(spec)
    print(result.latency_us)
"""

from repro.machine import get_arch, Architecture, ARCH_NAMES

__version__ = "1.0.0"

__all__ = [
    "get_arch",
    "Architecture",
    "ARCH_NAMES",
    "CollectiveSpec",
    "CollectiveResult",
    "run_collective",
    "AnalyticModel",
    "Tuner",
    "__version__",
]


def __getattr__(name):
    # Lazy imports keep `import repro` cheap and avoid import cycles while
    # still exposing the headline API at the package root.
    if name in ("CollectiveSpec", "CollectiveResult", "run_collective"):
        from repro.core import runner

        return getattr(runner, name)
    if name == "AnalyticModel":
        from repro.core.model import AnalyticModel

        return AnalyticModel
    if name == "Tuner":
        from repro.core.tuning import Tuner

        return Tuner
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
