"""Kernel error model mirroring the errno values ``process_vm_readv`` uses."""

from __future__ import annotations

__all__ = [
    "KernelError", "CMAError",
    "EPERM", "ENOENT", "ESRCH", "EINTR", "EINVAL", "EFAULT",
]

EPERM = 1
ENOENT = 2
ESRCH = 3
EINTR = 4
EFAULT = 14
EINVAL = 22

_ERRNO_NAMES = {
    EPERM: "EPERM",
    ENOENT: "ENOENT",
    ESRCH: "ESRCH",
    EINTR: "EINTR",
    EFAULT: "EFAULT",
    EINVAL: "EINVAL",
}


class KernelError(RuntimeError):
    """Base class for simulated-kernel failures."""


class CMAError(KernelError):
    """A failed ``process_vm_readv``/``writev`` call, carrying an errno."""

    def __init__(self, errno: int, message: str = ""):
        self.errno = errno
        name = _ERRNO_NAMES.get(errno, str(errno))
        super().__init__(f"[{name}] {message}" if message else f"[{name}]")
