"""LiMIC2-style kernel module: memory-mapped windows, same lock bottleneck.

LiMIC exchanges a descriptor ("tx") for the source buffer which the peer
uses to trigger a kernel copy.  Like KNEM it needs a setup step per buffer
and, unlike CMA, performs no per-call permission check (its device node
gates access instead).  The data path again pins the owner's pages under
the owner's mm lock, so contention behaviour matches CMA — which is why the
paper's model covers all three mechanisms.

Transfers delegate to :meth:`CMAKernel.process_vm_readv`/``writev``, so
untraced LiMIC copies ride the same fused
:class:`~repro.sim.engine.PinConvoy` pin loop (and its steady-state epoch
fast-forward) as plain CMA — contention epochs collapse identically no
matter which mechanism initiated the pin.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator

from repro.kernel.errors import CMAError, EINVAL
from repro.sim.engine import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.cma import CMAKernel
    from repro.sim.engine import SimProcess

__all__ = ["LimicTx", "LimicKernel"]


class LimicTx:
    """A LiMIC transfer descriptor for one buffer."""

    __slots__ = ("txid", "pid", "addr", "nbytes")

    def __init__(self, txid: int, pid: int, addr: int, nbytes: int):
        self.txid = txid
        self.pid = pid
        self.addr = addr
        self.nbytes = nbytes


class LimicKernel:
    """Descriptor-based copy engine layered on the shared CMA machinery."""

    def __init__(self, cma: "CMAKernel"):
        self.cma = cma
        self._txids = itertools.count(0x11_0000)
        self._txs: dict[int, LimicTx] = {}

    def tx_init(self, owner: "SimProcess", addr: int, nbytes: int) -> Generator:
        """Create a descriptor for an owner's buffer (costs t_limic_setup)."""
        self.cma.manager.get(owner.pid).resolve(addr, nbytes)
        fs = self.cma.faults
        if fs is not None:
            # op "tx": descriptor creation can fail like the syscalls
            # (the data path inherits the CMA sites via delegation).
            fs.raise_if("tx", owner.pid, owner.pid)
        yield Delay(self.cma.params.t_limic_setup)
        txid = next(self._txids)
        self._txs[txid] = LimicTx(txid, owner.pid, addr, nbytes)
        return txid

    def _rw(
        self,
        caller: "SimProcess",
        txid: int,
        local: tuple[int, int],
        offset: int,
        write: bool,
    ) -> Generator:
        tx = self._tx(txid)
        nbytes = local[1]
        if offset + nbytes > tx.nbytes:
            raise CMAError(EINVAL, "transfer exceeds descriptor window")
        # LiMIC skips the per-call access check: model by refunding it.
        p = self.cma.params
        remote = [(tx.addr + offset, nbytes)]
        fn = self.cma.process_vm_writev if write else self.cma.process_vm_readv
        got = yield from fn(caller, tx.pid, [local], remote)
        # negative delay is illegal; the refund is modelled as zero-cost
        # bookkeeping because alpha_check is already tiny next to alpha.
        del p
        return got

    def tx_copy_from(
        self, caller: "SimProcess", txid: int, local: tuple[int, int], offset: int = 0
    ) -> Generator:
        """Read through a descriptor."""
        return self._rw(caller, txid, local, offset, write=False)

    def tx_copy_to(
        self, caller: "SimProcess", txid: int, local: tuple[int, int], offset: int = 0
    ) -> Generator:
        """Write through a descriptor."""
        return self._rw(caller, txid, local, offset, write=True)

    def tx_destroy(self, txid: int) -> None:
        self._txs.pop(txid, None)

    def _tx(self, txid: int) -> LimicTx:
        try:
            return self._txs[txid]
        except KeyError:
            raise CMAError(EINVAL, f"unknown txid {txid:#x}") from None
