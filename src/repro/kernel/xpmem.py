"""XPMEM-style mapped windows: pay the map once, then copy pin-free.

The fourth kernel mechanism, and the first whose *steady state* avoids the
owner's mm lock entirely.  An owner exports a region (``make_segid``), a
peer attaches it once per ``(owner, attacher)`` pair — paying a map cost
proportional to the region's pages — and every copy through the mapped
window after the pages are faulted in is a plain memcpy-speed transfer
with **no** ``get_user_pages`` call, hence no γ(c) contention.  The cost
moves, it does not vanish:

1. **make** — the owner's export (``t_xpmem_make``), once per region;
2. **attach** — page-table setup proportional to the window
   (``t_xpmem_attach + npages * t_xpmem_page``), charged once per
   (owner, attacher) pair; re-attaching an already-mapped window costs
   only the fixed ``t_xpmem_attach`` lookup;
3. **fault-in** — the first touch of each window page takes the *owner's*
   mm lock briefly (one-page hold) to populate the attacher's page table.
   A cold One-to-all therefore still convoys on the root's mm lock — just
   once per page per attacher instead of once per batch per call;
4. **copy** — ``t_xpmem_copy + nbytes * beta``, mm-lock-free.

This is exactly the regime split Huang et al. exploit (PAPERS.md,
arXiv 2305.10612): mapped windows beat throttled CMA once the map+fault
cost amortises over enough traffic, and lose at small sizes where the
per-call CMA syscall is cheaper than the attach.  ``core.tuning`` picks
the winner per (arch, collective, size, procs).

Differential contract (mirrors :mod:`repro.kernel.cma`): the traced path
emits per-page lock/fault spans; the untraced unfused path replays the
same Acquire/HoldRelease timeline; the untraced fused path rides one
:class:`~repro.sim.engine.FaultConvoy` — the cold fault-in convoy with
the pin-free copy fused on as its ``tail_dt`` — and all three agree on
timestamps (the untraced pair bit-exactly on events too).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator, Optional

from repro.kernel.address_space import copy_iov_bytes
from repro.kernel.errors import (
    CMAError,
    EFAULT,
    EINTR,
    EINVAL,
    ENOENT,
    EPERM,
    ESRCH,
)
from repro.sim.engine import (
    Acquire,
    Delay,
    DelayChain,
    FaultConvoy,
    FoldBump,
    HoldRelease,
    PhaseCommand,
    Release,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.cma import CMAKernel
    from repro.sim.engine import SimProcess

__all__ = ["XpmemSegment", "XpmemKernel"]

#: errno raised per injected errno-kind fault (mirrors faults.KIND_ERRNO;
#: kept local so the kernel layer never imports repro.faults — circular
#: through the package __init__ — same idiom as cma._INJECT_ERRNO).
_INJECT_ERRNO = {
    "eperm": EPERM,
    "enoent": ENOENT,
    "esrch": ESRCH,
    "efault": EFAULT,
    "eintr": EINTR,
}

#: first segid handed out (recognisably XPMEM-ish in hex dumps)
_SEGID_BASE = 0x5E60_0000


class XpmemSegment:
    """An exported region, addressable by segid."""

    __slots__ = ("segid", "owner_pid", "addr", "nbytes", "npages")

    def __init__(self, segid: int, owner_pid: int, addr: int, nbytes: int,
                 npages: int):
        self.segid = segid
        self.owner_pid = owner_pid
        self.addr = addr
        self.nbytes = nbytes
        self.npages = npages


class XpmemKernel:
    """Node-wide mapped-window engine layered on the shared CMA machinery.

    Unlike :class:`~repro.kernel.knem.KnemKernel` it does **not** delegate
    its data path to ``process_vm_rw`` — the whole point is a different
    steady-state cost model — but it shares the CMA kernel's address
    spaces, mm locks, sockets, permission set and fault state, so the two
    lanes see one consistent node.
    """

    def __init__(self, cma: "CMAKernel"):
        self.cma = cma
        self._segids: dict[int, XpmemSegment] = {}
        #: (owner_pid, addr, nbytes) -> segid: make_segid is idempotent,
        #: re-exporting an identical region returns the existing segid free
        self._by_region: dict[tuple[int, int, int], int] = {}
        self._segid_counter = itertools.count(_SEGID_BASE)
        #: (owner_pid, attacher_pid) pairs whose map cost has been charged
        self._mapped: set[tuple[int, int]] = set()
        #: per mapped pair, the set of global page indices faulted in
        self._faulted: dict[tuple[int, int], set[int]] = {}
        self.attaches = 0
        self.maps_charged = 0
        self.page_faults = 0
        self.reads = 0
        self.writes = 0
        #: the shared non-verify completion callbacks the fused builder
        #: attaches: single identity-stable objects so the batch drain can
        #: recognize and fold them (see :class:`FoldBump`)
        self._bump_reads = FoldBump(self, "reads")
        self._bump_writes = FoldBump(self, "writes")
        #: (caller_pid, segid, local, remote, write) -> warm copy segment
        #: for :meth:`copy_segment`: map/fault state only grows within a
        #: run, so a warm verdict stays warm until :meth:`reset`; the
        #: fault gate stays live in front.
        self._seg_cache: dict = {}

    def reset(self) -> None:
        """Forget every segment, mapping and fault-in (address-space reset).

        A warm node's buffers come back at the same virtual addresses but
        they are *new* mappings — stale segids must dangle (ENOENT) and
        attach caches above must repopulate — so everything goes, and the
        segid counter restarts so a warm run mints the same ids a fresh
        node would (segids flow into control messages: bit-exactness).
        """
        self._segids.clear()
        self._by_region.clear()
        self._segid_counter = itertools.count(_SEGID_BASE)
        self._mapped.clear()
        self._faulted.clear()
        self.attaches = 0
        self.maps_charged = 0
        self.page_faults = 0
        self.reads = 0
        self.writes = 0
        self._seg_cache.clear()

    # -- export / attach ------------------------------------------------------

    def make_segid(
        self, owner: "SimProcess", addr: int, nbytes: int
    ) -> Generator:
        """Owner exports [addr, addr+nbytes); returns the segid.

        Idempotent per exact region: a repeat export returns the existing
        segid at zero cost (the real xpmem_make of an already-exported
        range is a refcount bump).  Costs ``t_xpmem_make`` on creation.
        """
        if nbytes <= 0:
            raise CMAError(EINVAL, f"segment size must be positive, got {nbytes}")
        existing = self._by_region.get((owner.pid, addr, nbytes))
        if existing is not None:
            return existing
        # validate the region resolves in the owner's space (EFAULT)
        self.cma.manager.get(owner.pid).resolve(addr, nbytes)
        fs = self.cma.faults
        scale = 1.0
        if fs is not None:
            fs.raise_if("make", owner.pid, owner.pid)
            scale = fs.scale(owner.pid)
        p = self.cma.params
        tracer = self.cma.tracer
        t0 = self.cma.sim.now
        yield Delay(p.t_xpmem_make if scale == 1.0 else p.t_xpmem_make * scale)
        if tracer.enabled:
            tracer.record(owner.name, "xmake", t0, self.cma.sim.now, meta=nbytes)
        ps = p.page_size
        npages = (addr + nbytes - 1) // ps - addr // ps + 1
        segid = next(self._segid_counter)
        self._segids[segid] = XpmemSegment(segid, owner.pid, addr, nbytes, npages)
        self._by_region[(owner.pid, addr, nbytes)] = segid
        return segid

    def attach(self, caller: "SimProcess", segid: int) -> Generator:
        """Map an exported segment into the caller; returns the segment.

        The first attach of a pair charges the proportional map cost
        ``t_xpmem_attach + npages * t_xpmem_page``; later attaches of the
        same (owner, attacher) pair cost the fixed lookup only.  All
        checks (stale segid, dead owner, denial, injected errnos) precede
        any charged time, identically in traced and untraced runs.
        """
        seg = self._segids.get(segid)
        if seg is None:
            raise CMAError(ENOENT, f"stale segid {segid:#x}")
        self.cma.manager.get(seg.owner_pid)  # raises ESRCH
        if seg.owner_pid in self.cma.denied_pids:
            raise CMAError(EPERM, f"xpmem access to pid {seg.owner_pid} denied")
        fs = self.cma.faults
        scale = 1.0
        if fs is not None:
            fault = fs.draw("attach", seg.owner_pid, caller.pid)
            if fault is not None and fault.kind in _INJECT_ERRNO:
                raise CMAError(
                    _INJECT_ERRNO[fault.kind],
                    f"injected {fault.kind} at attach(segid={segid:#x})",
                )
            scale = fs.scale(caller.pid)
        p = self.cma.params
        tracer = self.cma.tracer
        pair = (seg.owner_pid, caller.pid)
        cold = pair not in self._mapped
        t_fix = p.t_xpmem_attach if scale == 1.0 else p.t_xpmem_attach * scale
        if cold:
            t_map = seg.npages * p.t_xpmem_page
            if scale != 1.0:
                t_map *= scale
            if tracer.enabled:
                t0 = self.cma.sim.now
                yield Delay(t_fix)
                tracer.record(caller.name, "xattach", t0, self.cma.sim.now,
                              meta=seg.owner_pid)
                t1 = self.cma.sim.now
                yield Delay(t_map)
                tracer.record(caller.name, "xmap", t1, self.cma.sim.now,
                              meta=seg.npages)
            else:
                # Fused: same two heap events/timestamps as the traced pair
                # of Delays, one generator resumption.
                yield DelayChain(t_fix, t_map)
            self._mapped.add(pair)
            self._faulted[pair] = set()
            self.maps_charged += 1
        else:
            t0 = self.cma.sim.now
            yield Delay(t_fix)
            if tracer.enabled:
                tracer.record(caller.name, "xattach", t0, self.cma.sim.now,
                              meta=seg.owner_pid)
        self.attaches += 1
        return seg

    # -- the data path --------------------------------------------------------

    def copy_from(
        self,
        caller: "SimProcess",
        segid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
    ) -> Generator:
        """Read through a mapped window into the caller.  Returns bytes."""
        return self._copy(caller, segid, local, remote, write=False)

    def copy_to(
        self,
        caller: "SimProcess",
        segid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
    ) -> Generator:
        """Write the caller's memory through a mapped window.  Returns bytes."""
        return self._copy(caller, segid, local, remote, write=True)

    def _copy(
        self,
        caller: "SimProcess",
        segid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
        write: bool,
    ) -> Generator:
        """One mapped-window transfer: fault in new pages, then copy.

        ``remote`` addresses live in the *owner's* address space (the
        window is a shared mapping, so no translation is modelled).  The
        copy itself never touches the owner's mm lock; only first-touch
        pages do, one one-page hold each — so a cold window still convoys,
        a warm one is a pure delay.  All checks precede any charged time,
        identically in both paths (``partial`` faults cannot fire here:
        a mapped-window memcpy has no short-count failure mode).
        """
        if local[1] < 0 or remote[1] < 0:
            raise CMAError(EINVAL, "negative transfer length")
        seg = self._segids.get(segid)
        if seg is None:
            raise CMAError(ENOENT, f"stale segid {segid:#x}")
        pair = (seg.owner_pid, caller.pid)
        if pair not in self._mapped:
            raise CMAError(EINVAL, f"segid {segid:#x} not attached")
        owner_space = self.cma.manager.get(seg.owner_pid)  # raises ESRCH
        fs = self.cma.faults
        scale = 1.0
        if fs is not None:
            fault = fs.draw("xcopy", seg.owner_pid, caller.pid)
            if fault is not None and fault.kind in _INJECT_ERRNO:
                raise CMAError(
                    _INJECT_ERRNO[fault.kind],
                    f"injected {fault.kind} at xcopy(segid={segid:#x})",
                )
            scale = fs.scale(caller.pid)
        ncopy = min(local[1], remote[1])
        if ncopy == 0:
            return 0
        if not (seg.addr <= remote[0] and remote[0] + ncopy <= seg.addr + seg.nbytes):
            raise CMAError(
                EFAULT,
                f"[{remote[0]:#x}, {remote[0] + ncopy:#x}) outside "
                f"segid {segid:#x}",
            )

        p = self.cma.params
        ps = p.page_size
        first = remote[0] // ps
        last = (remote[0] + ncopy - 1) // ps
        fset = self._faulted[pair]
        newp = [pg for pg in range(first, last + 1) if pg not in fset]
        beta = self.cma.copy_beta(caller, seg.owner_pid)
        copy_time = p.t_xpmem_copy + ncopy * beta
        if scale != 1.0:
            copy_time *= scale
        mm = self.cma.mm_lock(seg.owner_pid)
        tracer = self.cma.tracer

        if tracer.enabled:
            # Traced: per-page lock/fault spans (the cold-attach storm is
            # visible in the ftrace-style breakdown), then the pin-free copy.
            for _pg in newp:
                t_req = self.cma.sim.now
                yield Acquire(mm.mutex)
                t_got = self.cma.sim.now
                hold = mm.hold_time(1, caller)
                yield Delay(hold)
                yield Release(mm.mutex)
                tracer.record(caller.name, "lock", t_req, t_got, meta=seg.owner_pid)
                tracer.record(caller.name, "fault", t_got, t_got + hold, meta=1)
                mm.pages_pinned += 1
            t3 = self.cma.sim.now
            yield Delay(copy_time)
            tracer.record(caller.name, "copy", t3, self.cma.sim.now, meta=ncopy)
        elif newp and self.cma.sim.use_pin_convoy:
            # Fused cold-copy fast path: the per-page fault-in convoy with
            # the pin-free copy riding as the convoy's tail — one command,
            # same event stream as the unfused loop + trailing Delay
            # (copy_time > 0 always: t_xpmem_copy is a positive constant).
            yield FaultConvoy(
                mm.mutex, mm.hold_time, [(1, 0.0)] * len(newp),
                mm=mm, npages=len(newp), memo=mm._hold_memo,
                tail_dt=copy_time,
            )
        else:
            # Unfused untraced reference path (and the warm steady state,
            # where there is nothing to fault and the copy is one Delay —
            # the mm lock is never touched).
            for _pg in newp:
                yield Acquire(mm.mutex)
                hold = mm.hold_time(1, caller)
                yield HoldRelease(mm.mutex, hold)
                mm.pages_pinned += 1
            yield Delay(copy_time)

        if newp:
            fset.update(newp)
            self.page_faults += len(newp)
        if self.cma.verify:
            caller_space = self.cma.manager.get(caller.pid)
            if write:
                copy_iov_bytes(caller_space, [local], owner_space,
                               [(remote[0], ncopy)], ncopy)
            else:
                copy_iov_bytes(owner_space, [(remote[0], ncopy)], caller_space,
                               [local], ncopy)
        if write:
            self.writes += 1
        else:
            self.reads += 1
        return ncopy

    # -- fused-phase segment builder ------------------------------------------

    def copy_segment(
        self,
        caller: "SimProcess",
        segid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
        write: bool,
    ):
        """One phase segment replaying a *warm* untraced window copy.

        Warm means the ``(owner, attacher)`` pair is mapped and every page
        of the remote range has already been faulted in: the transfer is
        then a single pin-free delay (``t_xpmem_copy + ncopy * beta``)
        whose completion callback performs the verify copy and counter
        bump — exactly what the unfused generator does after its lone
        ``Delay``.  Warm segments are pure chains with no second delay,
        so whole warm phases are ``delay_only`` and eligible for the
        vectorized batch executor.

        Returns ``None`` when the copy cannot be mirrored — cold pages
        (their fault-in convoys take the owner's mm lock), armed faults,
        stale or unattached segids, zero/negative lengths, ranges outside
        the window — and the caller falls back to the unfused emitter,
        which reproduces the error semantics and the cold-path timing.
        """
        cma = self.cma
        if cma.faults is not None or local[1] < 0 or remote[1] < 0:
            return None
        ckey = (caller.pid, segid, local, remote, write)
        cached = self._seg_cache.get(ckey)
        if cached is not None:
            return cached
        seg = self._segids.get(segid)
        if seg is None:
            return None
        pair = (seg.owner_pid, caller.pid)
        if pair not in self._mapped:
            return None
        try:
            owner_space = cma.manager.get(seg.owner_pid)
        except CMAError:
            return None
        ncopy = min(local[1], remote[1])
        if ncopy == 0:
            return None
        if not (
            seg.addr <= remote[0]
            and remote[0] + ncopy <= seg.addr + seg.nbytes
        ):
            return None
        p = cma.params
        ps = p.page_size
        first = remote[0] // ps
        last = (remote[0] + ncopy - 1) // ps
        fset = self._faulted[pair]
        for pg in range(first, last + 1):
            if pg not in fset:
                return None
        beta = cma.copy_beta(caller, seg.owner_pid)
        copy_time = p.t_xpmem_copy + ncopy * beta
        if cma.verify:
            caller_space = cma.manager.get(caller.pid)
            remote_iov = [(remote[0], ncopy)]
            local_iov = [local]
            if write:
                def cb() -> None:
                    copy_iov_bytes(
                        caller_space, local_iov, owner_space, remote_iov, ncopy
                    )
                    self.writes += 1
            else:
                def cb() -> None:
                    copy_iov_bytes(
                        owner_space, remote_iov, caller_space, local_iov, ncopy
                    )
                    self.reads += 1
        else:
            cb = self._bump_writes if write else self._bump_reads
        cached = PhaseCommand.chain(copy_time, 0.0, cb)
        self._seg_cache[ckey] = cached
        return cached
