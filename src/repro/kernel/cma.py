"""Cross Memory Attach: ``process_vm_readv`` / ``process_vm_writev``.

The simulated syscalls follow the real kernel's ``process_vm_rw`` path:

1. **syscall entry** — fixed cost, charged always (Table III row 1);
2. **permission / access check** on the remote pid — charged whenever a
   remote iovec is present (Table III row 2);
3. **lock + pin** — per batch of remote pages, via the remote process's
   :class:`~repro.kernel.pagelock.MMLock` (Table III row 3).  This is where
   contention lives;
4. **copy** — bytes actually moved, ``min(local_total, remote_total)``
   (Table III row 4).  Real numpy bytes move unless the kernel was built
   with ``verify=False`` (timing-only mode for big sweeps).

Setting ``liovcnt = 0`` pins the remote pages but copies nothing, and a
zero-length remote iovec skips pinning — exactly the partial-step trigger
trick the paper uses to isolate T1..T4 (Table III); ``step_timings`` in
:mod:`repro.core.fitting` drives it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro.kernel.address_space import AddressSpaceManager, copy_iov_bytes
from repro.kernel.errors import CMAError, EFAULT, EINTR, EINVAL, EPERM, ESRCH
from repro.kernel.pagelock import MMLock
from repro.sim.engine import (
    Acquire,
    Delay,
    DelayChain,
    FoldBump,
    HoldRelease,
    PhaseCommand,
    PinConvoy,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultState
    from repro.machine.params import ModelParams
    from repro.sim.engine import SimProcess, Simulator
    from repro.sim.trace import Tracer

__all__ = ["CMAKernel", "iovec_total", "IOV_MAX"]

#: Linux UIO_MAXIOV
IOV_MAX = 1024

Iovec = Sequence[tuple[int, int]]

#: errno raised per injected errno-kind fault (mirrors faults.KIND_ERRNO;
#: kept local so the kernel layer never imports repro.faults, which would
#: be circular through the package __init__).
_INJECT_ERRNO = {"eperm": EPERM, "esrch": ESRCH, "efault": EFAULT, "eintr": EINTR}


def iovec_total(iov: Iovec) -> int:
    """Sum of iovec lengths (validates non-negative lengths)."""
    total = 0
    for _, ln in iov:
        if ln < 0:
            raise CMAError(EINVAL, f"negative iovec length {ln}")
        total += ln
    return total


def _iov_pages(iov: Iovec, page_size: int) -> int:
    """Pages spanned by an iovec (per-entry rounding, like total_pages)."""
    total = 0
    for addr, ln in iov:
        if ln == 0:
            continue
        total += (addr + ln - 1) // page_size - addr // page_size + 1
    return total


def _page_prefix_bytes(iov: Iovec, page_size: int, max_pages: int) -> int:
    """Bytes of ``iov`` covered by its first ``max_pages`` pages."""
    pages = 0
    nbytes = 0
    for addr, ln in iov:
        if ln == 0:
            continue
        first = addr // page_size
        span = (addr + ln - 1) // page_size - first + 1
        if pages + span <= max_pages:
            pages += span
            nbytes += ln
            if pages == max_pages:
                break
            continue
        # the budget runs out inside this entry: cut at the page boundary
        take = max_pages - pages
        nbytes += (first + take) * page_size - addr
        break
    return nbytes


def _truncate_at_page_boundary(
    remote_iov: Iovec, page_size: int, npages: int, ncopy: int, frac: float
) -> tuple[int, int]:
    """Short-transfer point: keep a whole-page prefix of the remote iovec.

    Mirrors the real ``process_vm_rw``: when pinning faults midway, the
    bytes already copied — whole pages at the front of the remote iovec —
    are returned as a short count, never an error.  Returns the truncated
    ``(npages, ncopy)``; a no-op when the local side already bounds the
    copy short of the chosen boundary.
    """
    keep = max(1, min(npages - 1, int(npages * frac)))
    prefix = _page_prefix_bytes(remote_iov, page_size, keep)
    if 0 < prefix < ncopy:
        return keep, prefix
    return npages, ncopy


class CMAKernel:
    """Node-wide CMA engine: one mm lock per process, shared tracer."""

    def __init__(
        self,
        sim: "Simulator",
        manager: AddressSpaceManager,
        params: "ModelParams",
        tracer: "Tracer",
        verify: bool = True,
    ):
        self.sim = sim
        self.manager = manager
        self.params = params
        self.tracer = tracer
        self.verify = verify
        self._mm_locks: dict[int, MMLock] = {}
        self._sockets: dict[int, int] = {}
        #: pids the permission check rejects (tests ptrace-style denial)
        self.denied_pids: set[int] = set()
        #: armed fault-injection state, or None (the default: no faults,
        #: bit-identical to the pre-fault kernel) — see :meth:`set_faults`
        self.faults: Optional["FaultState"] = None
        self.reads = 0
        self.writes = 0
        #: the shared non-verify completion callbacks the fused builder
        #: attaches: single identity-stable objects so the batch drain can
        #: recognize and fold them (see :class:`FoldBump`)
        self._bump_reads = FoldBump(self, "reads")
        self._bump_writes = FoldBump(self, "writes")
        #: single-entry (npages, ncopy, beta) -> batches template cache for
        #: the fused-phase builder: symmetric collective phases repeat the
        #: same transfer geometry per step, and batch plans are pure in the
        #: key, so the (read-only) list is shared across segments
        self._batch_cache: Optional[tuple[tuple[int, int, float], list]] = None
        #: (caller_pid, peer_pid, local, remote, write) -> segment list for
        #: :meth:`rw_segments`: warm collective rounds re-emit the exact
        #: same transfers, and the segments are pure in the key given the
        #: registration state (spaces, placement, params), so re-deriving
        #: them every round is pure emission overhead.  Invalidated on
        #: :meth:`reset`/:meth:`register` (spaces and sockets may change);
        #: the live gates (faults/denied/pin-convoy) stay in front.
        self._seg_cache: dict = {}
        #: segment-emission epoch: bumped on every invalidation of
        #: :attr:`_seg_cache`, so value-keyed caches layered above (the
        #: whole-phase cache in :class:`~repro.mpi.communicator.Comm`)
        #: can tell when a cached phase may no longer match what the
        #: per-stage builders would emit
        self.seg_epoch = 0

    def register(self, pid: int, socket: int = 0) -> None:
        """Create the address space + mm lock for a new process.

        ``socket`` is where the process is pinned: copies that cross
        sockets pay the ``inter_socket_beta`` bandwidth penalty.
        """
        self.manager.create(pid)
        mm = MMLock(self.sim, pid, self.params, self.tracer)
        if self.faults is not None:
            mm.hold_scale = self.faults.scale(pid)
        self._mm_locks[pid] = mm
        self._sockets[pid] = socket
        self._seg_cache.clear()
        self.seg_epoch += 1

    def set_faults(self, state: Optional["FaultState"]) -> None:
        """Arm (or disarm) fault injection for this kernel.

        Straggler slowdowns apply to a pid's mm-lock hold time too (its
        page operations are slow from every contender's point of view),
        so the per-lock scale is pushed down here; it stays constant for
        the run, which keeps ``hold_time`` pure in (pages, contention
        profile) and the PinConvoy memo contract intact.
        """
        self.faults = state
        for pid, mm in self._mm_locks.items():
            mm.hold_scale = 1.0 if state is None else state.scale(pid)

    def reset(self) -> None:
        """Reset per-run state while keeping pid registrations.

        A warm node re-registers the same pids in the same order, so the
        address spaces and mm locks survive (their *contents* are reset);
        only counters and the denial set go back to zero.  Fault state is
        disarmed (mm hold scales return to 1.0): a plan is per-run state,
        so the owner must re-arm via :meth:`set_faults` after the reset
        (``Node.reset`` does).
        """
        self.denied_pids.clear()
        self.faults = None
        self.reads = 0
        self.writes = 0
        self._seg_cache.clear()  # cbs close over the old address spaces
        self.seg_epoch += 1
        for mm in self._mm_locks.values():
            mm.reset()
        self.manager.reset_spaces()

    def copy_beta(self, caller: "SimProcess", pid: int) -> float:
        """Per-byte copy time between ``caller`` and process ``pid``."""
        beta = self.params.beta
        if self._sockets.get(pid, 0) != caller.socket:
            beta *= self.params.inter_socket_beta
        return beta

    def mm_lock(self, pid: int) -> MMLock:
        self.manager.get(pid)  # ESRCH if unknown
        return self._mm_locks[pid]

    # -- the syscalls ---------------------------------------------------------

    def process_vm_readv(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int = 0,
    ) -> Generator:
        """Read from ``pid``'s memory into the caller's.  Returns bytes copied."""
        rw = self._process_vm_rw if self.tracer.enabled else self._process_vm_rw_fast
        return rw(caller, pid, local_iov, remote_iov, flags, write=False)

    def process_vm_writev(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int = 0,
    ) -> Generator:
        """Write the caller's memory into ``pid``'s.  Returns bytes copied."""
        rw = self._process_vm_rw if self.tracer.enabled else self._process_vm_rw_fast
        return rw(caller, pid, local_iov, remote_iov, flags, write=True)

    def _process_vm_rw(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int,
        write: bool,
    ) -> Generator:
        p = self.params
        tracer = self.tracer

        # --- validation (before any cost, like the real syscall) ---
        if flags != 0:
            raise CMAError(EINVAL, "flags must be 0")
        if len(local_iov) > IOV_MAX or len(remote_iov) > IOV_MAX:
            raise CMAError(EINVAL, "iovcnt exceeds IOV_MAX")
        local_total = iovec_total(local_iov)
        remote_total = iovec_total(remote_iov)

        # --- fault-injection draw (fs is None on the default path: no
        # draw, scale 1.0, and every guarded branch below compiles away
        # to the exact pre-fault delay expressions) ---
        fault = None
        scale = 1.0
        fs = self.faults
        if fs is not None:
            if remote_iov:
                fault = fs.draw(
                    "writev" if write else "readv",
                    pid,
                    caller.pid,
                    pages=_iov_pages(remote_iov, p.page_size),
                )
            scale = fs.scale(caller.pid)

        # --- 1. syscall entry ---
        t0 = self.sim.now
        yield Delay(p.alpha_syscall if scale == 1.0 else p.alpha_syscall * scale)
        if tracer.enabled:
            tracer.record(caller.name, "syscall", t0, self.sim.now)

        if not remote_iov:
            return 0

        # --- 2. permission / access check on the remote task ---
        t1 = self.sim.now
        remote_space = self.manager.get(pid)  # raises ESRCH
        if pid in self.denied_pids:
            raise CMAError(EPERM, f"ptrace access to pid {pid} denied")
        if fault is not None and fault.kind in _INJECT_ERRNO:
            raise CMAError(
                _INJECT_ERRNO[fault.kind],
                f"injected {fault.kind} at "
                f"{'writev' if write else 'readv'}(pid={pid})",
            )
        yield Delay(p.alpha_check if scale == 1.0 else p.alpha_check * scale)
        if tracer.enabled:
            tracer.record(caller.name, "check", t1, self.sim.now)

        if remote_total == 0:
            return 0

        # --- 3+4. pin a batch, copy it, pin the next ... ---
        # The real process_vm_rw pins at most PVM_MAX_PP_ARRAY_COUNT pages
        # per get_user_pages call and copies them before pinning the next
        # batch, so the mm lock is released (and re-fought) throughout the
        # transfer.  Copy bytes are apportioned to batches pro rata.
        npages = remote_space.total_pages(remote_iov)
        ncopy = min(local_total, remote_total)
        if fault is not None and fault.kind == "partial":
            npages, ncopy = _truncate_at_page_boundary(
                remote_iov, p.page_size, npages, ncopy, fault.resolved_factor
            )
        beta = self.copy_beta(caller, pid)
        if scale != 1.0:
            beta *= scale
        mm = self.mm_lock(pid)
        done_pages = 0
        done_bytes = 0
        while done_pages < npages:
            b = min(self.params.pin_batch, npages - done_pages)
            yield from mm.lock_and_pin(caller, b)
            done_pages += b
            batch_bytes = ncopy * done_pages // npages - done_bytes
            if batch_bytes > 0:
                t3 = self.sim.now
                yield Delay(batch_bytes * beta)
                if tracer.enabled:
                    tracer.record(
                        caller.name, "copy", t3, self.sim.now, meta=batch_bytes
                    )
                done_bytes += batch_bytes

        if ncopy > 0 and self.verify:
            caller_space = self.manager.get(caller.pid)
            if write:
                copy_iov_bytes(
                    caller_space, local_iov, remote_space, remote_iov, ncopy
                )
            else:
                copy_iov_bytes(
                    remote_space, remote_iov, caller_space, local_iov, ncopy
                )
        if write:
            self.writes += 1
        else:
            self.reads += 1
        return ncopy

    def _process_vm_rw_fast(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int,
        write: bool,
    ) -> Generator:
        """Untraced ``_process_vm_rw``: same simulated timeline, fused events.

        With no trace spans to record there is nothing observable between
        the syscall-entry and access-check delays, or inside a batch's
        delay/release/copy triplet, so those ride fused
        :class:`~repro.sim.engine.DelayChain` /
        :class:`~repro.sim.engine.HoldRelease` records: identical event
        stream (timestamps, FIFO lock-grant order, tie-breaker sequence
        numbers, event counts) with roughly half the generator resumptions.
        One deliberate divergence: ESRCH/EPERM surface after the combined
        entry+check time rather than between the two delays — the *error*
        path costs ``alpha_check`` more simulated time than the traced
        engine charges it.
        """
        p = self.params

        if flags != 0:
            raise CMAError(EINVAL, "flags must be 0")
        if len(local_iov) > IOV_MAX or len(remote_iov) > IOV_MAX:
            raise CMAError(EINVAL, "iovcnt exceeds IOV_MAX")
        local_total = iovec_total(local_iov)
        remote_total = iovec_total(remote_iov)

        # --- fault-injection draw (fs None ⇒ zero-cost, bit-identical) ---
        fault = None
        scale = 1.0
        fs = self.faults
        if fs is not None:
            if remote_iov:
                fault = fs.draw(
                    "writev" if write else "readv",
                    pid,
                    caller.pid,
                    pages=_iov_pages(remote_iov, p.page_size),
                )
            scale = fs.scale(caller.pid)

        # --- 1+2. syscall entry, then permission check if a remote iovec
        # is present (one fused record) ---
        if not remote_iov:
            yield Delay(p.alpha_syscall if scale == 1.0 else p.alpha_syscall * scale)
            return 0
        if scale == 1.0:
            yield DelayChain(p.alpha_syscall, p.alpha_check)
        else:
            yield DelayChain(p.alpha_syscall * scale, p.alpha_check * scale)
        remote_space = self.manager.get(pid)  # raises ESRCH
        if pid in self.denied_pids:
            raise CMAError(EPERM, f"ptrace access to pid {pid} denied")
        if fault is not None and fault.kind in _INJECT_ERRNO:
            # Same position as the natural ESRCH/EPERM above: after the
            # fused entry+check time (the documented fast-path divergence).
            raise CMAError(
                _INJECT_ERRNO[fault.kind],
                f"injected {fault.kind} at "
                f"{'writev' if write else 'readv'}(pid={pid})",
            )

        if remote_total == 0:
            return 0

        # --- 3+4. pin a batch, copy it, pin the next ... ---
        # Same batching as the traced path; the pin hold, the release, and
        # the batch's pro-rata copy share ride one HoldRelease record —
        # or, by default, the whole loop rides one PinConvoy command.
        npages = remote_space.total_pages(remote_iov)
        ncopy = min(local_total, remote_total)
        if fault is not None and fault.kind == "partial":
            npages, ncopy = _truncate_at_page_boundary(
                remote_iov, p.page_size, npages, ncopy, fault.resolved_factor
            )
        beta = self.copy_beta(caller, pid)
        if scale != 1.0:
            beta *= scale
        mm = self._mm_locks[pid]
        pin_batch = p.pin_batch
        if self.sim.use_pin_convoy:
            # Precompute the batch plan: batch sizes and pro-rata copy
            # shares are pure integer arithmetic with no dependence on
            # simulation state, and ``batch_bytes * beta`` is the same
            # single multiplication the unfused loop performs, so the
            # extra_dt floats are bit-identical — only computed up front.
            # hold_time stays inside the engine's grant handler, where
            # the contender set is live.
            batches = []
            done_pages = 0
            done_bytes = 0
            while done_pages < npages:
                b = min(pin_batch, npages - done_pages)
                done_pages += b
                batch_bytes = ncopy * done_pages // npages - done_bytes
                done_bytes += batch_bytes
                batches.append((b, batch_bytes * beta))
            yield PinConvoy(
                mm.mutex, mm.hold_time, batches, mm=mm, npages=npages,
                memo=mm._hold_memo,
            )
        else:
            # Unfused reference path for the convoy differential battery.
            mutex = mm.mutex
            done_pages = 0
            done_bytes = 0
            while done_pages < npages:
                b = min(pin_batch, npages - done_pages)
                yield Acquire(mutex)
                hold = mm.hold_time(b, caller)
                done_pages += b
                batch_bytes = ncopy * done_pages // npages - done_bytes
                done_bytes += batch_bytes
                yield HoldRelease(mutex, hold, batch_bytes * beta)
                mm.pages_pinned += b

        if ncopy > 0 and self.verify:
            caller_space = self.manager.get(caller.pid)
            if write:
                copy_iov_bytes(
                    caller_space, local_iov, remote_space, remote_iov, ncopy
                )
            else:
                copy_iov_bytes(
                    remote_space, remote_iov, caller_space, local_iov, ncopy
                )
        if write:
            self.writes += 1
        else:
            self.reads += 1
        return ncopy

    # -- fused-phase segment builder ------------------------------------------

    def rw_segments(
        self,
        caller: "SimProcess",
        pid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
        write: bool,
    ) -> Optional[list]:
        """Phase segments replaying one ``_process_vm_rw_fast`` transfer.

        Returns the segment list a :class:`~repro.sim.engine.PhaseCommand`
        needs to fast-forward a single untraced single-iovec transfer
        bit-exactly: the fused entry+check chain, then the pin convoy —
        same batch plan, same ``extra_dt`` float products — with the
        verify copy and syscall-counter bump as the completion callback
        (the exact point the unfused generator resumption runs them).

        Returns ``None`` whenever the transfer cannot be mirrored —
        faults armed, pin convoys disabled, unknown or denied pid,
        negative lengths — and the caller must fall back to the unfused
        emitter, which reproduces the failure semantics *and timing*
        (e.g. EPERM surfacing after the fused entry+check delay).
        """
        if (
            self.faults is not None
            or not self.sim.use_pin_convoy
            or pid in self.denied_pids
            or local[1] < 0
            or remote[1] < 0
        ):
            return None
        ckey = (caller.pid, pid, local, remote, write)
        segs = self._seg_cache.get(ckey)
        if segs is not None:
            return segs
        try:
            remote_space = self.manager.get(pid)
        except CMAError:
            return None
        p = self.params
        head = PhaseCommand.chain(p.alpha_syscall, p.alpha_check)
        if remote[1] == 0:
            self._seg_cache[ckey] = segs = [head]
            return segs
        remote_iov = [remote]
        npages = remote_space.total_pages(remote_iov)
        ncopy = min(local[1], remote[1])
        beta = self.copy_beta(caller, pid)
        key = (npages, ncopy, beta)
        cached = self._batch_cache
        if cached is not None and cached[0] == key:
            batches = cached[1]
        else:
            pin_batch = p.pin_batch
            batches = []
            done_pages = 0
            done_bytes = 0
            while done_pages < npages:
                b = min(pin_batch, npages - done_pages)
                done_pages += b
                batch_bytes = ncopy * done_pages // npages - done_bytes
                done_bytes += batch_bytes
                batches.append((b, batch_bytes * beta))
            self._batch_cache = (key, batches)
        if ncopy > 0 and self.verify:
            caller_space = self.manager.get(caller.pid)
            local_iov = [local]
            if write:
                def cb() -> None:
                    copy_iov_bytes(
                        caller_space, local_iov, remote_space, remote_iov, ncopy
                    )
                    self.writes += 1
            else:
                def cb() -> None:
                    copy_iov_bytes(
                        remote_space, remote_iov, caller_space, local_iov, ncopy
                    )
                    self.reads += 1
        else:
            cb = self._bump_writes if write else self._bump_reads
        mm = self._mm_locks[pid]
        self._seg_cache[ckey] = segs = [
            head,
            PhaseCommand.pin(
                mm.mutex,
                mm.hold_time,
                batches,
                mm=mm,
                npages=npages,
                memo=mm._hold_memo,
                cb=cb,
            ),
        ]
        return segs

    # -- convenience ----------------------------------------------------------

    def read_simple(
        self,
        caller: "SimProcess",
        pid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
    ) -> Generator:
        """Single-iovec read: the common case in collectives."""
        return self.process_vm_readv(caller, pid, [local], [remote])

    def write_simple(
        self,
        caller: "SimProcess",
        pid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
    ) -> Generator:
        """Single-iovec write."""
        return self.process_vm_writev(caller, pid, [local], [remote])
