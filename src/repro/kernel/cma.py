"""Cross Memory Attach: ``process_vm_readv`` / ``process_vm_writev``.

The simulated syscalls follow the real kernel's ``process_vm_rw`` path:

1. **syscall entry** — fixed cost, charged always (Table III row 1);
2. **permission / access check** on the remote pid — charged whenever a
   remote iovec is present (Table III row 2);
3. **lock + pin** — per batch of remote pages, via the remote process's
   :class:`~repro.kernel.pagelock.MMLock` (Table III row 3).  This is where
   contention lives;
4. **copy** — bytes actually moved, ``min(local_total, remote_total)``
   (Table III row 4).  Real numpy bytes move unless the kernel was built
   with ``verify=False`` (timing-only mode for big sweeps).

Setting ``liovcnt = 0`` pins the remote pages but copies nothing, and a
zero-length remote iovec skips pinning — exactly the partial-step trigger
trick the paper uses to isolate T1..T4 (Table III); ``step_timings`` in
:mod:`repro.core.fitting` drives it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro.kernel.address_space import AddressSpaceManager, copy_iov_bytes
from repro.kernel.errors import CMAError, EINVAL, EPERM
from repro.kernel.pagelock import MMLock
from repro.sim.engine import Acquire, Delay, DelayChain, HoldRelease, PinConvoy

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.params import ModelParams
    from repro.sim.engine import SimProcess, Simulator
    from repro.sim.trace import Tracer

__all__ = ["CMAKernel", "iovec_total", "IOV_MAX"]

#: Linux UIO_MAXIOV
IOV_MAX = 1024

Iovec = Sequence[tuple[int, int]]


def iovec_total(iov: Iovec) -> int:
    """Sum of iovec lengths (validates non-negative lengths)."""
    total = 0
    for _, ln in iov:
        if ln < 0:
            raise CMAError(EINVAL, f"negative iovec length {ln}")
        total += ln
    return total


class CMAKernel:
    """Node-wide CMA engine: one mm lock per process, shared tracer."""

    def __init__(
        self,
        sim: "Simulator",
        manager: AddressSpaceManager,
        params: "ModelParams",
        tracer: "Tracer",
        verify: bool = True,
    ):
        self.sim = sim
        self.manager = manager
        self.params = params
        self.tracer = tracer
        self.verify = verify
        self._mm_locks: dict[int, MMLock] = {}
        self._sockets: dict[int, int] = {}
        #: pids the permission check rejects (tests ptrace-style denial)
        self.denied_pids: set[int] = set()
        self.reads = 0
        self.writes = 0

    def register(self, pid: int, socket: int = 0) -> None:
        """Create the address space + mm lock for a new process.

        ``socket`` is where the process is pinned: copies that cross
        sockets pay the ``inter_socket_beta`` bandwidth penalty.
        """
        self.manager.create(pid)
        self._mm_locks[pid] = MMLock(self.sim, pid, self.params, self.tracer)
        self._sockets[pid] = socket

    def reset(self) -> None:
        """Reset per-run state while keeping pid registrations.

        A warm node re-registers the same pids in the same order, so the
        address spaces and mm locks survive (their *contents* are reset);
        only counters and the denial set go back to zero.
        """
        self.denied_pids.clear()
        self.reads = 0
        self.writes = 0
        for mm in self._mm_locks.values():
            mm.reset()
        self.manager.reset_spaces()

    def copy_beta(self, caller: "SimProcess", pid: int) -> float:
        """Per-byte copy time between ``caller`` and process ``pid``."""
        beta = self.params.beta
        if self._sockets.get(pid, 0) != caller.socket:
            beta *= self.params.inter_socket_beta
        return beta

    def mm_lock(self, pid: int) -> MMLock:
        self.manager.get(pid)  # ESRCH if unknown
        return self._mm_locks[pid]

    # -- the syscalls ---------------------------------------------------------

    def process_vm_readv(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int = 0,
    ) -> Generator:
        """Read from ``pid``'s memory into the caller's.  Returns bytes copied."""
        rw = self._process_vm_rw if self.tracer.enabled else self._process_vm_rw_fast
        return rw(caller, pid, local_iov, remote_iov, flags, write=False)

    def process_vm_writev(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int = 0,
    ) -> Generator:
        """Write the caller's memory into ``pid``'s.  Returns bytes copied."""
        rw = self._process_vm_rw if self.tracer.enabled else self._process_vm_rw_fast
        return rw(caller, pid, local_iov, remote_iov, flags, write=True)

    def _process_vm_rw(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int,
        write: bool,
    ) -> Generator:
        p = self.params
        tracer = self.tracer

        # --- validation (before any cost, like the real syscall) ---
        if flags != 0:
            raise CMAError(EINVAL, "flags must be 0")
        if len(local_iov) > IOV_MAX or len(remote_iov) > IOV_MAX:
            raise CMAError(EINVAL, "iovcnt exceeds IOV_MAX")
        local_total = iovec_total(local_iov)
        remote_total = iovec_total(remote_iov)

        # --- 1. syscall entry ---
        t0 = self.sim.now
        yield Delay(p.alpha_syscall)
        if tracer.enabled:
            tracer.record(caller.name, "syscall", t0, self.sim.now)

        if not remote_iov:
            return 0

        # --- 2. permission / access check on the remote task ---
        t1 = self.sim.now
        remote_space = self.manager.get(pid)  # raises ESRCH
        if pid in self.denied_pids:
            raise CMAError(EPERM, f"ptrace access to pid {pid} denied")
        yield Delay(p.alpha_check)
        if tracer.enabled:
            tracer.record(caller.name, "check", t1, self.sim.now)

        if remote_total == 0:
            return 0

        # --- 3+4. pin a batch, copy it, pin the next ... ---
        # The real process_vm_rw pins at most PVM_MAX_PP_ARRAY_COUNT pages
        # per get_user_pages call and copies them before pinning the next
        # batch, so the mm lock is released (and re-fought) throughout the
        # transfer.  Copy bytes are apportioned to batches pro rata.
        npages = remote_space.total_pages(remote_iov)
        ncopy = min(local_total, remote_total)
        beta = self.copy_beta(caller, pid)
        mm = self.mm_lock(pid)
        done_pages = 0
        done_bytes = 0
        while done_pages < npages:
            b = min(self.params.pin_batch, npages - done_pages)
            yield from mm.lock_and_pin(caller, b)
            done_pages += b
            batch_bytes = ncopy * done_pages // npages - done_bytes
            if batch_bytes > 0:
                t3 = self.sim.now
                yield Delay(batch_bytes * beta)
                if tracer.enabled:
                    tracer.record(
                        caller.name, "copy", t3, self.sim.now, meta=batch_bytes
                    )
                done_bytes += batch_bytes

        if ncopy > 0 and self.verify:
            caller_space = self.manager.get(caller.pid)
            if write:
                copy_iov_bytes(
                    caller_space, local_iov, remote_space, remote_iov, ncopy
                )
            else:
                copy_iov_bytes(
                    remote_space, remote_iov, caller_space, local_iov, ncopy
                )
        if write:
            self.writes += 1
        else:
            self.reads += 1
        return ncopy

    def _process_vm_rw_fast(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int,
        write: bool,
    ) -> Generator:
        """Untraced ``_process_vm_rw``: same simulated timeline, fused events.

        With no trace spans to record there is nothing observable between
        the syscall-entry and access-check delays, or inside a batch's
        delay/release/copy triplet, so those ride fused
        :class:`~repro.sim.engine.DelayChain` /
        :class:`~repro.sim.engine.HoldRelease` records: identical event
        stream (timestamps, FIFO lock-grant order, tie-breaker sequence
        numbers, event counts) with roughly half the generator resumptions.
        One deliberate divergence: ESRCH/EPERM surface after the combined
        entry+check time rather than between the two delays — the *error*
        path costs ``alpha_check`` more simulated time than the traced
        engine charges it.
        """
        p = self.params

        if flags != 0:
            raise CMAError(EINVAL, "flags must be 0")
        if len(local_iov) > IOV_MAX or len(remote_iov) > IOV_MAX:
            raise CMAError(EINVAL, "iovcnt exceeds IOV_MAX")
        local_total = iovec_total(local_iov)
        remote_total = iovec_total(remote_iov)

        # --- 1+2. syscall entry, then permission check if a remote iovec
        # is present (one fused record) ---
        if not remote_iov:
            yield Delay(p.alpha_syscall)
            return 0
        yield DelayChain(p.alpha_syscall, p.alpha_check)
        remote_space = self.manager.get(pid)  # raises ESRCH
        if pid in self.denied_pids:
            raise CMAError(EPERM, f"ptrace access to pid {pid} denied")

        if remote_total == 0:
            return 0

        # --- 3+4. pin a batch, copy it, pin the next ... ---
        # Same batching as the traced path; the pin hold, the release, and
        # the batch's pro-rata copy share ride one HoldRelease record —
        # or, by default, the whole loop rides one PinConvoy command.
        npages = remote_space.total_pages(remote_iov)
        ncopy = min(local_total, remote_total)
        beta = self.copy_beta(caller, pid)
        mm = self._mm_locks[pid]
        pin_batch = p.pin_batch
        if self.sim.use_pin_convoy:
            # Precompute the batch plan: batch sizes and pro-rata copy
            # shares are pure integer arithmetic with no dependence on
            # simulation state, and ``batch_bytes * beta`` is the same
            # single multiplication the unfused loop performs, so the
            # extra_dt floats are bit-identical — only computed up front.
            # hold_time stays inside the engine's grant handler, where
            # the contender set is live.
            batches = []
            done_pages = 0
            done_bytes = 0
            while done_pages < npages:
                b = min(pin_batch, npages - done_pages)
                done_pages += b
                batch_bytes = ncopy * done_pages // npages - done_bytes
                done_bytes += batch_bytes
                batches.append((b, batch_bytes * beta))
            yield PinConvoy(
                mm.mutex, mm.hold_time, batches, mm=mm, npages=npages,
                memo=mm._hold_memo,
            )
        else:
            # Unfused reference path for the convoy differential battery.
            mutex = mm.mutex
            done_pages = 0
            done_bytes = 0
            while done_pages < npages:
                b = min(pin_batch, npages - done_pages)
                yield Acquire(mutex)
                hold = mm.hold_time(b, caller)
                done_pages += b
                batch_bytes = ncopy * done_pages // npages - done_bytes
                done_bytes += batch_bytes
                yield HoldRelease(mutex, hold, batch_bytes * beta)
                mm.pages_pinned += b

        if ncopy > 0 and self.verify:
            caller_space = self.manager.get(caller.pid)
            if write:
                copy_iov_bytes(
                    caller_space, local_iov, remote_space, remote_iov, ncopy
                )
            else:
                copy_iov_bytes(
                    remote_space, remote_iov, caller_space, local_iov, ncopy
                )
        if write:
            self.writes += 1
        else:
            self.reads += 1
        return ncopy

    # -- convenience ----------------------------------------------------------

    def read_simple(
        self,
        caller: "SimProcess",
        pid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
    ) -> Generator:
        """Single-iovec read: the common case in collectives."""
        return self.process_vm_readv(caller, pid, [local], [remote])

    def write_simple(
        self,
        caller: "SimProcess",
        pid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
    ) -> Generator:
        """Single-iovec write."""
        return self.process_vm_writev(caller, pid, [local], [remote])
