"""Cross Memory Attach: ``process_vm_readv`` / ``process_vm_writev``.

The simulated syscalls follow the real kernel's ``process_vm_rw`` path:

1. **syscall entry** — fixed cost, charged always (Table III row 1);
2. **permission / access check** on the remote pid — charged whenever a
   remote iovec is present (Table III row 2);
3. **lock + pin** — per batch of remote pages, via the remote process's
   :class:`~repro.kernel.pagelock.MMLock` (Table III row 3).  This is where
   contention lives;
4. **copy** — bytes actually moved, ``min(local_total, remote_total)``
   (Table III row 4).  Real numpy bytes move unless the kernel was built
   with ``verify=False`` (timing-only mode for big sweeps).

Setting ``liovcnt = 0`` pins the remote pages but copies nothing, and a
zero-length remote iovec skips pinning — exactly the partial-step trigger
trick the paper uses to isolate T1..T4 (Table III); ``step_timings`` in
:mod:`repro.core.fitting` drives it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro.kernel.address_space import AddressSpaceManager, copy_iov_bytes
from repro.kernel.errors import CMAError, EFAULT, EINTR, EINVAL, EPERM, ESRCH
from repro.kernel.pagelock import MMLock
from repro.sim.engine import Acquire, Delay, DelayChain, HoldRelease, PinConvoy

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultState
    from repro.machine.params import ModelParams
    from repro.sim.engine import SimProcess, Simulator
    from repro.sim.trace import Tracer

__all__ = ["CMAKernel", "iovec_total", "IOV_MAX"]

#: Linux UIO_MAXIOV
IOV_MAX = 1024

Iovec = Sequence[tuple[int, int]]

#: errno raised per injected errno-kind fault (mirrors faults.KIND_ERRNO;
#: kept local so the kernel layer never imports repro.faults, which would
#: be circular through the package __init__).
_INJECT_ERRNO = {"eperm": EPERM, "esrch": ESRCH, "efault": EFAULT, "eintr": EINTR}


def iovec_total(iov: Iovec) -> int:
    """Sum of iovec lengths (validates non-negative lengths)."""
    total = 0
    for _, ln in iov:
        if ln < 0:
            raise CMAError(EINVAL, f"negative iovec length {ln}")
        total += ln
    return total


def _iov_pages(iov: Iovec, page_size: int) -> int:
    """Pages spanned by an iovec (per-entry rounding, like total_pages)."""
    total = 0
    for addr, ln in iov:
        if ln == 0:
            continue
        total += (addr + ln - 1) // page_size - addr // page_size + 1
    return total


def _page_prefix_bytes(iov: Iovec, page_size: int, max_pages: int) -> int:
    """Bytes of ``iov`` covered by its first ``max_pages`` pages."""
    pages = 0
    nbytes = 0
    for addr, ln in iov:
        if ln == 0:
            continue
        first = addr // page_size
        span = (addr + ln - 1) // page_size - first + 1
        if pages + span <= max_pages:
            pages += span
            nbytes += ln
            if pages == max_pages:
                break
            continue
        # the budget runs out inside this entry: cut at the page boundary
        take = max_pages - pages
        nbytes += (first + take) * page_size - addr
        break
    return nbytes


def _truncate_at_page_boundary(
    remote_iov: Iovec, page_size: int, npages: int, ncopy: int, frac: float
) -> tuple[int, int]:
    """Short-transfer point: keep a whole-page prefix of the remote iovec.

    Mirrors the real ``process_vm_rw``: when pinning faults midway, the
    bytes already copied — whole pages at the front of the remote iovec —
    are returned as a short count, never an error.  Returns the truncated
    ``(npages, ncopy)``; a no-op when the local side already bounds the
    copy short of the chosen boundary.
    """
    keep = max(1, min(npages - 1, int(npages * frac)))
    prefix = _page_prefix_bytes(remote_iov, page_size, keep)
    if 0 < prefix < ncopy:
        return keep, prefix
    return npages, ncopy


class CMAKernel:
    """Node-wide CMA engine: one mm lock per process, shared tracer."""

    def __init__(
        self,
        sim: "Simulator",
        manager: AddressSpaceManager,
        params: "ModelParams",
        tracer: "Tracer",
        verify: bool = True,
    ):
        self.sim = sim
        self.manager = manager
        self.params = params
        self.tracer = tracer
        self.verify = verify
        self._mm_locks: dict[int, MMLock] = {}
        self._sockets: dict[int, int] = {}
        #: pids the permission check rejects (tests ptrace-style denial)
        self.denied_pids: set[int] = set()
        #: armed fault-injection state, or None (the default: no faults,
        #: bit-identical to the pre-fault kernel) — see :meth:`set_faults`
        self.faults: Optional["FaultState"] = None
        self.reads = 0
        self.writes = 0

    def register(self, pid: int, socket: int = 0) -> None:
        """Create the address space + mm lock for a new process.

        ``socket`` is where the process is pinned: copies that cross
        sockets pay the ``inter_socket_beta`` bandwidth penalty.
        """
        self.manager.create(pid)
        mm = MMLock(self.sim, pid, self.params, self.tracer)
        if self.faults is not None:
            mm.hold_scale = self.faults.scale(pid)
        self._mm_locks[pid] = mm
        self._sockets[pid] = socket

    def set_faults(self, state: Optional["FaultState"]) -> None:
        """Arm (or disarm) fault injection for this kernel.

        Straggler slowdowns apply to a pid's mm-lock hold time too (its
        page operations are slow from every contender's point of view),
        so the per-lock scale is pushed down here; it stays constant for
        the run, which keeps ``hold_time`` pure in (pages, contention
        profile) and the PinConvoy memo contract intact.
        """
        self.faults = state
        for pid, mm in self._mm_locks.items():
            mm.hold_scale = 1.0 if state is None else state.scale(pid)

    def reset(self) -> None:
        """Reset per-run state while keeping pid registrations.

        A warm node re-registers the same pids in the same order, so the
        address spaces and mm locks survive (their *contents* are reset);
        only counters and the denial set go back to zero.  Fault state is
        disarmed (mm hold scales return to 1.0): a plan is per-run state,
        so the owner must re-arm via :meth:`set_faults` after the reset
        (``Node.reset`` does).
        """
        self.denied_pids.clear()
        self.faults = None
        self.reads = 0
        self.writes = 0
        for mm in self._mm_locks.values():
            mm.reset()
        self.manager.reset_spaces()

    def copy_beta(self, caller: "SimProcess", pid: int) -> float:
        """Per-byte copy time between ``caller`` and process ``pid``."""
        beta = self.params.beta
        if self._sockets.get(pid, 0) != caller.socket:
            beta *= self.params.inter_socket_beta
        return beta

    def mm_lock(self, pid: int) -> MMLock:
        self.manager.get(pid)  # ESRCH if unknown
        return self._mm_locks[pid]

    # -- the syscalls ---------------------------------------------------------

    def process_vm_readv(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int = 0,
    ) -> Generator:
        """Read from ``pid``'s memory into the caller's.  Returns bytes copied."""
        rw = self._process_vm_rw if self.tracer.enabled else self._process_vm_rw_fast
        return rw(caller, pid, local_iov, remote_iov, flags, write=False)

    def process_vm_writev(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int = 0,
    ) -> Generator:
        """Write the caller's memory into ``pid``'s.  Returns bytes copied."""
        rw = self._process_vm_rw if self.tracer.enabled else self._process_vm_rw_fast
        return rw(caller, pid, local_iov, remote_iov, flags, write=True)

    def _process_vm_rw(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int,
        write: bool,
    ) -> Generator:
        p = self.params
        tracer = self.tracer

        # --- validation (before any cost, like the real syscall) ---
        if flags != 0:
            raise CMAError(EINVAL, "flags must be 0")
        if len(local_iov) > IOV_MAX or len(remote_iov) > IOV_MAX:
            raise CMAError(EINVAL, "iovcnt exceeds IOV_MAX")
        local_total = iovec_total(local_iov)
        remote_total = iovec_total(remote_iov)

        # --- fault-injection draw (fs is None on the default path: no
        # draw, scale 1.0, and every guarded branch below compiles away
        # to the exact pre-fault delay expressions) ---
        fault = None
        scale = 1.0
        fs = self.faults
        if fs is not None:
            if remote_iov:
                fault = fs.draw(
                    "writev" if write else "readv",
                    pid,
                    caller.pid,
                    pages=_iov_pages(remote_iov, p.page_size),
                )
            scale = fs.scale(caller.pid)

        # --- 1. syscall entry ---
        t0 = self.sim.now
        yield Delay(p.alpha_syscall if scale == 1.0 else p.alpha_syscall * scale)
        if tracer.enabled:
            tracer.record(caller.name, "syscall", t0, self.sim.now)

        if not remote_iov:
            return 0

        # --- 2. permission / access check on the remote task ---
        t1 = self.sim.now
        remote_space = self.manager.get(pid)  # raises ESRCH
        if pid in self.denied_pids:
            raise CMAError(EPERM, f"ptrace access to pid {pid} denied")
        if fault is not None and fault.kind in _INJECT_ERRNO:
            raise CMAError(
                _INJECT_ERRNO[fault.kind],
                f"injected {fault.kind} at "
                f"{'writev' if write else 'readv'}(pid={pid})",
            )
        yield Delay(p.alpha_check if scale == 1.0 else p.alpha_check * scale)
        if tracer.enabled:
            tracer.record(caller.name, "check", t1, self.sim.now)

        if remote_total == 0:
            return 0

        # --- 3+4. pin a batch, copy it, pin the next ... ---
        # The real process_vm_rw pins at most PVM_MAX_PP_ARRAY_COUNT pages
        # per get_user_pages call and copies them before pinning the next
        # batch, so the mm lock is released (and re-fought) throughout the
        # transfer.  Copy bytes are apportioned to batches pro rata.
        npages = remote_space.total_pages(remote_iov)
        ncopy = min(local_total, remote_total)
        if fault is not None and fault.kind == "partial":
            npages, ncopy = _truncate_at_page_boundary(
                remote_iov, p.page_size, npages, ncopy, fault.resolved_factor
            )
        beta = self.copy_beta(caller, pid)
        if scale != 1.0:
            beta *= scale
        mm = self.mm_lock(pid)
        done_pages = 0
        done_bytes = 0
        while done_pages < npages:
            b = min(self.params.pin_batch, npages - done_pages)
            yield from mm.lock_and_pin(caller, b)
            done_pages += b
            batch_bytes = ncopy * done_pages // npages - done_bytes
            if batch_bytes > 0:
                t3 = self.sim.now
                yield Delay(batch_bytes * beta)
                if tracer.enabled:
                    tracer.record(
                        caller.name, "copy", t3, self.sim.now, meta=batch_bytes
                    )
                done_bytes += batch_bytes

        if ncopy > 0 and self.verify:
            caller_space = self.manager.get(caller.pid)
            if write:
                copy_iov_bytes(
                    caller_space, local_iov, remote_space, remote_iov, ncopy
                )
            else:
                copy_iov_bytes(
                    remote_space, remote_iov, caller_space, local_iov, ncopy
                )
        if write:
            self.writes += 1
        else:
            self.reads += 1
        return ncopy

    def _process_vm_rw_fast(
        self,
        caller: "SimProcess",
        pid: int,
        local_iov: Iovec,
        remote_iov: Iovec,
        flags: int,
        write: bool,
    ) -> Generator:
        """Untraced ``_process_vm_rw``: same simulated timeline, fused events.

        With no trace spans to record there is nothing observable between
        the syscall-entry and access-check delays, or inside a batch's
        delay/release/copy triplet, so those ride fused
        :class:`~repro.sim.engine.DelayChain` /
        :class:`~repro.sim.engine.HoldRelease` records: identical event
        stream (timestamps, FIFO lock-grant order, tie-breaker sequence
        numbers, event counts) with roughly half the generator resumptions.
        One deliberate divergence: ESRCH/EPERM surface after the combined
        entry+check time rather than between the two delays — the *error*
        path costs ``alpha_check`` more simulated time than the traced
        engine charges it.
        """
        p = self.params

        if flags != 0:
            raise CMAError(EINVAL, "flags must be 0")
        if len(local_iov) > IOV_MAX or len(remote_iov) > IOV_MAX:
            raise CMAError(EINVAL, "iovcnt exceeds IOV_MAX")
        local_total = iovec_total(local_iov)
        remote_total = iovec_total(remote_iov)

        # --- fault-injection draw (fs None ⇒ zero-cost, bit-identical) ---
        fault = None
        scale = 1.0
        fs = self.faults
        if fs is not None:
            if remote_iov:
                fault = fs.draw(
                    "writev" if write else "readv",
                    pid,
                    caller.pid,
                    pages=_iov_pages(remote_iov, p.page_size),
                )
            scale = fs.scale(caller.pid)

        # --- 1+2. syscall entry, then permission check if a remote iovec
        # is present (one fused record) ---
        if not remote_iov:
            yield Delay(p.alpha_syscall if scale == 1.0 else p.alpha_syscall * scale)
            return 0
        if scale == 1.0:
            yield DelayChain(p.alpha_syscall, p.alpha_check)
        else:
            yield DelayChain(p.alpha_syscall * scale, p.alpha_check * scale)
        remote_space = self.manager.get(pid)  # raises ESRCH
        if pid in self.denied_pids:
            raise CMAError(EPERM, f"ptrace access to pid {pid} denied")
        if fault is not None and fault.kind in _INJECT_ERRNO:
            # Same position as the natural ESRCH/EPERM above: after the
            # fused entry+check time (the documented fast-path divergence).
            raise CMAError(
                _INJECT_ERRNO[fault.kind],
                f"injected {fault.kind} at "
                f"{'writev' if write else 'readv'}(pid={pid})",
            )

        if remote_total == 0:
            return 0

        # --- 3+4. pin a batch, copy it, pin the next ... ---
        # Same batching as the traced path; the pin hold, the release, and
        # the batch's pro-rata copy share ride one HoldRelease record —
        # or, by default, the whole loop rides one PinConvoy command.
        npages = remote_space.total_pages(remote_iov)
        ncopy = min(local_total, remote_total)
        if fault is not None and fault.kind == "partial":
            npages, ncopy = _truncate_at_page_boundary(
                remote_iov, p.page_size, npages, ncopy, fault.resolved_factor
            )
        beta = self.copy_beta(caller, pid)
        if scale != 1.0:
            beta *= scale
        mm = self._mm_locks[pid]
        pin_batch = p.pin_batch
        if self.sim.use_pin_convoy:
            # Precompute the batch plan: batch sizes and pro-rata copy
            # shares are pure integer arithmetic with no dependence on
            # simulation state, and ``batch_bytes * beta`` is the same
            # single multiplication the unfused loop performs, so the
            # extra_dt floats are bit-identical — only computed up front.
            # hold_time stays inside the engine's grant handler, where
            # the contender set is live.
            batches = []
            done_pages = 0
            done_bytes = 0
            while done_pages < npages:
                b = min(pin_batch, npages - done_pages)
                done_pages += b
                batch_bytes = ncopy * done_pages // npages - done_bytes
                done_bytes += batch_bytes
                batches.append((b, batch_bytes * beta))
            yield PinConvoy(
                mm.mutex, mm.hold_time, batches, mm=mm, npages=npages,
                memo=mm._hold_memo,
            )
        else:
            # Unfused reference path for the convoy differential battery.
            mutex = mm.mutex
            done_pages = 0
            done_bytes = 0
            while done_pages < npages:
                b = min(pin_batch, npages - done_pages)
                yield Acquire(mutex)
                hold = mm.hold_time(b, caller)
                done_pages += b
                batch_bytes = ncopy * done_pages // npages - done_bytes
                done_bytes += batch_bytes
                yield HoldRelease(mutex, hold, batch_bytes * beta)
                mm.pages_pinned += b

        if ncopy > 0 and self.verify:
            caller_space = self.manager.get(caller.pid)
            if write:
                copy_iov_bytes(
                    caller_space, local_iov, remote_space, remote_iov, ncopy
                )
            else:
                copy_iov_bytes(
                    remote_space, remote_iov, caller_space, local_iov, ncopy
                )
        if write:
            self.writes += 1
        else:
            self.reads += 1
        return ncopy

    # -- convenience ----------------------------------------------------------

    def read_simple(
        self,
        caller: "SimProcess",
        pid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
    ) -> Generator:
        """Single-iovec read: the common case in collectives."""
        return self.process_vm_readv(caller, pid, [local], [remote])

    def write_simple(
        self,
        caller: "SimProcess",
        pid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
    ) -> Generator:
        """Single-iovec write."""
        return self.process_vm_writev(caller, pid, [local], [remote])
