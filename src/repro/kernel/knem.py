"""KNEM-style kernel module: cookie-declared regions, same lock bottleneck.

KNEM requires the *owner* of a buffer to declare it first, which creates a
"cookie" the peer then copies from/to.  Relative to CMA this adds a region
declaration cost (and an extra control message to ship the cookie, paid at
the MPI layer), but the data path still pins pages under the owner's mm
lock, so it contends identically — the reason the paper's analysis applies
to all three mechanisms (CMA, KNEM, LiMIC).

The copies delegate to :meth:`CMAKernel.process_vm_readv`/``writev``, so
untraced KNEM transfers ride the same fused
:class:`~repro.sim.engine.PinConvoy` pin loop (and its steady-state epoch
fast-forward) as plain CMA — no KNEM-specific engine path exists.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator

from repro.kernel.errors import CMAError, EINVAL
from repro.sim.engine import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.cma import CMAKernel
    from repro.sim.engine import SimProcess

__all__ = ["KnemRegion", "KnemKernel"]


class KnemRegion:
    """A declared memory region, addressable by cookie."""

    __slots__ = ("cookie", "pid", "addr", "nbytes")

    def __init__(self, cookie: int, pid: int, addr: int, nbytes: int):
        self.cookie = cookie
        self.pid = pid
        self.addr = addr
        self.nbytes = nbytes


class KnemKernel:
    """Cookie-based copy engine layered on the shared CMA machinery."""

    def __init__(self, cma: "CMAKernel"):
        self.cma = cma
        self._cookies = itertools.count(0xC0_0000)
        self._regions: dict[int, KnemRegion] = {}

    def declare_region(
        self, owner: "SimProcess", addr: int, nbytes: int
    ) -> Generator:
        """Owner declares a region; returns the cookie (costs t_cookie)."""
        # validate the region resolves in the owner's space
        self.cma.manager.get(owner.pid).resolve(addr, nbytes)
        fs = self.cma.faults
        if fs is not None:
            # op "declare": ioctl-style setup can fail like the syscalls
            # (the data path inherits the CMA sites via delegation).
            fs.raise_if("declare", owner.pid, owner.pid)
        yield Delay(self.cma.params.t_cookie)
        cookie = next(self._cookies)
        self._regions[cookie] = KnemRegion(cookie, owner.pid, addr, nbytes)
        return cookie

    def inline_copy_from(
        self,
        caller: "SimProcess",
        cookie: int,
        local: tuple[int, int],
        region_offset: int = 0,
    ) -> Generator:
        """Copy from a declared region into the caller (KNEM 'inline copy')."""
        region = self._region(cookie)
        nbytes = local[1]
        if region_offset + nbytes > region.nbytes:
            raise CMAError(EINVAL, "copy exceeds declared region")
        got = yield from self.cma.process_vm_readv(
            caller,
            region.pid,
            [local],
            [(region.addr + region_offset, nbytes)],
        )
        return got

    def inline_copy_to(
        self,
        caller: "SimProcess",
        cookie: int,
        local: tuple[int, int],
        region_offset: int = 0,
    ) -> Generator:
        """Copy from the caller into a declared region."""
        region = self._region(cookie)
        nbytes = local[1]
        if region_offset + nbytes > region.nbytes:
            raise CMAError(EINVAL, "copy exceeds declared region")
        got = yield from self.cma.process_vm_writev(
            caller,
            region.pid,
            [local],
            [(region.addr + region_offset, nbytes)],
        )
        return got

    def destroy_region(self, cookie: int) -> None:
        self._regions.pop(cookie, None)

    def _region(self, cookie: int) -> KnemRegion:
        try:
            return self._regions[cookie]
        except KeyError:
            raise CMAError(EINVAL, f"unknown cookie {cookie:#x}") from None
