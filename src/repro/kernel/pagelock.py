"""The per-process mm lock — the contention bottleneck the paper is about.

``get_user_pages`` takes the *target* process's page-table lock once per
page batch.  Two effects compound under concurrency:

1. **Serialization** — the lock is exclusive, so ``c`` concurrent readers
   queue and each waits ~``c`` hold times per batch (FIFO here).
2. **Cache-line bouncing** — the lock word and the page-table cache lines
   migrate between the contenders' cores.  The migration cost is paid per
   *acquisition* (pulling the bounced lines back), so the hold time for a
   batch of ``b`` pages is::

       b * l_page  +  l_page * (kappa_intra*(c_same-1) + kappa_inter*c_other)

   where ``c_same``/``c_other`` count contenders on the holder's socket and
   the remote socket(s) at grant time.  Charging the bounce per acquisition
   (not per page) is what makes the kernel's internal page batching matter:
   pinning one page at a time pays the full storm for every page (the
   ``ablation_batch`` bench quantifies this).

Queueing x inflation yields an *emergent* contention factor
``gamma(c) ~ c * (1 + kappa*c/batch)`` — super-linear, exactly the family
the paper fits with NLLS in Fig. 5.  Nothing in this file hard-codes gamma.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.sim.engine import Acquire, Delay, HoldRelease, PinConvoy, Release
from repro.sim.resources import Mutex

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.params import ModelParams
    from repro.sim.engine import SimProcess, Simulator
    from repro.sim.trace import Tracer

__all__ = ["MMLock"]


class MMLock:
    """mm (page-table) lock of one simulated process."""

    __slots__ = ("sim", "pid", "params", "mutex", "tracer", "pages_pinned",
                 "hold_scale", "_hold_memo")

    def __init__(
        self,
        sim: "Simulator",
        pid: int,
        params: "ModelParams",
        tracer: "Tracer",
    ):
        self.sim = sim
        self.pid = pid
        self.params = params
        self.mutex = Mutex(sim, name=f"mm[{pid}]")
        self.tracer = tracer
        self.pages_pinned = 0
        #: straggler slowdown of this mm's owner (fault injection): page
        #: operations on a slow core take longer for *every* contender.
        #: Constant for a whole run (set when a FaultPlan is armed, reset
        #: to 1.0 by :meth:`reset`), so :meth:`hold_time` stays pure in
        #: (batch_pages, contention profile) and the memo contract holds.
        self.hold_scale = 1.0
        #: engine-side hold-time memo, keyed (batch_pages, c_same, c_other).
        #: Valid because :meth:`hold_time` is a pure function of exactly
        #: that triple (``params`` are fixed at construction and
        #: ``hold_scale`` per run); passed to
        #: :class:`~repro.sim.engine.PinConvoy` so steady convoys replace
        #: the Python call with a dict hit returning the identical float.
        self._hold_memo: dict = {}

    def reset(self) -> None:
        """Fresh-construction state: unheld mutex, zero pin counter."""
        self.mutex.reset()
        self.pages_pinned = 0
        self.hold_scale = 1.0
        self._hold_memo.clear()

    def hold_time(self, batch_pages: int, caller: "SimProcess") -> float:
        """Critical-section duration for pinning one batch, right now.

        Pure in ``(batch_pages, mutex.contention_profile(caller.socket))``
        — the contract ``_hold_memo`` asserts to the engine.
        """
        p = self.params
        c_same, c_other = self.mutex.contention_profile(caller.socket)
        # the caller itself is a contender (it holds the lock); exclude it
        c_same = max(c_same - 1, 0)
        bounce = p.kappa_intra * c_same + p.kappa_inter * c_other
        hold = (batch_pages + bounce) * p.l_page
        if self.hold_scale != 1.0:  # straggler-owner fault injection
            hold *= self.hold_scale
        return hold

    def lock_and_pin(
        self, caller: "SimProcess", npages: int
    ) -> Generator:
        """Pin ``npages`` pages of this mm, batch by batch.

        Records 'lock' (queueing) and 'pin' (critical section) trace spans,
        mirroring the paper's ftrace breakdown (Fig. 4).
        """
        if npages <= 0:
            return 0
        batch = self.params.pin_batch
        remaining = npages
        tracer = self.tracer
        if not tracer.enabled:
            if self.sim.use_pin_convoy:
                # Fast path: the whole pin loop rides one fused PinConvoy
                # command — the engine replays the same per-batch
                # grant/release/chain/rejoin records (same timestamps,
                # FIFO grant order, sequence numbers and event counts;
                # hold_time is still evaluated at grant time against live
                # contender state) with no generator resumption per batch,
                # and fast-forwards whole contended epochs while this
                # lock's contenders are all convoy members.
                batches = []
                while remaining > 0:
                    b = min(batch, remaining)
                    batches.append((b, 0.0))
                    remaining -= b
                return (
                    yield PinConvoy(
                        self.mutex, self.hold_time, batches,
                        mm=self, npages=npages, memo=self._hold_memo,
                    )
                )
            # Unfused untraced path (Simulator(use_pin_convoy=False)):
            # kept as the differential reference the convoy battery
            # compares against.
            mutex = self.mutex
            while remaining > 0:
                b = min(batch, remaining)
                yield Acquire(mutex)
                yield HoldRelease(mutex, self.hold_time(b, caller))
                self.pages_pinned += b
                remaining -= b
            return npages
        # Traced path: stays unfused — the 'lock'/'pin' spans need the
        # per-batch wakeup timestamps (t_req/t_got) that fusing folds away,
        # so tracing disables both HoldRelease fusion and PinConvoy.
        while remaining > 0:
            b = min(batch, remaining)
            t_req = self.sim.now
            yield Acquire(self.mutex)
            t_got = self.sim.now
            hold = self.hold_time(b, caller)
            yield Delay(hold)
            yield Release(self.mutex)
            tracer.record(caller.name, "lock", t_req, t_got, meta=self.pid)
            tracer.record(caller.name, "pin", t_got, t_got + hold, meta=b)
            self.pages_pinned += b
            remaining -= b
        return npages
