"""Per-process paged address spaces backed by numpy arrays.

Each simulated process owns an :class:`AddressSpace`.  Buffers are allocated
page-aligned at unique virtual addresses; the bytes are real (``np.uint8``),
so a CMA transfer physically moves data and every collective's result can be
checked against MPI semantics after a timed run.

Address resolution is intentionally strict: an iovec that touches memory
outside any allocated buffer faults with ``EFAULT``, exactly the behaviour
tests rely on to catch mis-computed offsets in collective algorithms.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional

import numpy as np

from repro.kernel.errors import CMAError, EFAULT, ESRCH

__all__ = ["Buffer", "AddressSpace", "AddressSpaceManager", "copy_iov_bytes"]

#: virtual address spacing between processes, keeps addr ranges disjoint
_VA_BASE = 0x7F00_0000_0000
_VA_STRIDE = 0x0000_1000_0000


class Buffer:
    """A page-aligned allocation in one process's address space."""

    __slots__ = ("space", "addr", "nbytes", "data", "name")

    def __init__(
        self,
        space: "AddressSpace",
        addr: int,
        nbytes: int,
        name: str,
        data: Optional[np.ndarray] = None,
    ):
        self.space = space
        self.addr = addr
        self.nbytes = nbytes
        # ``data`` lets the arena hand back a recycled (already re-zeroed)
        # array; a fresh allocation and a recycled one are indistinguishable
        # to callers.
        self.data = np.zeros(nbytes, dtype=np.uint8) if data is None else data
        self.name = name

    @property
    def end(self) -> int:
        return self.addr + self.nbytes

    def fill(self, values: np.ndarray | int) -> None:
        self.data[:] = values

    def view(self, offset: int = 0, nbytes: Optional[int] = None) -> np.ndarray:
        """A numpy view (no copy) of a byte range of this buffer."""
        if nbytes is None:
            nbytes = self.nbytes - offset
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise CMAError(EFAULT, f"view [{offset}, {offset + nbytes}) outside {self}")
        return self.data[offset : offset + nbytes]

    def iov(self, offset: int = 0, nbytes: Optional[int] = None) -> tuple[int, int]:
        """(address, length) pair for an iovec entry covering a range."""
        if nbytes is None:
            nbytes = self.nbytes - offset
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise CMAError(EFAULT, f"iov [{offset}, {offset + nbytes}) outside {self}")
        return (self.addr + offset, nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Buffer {self.name} @0x{self.addr:x} {self.nbytes}B>"


class AddressSpace:
    """One process's memory map: sorted, non-overlapping buffers."""

    def __init__(self, pid: int, page_size: int, va_base: int):
        self.pid = pid
        self.page_size = page_size
        self.va_base = va_base
        self._next_addr = va_base
        self._starts: list[int] = []  # sorted buffer base addresses
        self._buffers: list[Buffer] = []  # parallel to _starts
        # Recycled backing arrays from the last reset, keyed by exact size.
        self._arena: dict[int, list[np.ndarray]] = {}

    def allocate(self, nbytes: int, name: str = "buf") -> Buffer:
        """Allocate ``nbytes`` page-aligned bytes; returns the new buffer.

        After a :meth:`reset`, an exact-size request is served from the
        arena: the recycled array is re-zeroed (a stale correct answer from
        the previous run must not be able to satisfy verification) and the
        buffer gets a fresh address/name, so callers cannot tell it from a
        new ``np.zeros`` allocation.
        """
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        addr = self._next_addr
        data = None
        free = self._arena.get(nbytes)
        if free:
            data = free.pop()
            data[:] = 0
        buf = Buffer(self, addr, nbytes, name, data=data)
        pages = -(-nbytes // self.page_size)
        # leave one guard page between allocations so off-by-one iovecs fault
        self._next_addr += (pages + 1) * self.page_size
        idx = bisect.bisect_left(self._starts, addr)
        self._starts.insert(idx, addr)
        self._buffers.insert(idx, buf)
        return buf

    def reset(self) -> None:
        """Unmap everything; recycle the backing arrays for reuse.

        ``_next_addr`` returns to ``va_base`` so the next run hands out the
        *same* address sequence a fresh space would — addresses flow into
        iovecs, so this is part of the bit-exactness contract.  The arena is
        *replaced* (not extended) with the just-unmapped arrays: consecutive
        same-shape sweep points reuse everything, while a sweep that changes
        eta cannot accumulate unboundedly many stale sizes.
        """
        arena: dict[int, list[np.ndarray]] = {}
        for buf in self._buffers:
            arena.setdefault(buf.nbytes, []).append(buf.data)
        self._arena = arena
        self._starts.clear()
        self._buffers.clear()
        self._next_addr = self.va_base

    def resolve(self, addr: int, nbytes: int) -> tuple[Buffer, int]:
        """Map (addr, len) to (buffer, offset); EFAULT if out of bounds."""
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx >= 0:
            buf = self._buffers[idx]
            if addr + nbytes <= buf.end and addr >= buf.addr:
                return buf, addr - buf.addr
        raise CMAError(
            EFAULT,
            f"pid {self.pid}: [{addr:#x}, {addr + nbytes:#x}) not mapped",
        )

    def gather_bytes(self, iov: Iterable[tuple[int, int]]) -> np.ndarray:
        """Concatenate the bytes named by an iovec list (for reads)."""
        parts = []
        for addr, ln in iov:
            if ln == 0:
                continue
            buf, off = self.resolve(addr, ln)
            parts.append(buf.view(off, ln))
        if not parts:
            return np.zeros(0, dtype=np.uint8)
        if len(parts) == 1:
            # Single-range gather (the common case in collectives): a plain
            # copy of the view — np.concatenate would copy too, with setup
            # overhead on top.  Copied, not aliased: callers may scatter the
            # result back into this same space.
            return parts[0].copy()
        return np.concatenate(parts)

    def scatter_bytes(self, iov: Iterable[tuple[int, int]], data: np.ndarray) -> int:
        """Write ``data`` across the ranges of an iovec list (for writes).

        Stops when data runs out (partial fills are allowed, mirroring the
        syscall's byte-count return).  Returns bytes written.
        """
        pos = 0
        total = len(data)
        for addr, ln in iov:
            if pos >= total:
                break
            take = min(ln, total - pos)
            if take == 0:
                continue
            buf, off = self.resolve(addr, take)
            buf.view(off, take)[:] = data[pos : pos + take]
            pos += take
        return pos

    def total_pages(self, iov: Iterable[tuple[int, int]]) -> int:
        """Pages spanned by an iovec list (each entry rounded up separately,
        matching per-iovec pinning in ``process_vm_rw``)."""
        ps = self.page_size
        total = 0
        for addr, ln in iov:
            if ln == 0:
                continue
            first = addr // ps
            last = (addr + ln - 1) // ps
            total += last - first + 1
        return total


def copy_iov_bytes(
    src_space: AddressSpace,
    src_iov: Iterable[tuple[int, int]],
    dst_space: AddressSpace,
    dst_iov: Iterable[tuple[int, int]],
    nbytes: int,
) -> int:
    """Copy up to ``nbytes`` bytes from ``src_iov`` ranges to ``dst_iov``.

    Equivalent (including fault semantics — every source range resolves in
    full, destination ranges only as far as the data reaches) to::

        dst_space.scatter_bytes(dst_iov, src_space.gather_bytes(src_iov)[:nbytes])

    but the single-source-range common case copies straight from the source
    view instead of materialising a concatenated intermediate array.
    Returns bytes written.
    """
    entries = [(a, ln) for a, ln in src_iov if ln != 0]
    if len(entries) != 1:
        data = src_space.gather_bytes(src_iov)
        return dst_space.scatter_bytes(dst_iov, data[:nbytes])
    addr, ln = entries[0]
    sbuf, soff = src_space.resolve(addr, ln)
    data = sbuf.data[soff : soff + min(ln, nbytes)]
    pos = 0
    total = len(data)
    for daddr, dln in dst_iov:
        if pos >= total:
            break
        take = min(dln, total - pos)
        if take == 0:
            continue
        dbuf, doff = dst_space.resolve(daddr, take)
        chunk = data[pos : pos + take]
        if dbuf is sbuf:
            # Source and destination alias the same backing buffer (a
            # process copying within its own allocation): gather_bytes
            # would have detached the data; match that by copying first.
            chunk = chunk.copy()
        dbuf.data[doff : doff + take] = chunk
        pos += take
    return pos


class AddressSpaceManager:
    """The 'kernel view' of all processes on a node: pid -> address space."""

    def __init__(self, page_size: int):
        self.page_size = page_size
        self._spaces: dict[int, AddressSpace] = {}
        self._n = 0

    def create(self, pid: int) -> AddressSpace:
        if pid in self._spaces:
            raise ValueError(f"pid {pid} already has an address space")
        space = AddressSpace(
            pid, self.page_size, _VA_BASE + self._n * _VA_STRIDE
        )
        self._n += 1
        self._spaces[pid] = space
        return space

    def reset_spaces(self) -> None:
        """Reset every registered space (keeps pid registrations — a warm
        node re-registers the same pid set in the same order)."""
        for space in self._spaces.values():
            space.reset()

    def get(self, pid: int) -> AddressSpace:
        try:
            return self._spaces[pid]
        except KeyError:
            raise CMAError(ESRCH, f"no such pid {pid}") from None

    def __contains__(self, pid: int) -> bool:
        return pid in self._spaces
