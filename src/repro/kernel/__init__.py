"""Simulated kernel: paged address spaces and kernel-assisted copy engines.

This package stands in for the Linux pieces the paper exercises:

* :mod:`repro.kernel.address_space` — per-process paged memory backed by
  numpy arrays, so transfers move real bytes and collectives are verifiable.
* :mod:`repro.kernel.pagelock` — the per-process mm (page-table) lock that
  ``get_user_pages`` takes once per page batch.  Its hold time inflates with
  contention (cache-line bouncing), and FIFO queueing on it is what makes
  One-to-all patterns degrade — the paper's central observation.
* :mod:`repro.kernel.cma` — ``process_vm_readv``/``writev`` semantics
  (iovec handling, permission check, partial-step triggering per Table III).
* :mod:`repro.kernel.knem` / :mod:`repro.kernel.limic` — cookie-based
  kernel-module variants, for the related-work comparison: same lock
  bottleneck, different setup overheads.
* :mod:`repro.kernel.xpmem` — mapped windows: one-time attach cost,
  per-page first-touch fault-in under the owner's mm lock, then pin-free
  steady-state copies that never contend.
"""

from repro.kernel.errors import (
    KernelError, CMAError, EFAULT, EINVAL, ENOENT, EPERM, ESRCH,
)
from repro.kernel.address_space import AddressSpace, AddressSpaceManager, Buffer
from repro.kernel.pagelock import MMLock
from repro.kernel.cma import CMAKernel, iovec_total
from repro.kernel.xpmem import XpmemKernel, XpmemSegment

__all__ = [
    "KernelError",
    "CMAError",
    "EFAULT",
    "EINVAL",
    "ENOENT",
    "EPERM",
    "ESRCH",
    "AddressSpace",
    "AddressSpaceManager",
    "Buffer",
    "MMLock",
    "CMAKernel",
    "iovec_total",
    "XpmemKernel",
    "XpmemSegment",
]
