"""CLI: compile, inspect, and benchmark serve-layer decision tables.

Usage::

    python -m repro.serve compile --arch knl --cache
    python -m repro.serve compile --arch knl --procs 16,32,64 --json table.json
    python -m repro.serve query --arch knl --collective bcast --eta 65536
    python -m repro.serve bench --smoke

``compile`` prints the per-row breakpoint counts plus the sweep/cache
summary line (with the per-kind run/hit breakdown, so compile-row cache
misses are visible next to any other sweep traffic).  With a cache
enabled the finished table is also stored as a content-addressed
artifact; a later ``compile`` of the same spec loads it back without
recompiling a single row.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.report import Table, format_bytes, sweep_summary
from repro.exec.context import ExecContext, use_context
from repro.machine import ARCH_NAMES, get_arch
from repro.serve.compiler import DEFAULT_COLLECTIVES, CompileStats, compile_table
from repro.serve.query import QueryEngine
from repro.serve.tables import TableSpec, load_table, store_table


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--arch",
        default="knl",
        choices=sorted(ARCH_NAMES),
        help="architecture preset (default: knl)",
    )
    parser.add_argument(
        "--procs",
        default=None,
        help="comma-separated process counts (default: the preset's)",
    )
    parser.add_argument(
        "--collectives",
        default=None,
        help=f"comma-separated subset of {','.join(DEFAULT_COLLECTIVES)}",
    )
    parser.add_argument(
        "--eta-max",
        type=int,
        default=None,
        help="largest compiled message size (default: the preset's max)",
    )
    parser.add_argument(
        "--verify-probes",
        type=int,
        default=3,
        help="random verification probes per compiled segment (default: 3)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="row compiles in N processes (default: REPRO_EXEC_WORKERS or serial)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse/store row compiles and the finished table in the "
             "on-disk cache (REPRO_CACHE_DIR or ~/.cache/repro-exec)",
    )
    parser.add_argument(
        "--cache-dir", default=None, help="cache directory (implies --cache)"
    )


def _spec_from_args(args) -> TableSpec:
    arch = get_arch(args.arch)
    return TableSpec(
        arch=arch,
        collectives=(
            tuple(args.collectives.split(","))
            if args.collectives
            else DEFAULT_COLLECTIVES
        ),
        procs=(
            tuple(int(p) for p in args.procs.split(","))
            if args.procs
            else (arch.default_procs,)
        ),
        eta_max=args.eta_max if args.eta_max else arch.max_msg,
        verify_probes=args.verify_probes,
    )


def _compile_under_context(args, spec: TableSpec):
    """Compile (or load) the table for ``spec``; returns (table, stats)."""
    cache = args.cache_dir if args.cache_dir else (True if args.cache else None)
    ctx = ExecContext(workers=args.workers, cache=cache)
    stats = CompileStats()
    with use_context(ctx):
        table = None
        if ctx.cache is not None:
            table = load_table(spec, ctx.cache)
        if table is None:
            table = compile_table(
                spec.arch,
                collectives=spec.collectives,
                procs=spec.procs,
                eta_max=spec.eta_max,
                verify_probes=spec.verify_probes,
                stats=stats,
            )
            if ctx.cache is not None:
                store_table(table, ctx.cache)
        ctx.stats.wall_s = stats.wall_s
    return table, stats, ctx


def _cmd_compile(args) -> int:
    spec = _spec_from_args(args)
    t0 = time.perf_counter()
    table, stats, ctx = _compile_under_context(args, spec)
    wall = time.perf_counter() - t0
    out = Table(
        f"Compiled decision table: {table.arch_name} "
        f"(key {table.key[:12]}…)",
        ["collective", "p", "breakpoints", "first regimes"],
    )
    for (coll, p) in sorted(table.rows):
        row = table.rows[(coll, p)]
        regimes = " | ".join(
            f"≥{format_bytes(b)} {table.decisions[d].describe()}"
            for b, d in list(zip(row.breaks, row.dec_ids))[:3]
        )
        more = "" if len(row.breaks) <= 3 else f" … +{len(row.breaks) - 3}"
        out.add(coll, p, len(row.breaks), regimes + more)
    print(out.render())
    print(
        f"\n[{len(table.rows)} rows, {table.breakpoints_total} breakpoints, "
        f"{len(table.decisions)} distinct decisions, {wall:.2f}s]"
    )
    if stats.rows:
        print(f"[compile: {stats.describe()}]")
    else:
        print("[table served from the artifact cache — no rows compiled]")
    print(sweep_summary(ctx.stats))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(table.to_json(), f, indent=2, sort_keys=True)
        print(f"[table written to {args.json}]")
    return 0


def _cmd_query(args) -> int:
    spec = _spec_from_args(args)
    table, _stats, _ctx = _compile_under_context(args, spec)
    engine = QueryEngine(table)
    p = args.p if args.p else spec.procs[0]
    decision = engine.lookup(args.collective, args.eta, p)
    print(
        f"{table.arch_name} {args.collective} eta={format_bytes(args.eta)} "
        f"p={p}: {decision.describe()}"
    )
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.perfsuite import _run_serve_bench, _summary_lines

    section = _run_serve_bench(smoke=args.smoke, repeats=args.repeats)
    c = section["compile"]
    print(
        f"compile: {c['rows']} rows, {c['breakpoints']} breakpoints, "
        f"{c['wall_s']*1e3:.1f} ms"
    )
    for key in ("scalar", "batch"):
        r = section[key]
        print(
            f"{key}: {r['queries']} queries in {r['wall_s']*1e3:.1f} ms "
            f"= {r['queries_per_sec']:,.0f} queries/s"
        )
    for line in _summary_lines({"serve": section}, {"serve": []}):
        print(line)
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Compile and serve tuner decision tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile a decision table and print its rows"
    )
    _add_common(p_compile)
    p_compile.add_argument(
        "--json", default=None, help="also write the table as JSON to this path"
    )
    p_compile.set_defaults(fn=_cmd_compile)

    p_query = sub.add_parser("query", help="compile (cached) and answer one lookup")
    _add_common(p_query)
    p_query.add_argument("--collective", required=True)
    p_query.add_argument("--eta", type=int, required=True, help="message size in bytes")
    p_query.add_argument(
        "-p", type=int, default=None, help="process count (default: the table's first)"
    )
    p_query.set_defaults(fn=_cmd_query)

    p_bench = sub.add_parser(
        "bench", help="run the serve perf section (compile + queries/s)"
    )
    p_bench.add_argument("--smoke", action="store_true", help="tiny axes")
    p_bench.add_argument("--repeats", type=int, default=1)
    p_bench.set_defaults(fn=_cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
