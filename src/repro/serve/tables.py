"""Compiled decision tables: the tuner's choose() surface as flat data.

The paper's end product is a *decision*: which algorithm/mechanism runs a
given (architecture, collective, message size, process count)?  The live
:class:`~repro.core.tuning.Tuner` answers by pricing every candidate per
query; this module is the compiled form of the same function — per
(collective, p) row, a sorted tuple of message-size breakpoints and the
winning decision for each inter-breakpoint segment.  The hybrid MPI+MPI
and PiP/XPMEM lines both observe that mechanism selection is breakpoint-
shaped along the size axis, which is exactly what makes this compilation
lossless: within a segment the winner is constant, so a query is one
bisect, not a candidate enumeration.

Tables are immutable value objects.  The serve query engine binds to a
table and answers lookups from it; the refit path builds a *new* table
and swaps it in whole, so a reader can never observe a torn row.

Artifacts are content-addressed exactly like the exec cache: the key is
the SHA-256 fingerprint of the full :class:`TableSpec` (architecture
parameters included) under the exec-cache code-version salt, and
:func:`store_table` / :func:`load_table` read and write entries through a
:class:`~repro.exec.cache.ResultCache` — same envelope, same CRC check,
same quarantine behaviour.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.exec.cache import ResultCache
from repro.machine.arch import Architecture

__all__ = [
    "TABLE_VERSION",
    "Decision",
    "Row",
    "TableSpec",
    "DecisionTable",
    "table_key",
    "store_table",
    "load_table",
]

#: Serve-layer format salt, folded into every table key next to the exec
#: cache's :data:`~repro.exec.cache.CACHE_VERSION`.  Bump when the table
#: layout or the compiler's equality contract changes.
TABLE_VERSION = "serve-table-v1"


@dataclass(frozen=True)
class Decision:
    """One compiled pick: algorithm plus its tuning parameters.

    Unlike :class:`~repro.core.tuning.Choice` this carries no predicted
    latency — a segment spans many message sizes, so the prediction is a
    function of the query, not of the segment.  Choice-identity between
    the compiled table and the live tuner means (algorithm, params)
    equality.
    """

    algorithm: str
    params: Tuple[Tuple[str, Any], ...]  # sorted (key, value) pairs

    @property
    def params_dict(self) -> dict:
        return dict(self.params)

    def describe(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.algorithm}({extra})" if extra else self.algorithm


@dataclass(frozen=True)
class Row:
    """The compiled decision function of one (collective, p) pair.

    ``breaks`` is ascending with ``breaks[0] == 1``; segment ``i`` rules
    every eta in ``[breaks[i], breaks[i+1] - 1]`` (the last segment runs
    to ``eta_max``), and ``dec_ids[i]`` indexes the owning table's
    decision pool.  A lookup is ``bisect_right(breaks, eta) - 1``:
    O(log breakpoints), no model evaluation.
    """

    collective: str
    p: int
    eta_max: int
    breaks: Tuple[int, ...]
    dec_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.breaks or self.breaks[0] != 1:
            raise ValueError("row breakpoints must start at eta=1")
        if len(self.breaks) != len(self.dec_ids):
            raise ValueError("one decision per segment")
        if any(b >= c for b, c in zip(self.breaks, self.breaks[1:])):
            raise ValueError("breakpoints must be strictly ascending")
        if self.breaks[-1] > self.eta_max:
            raise ValueError("breakpoint beyond the compiled domain")

    def segment_of(self, eta: int) -> int:
        if not 1 <= eta <= self.eta_max:
            raise ValueError(
                f"eta={eta} outside the compiled domain [1, {self.eta_max}] "
                f"for {self.collective} p={self.p}"
            )
        return bisect_right(self.breaks, eta) - 1


@dataclass(frozen=True)
class TableSpec:
    """Everything that determines a compiled table's content.

    The architecture travels whole (params and topology included), so a
    gamma refit — which perturbs ``arch.params`` — changes the
    fingerprint and can never collide with tables compiled from the old
    fit.  ``verify_probes`` is part of the key because it changes how
    hard the compiler audits its own breakpoints.
    """

    arch: Architecture
    collectives: Tuple[str, ...]
    procs: Tuple[int, ...]
    eta_max: int
    verify_probes: int = 3
    version: str = TABLE_VERSION


@dataclass(frozen=True)
class DecisionTable:
    """A full compiled decision surface for one architecture.

    ``collectives`` fixes the collective-id numbering the batch query API
    uses; ``decisions`` is the interned decision pool shared by all rows.
    """

    arch_name: str
    key: str
    collectives: Tuple[str, ...]
    decisions: Tuple[Decision, ...]
    rows: dict = field(default_factory=dict)  # (collective, p) -> Row

    def row(self, collective: str, p: int) -> Row:
        try:
            return self.rows[(collective, p)]
        except KeyError:
            raise KeyError(
                f"no compiled row for ({collective!r}, p={p}); "
                f"compiled rows: {sorted(self.rows)}"
            ) from None

    def lookup(self, collective: str, eta: int, p: int) -> Decision:
        """Reference scalar lookup (the query engine adds the LRU front)."""
        row = self.row(collective, p)
        return self.decisions[row.dec_ids[row.segment_of(eta)]]

    def collective_id(self, collective: str) -> int:
        try:
            return self.collectives.index(collective)
        except ValueError:
            raise KeyError(f"collective {collective!r} not in table") from None

    @property
    def breakpoints_total(self) -> int:
        return sum(len(r.breaks) for r in self.rows.values())

    def to_json(self) -> dict:
        """Compact JSON rendering (CLI export / quickstart inspection)."""
        return {
            "schema": TABLE_VERSION,
            "arch": self.arch_name,
            "key": self.key,
            "collectives": list(self.collectives),
            "decisions": [
                {"algorithm": d.algorithm, "params": [list(kv) for kv in d.params]}
                for d in self.decisions
            ],
            "rows": [
                {
                    "collective": r.collective,
                    "p": r.p,
                    "eta_max": r.eta_max,
                    "breaks": list(r.breaks),
                    "dec_ids": list(r.dec_ids),
                }
                for r in sorted(self.rows.values(), key=lambda r: (r.collective, r.p))
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "DecisionTable":
        if payload.get("schema") != TABLE_VERSION:
            raise ValueError(
                f"table schema {payload.get('schema')!r} != {TABLE_VERSION!r}"
            )
        decisions = tuple(
            Decision(d["algorithm"], tuple((k, v) for k, v in d["params"]))
            for d in payload["decisions"]
        )
        rows = {}
        for r in payload["rows"]:
            row = Row(
                collective=r["collective"],
                p=int(r["p"]),
                eta_max=int(r["eta_max"]),
                breaks=tuple(int(b) for b in r["breaks"]),
                dec_ids=tuple(int(i) for i in r["dec_ids"]),
            )
            rows[(row.collective, row.p)] = row
        return cls(
            arch_name=payload["arch"],
            key=payload["key"],
            collectives=tuple(payload["collectives"]),
            decisions=decisions,
            rows=rows,
        )


def table_key(spec: TableSpec, cache: Optional[ResultCache] = None) -> str:
    """Content-addressed key of a compiled table, exec-cache style."""
    cache = cache if cache is not None else ResultCache()
    return cache.key_for("serve.table", spec)


def store_table(table: DecisionTable, cache: ResultCache) -> str:
    """Persist the table as one exec-cache entry; returns its key.

    Publication is the cache's crash-safe swap (same-shard temp file,
    fsync, ``os.replace``), and is *audited*: the entry is read back
    through the CRC envelope before this returns, so a torn or damaged
    swap (power loss mid-publication, a chaos-plan ``tear``/``corrupt``
    attack) is caught here — retried once, then surfaced as an error —
    rather than by some later query engine binding to a missing table.
    """
    for _attempt in range(2):
        cache.put(table.key, table)
        hit, _ = cache.get(table.key)
        if hit:
            return table.key
    raise OSError(
        f"serve table {table.key} failed its publication read-back audit "
        f"(cache dir {cache.root} unwritable or corrupting writes)"
    )


def load_table(spec: TableSpec, cache: ResultCache) -> Optional[DecisionTable]:
    """The previously stored table for ``spec``, or ``None`` on a miss
    (including stale-salt or corrupt entries — the cache quarantines those
    exactly as it does sweep points)."""
    hit, value = cache.get(table_key(spec, cache))
    return value if hit else None
