"""``repro.serve`` — the tuner compiled into a queryable decision surface.

The live :class:`~repro.core.tuning.Tuner` prices every candidate
algorithm per query; production selection can't afford that on the
critical path.  This package compiles the tuner's entire choose()
surface per architecture — exact size breakpoints found by sweep +
bisection, verified against the live tuner — into an immutable
:class:`~repro.serve.tables.DecisionTable`, serves it through a
:class:`~repro.serve.query.QueryEngine` (LRU-fronted scalar bisect,
numpy-vectorised batch lookups), and keeps it fresh with a streaming
γ(c) :class:`~repro.serve.refit.GammaRefitter` that recompiles only the
rows a refit actually perturbs and swaps tables atomically.

Quickstart::

    from repro.machine import get_arch
    from repro.serve import compile_table, QueryEngine

    arch = get_arch("knl")
    engine = QueryEngine(compile_table(arch))
    engine.lookup("bcast", 65536, arch.default_procs).describe()

CLI: ``python -m repro.serve compile --arch knl`` (and ``query``,
``bench``).
"""

from repro.serve.tables import (
    TABLE_VERSION,
    Decision,
    DecisionTable,
    Row,
    TableSpec,
    load_table,
    store_table,
    table_key,
)
from repro.serve.compiler import (
    DEFAULT_COLLECTIVES,
    CompileStats,
    RowChoices,
    assemble_table,
    compile_row,
    compile_rows,
    compile_table,
)
from repro.serve.query import DEFAULT_FRONT_SIZE, HAVE_NUMPY, QueryEngine
from repro.serve.refit import GammaRefitter, RefitReport

__all__ = [
    "TABLE_VERSION",
    "Decision",
    "DecisionTable",
    "Row",
    "TableSpec",
    "load_table",
    "store_table",
    "table_key",
    "DEFAULT_COLLECTIVES",
    "CompileStats",
    "RowChoices",
    "assemble_table",
    "compile_row",
    "compile_rows",
    "compile_table",
    "DEFAULT_FRONT_SIZE",
    "HAVE_NUMPY",
    "QueryEngine",
    "GammaRefitter",
    "RefitReport",
]
