"""Query engine: compiled-table lookups at memory speed.

Three read paths over one immutable :class:`DecisionTable`:

* **scalar** — ``lookup(collective, eta, p)``: an LRU front
  (``functools.lru_cache``) over a closure that bisects the row's
  breakpoints.  Misses cost one dict probe plus one O(log breakpoints)
  bisect; repeats are a cache hit.
* **batch** — ``lookup_batch(coll_ids, etas, procs)``: vectorised with
  numpy when available — row keys are packed into int64s
  (``collective_id << 32 | p``) and each distinct row answers all of its
  queries with one ``searchsorted``.  Without numpy the same API runs a
  scalar bisect loop; results are identical.
* **swap** — ``swap(new_table)``: the refit path hands over a whole new
  table.  All reader state (front, batch index, decision pool) is built
  against the incoming table first and then published by plain attribute
  assignment, so a concurrent reader sees either the old surface or the
  new one, never a mix — and the retired front's hit/miss counters are
  folded into the engine totals rather than lost.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Union

from repro.serve.tables import Decision, DecisionTable

try:  # numpy accelerates the batch path; everything works without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via force_scalar tests
    _np = None

__all__ = ["QueryEngine", "DEFAULT_FRONT_SIZE", "HAVE_NUMPY"]

DEFAULT_FRONT_SIZE = 4096

HAVE_NUMPY = _np is not None


def _pack(coll_id: int, p: int) -> int:
    return (int(coll_id) << 32) | int(p)


class _NumpyBatch:
    """Per-row ndarray index: one searchsorted per distinct row key."""

    def __init__(self, table: DecisionTable):
        self.table = table
        self._rows: dict = {}
        for (coll, p), row in table.rows.items():
            self._rows[_pack(table.collective_id(coll), p)] = (
                _np.asarray(row.breaks, dtype=_np.int64),
                _np.asarray(row.dec_ids, dtype=_np.int64),
                row.eta_max,
            )

    def query(self, coll_ids, etas, procs):
        coll_ids = _np.ascontiguousarray(coll_ids, dtype=_np.int64)
        etas = _np.ascontiguousarray(etas, dtype=_np.int64)
        procs = _np.ascontiguousarray(procs, dtype=_np.int64)
        if not (coll_ids.shape == etas.shape == procs.shape):
            raise ValueError("coll_ids, etas, procs must have equal shapes")
        keys = (coll_ids << 32) | procs
        out = _np.empty(etas.shape, dtype=_np.int64)
        for k in _np.unique(keys):
            row = self._rows.get(int(k))
            if row is None:
                raise KeyError(
                    f"no compiled row for collective id {int(k) >> 32}, "
                    f"p={int(k) & 0xFFFFFFFF}"
                )
            breaks, dec_ids, eta_max = row
            mask = keys == k
            sub = etas[mask]
            if int(sub.min()) < 1 or int(sub.max()) > eta_max:
                raise ValueError(
                    f"batch contains eta outside the compiled domain "
                    f"[1, {eta_max}]"
                )
            out[mask] = dec_ids[_np.searchsorted(breaks, sub, side="right") - 1]
        return out


class _ScalarBatch:
    """Bisect-loop batch fallback; same results, no numpy required."""

    def __init__(self, table: DecisionTable):
        self.table = table
        self._rows: dict = {}
        for (coll, p), row in table.rows.items():
            self._rows[_pack(table.collective_id(coll), p)] = row

    def query(self, coll_ids, etas, procs):
        if not (len(coll_ids) == len(etas) == len(procs)):
            raise ValueError("coll_ids, etas, procs must have equal lengths")
        out: List[int] = []
        rows = self._rows
        for cid, eta, p in zip(coll_ids, etas, procs):
            key = _pack(cid, p)
            row = rows.get(key)
            if row is None:
                raise KeyError(f"no compiled row for collective id {cid}, p={p}")
            out.append(row.dec_ids[row.segment_of(int(eta))])
        return out


class QueryEngine:
    """Serve compiled decisions; swap tables atomically under readers.

    Every reader entry point captures the state it needs in one attribute
    read, and every bound structure references exactly one table — so a
    lookup racing a :meth:`swap` answers consistently from whichever
    table it caught.
    """

    def __init__(
        self,
        table: DecisionTable,
        front_size: int = DEFAULT_FRONT_SIZE,
        force_scalar_batch: bool = False,
    ):
        self.front_size = front_size
        self._force_scalar = force_scalar_batch or _np is None
        self._retired_hits = 0
        self._retired_misses = 0
        self.swaps = 0
        self._bind(table)

    def _bind(self, table: DecisionTable) -> None:
        decisions = table.decisions
        rows = table.rows

        def checked(collective: str, eta: int, p: int) -> Decision:
            row = rows.get((collective, p))
            if row is None:
                table.row(collective, p)
            return decisions[row.dec_ids[row.segment_of(eta)]]

        front = lru_cache(maxsize=self.front_size)(checked)
        batch = _ScalarBatch(table) if self._force_scalar else _NumpyBatch(table)
        # Publish: plain attribute stores, each independently consistent.
        self._table = table
        self._front = front
        self._batch = batch

    # -- read paths ---------------------------------------------------------

    @property
    def table(self) -> DecisionTable:
        return self._table

    def collective_id(self, collective: str) -> int:
        return self._table.collective_id(collective)

    def lookup(self, collective: str, eta: int, p: int) -> Decision:
        """Scalar selection: LRU front, then bisect.  Domain-checked."""
        return self._front(collective, eta, p)

    def lookup_batch(
        self,
        coll_ids: Sequence[int],
        etas: Sequence[int],
        procs: Sequence[int],
        as_decisions: bool = False,
    ) -> Union[Sequence[int], List[Decision]]:
        """Vectorised selection over parallel arrays.

        Returns decision ids into :attr:`table`'s pool (an int64 ndarray
        with numpy, a list without), or resolved :class:`Decision` objects
        with ``as_decisions=True``.  Ids are resolved against the same
        table that answered the batch, even if a swap lands mid-call.
        """
        batch = self._batch
        ids = batch.query(coll_ids, etas, procs)
        if as_decisions:
            pool = batch.table.decisions
            return [pool[int(i)] for i in ids]
        return ids

    # -- mutation -----------------------------------------------------------

    def swap(self, new_table: DecisionTable) -> None:
        """Atomically publish ``new_table`` to all read paths."""
        old_front = self._front
        self._bind(new_table)
        info = old_front.cache_info()
        self._retired_hits += info.hits
        self._retired_misses += info.misses
        self.swaps += 1

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Engine counters: front hit/miss totals survive table swaps."""
        info = self._front.cache_info()
        table = self._table
        return {
            "table_key": table.key,
            "arch": table.arch_name,
            "rows": len(table.rows),
            "breakpoints": table.breakpoints_total,
            "decisions": len(table.decisions),
            "swaps": self.swaps,
            "batch_backend": type(self._batch).__name__.lstrip("_").lower(),
            "front": {
                "hits": self._retired_hits + info.hits,
                "misses": self._retired_misses + info.misses,
                "size": info.currsize,
                "maxsize": info.maxsize,
            },
        }
