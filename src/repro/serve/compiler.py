"""Table compiler: sweep + bisection from live tuner to breakpoint rows.

One row compile turns ``Tuner.choose(collective, ·, p)`` — a function of
the message size eta — into the minimal sorted-breakpoint representation
that answers every in-domain query identically:

1. **Sweep** the size axis on a structural grid: every page boundary
   (the model's only non-affine terms step at ``ceil(eta/s)``), plus a
   geometric ladder of powers of two with midpoints, plus the domain
   endpoints.  Winners can only be missed between grid points if a regime
   flips and flips back inside one page — which step 3 audits.
2. **Bisect** every adjacent grid pair whose winners differ down to the
   exact integer eta where the winner changes, recursively splitting when
   a third winner shows up in between, so the emitted breakpoint is the
   first eta of its regime — not an approximation at grid resolution.
3. **Verify**: probe each compiled segment at its endpoints plus
   ``verify_probes`` deterministic pseudo-random sizes (string-seeded,
   ``PYTHONHASHSEED``-immune).  Any mismatch against the live tuner
   re-enters the grid and the row recompiles — the loop only terminates
   on a row that matched everywhere it was audited.

Row compiles are sweep points: :func:`compile_table` fans them out
through :func:`repro.exec.sweep.sweep`, so they run on the ProcessPool
when a context is active and land in the content-addressed on-disk cache
under ``serve.compile_row`` keys (full architecture fingerprint, exec
cache-version salt) — recompiling an unchanged table is a cache read.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.core.tuning import Tuner
from repro.exec import context as _context
from repro.exec.sweep import _preset_arch, sweep
from repro.machine.arch import Architecture
from repro.serve.tables import (
    TABLE_VERSION,
    Decision,
    DecisionTable,
    Row,
    TableSpec,
    table_key,
)

__all__ = [
    "DEFAULT_COLLECTIVES",
    "CompileStats",
    "RowChoices",
    "compile_row",
    "compile_rows",
    "compile_table",
    "assemble_table",
]

#: every collective the tuner serves, in the table's collective-id order
DEFAULT_COLLECTIVES = (
    "scatter",
    "gather",
    "bcast",
    "allgather",
    "alltoall",
    "reduce",
    "allreduce",
)

#: verification re-grid rounds before the compiler gives up (a mismatch
#: adds its eta to the grid, so each round strictly refines; in practice
#: round 1 already passes — the grid covers the model's step structure)
_MAX_VERIFY_ROUNDS = 6

#: per-row choose() memo: a row touches more distinct etas than the
#: tuner's default bound, and verify probes revisit compile etas
_ROW_TUNER_MEMO = 1 << 15


@dataclass
class CompileStats:
    """What one table compile cost (fill by passing to compile_table)."""

    rows: int = 0
    breakpoints: int = 0
    #: tuner.choose invocations embodied in the returned rows.  Cached
    #: rows keep the counters from the compile that produced them, so
    #: this prices the table, not this run — the run's actual cost split
    #: is ``cache_hits``/``cache_misses``.
    probes: int = 0
    tuner_hits: int = 0
    tuner_misses: int = 0
    #: row-level sweep cache traffic for this compile run
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.rows} rows, {self.breakpoints} breakpoints, "
            f"{self.probes} probes "
            f"(tuner memo {self.tuner_hits} hit/{self.tuner_misses} miss), "
            f"row cache {self.cache_hits} hit/{self.cache_misses} miss, "
            f"{self.wall_s:.2f}s"
        )


@dataclass(frozen=True)
class RowChoices:
    """One compiled row before decision interning (the worker product)."""

    collective: str
    p: int
    eta_max: int
    breaks: Tuple[int, ...]
    decisions: Tuple[Decision, ...]  # aligned with breaks
    probes: int = 0
    tuner_hits: int = 0
    tuner_misses: int = 0


def _base_grid(eta_max: int, page_size: int) -> list[int]:
    """The structural sweep grid: page boundaries + geometric ladder.

    The model's candidate costs are affine in eta except for
    ``ceil(eta/s)`` page terms, so sampling the last/first eta of every
    page plus a log ladder (for the large smooth regimes) bounds how far
    any winner change can hide from the sweep — and the bisection step
    then pins it exactly.
    """
    pts = {1, eta_max}
    v = 2
    while v < eta_max:
        pts.update((v - 1, v, v + 1, v + (v >> 1)))
        v <<= 1
    for boundary in range(page_size, eta_max, page_size):
        pts.update((boundary, boundary + 1))
    return sorted(e for e in pts if 1 <= e <= eta_max)


def _boundaries(
    win: Callable[[int], Any], lo: int, hi: int, wlo: Any, whi: Any, out: list
) -> None:
    """All winner-change points in ``(lo, hi]``, assuming each winner's
    regime is contiguous within the interval; appends ``(first_eta,
    winner)`` pairs in ascending order."""
    if hi - lo == 1:
        out.append((hi, whi))
        return
    mid = (lo + hi) // 2
    wmid = win(mid)
    if wmid == wlo:
        _boundaries(win, mid, hi, wmid, whi, out)
    elif wmid == whi:
        _boundaries(win, lo, mid, wlo, wmid, out)
    else:
        _boundaries(win, lo, mid, wlo, wmid, out)
        _boundaries(win, mid, hi, wmid, whi, out)


def _compile_from_grid(
    win: Callable[[int], Any], grid: Sequence[int]
) -> tuple[list[int], list[Any]]:
    winners = [win(e) for e in grid]
    breaks = [grid[0]]
    decs = [winners[0]]
    for i in range(len(grid) - 1):
        if winners[i] == winners[i + 1]:
            continue
        found: list = []
        _boundaries(win, grid[i], grid[i + 1], winners[i], winners[i + 1], found)
        for eta, w in found:
            if w != decs[-1]:
                breaks.append(eta)
                decs.append(w)
    return breaks, decs


def _verify_row(
    win: Callable[[int], Any],
    breaks: Sequence[int],
    decs: Sequence[Any],
    eta_max: int,
    probes: int,
    seed: str,
) -> set[int]:
    """Audit the compiled row against the live winner function.

    Probes every segment at both endpoints plus ``probes`` deterministic
    pseudo-random interior sizes; returns the (empty on success) set of
    etas to add to the grid — each mismatch plus its neighbours, so the
    recompile bisects right through the miss.
    """
    rng = random.Random(seed)
    bad: set[int] = set()
    for i, w in enumerate(decs):
        start = breaks[i]
        end = (breaks[i + 1] - 1) if i + 1 < len(breaks) else eta_max
        etas = {start, end}
        for _ in range(probes):
            etas.add(rng.randint(start, end))
        for eta in sorted(etas):
            if win(eta) != w:
                bad.update(
                    e for e in (eta - 1, eta, eta + 1) if 1 <= e <= eta_max
                )
    return bad


def compile_row(
    tuner: Tuner,
    collective: str,
    p: int,
    eta_max: int,
    verify_probes: int = 3,
) -> RowChoices:
    """Compile one (collective, p) row against ``tuner``, verified."""
    if eta_max < 2:
        raise ValueError("eta_max must be at least 2")
    calls = [0]

    def win(eta: int):
        calls[0] += 1
        c = tuner.choose(collective, eta, p)
        return (c.algorithm, c.params)

    grid = _base_grid(eta_max, tuner.arch.params.page_size)
    seed = f"serve-verify:{tuner.arch.name}:{collective}:{p}:{eta_max}"
    for _ in range(_MAX_VERIFY_ROUNDS):
        breaks, decs = _compile_from_grid(win, grid)
        bad = _verify_row(win, breaks, decs, eta_max, verify_probes, seed)
        if not bad:
            break
        grid = sorted(set(grid) | bad)
    else:  # pragma: no cover - would need a pathological model
        raise RuntimeError(
            f"row ({collective}, p={p}) failed to stabilise after "
            f"{_MAX_VERIFY_ROUNDS} verification rounds"
        )
    stats = tuner.choose_cache_stats()
    return RowChoices(
        collective=collective,
        p=p,
        eta_max=eta_max,
        breaks=tuple(breaks),
        decisions=tuple(Decision(alg, params) for alg, params in decs),
        probes=calls[0],
        tuner_hits=stats["hits"],
        tuner_misses=stats["misses"],
    )


# -- sweep-farm transport ----------------------------------------------------


@dataclass(frozen=True)
class _RowPoint:
    """Slim picklable compile unit; ``arch`` is a preset name whenever the
    architecture is value-equal to that preset (same trick as
    :class:`repro.exec.sweep._CollectivePoint`)."""

    arch: Any  # str preset name, or a full Architecture
    collective: str
    p: int
    eta_max: int
    verify_probes: int


def _slim_row_point(
    arch: Architecture, collective: str, p: int, eta_max: int, verify_probes: int
) -> _RowPoint:
    slim: Any = arch
    name = getattr(arch, "name", None)
    if isinstance(name, str):
        try:
            if _preset_arch(name) == arch:
                slim = name
        except KeyError:
            pass
    return _RowPoint(slim, collective, p, eta_max, verify_probes)


def _compile_row_point(pt: _RowPoint) -> RowChoices:
    """Worker-side execution: rebuild the tuner, compile the row."""
    arch = _preset_arch(pt.arch) if isinstance(pt.arch, str) else pt.arch
    tuner = Tuner(arch, choose_cache_size=_ROW_TUNER_MEMO)
    return compile_row(tuner, pt.collective, pt.p, pt.eta_max, pt.verify_probes)


def compile_rows(
    arch: Architecture,
    keys: Iterable[Tuple[str, int]],
    eta_max: int,
    verify_probes: int = 3,
    stats: Optional[CompileStats] = None,
) -> Dict[Tuple[str, int], RowChoices]:
    """Compile the given (collective, p) rows through the sweep farm.

    Cache payloads fingerprint the *full* architecture (never the slimmed
    preset name), the row axes, and :data:`TABLE_VERSION`, so a refit's
    perturbed params or a format bump can't be served stale rows.
    """
    keys = list(keys)
    points = [
        _slim_row_point(arch, coll, p, eta_max, verify_probes)
        for coll, p in keys
    ]
    payloads = [
        (arch, coll, p, eta_max, verify_probes, TABLE_VERSION)
        for coll, p in keys
    ]
    ctx = _context.current()
    before = (
        list(ctx.stats.by_kind.get("serve.compile_row", (0, 0, 0)))
        if ctx is not None
        else [0, 0, 0]
    )
    t0 = time.perf_counter()
    rows = sweep("serve.compile_row", _compile_row_point, points, payloads=payloads)
    wall = time.perf_counter() - t0
    if stats is not None:
        stats.rows += len(rows)
        stats.breakpoints += sum(len(r.breaks) for r in rows)
        stats.probes += sum(r.probes for r in rows)
        stats.tuner_hits += sum(r.tuner_hits for r in rows)
        stats.tuner_misses += sum(r.tuner_misses for r in rows)
        stats.wall_s += wall
        if ctx is not None:
            after = ctx.stats.by_kind.get("serve.compile_row", (0, 0, 0))
            stats.cache_misses += after[1] - before[1]
            stats.cache_hits += after[2] - before[2]
        else:
            stats.cache_misses += len(rows)
    return dict(zip(keys, rows))


def assemble_table(
    arch_name: str,
    key: str,
    collectives: Sequence[str],
    row_choices: Dict[Tuple[str, int], RowChoices],
) -> DecisionTable:
    """Intern decisions across rows and freeze the table.

    Interning order is deterministic (sorted row keys, segment order), so
    the same rows always produce the same decision ids — a refit that
    changes nothing reproduces the old table bit for bit.
    """
    pool: dict[Decision, int] = {}
    rows: dict[Tuple[str, int], Row] = {}
    for rk in sorted(row_choices):
        rc = row_choices[rk]
        ids = []
        for d in rc.decisions:
            if d not in pool:
                pool[d] = len(pool)
            ids.append(pool[d])
        rows[rk] = Row(
            collective=rc.collective,
            p=rc.p,
            eta_max=rc.eta_max,
            breaks=rc.breaks,
            dec_ids=tuple(ids),
        )
    return DecisionTable(
        arch_name=arch_name,
        key=key,
        collectives=tuple(collectives),
        decisions=tuple(sorted(pool, key=pool.get)),
        rows=rows,
    )


def compile_table(
    arch: Architecture,
    collectives: Sequence[str] = DEFAULT_COLLECTIVES,
    procs: Optional[Sequence[int]] = None,
    eta_max: Optional[int] = None,
    verify_probes: int = 3,
    stats: Optional[CompileStats] = None,
) -> DecisionTable:
    """Compile the full decision surface for one architecture.

    Defaults sweep every collective at the architecture's default process
    count over ``[1, arch.max_msg]``.  Under an active exec context the
    row compiles fan out over the pool and memoise in the on-disk cache.
    """
    procs = tuple(procs) if procs is not None else (arch.default_procs,)
    if any(p < 2 for p in procs):
        raise ValueError("need at least 2 processes per row")
    eta_max = int(eta_max) if eta_max is not None else arch.max_msg
    collectives = tuple(collectives)
    spec = TableSpec(
        arch=arch,
        collectives=collectives,
        procs=procs,
        eta_max=eta_max,
        verify_probes=verify_probes,
    )
    keys = [(coll, p) for coll in collectives for p in procs]
    row_choices = compile_rows(arch, keys, eta_max, verify_probes, stats=stats)
    return assemble_table(arch.name, table_key(spec), collectives, row_choices)
