"""Streaming γ(c) refit: new contention samples → selective recompile → swap.

The serve layer's tables are compiled against one fitted architecture.
When fresh γ(c) contention samples arrive (new microbench runs, online
telemetry), :class:`GammaRefitter`:

1. pools them into a :class:`~repro.core.fitting.StreamingGammaFit` and
   re-runs the cached NLLS fit over the full sample history;
2. applies the fit to the architecture
   (:func:`~repro.core.tuning.apply_gamma`) and builds a fresh tuner;
3. **probes** every compiled row at its sensitive sizes — each
   breakpoint, the eta just below it, segment endpoints and midpoints,
   plus string-seeded random sizes — comparing the new tuner's choice
   against the row's compiled decision;
4. recompiles *only* the rows where any probe flipped (through the sweep
   farm, so unchanged-fit recompiles are cache reads), reuses the
   untouched rows verbatim, and assembles a new table under the new
   architecture's content key;
5. hands the table to :meth:`QueryEngine.swap` — readers never see a torn
   surface, and a reader mid-batch keeps the table it started with.

The probe step is what makes refits cheap: a small γ perturbation moves a
few breakpoints in a few rows, and only those rows pay a recompile.  The
probe set concentrates exactly where winners change (breakpoints and
their neighbours), so a flip that matters is caught there; the compiled
rows that *are* rebuilt go through the same verified compiler as the
original table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.fitting import GammaFit, GammaSample, StreamingGammaFit
from repro.core.tuning import Tuner, apply_gamma
from repro.machine.arch import Architecture
from repro.serve.compiler import (
    CompileStats,
    RowChoices,
    _ROW_TUNER_MEMO,
    assemble_table,
    compile_rows,
)
from repro.serve.query import QueryEngine
from repro.serve.tables import DecisionTable, Row, TableSpec, table_key

__all__ = ["RefitReport", "GammaRefitter"]


@dataclass
class RefitReport:
    """What one ``observe()`` round did."""

    refits: int
    gamma: GammaFit
    rows_checked: int = 0
    rows_recompiled: int = 0
    recompiled: Tuple[Tuple[str, int], ...] = ()
    probes: int = 0
    swapped: bool = False
    table_key_before: str = ""
    table_key_after: str = ""
    compile_stats: Optional[CompileStats] = None

    def describe(self) -> str:
        return (
            f"refit #{self.refits}: {self.rows_recompiled}/{self.rows_checked} "
            f"rows recompiled ({self.probes} probes)"
            + ("" if self.swapped else ", no swap")
        )


def _row_sentinels(row: Row, probes: int, seed: str) -> List[int]:
    """The etas where this row's compiled surface is most likely to move:
    every breakpoint, the last eta of the regime before it, each segment's
    endpoints and midpoint, plus deterministic random interior sizes."""
    etas = set()
    n = len(row.breaks)
    for i, b in enumerate(row.breaks):
        etas.add(b)
        if b > 1:
            etas.add(b - 1)
        end = (row.breaks[i + 1] - 1) if i + 1 < n else row.eta_max
        etas.add(end)
        etas.add((b + end) // 2)
    rng = random.Random(seed)
    for _ in range(probes * n):
        etas.add(rng.randint(1, row.eta_max))
    return sorted(etas)


def _row_to_choices(table: DecisionTable, row: Row) -> RowChoices:
    """Inflate a compiled row back to its pre-interning form so unchanged
    rows can be re-assembled next to freshly compiled ones."""
    return RowChoices(
        collective=row.collective,
        p=row.p,
        eta_max=row.eta_max,
        breaks=row.breaks,
        decisions=tuple(table.decisions[i] for i in row.dec_ids),
    )


class GammaRefitter:
    """Owns the streaming fit and the engine's table lifecycle."""

    def __init__(
        self,
        engine: QueryEngine,
        arch: Architecture,
        stream: Optional[StreamingGammaFit] = None,
        verify_probes: int = 3,
        sentinel_probes: int = 2,
    ):
        self.engine = engine
        self.arch = arch
        self.stream = stream if stream is not None else StreamingGammaFit()
        self.verify_probes = verify_probes
        self.sentinel_probes = sentinel_probes
        self.reports: List[RefitReport] = []

    def observe(self, samples: Iterable[GammaSample]) -> RefitReport:
        """Fold new γ(c) samples in; refit, selectively recompile, swap."""
        previous = self.stream.fit
        fit = self.stream.observe(list(samples))
        report = RefitReport(
            refits=self.stream.refits,
            gamma=fit,
            table_key_before=self.engine.table.key,
        )
        if previous is not None and fit == previous:
            # Identical fit → identical architecture → identical table.
            report.table_key_after = report.table_key_before
            self.reports.append(report)
            return report

        new_arch = apply_gamma(self.arch, fit)
        tuner = Tuner(new_arch, choose_cache_size=_ROW_TUNER_MEMO)
        table = self.engine.table

        changed: List[Tuple[str, int]] = []
        probes = 0
        for rk in sorted(table.rows):
            row = table.rows[rk]
            seed = (
                f"serve-refit:{new_arch.name}:{row.collective}:{row.p}:"
                f"{row.eta_max}:{self.stream.refits}"
            )
            for eta in _row_sentinels(row, self.sentinel_probes, seed):
                probes += 1
                choice = tuner.choose(row.collective, eta, row.p)
                compiled = table.decisions[row.dec_ids[row.segment_of(eta)]]
                if (choice.algorithm, choice.params) != (
                    compiled.algorithm,
                    compiled.params,
                ):
                    changed.append(rk)
                    break
        report.rows_checked = len(table.rows)
        report.probes = probes
        report.recompiled = tuple(changed)
        report.rows_recompiled = len(changed)

        stats = CompileStats()
        row_choices: Dict[Tuple[str, int], RowChoices] = {
            rk: _row_to_choices(table, row)
            for rk, row in table.rows.items()
            if rk not in set(changed)
        }
        if changed:
            by_eta_max: Dict[int, List[Tuple[str, int]]] = {}
            for rk in changed:
                by_eta_max.setdefault(table.rows[rk].eta_max, []).append(rk)
            for eta_max, keys in sorted(by_eta_max.items()):
                row_choices.update(
                    compile_rows(
                        new_arch, keys, eta_max, self.verify_probes, stats=stats
                    )
                )
        report.compile_stats = stats

        procs = tuple(sorted({p for _, p in table.rows}))
        eta_max = max(r.eta_max for r in table.rows.values())
        spec = TableSpec(
            arch=new_arch,
            collectives=table.collectives,
            procs=procs,
            eta_max=eta_max,
            verify_probes=self.verify_probes,
        )
        new_table = assemble_table(
            new_arch.name, table_key(spec), table.collectives, row_choices
        )
        self.engine.swap(new_table)
        self.arch = new_arch
        report.swapped = True
        report.table_key_after = new_table.key
        self.reports.append(report)
        return report
