"""Multi-node two-level collectives (paper Section VII-G, Fig. 17).

The paper's multi-node result: libraries used *single-level* (flat)
algorithms for large-message Gather because intra-node Gather used to be
slow; with the contention-aware intra-node designs, a **two-level** scheme
(node leaders gather locally in parallel, then one inter-node message per
node) wins, and the win *grows* with node count — 2x/3x/5x at 2/4/8 KNL
nodes — because the flat design pays per-message network latency and
root-side matching for every remote rank, while the two-level design pays
it once per node.

The network is an alpha-beta model (EDR IB / Omni-Path class) with a
per-message root-side matching/progress cost ``t_match``; intra-node
latencies come from the same machinery as the single-node experiments
(the Tuner's model for the proposed design, a baseline library's pick for
the flat design).

A **pipelined** two-level variant (the paper's future-work extension) is
included: the inter-node phase streams node payloads in chunks so the
root's NIC starts as soon as the first leader finishes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.baselines import LibraryModel, library
from repro.core.model import AnalyticModel
from repro.core.tuning import Tuner
from repro.machine.arch import Architecture

__all__ = ["MultiNodeModel"]


@dataclass
class MultiNodeModel:
    """Multi-node latency predictor on top of the single-node machinery."""

    arch: Architecture
    tuner: Optional[Tuner] = None

    def __post_init__(self) -> None:
        if self.tuner is None:
            self.tuner = Tuner(self.arch)
        self.model = AnalyticModel(self.arch)

    # -- network primitives -----------------------------------------------------

    def net_msg(self, nbytes: int) -> float:
        """One network message absorbed at the root: latency + wire + match."""
        p = self.arch.params
        return p.alpha_net + nbytes * p.net_beta + p.t_match

    # -- gather ---------------------------------------------------------------------

    def gather_two_level(self, nodes: int, ppn: int, eta: int) -> float:
        """Proposed: parallel intra-node gathers, then one message per node.

        Leaders gather ppn blocks locally (contention-aware design), all
        nodes in parallel; then nodes-1 leader payloads of ppn*eta bytes
        drain into the global root serially at the NIC.
        """
        intra = self.tuner.choose("gather", eta, ppn).predicted_us
        inter = sum(self.net_msg(ppn * eta) for _ in range(nodes - 1))
        return intra + inter

    def gather_two_level_pipelined(
        self, nodes: int, ppn: int, eta: int, chunks: int = 8
    ) -> float:
        """Extension: leaders stream their payload in chunks, overlapping
        the inter-node drain with the tail of the intra-node gathers."""
        intra = self.tuner.choose("gather", eta, ppn).predicted_us
        chunk_bytes = math.ceil(ppn * eta / chunks)
        per_node = chunks * self.net_msg(chunk_bytes)
        # the wire work overlaps all but the first chunk of intra time
        inter = (nodes - 1) * per_node
        overlap = min(intra * (1 - 1 / chunks), inter * 0.5)
        return intra + inter - overlap

    def gather_single_level(
        self, nodes: int, ppn: int, eta: int, lib: LibraryModel
    ) -> float:
        """Flat gather: every remote rank sends its own block to the root;
        same-node ranks use the library's intra-node design.

        All remote ranks fire at once, so the root's unexpected-message
        queue holds O(remote) entries and each arrival pays a traversal
        proportional to the queue depth — the well-known O(M^2) matching
        behaviour that makes flat designs collapse at scale (and why the
        paper's two-level speedup *grows* with node count).
        """
        remote_msgs = (nodes - 1) * ppn
        inter = sum(self.net_msg(eta) for _ in range(remote_msgs))
        matching = self.arch.params.t_match * remote_msgs * (remote_msgs - 1) / 2
        alg, params = lib.select("gather", eta, ppn)
        intra = self._lib_intra("gather", alg, params, ppn, eta)
        return intra + inter + matching

    # -- scatter (mirrored) ------------------------------------------------------------

    def scatter_two_level(self, nodes: int, ppn: int, eta: int) -> float:
        intra = self.tuner.choose("scatter", eta, ppn).predicted_us
        inter = sum(self.net_msg(ppn * eta) for _ in range(nodes - 1))
        return inter + intra

    def scatter_single_level(
        self, nodes: int, ppn: int, eta: int, lib: LibraryModel
    ) -> float:
        remote_msgs = (nodes - 1) * ppn
        inter = sum(self.net_msg(eta) for _ in range(remote_msgs))
        alg, params = lib.select("scatter", eta, ppn)
        intra = self._lib_intra("scatter", alg, params, ppn, eta)
        return inter + intra

    # -- helpers --------------------------------------------------------------------------

    def _lib_intra(
        self, collective: str, alg: str, params: dict, ppn: int, eta: int
    ) -> float:
        m = self.model
        if alg == "fanout_rndv":
            return m.scatter_fanout_rndv(ppn, eta)
        if alg == "fanin_rndv":
            return m.gather_fanin_rndv(ppn, eta)
        if alg == "binomial_p2p":
            shm = params.get("threshold", 0) > 1 << 40
            if collective == "scatter":
                return m.scatter_binomial_p2p(ppn, eta, shm)
            return m.gather_binomial_p2p(ppn, eta, shm)
        return m.predict(collective, alg, ppn, eta, **params)

    # -- the Fig 17 sweep ---------------------------------------------------------------

    def fig17_point(
        self, nodes: int, ppn: int, eta: int, lib_name: str = "mvapich2"
    ) -> dict[str, float]:
        lib = library(lib_name)
        flat = self.gather_single_level(nodes, ppn, eta, lib)
        two = self.gather_two_level(nodes, ppn, eta)
        piped = self.gather_two_level_pipelined(nodes, ppn, eta)
        return {
            "flat": flat,
            "two_level": two,
            "pipelined": piped,
            "speedup": flat / two,
        }
