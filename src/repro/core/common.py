"""Shared helpers for the collective algorithms."""

from __future__ import annotations

import math

__all__ = [
    "nonroot_order",
    "is_power_of_two",
    "chunk_partition",
    "rd_held_blocks",
    "knomial_parent_children",
]


def nonroot_order(size: int, root: int) -> list[int]:
    """Non-root ranks in the canonical order used by throttled chains."""
    return [r for r in range(size) if r != root]


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def chunk_partition(nbytes: int, parts: int) -> list[tuple[int, int]]:
    """Split ``nbytes`` into ``parts`` (offset, length) chunks.

    The remainder spreads over the first chunks, so sizes differ by at most
    one byte — the scatter-allgather Bcast partition (which the paper notes
    is not page aligned for non-power-of-two p, costing a little extra).
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, rem = divmod(nbytes, parts)
    out = []
    off = 0
    for i in range(parts):
        ln = base + (1 if i < rem else 0)
        out.append((off, ln))
        off += ln
    return out


def rd_held_blocks(rank: int, step: int, m: int, rem: int) -> list[int]:
    """Blocks held by ``rank`` (< m) after ``step`` recursive-doubling steps.

    ``m`` is the largest power of two <= p and ``rem = p - m``.  Before step
    0, rank q holds {q} plus {q+m} if q < rem (folded in by the non-power-of-
    two pre-phase).  Each step unions a rank's set with its partner's, so
    after ``step`` steps rank q holds the sets of its aligned 2**step group.
    Deterministic on both sides — readers compute their partner's holdings
    locally, no metadata exchange needed.
    """
    group = rank & ~((1 << step) - 1)
    blocks = []
    for q in range(group, min(group + (1 << step), m)):
        blocks.append(q)
        if q < rem:
            blocks.append(q + m)
    return sorted(blocks)


def knomial_parent_children(
    relrank: int, size: int, k: int
) -> tuple[int | None, list[list[int]]]:
    """Parent and per-level children of ``relrank`` in a k-nomial tree.

    Returns ``(parent_relrank_or_None, levels)`` where ``levels`` is a list
    (top level first) of child groups; each group has at most ``k - 1``
    members — the bounded reader concurrency the k-nomial Bcast is built
    around.  Mirrors the classic MVAPICH knomial loop.
    """
    if k < 2:
        raise ValueError("k-nomial radix must be >= 2")
    parent = None
    mask = 1
    while mask < size:
        if relrank % (mask * k) != 0:
            parent = relrank - (relrank % (mask * k))
            break
        mask *= k
    if parent is None:
        # root of the tree: start from the top mask
        mask = k ** max(0, math.ceil(math.log(size, k)) - 1)
    else:
        mask //= k
    levels: list[list[int]] = []
    while mask >= 1:
        group = [
            relrank + j * mask
            for j in range(1, k)
            if relrank + j * mask < size
        ]
        if group:
            levels.append(group)
        mask //= k
    return parent, levels
