"""One-to-all personalized: MPI_Scatter (paper Section IV-A).

Three algorithm families, all *native* CMA designs (addresses exchanged
through shared-memory control collectives, then direct syscalls — no
RTS/CTS per transfer):

* ``parallel_read``   — every non-root reads its block concurrently from
  the root's send buffer.  One step, but the full contention factor
  gamma(p-1) on the root's mm lock.
* ``sequential_write`` — the root writes each block in turn.  p-1 steps,
  zero contention, root is never idle.
* ``throttled_read(k)`` — the paper's contribution: at most ``k``
  concurrent readers, chained with point-to-point tokens (no barriers):
  reader ``i`` starts when reader ``i - k`` finishes, so there are
  ceil((p-1)/k) waves with contention gamma(k).  ``parallel_read`` and
  ``sequential_write`` are the k = p-1 and k = 1 special cases.

Buffer contract: the root's ``sendbuf`` holds p blocks of ``eta`` bytes in
rank order; every rank's ``recvbuf`` holds one block.  With ``in_place``
the root keeps its block in ``sendbuf`` (no self-copy), matching
MPI_IN_PLACE semantics.
"""

from __future__ import annotations

from typing import Generator

from repro.core.common import nonroot_order
from repro.mpi.communicator import RankCtx

__all__ = ["parallel_read", "sequential_write", "throttled_read"]


def _root_self_copy(ctx: RankCtx) -> Generator:
    """Root moves its own block sendbuf[root] -> recvbuf (skipped in-place)."""
    if not ctx.in_place:
        yield from ctx.memcpy(
            ctx.recvbuf, 0, ctx.sendbuf, ctx.root * ctx.eta, ctx.eta
        )


def parallel_read(ctx: RankCtx) -> Generator:
    """All non-roots read concurrently: T = T_bcast^sm + a + nB + l*g(p)*n/s + T_gather^sm."""
    op = ctx.next_op()
    payload = ctx.sendbuf.addr if ctx.is_root else None
    src_addr = yield from ctx.sm_bcast(("sc-pr", op), payload, root=ctx.root)
    if ctx.is_root:
        yield from _root_self_copy(ctx)
    else:
        yield from ctx.cma_read(
            ctx.root,
            ctx.recvbuf.iov(0, ctx.eta),
            (src_addr + ctx.rank * ctx.eta, ctx.eta),
        )
    # completion: root learns every block has been read (sendbuf reusable)
    yield from ctx.sm_gather(("sc-pr-fin", op), value=True, root=ctx.root)


def sequential_write(ctx: RankCtx) -> Generator:
    """Root writes one block at a time: p-1 uncontended transfers."""
    op = ctx.next_op()
    value = None if ctx.is_root else ctx.recvbuf.addr
    addrs = yield from ctx.sm_gather(("sc-sw", op), value, root=ctx.root)
    if ctx.is_root:
        for dst in nonroot_order(ctx.size, ctx.root):
            yield from ctx.cma_write(
                dst,
                ctx.sendbuf.iov(dst * ctx.eta, ctx.eta),
                (addrs[dst], ctx.eta),
            )
        yield from _root_self_copy(ctx)
    # completion: non-roots learn their block has landed
    yield from ctx.sm_bcast(("sc-sw-fin", op), True, root=ctx.root)


def throttled_read(ctx: RankCtx, k: int) -> Generator:
    """At most ``k`` concurrent readers, chained by pt2pt tokens.

    Non-root reader at chain position ``i`` blocks on a token from position
    ``i - k`` (positions < k start immediately), reads its block, then
    unblocks position ``i + k``.  The root posts ``min(k, p-1)`` receives
    from the readers of the last wave — a single ack from the last reader
    would not cover its k-1 concurrent peers (Section IV-A3).
    """
    if k < 1:
        raise ValueError("throttle factor must be >= 1")
    op = ctx.next_op()
    payload = ctx.sendbuf.addr if ctx.is_root else None
    src_addr = yield from ctx.sm_bcast(("sc-tr", op), payload, root=ctx.root)
    order = nonroot_order(ctx.size, ctx.root)
    nread = len(order)
    if ctx.is_root:
        yield from _root_self_copy(ctx)
        for pos in range(max(0, nread - k), nread):
            yield ctx.ctrl_recv(order[pos], ("sc-tr-fin", op))
    else:
        pos = order.index(ctx.rank)
        if pos - k >= 0:
            yield ctx.ctrl_recv(order[pos - k], ("sc-tr-tok", op))
        yield from ctx.cma_read(
            ctx.root,
            ctx.recvbuf.iov(0, ctx.eta),
            (src_addr + ctx.rank * ctx.eta, ctx.eta),
        )
        if pos + k < nread:
            yield ctx.ctrl_send(order[pos + k], ("sc-tr-tok", op))
        if pos >= nread - k:
            yield ctx.ctrl_send(ctx.root, ("sc-tr-fin", op))
