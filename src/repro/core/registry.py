"""Algorithm registry: collective name -> algorithm name -> factory.

A factory takes the algorithm's tuning parameters (``k`` for throttled /
k-nomial designs, ``j`` for ring strides) and returns the per-rank
generator the runner spawns.  ``validity`` predicates mark constraints the
tuner must respect (e.g. ring stride coprimality).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core import allgather as _allgather
from repro.core import alltoall as _alltoall
from repro.core import bcast as _bcast
from repro.core import gather as _gather
from repro.core import p2p_colls as _p2p
from repro.core import reduce as _reduce
from repro.core import scatter as _scatter
from repro.core import vcollectives as _vcoll
from repro.core import xpmemcoll as _xp

__all__ = ["AlgorithmInfo", "ALGORITHMS", "get_algorithm", "algorithms_for"]


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registered algorithm."""

    collective: str
    name: str
    factory: Callable[..., Callable]  # (**params) -> fn(ctx) generator
    tunable: tuple[str, ...] = ()
    #: (size, params) -> None or an error string
    validity: Optional[Callable[[int, dict], Optional[str]]] = None
    description: str = ""
    #: transport lane the data path rides: "cma" (process_vm_rw), "shm"
    #: (two-copy slab), "p2p" (rendezvous pt2pt), "xpmem" (mapped
    #: windows).  Part of sweep grouping and cache keys — two algorithms
    #: that differ only in lane must never share a cache entry.
    lane: str = "cma"

    def make(self, **params) -> Callable:
        return self.factory(**params)

    def check(self, size: int, params: dict) -> Optional[str]:
        if self.validity is None:
            return None
        return self.validity(size, params)


def _needs_k(lo: int):
    def check(size: int, params: dict) -> Optional[str]:
        k = params.get("k")
        if k is None:
            return "parameter k required"
        if not (lo <= k <= max(size - 1, lo)):
            return f"k={k} outside [{lo}, {size - 1}]"
        return None

    return check


def _knomial_k(size: int, params: dict) -> Optional[str]:
    # radix may exceed p (the tree degenerates to a flat fan-out), but must
    # be at least binary
    k = params.get("k")
    if k is None:
        return "parameter k required"
    if k < 2:
        return f"k-nomial radix k={k} must be >= 2"
    return None


def _ring_j(size: int, params: dict) -> Optional[str]:
    j = params.get("j", 1)
    if math.gcd(j, size) != 1:
        return f"gcd(j={j}, p={size}) != 1"
    return None


def _wrap(fn, **bound):
    def factory(**params):
        merged = {**bound, **params}

        def run(ctx):
            return fn(ctx, **merged)

        return run

    return factory


def _plain(fn):
    def factory(**params):
        if params:
            raise TypeError(f"{fn.__name__} takes no tuning parameters: {params}")
        return fn

    return factory


ALGORITHMS: dict[str, dict[str, AlgorithmInfo]] = {
    "scatter": {
        "parallel_read": AlgorithmInfo(
            "scatter",
            "parallel_read",
            _plain(_scatter.parallel_read),
            description="all non-roots read at once (k = p-1 special case)",
        ),
        "sequential_write": AlgorithmInfo(
            "scatter",
            "sequential_write",
            _plain(_scatter.sequential_write),
            description="root writes blocks one by one (k = 1 special case)",
        ),
        "throttled_read": AlgorithmInfo(
            "scatter",
            "throttled_read",
            _wrap(_scatter.throttled_read),
            tunable=("k",),
            validity=_needs_k(1),
            description="at most k concurrent readers (the proposed design)",
        ),
        "binomial_p2p": AlgorithmInfo(
            "scatter",
            "binomial_p2p",
            _wrap(_p2p.scatter_binomial_p2p, threshold=0),
            tunable=("threshold",),
            description="baseline: MPICH-style binomial tree over pt2pt",
            lane="p2p",
        ),
        "fanout_rndv": AlgorithmInfo(
            "scatter",
            "fanout_rndv",
            _plain(_p2p.scatter_fanout_rndv),
            description="baseline: contention-unaware rendezvous fan-out",
            lane="p2p",
        ),
        "xpmem_read": AlgorithmInfo(
            "scatter",
            "xpmem_read",
            _plain(_xp.scatter_xpmem_read),
            description="parallel read through the root's mapped window",
            lane="xpmem",
        ),
    },
    "gather": {
        "parallel_write": AlgorithmInfo(
            "gather", "parallel_write", _plain(_gather.parallel_write)
        ),
        "sequential_read": AlgorithmInfo(
            "gather", "sequential_read", _plain(_gather.sequential_read)
        ),
        "throttled_write": AlgorithmInfo(
            "gather",
            "throttled_write",
            _wrap(_gather.throttled_write),
            tunable=("k",),
            validity=_needs_k(1),
        ),
        "binomial_p2p": AlgorithmInfo(
            "gather",
            "binomial_p2p",
            _wrap(_p2p.gather_binomial_p2p, threshold=0),
            tunable=("threshold",),
            description="baseline: MPICH-style binomial tree over pt2pt",
            lane="p2p",
        ),
        "fanin_rndv": AlgorithmInfo(
            "gather",
            "fanin_rndv",
            _plain(_p2p.gather_fanin_rndv),
            description="baseline: root drains rendezvous receives serially",
            lane="p2p",
        ),
        "xpmem_write": AlgorithmInfo(
            "gather",
            "xpmem_write",
            _plain(_xp.gather_xpmem_write),
            description="parallel write through the root's mapped window",
            lane="xpmem",
        ),
    },
    "alltoall": {
        "pairwise": AlgorithmInfo(
            "alltoall",
            "pairwise",
            _plain(_alltoall.pairwise),
            description="native CMA collective (no RTS/CTS)",
        ),
        "pairwise_pt2pt": AlgorithmInfo(
            "alltoall",
            "pairwise_pt2pt",
            _plain(_alltoall.pairwise_pt2pt),
            description="same schedule over rendezvous pt2pt",
            lane="p2p",
        ),
        "pairwise_shm": AlgorithmInfo(
            "alltoall",
            "pairwise_shm",
            _plain(_alltoall.pairwise_shm),
            description="same schedule over two-copy shared memory",
            lane="shm",
        ),
        "bruck": AlgorithmInfo("alltoall", "bruck", _plain(_alltoall.bruck)),
        "xpmem_pairwise": AlgorithmInfo(
            "alltoall",
            "xpmem_pairwise",
            _plain(_xp.alltoall_xpmem_pairwise),
            description="same schedule through mapped windows",
            lane="xpmem",
        ),
    },
    "allgather": {
        "ring_source_read": AlgorithmInfo(
            "allgather", "ring_source_read", _plain(_allgather.ring_source_read)
        ),
        "ring_source_write": AlgorithmInfo(
            "allgather", "ring_source_write", _plain(_allgather.ring_source_write)
        ),
        "ring_neighbor": AlgorithmInfo(
            "allgather",
            "ring_neighbor",
            _wrap(_allgather.ring_neighbor, j=1),
            tunable=("j",),
            validity=_ring_j,
            description="stride-j ring; j picks intra- vs inter-socket hops",
        ),
        "recursive_doubling": AlgorithmInfo(
            "allgather", "recursive_doubling", _plain(_allgather.recursive_doubling)
        ),
        "bruck": AlgorithmInfo("allgather", "bruck", _plain(_allgather.bruck)),
        "ring_p2p": AlgorithmInfo(
            "allgather",
            "ring_p2p",
            _wrap(_p2p.allgather_ring_p2p, threshold=0),
            tunable=("threshold",),
            description="baseline: classic ring over pt2pt sendrecv",
            lane="p2p",
        ),
        "xpmem_ring": AlgorithmInfo(
            "allgather",
            "xpmem_ring",
            _plain(_xp.allgather_xpmem_ring),
            description="ring-source-read through mapped windows",
            lane="xpmem",
        ),
    },
    "bcast": {
        "direct_read": AlgorithmInfo(
            "bcast", "direct_read", _plain(_bcast.direct_read)
        ),
        "direct_write": AlgorithmInfo(
            "bcast", "direct_write", _plain(_bcast.direct_write)
        ),
        "knomial": AlgorithmInfo(
            "bcast",
            "knomial",
            _wrap(_bcast.knomial, k=4),
            tunable=("k",),
            validity=_knomial_k,
        ),
        "scatter_allgather": AlgorithmInfo(
            "bcast", "scatter_allgather", _plain(_bcast.scatter_allgather)
        ),
        "binomial_p2p": AlgorithmInfo(
            "bcast",
            "binomial_p2p",
            _wrap(_p2p.bcast_binomial_p2p, threshold=0),
            tunable=("threshold",),
            description="baseline: binomial tree over pt2pt",
            lane="p2p",
        ),
        "shm_slab": AlgorithmInfo(
            "bcast",
            "shm_slab",
            _plain(_bcast.shm_slab),
            description="two-copy shared-memory slab (small-message winner)",
            lane="shm",
        ),
        "xpmem_read": AlgorithmInfo(
            "bcast",
            "xpmem_read",
            _plain(_xp.bcast_xpmem_read),
            description="direct read through the root's mapped window",
            lane="xpmem",
        ),
        "chain": AlgorithmInfo(
            "bcast",
            "chain",
            _wrap(_bcast.chain, segsize=128 * 1024),
            tunable=("segsize",),
            description="segmented pipeline: contention-free, syscall-lean",
        ),
    },
    # extension collectives: the vector variants (variable block sizes)
    "scatterv": {
        "parallel_read": AlgorithmInfo(
            "scatterv", "parallel_read", _plain(_vcoll.scatterv_parallel_read)
        ),
        "sequential_write": AlgorithmInfo(
            "scatterv", "sequential_write", _plain(_vcoll.scatterv_sequential_write)
        ),
        "throttled_read": AlgorithmInfo(
            "scatterv",
            "throttled_read",
            _wrap(_vcoll.scatterv_throttled_read),
            tunable=("k",),
            validity=_needs_k(1),
        ),
    },
    "alltoallv": {
        "pairwise": AlgorithmInfo(
            "alltoallv",
            "pairwise",
            _plain(_vcoll.alltoallv_pairwise),
            description="contention-free pairwise exchange, p x p counts",
        ),
    },
    "gatherv": {
        "parallel_write": AlgorithmInfo(
            "gatherv", "parallel_write", _plain(_vcoll.gatherv_parallel_write)
        ),
        "sequential_read": AlgorithmInfo(
            "gatherv", "sequential_read", _plain(_vcoll.gatherv_sequential_read)
        ),
        "throttled_write": AlgorithmInfo(
            "gatherv",
            "throttled_write",
            _wrap(_vcoll.gatherv_throttled_write),
            tunable=("k",),
            validity=_needs_k(1),
        ),
    },
    # extension collectives (the paper's future work): the reduction family
    "reduce": {
        "gather_throttled": AlgorithmInfo(
            "reduce",
            "gather_throttled",
            _wrap(_reduce.reduce_gather_throttled, k=8),
            tunable=("k",),
            validity=_needs_k(1),
            description="throttled fan-in staging + root-local combines",
        ),
        "binomial": AlgorithmInfo(
            "reduce",
            "binomial",
            _plain(_reduce.reduce_binomial),
            description="binomial tree: parallel combines, one reader/source",
        ),
        "ring_rs": AlgorithmInfo(
            "reduce",
            "ring_rs",
            _plain(_reduce.reduce_ring_rs),
            description="ring reduce-scatter + root chunk collection",
        ),
    },
    "allreduce": {
        "reduce_bcast": AlgorithmInfo(
            "allreduce",
            "reduce_bcast",
            _wrap(_reduce.allreduce_reduce_bcast, k=4),
            tunable=("k",),
            validity=_knomial_k,
            description="binomial reduce + k-nomial broadcast",
        ),
        "ring": AlgorithmInfo(
            "allreduce",
            "ring",
            _plain(_reduce.allreduce_ring),
            description="ring reduce-scatter + ring allgather (bandwidth-optimal)",
        ),
        "recursive_doubling": AlgorithmInfo(
            "allreduce",
            "recursive_doubling",
            _plain(_reduce.allreduce_recursive_doubling),
            description="lg p exchange-and-combine rounds (latency-optimal)",
        ),
    },
}


def get_algorithm(collective: str, name: str) -> AlgorithmInfo:
    try:
        return ALGORITHMS[collective][name]
    except KeyError:
        known = sorted(ALGORITHMS.get(collective, {}))
        raise KeyError(
            f"unknown algorithm {name!r} for {collective!r}; known: {known}"
        ) from None


def algorithms_for(collective: str) -> list[str]:
    if collective not in ALGORITHMS:
        raise KeyError(
            f"unknown collective {collective!r}; known: {sorted(ALGORITHMS)}"
        )
    return sorted(ALGORITHMS[collective])
