"""All-to-one personalized: MPI_Gather (paper Section IV-B).

Mirror images of the Scatter designs with the CMA direction reversed —
writers now contend on the *root's* mm lock:

* ``parallel_write``   — every non-root writes its block into the root's
  receive buffer concurrently (gamma(p-1) contention).
* ``sequential_read``  — the root reads each non-root's block in turn
  (p-1 steps, no contention).
* ``throttled_write(k)`` — at most ``k`` concurrent writers, chained with
  pt2pt tokens exactly like throttled-read Scatter.

Buffer contract: every rank's ``sendbuf`` holds one ``eta``-byte block; the
root's ``recvbuf`` holds p blocks in rank order.  ``in_place`` means the
root's block is already sitting at ``recvbuf[root]``.
"""

from __future__ import annotations

from typing import Generator

from repro.core.common import nonroot_order
from repro.mpi.communicator import RankCtx

__all__ = ["parallel_write", "sequential_read", "throttled_write"]


def _root_self_copy(ctx: RankCtx) -> Generator:
    """Root moves its own block sendbuf -> recvbuf[root] (skipped in-place)."""
    if not ctx.in_place:
        yield from ctx.memcpy(
            ctx.recvbuf, ctx.root * ctx.eta, ctx.sendbuf, 0, ctx.eta
        )


def parallel_write(ctx: RankCtx) -> Generator:
    """All non-roots write concurrently: T = T_bcast^sm + a + nB + l*g(p)*n/s + T_gather^sm."""
    op = ctx.next_op()
    payload = ctx.recvbuf.addr if ctx.is_root else None
    dst_addr = yield from ctx.sm_bcast(("ga-pw", op), payload, root=ctx.root)
    if ctx.is_root:
        yield from _root_self_copy(ctx)
    else:
        yield from ctx.cma_write(
            ctx.root,
            ctx.sendbuf.iov(0, ctx.eta),
            (dst_addr + ctx.rank * ctx.eta, ctx.eta),
        )
    # completion: root may not touch recvbuf until every block has landed
    yield from ctx.sm_gather(("ga-pw-fin", op), value=True, root=ctx.root)


def sequential_read(ctx: RankCtx) -> Generator:
    """Root reads one block at a time: p-1 uncontended transfers."""
    op = ctx.next_op()
    value = None if ctx.is_root else ctx.sendbuf.addr
    addrs = yield from ctx.sm_gather(("ga-sr", op), value, root=ctx.root)
    if ctx.is_root:
        for src in nonroot_order(ctx.size, ctx.root):
            yield from ctx.cma_read(
                src,
                ctx.recvbuf.iov(src * ctx.eta, ctx.eta),
                (addrs[src], ctx.eta),
            )
        yield from _root_self_copy(ctx)
    # completion: non-roots learn their sendbuf is reusable
    yield from ctx.sm_bcast(("ga-sr-fin", op), True, root=ctx.root)


def throttled_write(ctx: RankCtx, k: int) -> Generator:
    """At most ``k`` concurrent writers into the root's receive buffer."""
    if k < 1:
        raise ValueError("throttle factor must be >= 1")
    op = ctx.next_op()
    payload = ctx.recvbuf.addr if ctx.is_root else None
    dst_addr = yield from ctx.sm_bcast(("ga-tw", op), payload, root=ctx.root)
    order = nonroot_order(ctx.size, ctx.root)
    nwrite = len(order)
    if ctx.is_root:
        yield from _root_self_copy(ctx)
        for pos in range(max(0, nwrite - k), nwrite):
            yield ctx.ctrl_recv(order[pos], ("ga-tw-fin", op))
    else:
        pos = order.index(ctx.rank)
        if pos - k >= 0:
            yield ctx.ctrl_recv(order[pos - k], ("ga-tw-tok", op))
        yield from ctx.cma_write(
            ctx.root,
            ctx.sendbuf.iov(0, ctx.eta),
            (dst_addr + ctx.rank * ctx.eta, ctx.eta),
        )
        if pos + k < nwrite:
            yield ctx.ctrl_send(order[pos + k], ("ga-tw-tok", op))
        if pos >= nwrite - k:
            yield ctx.ctrl_send(ctx.root, ("ga-tw-fin", op))
