"""All-to-all non-personalized: MPI_Allgather (paper Section V-A).

* ``ring_source_read`` / ``ring_source_write`` — in step i every process
  transfers directly with ``(rank -/+ i) mod p``'s *original* buffer:
  always valid, no per-step synchronization, contention-free up to skew.
* ``ring_neighbor(j)`` — the classic ring generalized to stride ``j``
  (valid iff gcd(j, p) == 1): each process reads the block its neighbour
  ``rank - j`` obtained in the previous step, so per-step ready tokens are
  required.  ``j`` controls socket locality: on Broadwell, j=1 keeps most
  reads intra-socket while j=5 crosses sockets (Fig. 10(b)).
* ``recursive_doubling`` — lg p steps for powers of two; for other p a
  fold-in pre-phase and a final pull keep it correct but cost an extra
  full-buffer transfer (the paper: "the advantage ... is lost").
* ``bruck`` — lg p steps for any p, but an initial shift into staging and
  a final p-block rotation add ~2x copies for large messages.

Buffer contract: ``sendbuf`` one ``eta``-byte block, ``recvbuf`` p blocks;
on return every rank's ``recvbuf[r]`` equals rank r's sendbuf.
"""

from __future__ import annotations

import math
from typing import Generator

from repro.core.common import is_power_of_two, rd_held_blocks
from repro.core.phases import fused_ring_read, fused_ring_write
from repro.mpi.communicator import RankCtx

__all__ = [
    "ring_source_read",
    "ring_source_write",
    "ring_neighbor",
    "recursive_doubling",
    "bruck",
]


def _self_copy(ctx: RankCtx) -> Generator:
    """recvbuf[rank] <- sendbuf (skipped for MPI_IN_PLACE)."""
    if not ctx.in_place:
        yield from ctx.memcpy(ctx.recvbuf, ctx.rank * ctx.eta, ctx.sendbuf, 0, ctx.eta)


def ring_source_read(ctx: RankCtx) -> Generator:
    """Step i: read block (rank-i) straight from its owner's sendbuf."""
    op = ctx.next_op()
    addrs = yield from ctx.sm_allgather(("agr", op), ctx.sendbuf.addr)
    yield from _self_copy(ctx)
    eta = ctx.eta
    cmd = fused_ring_read(ctx, addrs, eta) if ctx.phase_fusible() else None
    if cmd is not None:
        yield cmd
    else:
        for i in range(1, ctx.size):
            src = (ctx.rank - i) % ctx.size
            yield from ctx.cma_read(
                src, ctx.recvbuf.iov(src * eta, eta), (addrs[src], eta)
            )
    # sendbufs are being read until the very end: completion barrier
    yield from ctx.sm_barrier(("agr-fin", op))


def ring_source_write(ctx: RankCtx) -> Generator:
    """Step i: write my block into (rank+i)'s recvbuf."""
    op = ctx.next_op()
    addrs = yield from ctx.sm_allgather(("agw", op), ctx.recvbuf.addr)
    yield from _self_copy(ctx)
    eta = ctx.eta
    cmd = fused_ring_write(ctx, addrs, eta) if ctx.phase_fusible() else None
    if cmd is not None:
        yield cmd
    else:
        for i in range(1, ctx.size):
            dst = (ctx.rank + i) % ctx.size
            yield from ctx.cma_write(
                dst, ctx.sendbuf.iov(0, eta), (addrs[dst] + ctx.rank * eta, eta)
            )
    # my recvbuf keeps receiving until the last writer is done
    yield from ctx.sm_barrier(("agw-fin", op))


def ring_neighbor(ctx: RankCtx, j: int = 1) -> Generator:
    """Read from the fixed neighbour rank-j the block it got last step.

    Correct only when gcd(j, p) == 1 (otherwise the walk revisits blocks
    before covering them all) — validated here and asserted by tests.
    """
    p = ctx.size
    if math.gcd(j, p) != 1:
        raise ValueError(f"ring stride j={j} invalid for p={p}: gcd != 1")
    op = ctx.next_op()
    addrs = yield from ctx.sm_allgather(("agn", op), ctx.recvbuf.addr)
    yield from _self_copy(ctx)
    eta = ctx.eta
    left = (ctx.rank - j) % p
    right = (ctx.rank + j) % p
    # token s = "my recvbuf contains everything up to my step s"
    yield ctx.ctrl_send(right, ("agn-tok", op, 0))
    for s in range(1, p):
        yield ctx.ctrl_recv(left, ("agn-tok", op, s - 1))
        block = (ctx.rank - s * j) % p
        yield from ctx.cma_read(
            left, ctx.recvbuf.iov(block * eta, eta), (addrs[left] + block * eta, eta)
        )
        if s < p - 1:
            yield ctx.ctrl_send(right, ("agn-tok", op, s))


def recursive_doubling(ctx: RankCtx) -> Generator:
    """Pairwise doubling; non-powers-of-two fold in and pull out.

    Power-of-two core: in step i, exchange ready tokens with rank^2^i and
    read its accumulated 2^i blocks (one multi-iovec CMA read).  For
    p = m + rem (m the largest power of two): ranks >= m first push their
    block onto rank - m; ranks >= m finally pull the complete result —
    the extra full-size transfer that erases the lg p advantage.
    """
    op = ctx.next_op()
    p, eta, rank = ctx.size, ctx.eta, ctx.rank
    m = 1 << (p.bit_length() - 1)
    if m > p:
        m >>= 1
    rem = p - m
    addrs = yield from ctx.sm_allgather(("agrd", op), ctx.recvbuf.addr)
    yield from _self_copy(ctx)

    if rank >= m:
        # fold my block into my proxy (rank - m), then wait for the result
        proxy = rank - m
        yield from ctx.cma_write(
            proxy, ctx.sendbuf.iov(0, eta), (addrs[proxy] + rank * eta, eta)
        )
        yield ctx.ctrl_send(proxy, ("agrd-fold", op))
        yield ctx.ctrl_recv(proxy, ("agrd-done", op))
        # pull everything except my own block (already in place)
        remote, local = [], []
        for b in range(p):
            if b != rank:
                remote.append((addrs[proxy] + b * eta, eta))
                local.append((ctx.recvbuf.addr + b * eta, eta))
        if eta > 0:
            yield from ctx.cma.process_vm_readv(
                ctx.proc, ctx.pid_of(proxy), local, remote
            )
        yield ctx.ctrl_send(proxy, ("agrd-pulled", op))
        return

    if rank < rem:
        yield ctx.ctrl_recv(rank + m, ("agrd-fold", op))

    steps = m.bit_length() - 1
    for i in range(steps):
        partner = rank ^ (1 << i)
        # partner entered step i <=> it completed step i-1
        yield ctx.ctrl_send(partner, ("agrd-tok", op, i))
        yield ctx.ctrl_recv(partner, ("agrd-tok", op, i))
        blocks = rd_held_blocks(partner, i, m, rem)
        remote = [(addrs[partner] + b * eta, eta) for b in blocks]
        local = [(ctx.recvbuf.addr + b * eta, eta) for b in blocks]
        if eta > 0:
            yield from ctx.cma.process_vm_readv(
                ctx.proc, ctx.pid_of(partner), local, remote
            )

    if rank < rem:
        yield ctx.ctrl_send(rank + m, ("agrd-done", op))
        yield ctx.ctrl_recv(rank + m, ("agrd-pulled", op))


def bruck(ctx: RankCtx) -> Generator:
    """Bruck allgather: ceil(lg p) doubling appends, then a p-block shift."""
    op = ctx.next_op()
    p, eta, rank = ctx.size, ctx.eta, ctx.rank
    tmp = ctx.comm.allocate(rank, max(p * eta, 1), name=f"agbk{op}")
    addrs = yield from ctx.sm_allgather(("agbk", op), tmp.addr)
    yield from ctx.memcpy(tmp, 0, ctx.sendbuf, 0, eta)
    held = 1
    step = 0
    while held < p:
        take = min(held, p - held)
        src = (rank + held) % p
        dst = (rank - held) % p
        # src enters step `step` => its tmp[0:held] is final
        yield ctx.ctrl_send(dst, ("agbk-tok", op, step))
        yield ctx.ctrl_recv(src, ("agbk-tok", op, step))
        yield from ctx.cma_read(
            src, tmp.iov(held * eta, take * eta), (addrs[src], take * eta)
        )
        held += take
        step += 1
    # tmp[i] holds block (rank + i) % p: rotate into rank order
    for i in range(p):
        yield from ctx.memcpy(ctx.recvbuf, ((rank + i) % p) * eta, tmp, i * eta, eta)
    # peers keep reading our tmp until their last step completes
    yield from ctx.sm_barrier(("agbk-fin", op))
