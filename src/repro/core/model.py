"""Closed-form cost model (paper Section II, IV, V formulas).

The model predicts the latency of every algorithm from the Table-IV
parameters: ``T = alpha + n*beta + l*gamma(c)*ceil(n/s)`` per kernel-assisted
transfer, plus the small shared-memory collective terms
:math:`T^{sm}_{coll}`.  It exists for three reasons:

1. **Model validation** (Fig. 12): predicted vs. simulated latency.
2. **Tuning**: the "Proposed" design picks the algorithm/throttle factor
   with the lowest predicted cost for (arch, collective, p, eta).
3. **Analysis**: quick sweeps without paying discrete-event simulation.

The formulas intentionally mirror the paper, including its modelling
simplifications (read and write bandwidths identical, copy time linear in
message size); small protocol costs the paper drops (completion tokens)
are likewise dropped here and show up only as modest validation error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.machine.arch import Architecture
from repro.machine.params import ModelParams

__all__ = ["AnalyticModel", "predict"]


@dataclass
class AnalyticModel:
    """Cost predictor bound to one architecture."""

    arch: Architecture

    # -- small shared-memory terms ------------------------------------------------

    @property
    def p_(self) -> ModelParams:
        return self.arch.params

    def _hop(self) -> float:
        # one control message on the critical path: post overhead + latency
        return 1.5 * self.p_.t_ctrl

    def t_sm_bcast(self, p: int) -> float:
        return math.ceil(math.log2(max(p, 2))) * self._hop()

    def t_sm_gather(self, p: int) -> float:
        return math.ceil(math.log2(max(p, 2))) * self._hop()

    def t_sm_allgather(self, p: int) -> float:
        return self.t_sm_gather(p) + self.t_sm_bcast(p)

    def t_barrier(self, p: int) -> float:
        return math.ceil(math.log2(max(p, 2))) * self._hop()

    # -- transfer primitives ----------------------------------------------------------

    def cma(self, eta: int, c: float = 1.0, beta_factor: float = 1.0) -> float:
        """alpha + n*beta + l*gamma(c)*ceil(n/s)."""
        p = self.p_
        return (
            p.alpha
            + eta * p.beta * beta_factor
            + p.l_page * p.gamma(c) * p.pages(eta)
        )

    def memcpy(self, eta: int) -> float:
        return eta * self.p_.memcpy_beta

    def xpmem_fault_in(self, pages: int, c: float, p: int) -> float:
        """First-touch fault-in of ``pages`` window pages, ``c`` attachers.

        Unlike CMA pinning this acquires the owner's mm lock once per
        *page* (no batching), so the cache-line bounce is paid every page
        and the fitted gamma(c) — which amortises the bounce over
        ``pin_batch`` pages — does not apply.  Mechanistic form instead:
        the ``c`` attachers FIFO round-robin through c*pages one-page
        holds, each inflated by the bounce of the *live* waiter count —
        a full queue (c-1 waiters) for the first pages-1 rounds, then a
        decaying tail (c-1, c-2, ..., 0) as attachers finish their last
        page and leave.
        """
        pp = self.p_
        if c <= 1:
            return pages * pp.l_page
        topo = self.arch.topology
        if topo.sockets == 1:
            kappa = pp.kappa_intra
        else:
            # fraction of the non-root attachers sharing the root's socket
            same = sum(
                1 for r in range(1, p) if topo.socket_of(r) == topo.socket_of(0)
            )
            frac = same / max(p - 1, 1)
            kappa = frac * pp.kappa_intra + (1.0 - frac) * pp.kappa_inter
        full = (pages - 1) * c * (1.0 + kappa * (c - 1.0))
        tail = c + kappa * c * (c - 1.0) / 2.0
        return pp.l_page * (full + tail)

    def xpmem_cold(
        self,
        window_pages: int,
        eta: int,
        c: float = 1.0,
        beta_factor: float = 1.0,
        p: int = 1,
    ) -> float:
        """One cold mapped-window transfer: attach + fault-in + copy.

        The attach map cost scales with the *window* (it builds page-table
        entries for the whole exported region), while fault-in — the only
        part that touches the owner's mm lock, hence the only contended
        part — scales with the pages actually copied.  The copy itself is
        pin-free: no alpha, no lock.
        """
        pp = self.p_
        return (
            pp.t_xpmem_attach
            + window_pages * pp.t_xpmem_page
            + self.xpmem_fault_in(pp.pages(eta), c, p)
            + self.xpmem_copy(eta, beta_factor)
        )

    def xpmem_copy(self, eta: int, beta_factor: float = 1.0) -> float:
        """One warm (steady-state) mapped-window copy: pin-free."""
        p = self.p_
        return p.t_xpmem_copy + eta * p.beta * beta_factor

    def shm_copy2(self, eta: int) -> float:
        """Two-copy shared-memory transfer of eta bytes (chunked)."""
        p = self.p_
        chunks = max(1, math.ceil(eta / p.shm_chunk))
        return 2 * (eta * p.shm_beta + chunks * p.shm_chunk_overhead)

    def rndv_overhead(self) -> float:
        """RTS + CTS + FIN on the critical path."""
        return 3 * self._hop()

    # -- socket-aware copy factors (the simulator's inter_socket_beta) ---------

    def span_factor(self, p: int, root: int = 0) -> float:
        """Copy slowdown when concurrent peers of ``root`` gate completion:
        once the job spans sockets, the slowest (cross-socket) transfer
        paces every wave."""
        topo = self.arch.topology
        rs = topo.socket_of(root)
        crosses = any(topo.socket_of(r) != rs for r in range(p))
        return self.p_.inter_socket_beta if crosses else 1.0

    def mix_factor(self, p: int) -> float:
        """Average copy slowdown when every rank talks to every other rank
        (ring/pairwise schedules): weighted by the cross-socket fraction."""
        topo = self.arch.topology
        if topo.sockets == 1:
            return 1.0
        same = sum(
            1 for r in range(1, p) if topo.socket_of(r) == topo.socket_of(0)
        )
        inter_frac = 1.0 - same / max(p - 1, 1)
        return 1.0 + inter_frac * (self.p_.inter_socket_beta - 1.0)

    # -- scatter (Section IV-A) ----------------------------------------------------

    def scatter_parallel_read(self, p: int, eta: int) -> float:
        return (
            self.t_sm_bcast(p)
            + self.cma(eta, c=p - 1, beta_factor=self.span_factor(p))
            + self.t_sm_gather(p)
        )

    def scatter_sequential_write(self, p: int, eta: int, in_place=False) -> float:
        return (
            (0.0 if in_place else self.memcpy(eta))
            + self.t_sm_gather(p)
            + (p - 1) * self.cma(eta, c=1, beta_factor=self.mix_factor(p))
            + self.t_sm_bcast(p)
        )

    def scatter_throttled(self, p: int, eta: int, k: int) -> float:
        waves = math.ceil((p - 1) / k)
        return self.t_sm_bcast(p) + waves * self.cma(
            eta, c=k, beta_factor=self.span_factor(p)
        )

    def scatter_xpmem(self, p: int, eta: int) -> float:
        """Parallel read through the root's window: every reader attaches
        the whole p-block window cold and faults its own block's pages in
        a p-1-deep convoy on the root's mm lock (Huang et al.'s regime:
        map cost up front, pin-free copy after)."""
        pp = self.p_
        return (
            self.t_sm_bcast(p)
            + pp.t_xpmem_make
            + self.xpmem_cold(
                pp.pages(p * eta), eta, c=p - 1,
                beta_factor=self.span_factor(p), p=p,
            )
            + self.t_sm_gather(p)
        )

    # -- gather (Section IV-B): mirror images --------------------------------------

    def gather_parallel_write(self, p: int, eta: int) -> float:
        return self.scatter_parallel_read(p, eta)

    def gather_sequential_read(self, p: int, eta: int, in_place=False) -> float:
        return self.scatter_sequential_write(p, eta, in_place)

    def gather_throttled(self, p: int, eta: int, k: int) -> float:
        return self.scatter_throttled(p, eta, k)

    def gather_xpmem(self, p: int, eta: int) -> float:
        return self.scatter_xpmem(p, eta)

    # -- alltoall (Section IV-C) -----------------------------------------------------

    def alltoall_pairwise(self, p: int, eta: int) -> float:
        return (
            self.t_sm_allgather(p)
            + self.memcpy(eta)
            + (p - 1) * self.cma(eta, c=1, beta_factor=self.mix_factor(p))
            + self.t_barrier(p)
        )

    def alltoall_pairwise_pt2pt(self, p: int, eta: int) -> float:
        return self.alltoall_pairwise(p, eta) + (p - 1) * self.rndv_overhead()

    def alltoall_pairwise_shm(self, p: int, eta: int) -> float:
        return (
            self.memcpy(eta)
            + (p - 1) * (self.shm_copy2(eta) + self._hop())
        )

    def alltoall_xpmem(self, p: int, eta: int) -> float:
        """Pairwise over windows: p-1 cold attaches of whole p-block
        windows (the dominant cost at scale), each followed by a
        single-block fault-in and pin-free copy, contention-free."""
        pp = self.p_
        f = self.mix_factor(p)
        return (
            self.t_sm_allgather(p)
            + pp.t_xpmem_make
            + self.memcpy(eta)
            + (p - 1) * self.xpmem_cold(
                pp.pages(p * eta), eta, c=1, beta_factor=f
            )
            + self.t_barrier(p)
        )

    def alltoall_bruck(self, p: int, eta: int) -> float:
        steps = math.ceil(math.log2(p)) if p > 1 else 0
        per_step = p // 2 * eta
        t = 2 * self.memcpy(p * eta)  # initial + final rotations
        for _ in range(steps):
            t += self.t_barrier(p) + self.cma(per_step, c=1)
            t += self.memcpy((p - p // 2) * eta)  # blocks kept local
        return t

    # -- allgather (Section V-A) -------------------------------------------------------

    def allgather_ring_source(self, p: int, eta: int, in_place=False) -> float:
        return (
            (0.0 if in_place else self.memcpy(eta))
            + self.t_sm_allgather(p)
            + (p - 1) * self.cma(eta, c=1, beta_factor=self.mix_factor(p))
            + self.t_barrier(p)
        )

    def allgather_ring_neighbor(self, p: int, eta: int, j: int = 1) -> float:
        """Stride-j ring: token per step plus the inter-socket beta penalty
        on the fraction of neighbour links that cross sockets."""
        topo = self.arch.topology
        pairs = [(r, (r - j) % p) for r in range(p)]
        inter = 1.0 - topo.intra_socket_fraction(pairs)
        factor = 1.0 + inter * (self.p_.inter_socket_beta - 1.0)
        return (
            self.memcpy(eta)
            + self.t_sm_allgather(p)
            + (p - 1) * (self.cma(eta, c=1, beta_factor=factor) + self._hop())
        )

    def allgather_xpmem_ring(self, p: int, eta: int) -> float:
        """Ring-source-read over windows: one-block windows, so the p-1
        cold attaches are cheap and every copy is pin-free — the lane's
        best case (no syscall alpha on any of the p-1 steps)."""
        pp = self.p_
        return (
            self.memcpy(eta)
            + pp.t_xpmem_make
            + self.t_sm_allgather(p)
            + (p - 1) * self.xpmem_cold(
                pp.pages(eta), eta, c=1, beta_factor=self.mix_factor(p)
            )
            + self.t_barrier(p)
        )

    def allgather_recursive_doubling(self, p: int, eta: int) -> float:
        m = 1 << (p.bit_length() - 1)
        if m > p:
            m >>= 1
        steps = m.bit_length() - 1
        pp = self.p_
        t = (
            self.memcpy(eta)
            + self.t_sm_allgather(p)
            + steps * pp.alpha
            + (m - 1) * (eta * pp.beta + pp.l_page * pp.pages(eta))
        )
        if m != p:
            # fold in one block, pull out the whole result
            t += self.cma(eta, c=1) + self.cma(p * eta, c=1) + 2 * self._hop()
        return t

    def allgather_bruck(self, p: int, eta: int) -> float:
        steps = math.ceil(math.log2(p)) if p > 1 else 0
        pp = self.p_
        return (
            self.memcpy(eta)
            + self.t_sm_allgather(p)
            + steps * (pp.alpha + 2 * self._hop())
            + (p - 1) * (eta * pp.beta + pp.l_page * pp.pages(eta))
            + self.memcpy(p * eta)  # final rotation
            + self.t_barrier(p)
        )

    # -- bcast (Section V-B) ---------------------------------------------------------------

    def bcast_direct_read(self, p: int, eta: int) -> float:
        return (
            self.t_sm_bcast(p)
            + self.cma(eta, c=p - 1, beta_factor=self.span_factor(p))
            + self.t_sm_gather(p)
        )

    def bcast_direct_write(self, p: int, eta: int) -> float:
        return (
            self.t_sm_gather(p)
            + (p - 1) * self.cma(eta, c=1, beta_factor=self.mix_factor(p))
            + self.t_sm_bcast(p)
        )

    def bcast_xpmem(self, p: int, eta: int) -> float:
        """Direct read through the root's window: the window is one
        payload, so map + fault-in both scale with pages(eta) and all
        p-1 readers fault every page themselves (fault tracking is per
        attacher), convoying on the root's mm lock."""
        pp = self.p_
        return (
            self.t_sm_bcast(p)
            + pp.t_xpmem_make
            + self.xpmem_cold(
                pp.pages(eta), eta, c=p - 1,
                beta_factor=self.span_factor(p), p=p,
            )
            + self.t_sm_gather(p)
        )

    def bcast_knomial(self, p: int, eta: int, k: int) -> float:
        levels = math.ceil(math.log(p, k)) if p > 1 else 0
        # <= k-1 concurrent readers per source; two tokens per level
        return self.t_sm_allgather(p) + levels * (
            self.cma(eta, c=min(k - 1, p - 1), beta_factor=self.mix_factor(p))
            + 2 * self._hop()
        )

    def bcast_scatter_allgather(self, p: int, eta: int) -> float:
        chunk = math.ceil(eta / p)
        f = self.mix_factor(p)
        scatter = (p - 1) * self.cma(chunk, c=1, beta_factor=f)
        allgather = (p - 1) * self.cma(chunk, c=1, beta_factor=f)
        return (
            self.t_sm_allgather(p) + scatter + allgather + 2 * self.t_barrier(p)
        )

    # -- reduction family (extension: paper's future work) ------------------------

    def combine(self, eta: int) -> float:
        return eta * self.p_.reduce_beta

    def reduce_gather_throttled(self, p: int, eta: int, k: int) -> float:
        waves = math.ceil((p - 1) / k)
        return (
            self.t_sm_bcast(p)
            + waves * self.cma(eta, c=k, beta_factor=self.span_factor(p))
            + (p - 1) * self.combine(eta)  # root combines serially
        )

    def reduce_binomial(self, p: int, eta: int) -> float:
        levels = math.ceil(math.log2(max(p, 2)))
        return self.t_sm_allgather(p) + levels * (
            self.cma(eta, c=1, beta_factor=self.mix_factor(p))
            + self.combine(eta)
            + 2 * self._hop()
        )

    def _ring_reduce_scatter(self, p: int, eta: int) -> float:
        chunk = math.ceil(eta / p)
        return (
            self.memcpy(eta)
            + self.t_sm_allgather(p)
            + (p - 1)
            * (self.cma(chunk, c=1, beta_factor=self.mix_factor(p))
               + self.combine(chunk) + self._hop())
        )

    def reduce_ring_rs(self, p: int, eta: int) -> float:
        chunk = math.ceil(eta / p)
        collect = (p - 1) * (self.cma(chunk, c=1) + 2 * self._hop())
        return self._ring_reduce_scatter(p, eta) + collect

    def allreduce_reduce_bcast(self, p: int, eta: int, k: int = 4) -> float:
        return self.reduce_binomial(p, eta) + self.bcast_knomial(p, eta, k)

    def allreduce_ring(self, p: int, eta: int) -> float:
        chunk = math.ceil(eta / p)
        allgather = (p - 1) * self.cma(chunk, c=1, beta_factor=self.mix_factor(p))
        return (
            self._ring_reduce_scatter(p, eta) + allgather + 2 * self.t_barrier(p)
        )

    def allreduce_recursive_doubling(self, p: int, eta: int) -> float:
        m = 1 << (p.bit_length() - 1)
        if m > p:
            m >>= 1
        steps = m.bit_length() - 1
        t = self.memcpy(eta) + self.t_sm_allgather(p) + steps * (
            self.cma(eta, c=1, beta_factor=self.mix_factor(p))
            + self.combine(eta)
            + self.memcpy(eta)  # double-buffer generation copy
            + 4 * self._hop()
        )
        if m != p:
            t += 2 * self.cma(eta, c=1) + self.combine(eta) + 4 * self._hop()
        return t

    # -- shm / pt2pt baseline designs (Section VII comparisons) ----------------------

    def bcast_chain(self, p: int, eta: int, segsize: int = 128 * 1024) -> float:
        """Segmented pipeline: fill time + (nseg-1) steady-state segments."""
        nseg = max(1, math.ceil(eta / segsize))
        seg = min(segsize, eta)
        per_seg = (
            self.cma(seg, c=1, beta_factor=self.mix_factor(p)) + self._hop()
        )
        return self.t_sm_allgather(p) + (nseg + p - 2) * per_seg

    def bcast_shm_slab(self, p: int, eta: int) -> float:
        """Slab broadcast: pipelined copy-in + concurrent copy-out, two
        copies per byte, cache knee past shm_cache_bytes."""
        pp = self.p_
        factor = pp.shm_large_factor if eta > pp.shm_cache_bytes else 1.0
        beta = pp.shm_beta * factor
        chunks = max(1, math.ceil(eta / pp.shm_chunk))
        # reader lags the root by one chunk; both stream at beta
        return (
            eta * beta
            + min(eta, pp.shm_chunk) * beta
            + 2 * chunks * pp.shm_chunk_overhead
            + self._hop()
        )

    def bcast_binomial_p2p(self, p: int, eta: int, shm: bool) -> float:
        steps = math.ceil(math.log2(max(p, 2)))
        per = self.shm_copy2(eta) if shm else self.cma(eta, c=1) + self.rndv_overhead()
        return steps * (per + self._hop())

    def scatter_binomial_p2p(self, p: int, eta: int, shm: bool) -> float:
        # root pushes (p-1) blocks total, halved per level, store-and-forward
        total_bytes = 0
        mask = 1 << (max(p - 1, 1).bit_length() - 1)
        t = self.memcpy(p * eta)  # staging reorder at the root
        while mask >= 1:
            sub = min(mask, p - mask) if mask < p else 0
            if sub > 0:
                n = sub * eta
                t += self.shm_copy2(n) if shm else self.cma(n, c=1) + self.rndv_overhead()
                total_bytes += n
            mask >>= 1
        return t

    def gather_binomial_p2p(self, p: int, eta: int, shm: bool) -> float:
        return self.scatter_binomial_p2p(p, eta, shm) + self.memcpy(p * eta)

    def scatter_fanout_rndv(self, p: int, eta: int) -> float:
        # root RTSes everyone; p-1 concurrent reads (contention-unaware)
        return (p - 1) * self._hop() + self.cma(eta, c=p - 1) + self._hop()

    def gather_fanin_rndv(self, p: int, eta: int) -> float:
        # root drains p-1 rendezvous receives back to back
        return (p - 1) * (2 * self._hop() + self.cma(eta, c=1)) + self.memcpy(eta)

    def allgather_ring_p2p(self, p: int, eta: int, shm: bool) -> float:
        per = self.shm_copy2(eta) if shm else self.cma(eta, c=1) + self.rndv_overhead()
        return self.memcpy(eta) + (p - 1) * per

    # -- dispatch ------------------------------------------------------------------

    def predict(
        self, collective: str, algorithm: str, p: int, eta: int, **params
    ) -> float:
        """Predict latency (us) by registry-style names."""
        try:
            return _PREDICT_DISPATCH[(collective, algorithm)](self, p, eta, params)
        except KeyError:
            # either an unknown (collective, algorithm) pair or a missing
            # required tuning parameter — both mean "no model here"
            raise KeyError(f"no model for {collective}/{algorithm}") from None


#: (collective, algorithm) -> bound cost form.  Built once at import: the
#: tuner's candidate pricing and the serve-layer table compiler call
#: ``predict`` millions of times, so the dispatch must not be rebuilt (34
#: closures plus a dict) per call.
_PREDICT_DISPATCH: dict[tuple[str, str], Callable] = {
    ("scatter", "parallel_read"): lambda m, p, eta, prm: m.scatter_parallel_read(p, eta),
    ("scatter", "sequential_write"): lambda m, p, eta, prm: m.scatter_sequential_write(p, eta),
    ("scatter", "throttled_read"): lambda m, p, eta, prm: m.scatter_throttled(p, eta, prm["k"]),
    ("scatter", "xpmem_read"): lambda m, p, eta, prm: m.scatter_xpmem(p, eta),
    ("gather", "parallel_write"): lambda m, p, eta, prm: m.gather_parallel_write(p, eta),
    ("gather", "sequential_read"): lambda m, p, eta, prm: m.gather_sequential_read(p, eta),
    ("gather", "throttled_write"): lambda m, p, eta, prm: m.gather_throttled(p, eta, prm["k"]),
    ("gather", "xpmem_write"): lambda m, p, eta, prm: m.gather_xpmem(p, eta),
    ("alltoall", "pairwise"): lambda m, p, eta, prm: m.alltoall_pairwise(p, eta),
    ("alltoall", "pairwise_pt2pt"): lambda m, p, eta, prm: m.alltoall_pairwise_pt2pt(p, eta),
    ("alltoall", "pairwise_shm"): lambda m, p, eta, prm: m.alltoall_pairwise_shm(p, eta),
    ("alltoall", "bruck"): lambda m, p, eta, prm: m.alltoall_bruck(p, eta),
    ("alltoall", "xpmem_pairwise"): lambda m, p, eta, prm: m.alltoall_xpmem(p, eta),
    ("allgather", "ring_source_read"): lambda m, p, eta, prm: m.allgather_ring_source(p, eta),
    ("allgather", "ring_source_write"): lambda m, p, eta, prm: m.allgather_ring_source(p, eta),
    ("allgather", "ring_neighbor"): lambda m, p, eta, prm: m.allgather_ring_neighbor(p, eta, prm.get("j", 1)),
    ("allgather", "recursive_doubling"): lambda m, p, eta, prm: m.allgather_recursive_doubling(p, eta),
    ("allgather", "bruck"): lambda m, p, eta, prm: m.allgather_bruck(p, eta),
    ("allgather", "xpmem_ring"): lambda m, p, eta, prm: m.allgather_xpmem_ring(p, eta),
    ("bcast", "direct_read"): lambda m, p, eta, prm: m.bcast_direct_read(p, eta),
    ("bcast", "direct_write"): lambda m, p, eta, prm: m.bcast_direct_write(p, eta),
    ("bcast", "knomial"): lambda m, p, eta, prm: m.bcast_knomial(p, eta, prm.get("k", 4)),
    ("bcast", "scatter_allgather"): lambda m, p, eta, prm: m.bcast_scatter_allgather(p, eta),
    ("bcast", "xpmem_read"): lambda m, p, eta, prm: m.bcast_xpmem(p, eta),
    ("bcast", "shm_slab"): lambda m, p, eta, prm: m.bcast_shm_slab(p, eta),
    ("bcast", "chain"): lambda m, p, eta, prm: m.bcast_chain(p, eta, prm.get("segsize", 128 * 1024)),
    ("reduce", "gather_throttled"): lambda m, p, eta, prm: m.reduce_gather_throttled(p, eta, prm.get("k", 8)),
    ("reduce", "binomial"): lambda m, p, eta, prm: m.reduce_binomial(p, eta),
    ("reduce", "ring_rs"): lambda m, p, eta, prm: m.reduce_ring_rs(p, eta),
    ("allreduce", "reduce_bcast"): lambda m, p, eta, prm: m.allreduce_reduce_bcast(p, eta, prm.get("k", 4)),
    ("allreduce", "ring"): lambda m, p, eta, prm: m.allreduce_ring(p, eta),
    ("allreduce", "recursive_doubling"): lambda m, p, eta, prm: m.allreduce_recursive_doubling(p, eta),
}


def predict(
    arch: Architecture, collective: str, algorithm: str, p: int, eta: int, **params
) -> float:
    """Module-level convenience wrapper."""
    return AnalyticModel(arch).predict(collective, algorithm, p, eta, **params)
