"""Parameter extraction: Table III step timings -> Table IV constants,
and the Fig. 5 nonlinear-least-squares fit of the contention factor.

The pipeline mirrors the paper exactly:

1. Trigger individual CMA steps with iovec games (Table III) and derive
   ``alpha = T2``, ``l = (T3 - T2) / N``, ``beta = (T4 - T3) / (N*s)``.
2. Measure per-page lock+pin time for several page counts and reader
   counts; the ratio to the single-reader value is the *measured* gamma.
3. Fit ``gamma(c) = 1 + g1*(c-1) + g2*(c-1)^2`` with
   ``scipy.optimize.curve_fit`` (Levenberg-Marquardt — the Marquardt
   citation in the paper), optionally with the socket-spill knee.

Because the simulator's contention is *emergent* (queueing on a bounced
lock, nothing closed-form), the fit is a real inference step: tests check
it recovers the expected family, not a hard-coded answer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import curve_fit

from repro.bench import microbench
from repro.exec.sweep import cached_call, sweep_microbench
from repro.machine.arch import Architecture

__all__ = [
    "StepTimes",
    "BaseParams",
    "GammaSample",
    "GammaFit",
    "StreamingGammaFit",
    "measure_steps",
    "derive_base_params",
    "measure_gamma",
    "fit_gamma",
    "fit_architecture",
    "FittedArchitecture",
]


@dataclass(frozen=True)
class StepTimes:
    """Table III measurements for one page count: T1 <= T2 <= T3 <= T4."""

    pages: int
    t1_syscall: float
    t2_check: float
    t3_lock_pin: float
    t4_copy: float


@dataclass(frozen=True)
class BaseParams:
    """Table IV's uncontended columns, as derived from step timings."""

    alpha: float
    l_page: float
    beta: float  # us per byte
    page_size: int

    @property
    def beta_gbps(self) -> float:
        return 1.0 / (self.beta * 1000.0)


@dataclass(frozen=True)
class GammaSample:
    pages: int
    readers: int
    gamma: float  # measured lock+pin time ratio vs a single reader


@dataclass(frozen=True)
class GammaFit:
    """gamma(c) = 1 + g1*(c-1) + g2*(c-1)^2 [+ spill*(c-knee)^2 past knee]."""

    g1: float
    g2: float
    spill: float = 0.0
    knee: int = 10 ** 9
    residual: float = 0.0

    def __call__(self, c: float) -> float:
        if c <= 1:
            return 1.0
        x = c - 1.0
        g = 1.0 + self.g1 * x + self.g2 * x * x
        over = c - self.knee
        if over > 0:
            g += self.spill * over * over
        return g


def measure_steps(arch: Architecture, pages: int) -> StepTimes:
    """Run the four Table III configurations for one page count."""
    return StepTimes(
        pages=pages,
        t1_syscall=microbench.step_timing(arch, "syscall", pages),
        t2_check=microbench.step_timing(arch, "check", pages),
        t3_lock_pin=microbench.step_timing(arch, "lock_pin", pages),
        t4_copy=microbench.step_timing(arch, "copy", pages),
    )


def derive_base_params(
    arch: Architecture, page_counts: Sequence[int] = (4, 16, 64)
) -> BaseParams:
    """alpha = T2; l and beta from least-squares slopes over page counts."""
    steps = [measure_steps(arch, n) for n in page_counts]
    alpha = float(np.mean([s.t2_check for s in steps]))
    ns = np.array([s.pages for s in steps], dtype=float)
    lock = np.array([s.t3_lock_pin - s.t2_check for s in steps])
    copy = np.array([s.t4_copy - s.t3_lock_pin for s in steps])
    # slopes through the origin: sum(x*y)/sum(x*x)
    l_page = float(lock @ ns / (ns @ ns))
    s = arch.params.page_size
    beta = float(copy @ ns / (ns @ ns)) / s
    return BaseParams(alpha=alpha, l_page=l_page, beta=beta, page_size=s)


def measure_gamma(
    arch: Architecture,
    page_counts: Sequence[int] = (10, 50, 100),
    reader_counts: Optional[Sequence[int]] = None,
) -> list[GammaSample]:
    """Per-page lock+pin ratios across page and reader counts (Fig. 5 data)."""
    if reader_counts is None:
        top = min(arch.default_procs - 1, 64)
        reader_counts = sorted(
            {1, 2, 4}
            | {c for c in (8, 12, 16, 24, 32, 48, 64) if c <= top}
            | {top}
        )
    # Fan the (readers, pages) grid out through the sweep executor: each
    # point builds a fresh node, so the measured times are bit-identical
    # to the serial loop this used to be.
    uniq: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for pages in page_counts:
        for c in (1, *reader_counts):
            if (c, pages) not in seen:
                seen.add((c, pages))
                uniq.append((c, pages))
    times = dict(
        zip(
            uniq,
            sweep_microbench(
                "lock_pin_per_page", [(arch, (c, pages), {}) for c, pages in uniq]
            ),
        )
    )
    samples = []
    for pages in page_counts:
        base = times[(1, pages)]
        for c in reader_counts:
            samples.append(
                GammaSample(pages=pages, readers=c, gamma=times[(c, pages)] / base)
            )
    return samples


def fit_gamma(
    samples: Sequence[GammaSample], knee: Optional[int] = None
) -> GammaFit:
    """NLLS fit of the gamma polynomial (optionally with a socket knee).

    The paper observes gamma is independent of the page count, so samples
    from all page counts are pooled into one fit.
    """
    if not samples:
        raise ValueError("no gamma samples to fit")
    return cached_call(
        "fitting.fit_gamma",
        (tuple(samples), knee),
        lambda: _fit_gamma_fresh(samples, knee),
    )


def _fit_gamma_fresh(
    samples: Sequence[GammaSample], knee: Optional[int]
) -> GammaFit:
    c = np.array([s.readers for s in samples], dtype=float)
    y = np.array([s.gamma for s in samples], dtype=float)

    if knee is None:

        def f(c, g1, g2):
            x = np.maximum(c - 1.0, 0.0)
            return 1.0 + g1 * x + g2 * x * x

        p0 = (1.0, 0.05)
        bounds = ([0.0, 0.0], [np.inf, np.inf])
    else:

        def f(c, g1, g2, spill):
            x = np.maximum(c - 1.0, 0.0)
            over = np.maximum(c - knee, 0.0)
            return 1.0 + g1 * x + g2 * x * x + spill * over * over

        p0 = (1.0, 0.05, 0.01)
        bounds = ([0.0, 0.0, 0.0], [np.inf, np.inf, np.inf])

    popt, _ = curve_fit(f, c, y, p0=p0, bounds=bounds, maxfev=20_000)
    resid = float(np.sqrt(np.mean((f(c, *popt) - y) ** 2)))
    if knee is None:
        return GammaFit(g1=popt[0], g2=popt[1], residual=resid)
    return GammaFit(
        g1=popt[0], g2=popt[1], spill=popt[2], knee=knee, residual=resid
    )


@dataclass
class StreamingGammaFit:
    """Incrementally refit gamma(c) as telemetry samples stream in.

    The paper's gamma is fitted once from a dedicated microbench sweep;
    in service, new lock-contention evidence keeps arriving (fault-profile
    sweeps, multi-tenant telemetry).  ``observe`` folds a batch of new
    :class:`GammaSample` points into the pooled sample set and re-runs the
    NLLS fit over the pool — the samples are the sufficient statistic for
    the fit, so pooling *is* the incremental update, and because
    :func:`fit_gamma` memoises through the active exec-context cache, a
    replayed pool costs a lookup, not a solve.
    """

    knee: Optional[int] = None
    samples: list[GammaSample] = field(default_factory=list)
    fit: Optional[GammaFit] = None
    refits: int = 0

    def seed(self, samples: Sequence[GammaSample], fit: Optional[GammaFit] = None) -> None:
        """Initialise the pool (e.g. from the Table-IV pipeline's samples)
        without counting a refit; ``fit`` records the fit they produced."""
        self.samples = list(samples)
        self.fit = fit

    def observe(self, new_samples: Sequence[GammaSample]) -> GammaFit:
        """Fold ``new_samples`` into the pool and refit; returns the fit."""
        self.samples.extend(new_samples)
        if not self.samples:
            raise ValueError("no gamma samples to fit")
        self.fit = fit_gamma(self.samples, knee=self.knee)
        self.refits += 1
        return self.fit


@dataclass
class FittedArchitecture:
    """Everything Table IV reports for one machine, plus fit quality."""

    arch_name: str
    base: BaseParams
    gamma: GammaFit
    samples: list[GammaSample] = field(default_factory=list)

    def as_table_row(self) -> dict[str, str]:
        g = self.gamma
        spill = f" + {g.spill:.3f}(c-{g.knee})^2 [c>{g.knee}]" if g.spill else ""
        return {
            "alpha": f"{self.base.alpha:.2f} us",
            "beta": f"{self.base.beta_gbps:.2f} GBps",
            "l": f"{self.base.l_page:.2f} us",
            "s": f"{self.base.page_size:,} Bytes",
            "gamma(c)": f"1 + {g.g1:.2f}(c-1) + {g.g2:.3f}(c-1)^2{spill}",
        }


def fit_architecture(
    arch: Architecture,
    page_counts: Sequence[int] = (10, 50, 100),
    reader_counts: Optional[Sequence[int]] = None,
) -> FittedArchitecture:
    """The full Table IV pipeline for one architecture.

    The whole pipeline's output is memoised in the active exec context's
    cache (key: arch + axes + code-version salt), so repeated
    ``Tuner.calibrated`` constructions across figures become lookups.
    """
    return cached_call(
        "fitting.fit_architecture",
        (
            arch,
            tuple(page_counts),
            tuple(reader_counts) if reader_counts is not None else None,
        ),
        lambda: _fit_architecture_fresh(arch, page_counts, reader_counts),
    )


def _fit_architecture_fresh(
    arch: Architecture,
    page_counts: Sequence[int],
    reader_counts: Optional[Sequence[int]],
) -> FittedArchitecture:
    base = derive_base_params(arch)
    samples = measure_gamma(arch, page_counts, reader_counts)
    knee = None
    if arch.topology.sockets > 1:
        knee = arch.topology.cores_per_socket
    gamma = fit_gamma(samples, knee=knee)
    return FittedArchitecture(
        arch_name=arch.name, base=base, gamma=gamma, samples=samples
    )
