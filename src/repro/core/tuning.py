"""Algorithm selection: the paper's "Proposed" design.

"Our design selects the appropriate CMA algorithm for a given collective
based on the architecture and message size" (Section VII) — plus, on
Broadwell, falling back to shared memory for Bcast below ~2 MB where the
p-vs-p+1 copy-count argument favours it (Section VII-F).

Selection is model-driven: the :class:`~repro.core.model.AnalyticModel`
prices every candidate (algorithm x tuning parameter) and the tuner picks
the cheapest valid one.  That makes the throttle factor an *output* of the
fitted contention factor, not a magic constant — the ablation bench checks
the model's pick against exhaustive simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.core.model import AnalyticModel
from repro.core.registry import get_algorithm
from repro.core.runner import CollectiveSpec, CollectiveResult, run_collective
from repro.machine.arch import Architecture

__all__ = ["Tuner", "Choice", "apply_gamma"]


def apply_gamma(arch: Architecture, fit) -> Architecture:
    """A copy of ``arch`` whose model prices contention with ``fit``.

    ``fit`` is a :class:`~repro.core.fitting.GammaFit` (duck-typed: g1/g2/
    spill/knee).  Used by :meth:`Tuner.calibrated` and by the serve layer's
    streaming refit, which must rebuild tuners from fresh telemetry fits
    without re-running the whole Table-IV pipeline.
    """
    from dataclasses import replace as _replace

    params = arch.params.with_updates(
        gamma_g1=fit.g1,
        gamma_g2=fit.g2,
        gamma_spill=fit.spill,
        spill_point=fit.knee,
    )
    return _replace(arch, params=params)


@dataclass(frozen=True)
class Choice:
    """The tuner's pick for one (collective, p, eta) point."""

    algorithm: str
    params: tuple  # sorted (key, value) pairs — hashable for caching
    predicted_us: float

    @property
    def params_dict(self) -> dict:
        return dict(self.params)

    def describe(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.algorithm}({extra})" if extra else self.algorithm


class Tuner:
    """Model-driven algorithm selection for one architecture.

    ``choose`` memoises per instance behind a *bounded* LRU
    (``choose_cache_size`` entries).  The memo used to be a
    ``functools.lru_cache`` on the method itself, which keys on ``self``:
    one shared class-level cache that pinned every tuner ever constructed
    (and its architecture tables) for the life of the process — under
    sweep-scale query mixes that grows without limit.  The per-instance
    cache dies with the tuner, and its hit/miss counters are exposed via
    :meth:`choose_cache_stats` so the serve layer can report how much of a
    table compile was memo traffic.
    """

    #: default per-instance ``choose`` memo bound
    CHOOSE_CACHE_SIZE = 4096

    def __init__(self, arch: Architecture, choose_cache_size: Optional[int] = None):
        self.arch = arch
        self.model = AnalyticModel(arch)
        if choose_cache_size is None:
            choose_cache_size = self.CHOOSE_CACHE_SIZE
        self._choose_cached = lru_cache(maxsize=choose_cache_size)(
            self._choose_fresh
        )

    def choose_cache_stats(self) -> dict:
        """Hit/miss/size counters of the bounded ``choose`` memo."""
        info = self._choose_cached.cache_info()
        return {
            "hits": info.hits,
            "misses": info.misses,
            "size": info.currsize,
            "maxsize": info.maxsize,
        }

    @classmethod
    def calibrated(cls, arch: Architecture) -> "Tuner":
        """Build a tuner whose model uses *fitted* parameters.

        Runs the Table-III/Fig-5 measurement pipeline on the simulated
        machine and replaces the preset gamma polynomial (and alpha/l/beta)
        with the fitted values, so the tuner prices candidates with the
        same contention behaviour the simulator actually exhibits.
        """
        from repro.core.fitting import fit_architecture

        fitted = fit_architecture(arch)
        return cls(apply_gamma(arch, fitted.gamma))

    # -- candidate enumeration ---------------------------------------------------

    def candidates(self, collective: str, p: int) -> list[tuple[str, dict]]:
        ks = [k for k in self.arch.throttle_candidates if k <= max(p - 1, 1)]
        if collective == "scatter":
            out = [("parallel_read", {}), ("sequential_write", {})]
            out += [("throttled_read", {"k": k}) for k in ks]
            out.append(("xpmem_read", {}))
            return out
        if collective == "gather":
            out = [("parallel_write", {}), ("sequential_read", {})]
            out += [("throttled_write", {"k": k}) for k in ks]
            out.append(("xpmem_write", {}))
            return out
        if collective == "alltoall":
            return [("pairwise", {}), ("bruck", {}), ("xpmem_pairwise", {})]
        if collective == "allgather":
            out = [
                ("ring_source_read", {}),
                ("ring_neighbor", {"j": 1}),
                ("recursive_doubling", {}),
                ("bruck", {}),
                ("xpmem_ring", {}),
            ]
            return out
        if collective == "bcast":
            out = [
                ("direct_read", {}),
                ("direct_write", {}),
                ("scatter_allgather", {}),
                ("xpmem_read", {}),
            ]
            out += [("knomial", {"k": k}) for k in (2, 4, 8) if k <= p]
            out += [
                ("chain", {"segsize": seg})
                for seg in (64 * 1024, 256 * 1024)
            ]
            # the shared-memory fallback (Section VII-F: shm wins small)
            out.append(("shm_slab", {}))
            return out
        if collective == "reduce":
            out = [("binomial", {}), ("ring_rs", {})]
            out += [("gather_throttled", {"k": k}) for k in ks]
            return out
        if collective == "allreduce":
            return [
                ("reduce_bcast", {"k": 4}),
                ("ring", {}),
                ("recursive_doubling", {}),
            ]
        raise KeyError(f"unknown collective {collective!r}")

    # -- selection ------------------------------------------------------------------

    def choose(self, collective: str, eta: int, p: Optional[int] = None) -> Choice:
        p = p or self.arch.default_procs
        return self._choose_cached(collective, eta, p)

    def _choose_fresh(self, collective: str, eta: int, p: int) -> Choice:
        best: Optional[Choice] = None
        for alg, params in self.candidates(collective, p):
            info = get_algorithm(collective, alg)
            if info.check(p, params):
                continue  # invalid at this p (e.g. gcd constraint)
            cost = self._predict(collective, alg, p, eta, params)
            if cost is None:
                continue
            choice = Choice(alg, tuple(sorted(params.items())), cost)
            if best is None or cost < best.predicted_us:
                best = choice
        assert best is not None, f"no valid candidate for {collective} p={p}"
        return best

    def _predict(
        self, collective: str, alg: str, p: int, eta: int, params: dict
    ) -> Optional[float]:
        try:
            return self.model.predict(collective, alg, p, eta, **params)
        except KeyError:
            return None

    # -- execution ------------------------------------------------------------------

    def spec(
        self,
        collective: str,
        eta: int,
        procs: Optional[int] = None,
        root: int = 0,
        verify: bool = False,
    ) -> CollectiveSpec:
        p = procs or self.arch.default_procs
        choice = self.choose(collective, eta, p)
        return CollectiveSpec(
            collective=collective,
            algorithm=choice.algorithm,
            arch=self.arch,
            procs=p,
            eta=eta,
            root=root,
            params=choice.params_dict,
            verify=verify,
        )

    def run(
        self,
        collective: str,
        eta: int,
        procs: Optional[int] = None,
        verify: bool = False,
    ) -> CollectiveResult:
        """Run the tuned ("Proposed") design at one point."""
        return run_collective(self.spec(collective, eta, procs, verify=verify))

    def best_throttle(self, collective: str, eta: int, p: Optional[int] = None) -> int:
        """The model-optimal throttle factor (ablation reference point)."""
        p = p or self.arch.default_procs
        if collective == "scatter":
            costs = {
                k: self.model.scatter_throttled(p, eta, k)
                for k in range(1, p)
            }
        elif collective == "gather":
            costs = {
                k: self.model.gather_throttled(p, eta, k) for k in range(1, p)
            }
        else:
            raise KeyError("throttling applies to scatter/gather")
        return min(costs, key=costs.get)
