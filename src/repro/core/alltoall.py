"""All-to-all personalized: MPI_Alltoall (paper Section IV-C).

The pairwise exchange is contention-free by construction (each process is
read by exactly one peer per step), so the interesting comparison —
Figure 9 — is between three *implementations* of the same schedule:

* ``pairwise``        — native CMA collective: one address allgather up
  front, then p-1 direct reads.  No per-transfer RTS/CTS.
* ``pairwise_pt2pt``  — the same schedule over rendezvous point-to-point
  (3 control messages per transfer): how a library without native CMA
  collectives does it.
* ``pairwise_shm``    — the same schedule over the two-copy shared-memory
  path.

``bruck`` (lg p steps, extra copies) is included for completeness: the
paper notes it loses for the medium/large messages where CMA applies.

Buffer contract: ``sendbuf`` and ``recvbuf`` both hold p blocks of ``eta``
bytes; on return ``recvbuf[i]`` is rank i's block for me (i.e. block
``rank`` of rank i's sendbuf).
"""

from __future__ import annotations

from typing import Generator

from repro.core.common import is_power_of_two
from repro.core.phases import fused_pairwise
from repro.mpi.communicator import RankCtx
from repro.mpi.pt2pt import p2p_recv, p2p_send
from repro.sim.engine import Join

__all__ = ["pairwise", "pairwise_pt2pt", "pairwise_shm", "bruck"]


def _self_copy(ctx: RankCtx) -> Generator:
    """recvbuf[rank] <- sendbuf[rank] (each process keeps its own block)."""
    yield from ctx.memcpy(
        ctx.recvbuf, ctx.rank * ctx.eta, ctx.sendbuf, ctx.rank * ctx.eta, ctx.eta
    )


def _peer_schedule(rank: int, size: int, step: int) -> int:
    """Pairwise partner at a given step: XOR for powers of two (perfectly
    paired), (rank - step) mod p otherwise."""
    if is_power_of_two(size):
        return rank ^ step
    return (rank - step) % size


def pairwise(ctx: RankCtx) -> Generator:
    """Native CMA pairwise exchange: T = T_allgather^sm + (p-1)(a + nB + l*n/s)."""
    op = ctx.next_op()
    addrs = yield from ctx.sm_allgather(("a2a", op), ctx.sendbuf.addr)
    yield from _self_copy(ctx)
    eta = ctx.eta
    cmd = fused_pairwise(ctx, addrs, eta) if ctx.phase_fusible() else None
    if cmd is not None:
        yield cmd
    else:
        for step in range(1, ctx.size):
            peer = _peer_schedule(ctx.rank, ctx.size, step)
            # my block inside peer's sendbuf sits at offset rank*eta
            yield from ctx.cma_read(
                peer,
                ctx.recvbuf.iov(peer * eta, eta),
                (addrs[peer] + ctx.rank * eta, eta),
            )
    # nobody may reuse its sendbuf until every peer has read from it
    yield from ctx.sm_barrier(("a2a-fin", op))


def _pairwise_over_p2p(ctx: RankCtx, threshold: int) -> Generator:
    """The pairwise schedule expressed as sendrecv pairs over pt2pt."""
    op = ctx.next_op()
    yield from _self_copy(ctx)
    eta = ctx.eta
    pow2 = is_power_of_two(ctx.size)
    for step in range(1, ctx.size):
        if pow2:
            to = frm = ctx.rank ^ step
        else:
            to = (ctx.rank + step) % ctx.size
            frm = (ctx.rank - step) % ctx.size
        send = ctx.spawn_helper(
            p2p_send(
                ctx,
                to,
                ("a2a", op, step, ctx.rank),
                ctx.sendbuf,
                offset=to * eta,
                nbytes=eta,
                threshold=threshold,
            ),
            name=f"a2a-send{step}",
        )
        recv = ctx.spawn_helper(
            p2p_recv(
                ctx,
                frm,
                ("a2a", op, step, frm),
                ctx.recvbuf,
                offset=frm * eta,
                nbytes=eta,
                threshold=threshold,
            ),
            name=f"a2a-recv{step}",
        )
        yield Join(send)
        yield Join(recv)


def pairwise_pt2pt(ctx: RankCtx) -> Generator:
    """Pairwise over rendezvous pt2pt: pays RTS/CTS/FIN per transfer."""
    yield from _pairwise_over_p2p(ctx, threshold=0)


def pairwise_shm(ctx: RankCtx) -> Generator:
    """Pairwise over the two-copy shared-memory path (the SHMEM baseline)."""
    yield from _pairwise_over_p2p(ctx, threshold=1 << 62)


def bruck(ctx: RankCtx) -> Generator:
    """Bruck's alltoall: ceil(lg p) steps moving ~p/2 blocks each.

    Staged in two ping-pong buffers; each step is a single multi-iovec CMA
    read of every block whose index has the step bit set, pulled from
    ``(rank - 2^step) mod p``.  Extra local copies (initial rotation, final
    inverse rotation) are why it loses for large messages.
    """
    op = ctx.next_op()
    p, eta, rank = ctx.size, ctx.eta, ctx.rank
    stage = [
        ctx.comm.allocate(rank, max(p * eta, 1), name=f"bruck{op}a"),
        ctx.comm.allocate(rank, max(p * eta, 1), name=f"bruck{op}b"),
    ]
    # phase 1: local rotation, tmp[i] = sendbuf[(rank + i) % p]
    for i in range(p):
        yield from ctx.memcpy(
            stage[0], i * eta, ctx.sendbuf, ((rank + i) % p) * eta, eta
        )
    addrs = yield from ctx.sm_allgather(("brk", op), (stage[0].addr, stage[1].addr))
    cur = 0
    k = 1
    step = 0
    while k < p:
        # everyone's `cur` stage must be stable before anyone reads it
        yield from ctx.sm_barrier(("brk-s", op, step))
        idx = [i for i in range(1, p) if i & k]
        src = (rank - k) % p
        src_base = addrs[src][cur]
        nxt = cur ^ 1
        remote = [(src_base + i * eta, eta) for i in idx]
        local = [(stage[nxt].addr + i * eta, eta) for i in idx]
        if remote and eta > 0:
            yield from ctx.cma.process_vm_readv(ctx.proc, ctx.pid_of(src), local, remote)
        # blocks whose bit is clear stay local
        keep = [i for i in range(p) if not (i & k) or i >= p]
        for i in range(p):
            if not (i & k):
                yield from ctx.memcpy(stage[nxt], i * eta, stage[cur], i * eta, eta)
        del keep
        cur = nxt
        k <<= 1
        step += 1
    # last readers may still be pulling from our final stage
    yield from ctx.sm_barrier(("brk-fin", op))
    # phase 3: inverse rotation, recvbuf[src] = tmp[(rank - src) % p]
    for src in range(p):
        yield from ctx.memcpy(
            ctx.recvbuf, src * eta, stage[cur], ((rank - src) % p) * eta, eta
        )
