"""Native collectives over the XPMEM-style mapped-window lane.

Same schedules as their CMA counterparts — the point of the lane is the
*kernel* cost model, not a new communication structure — with one change
to the control plane: ranks exchange ``(segid, addr)`` pairs instead of
bare addresses, because a window must be exported by its owner and
attached by each peer before it can be copied through.

Cost structure versus CMA (why the tuner has a real decision to make):

* first use of a window pays the attach (``t_xpmem_attach + pages *
  t_xpmem_page``) and per-page fault-in under the owner's mm lock — a
  cold One-to-all convoys on the root's lock exactly like parallel-read
  CMA, once per page per attacher;
* every copy after that is pin-free (``t_xpmem_copy + n*beta``) — no
  syscall alpha, no lock, no γ(c) — so warm windows win whenever the
  saved ``alpha + l*γ(c)*ceil(n/s)`` exceeds the amortised map cost.

The attach cache lives on the communicator, so repeated collectives on
one ``Comm`` (the steady state the paper measures) hit warm windows.
"""

from __future__ import annotations

from typing import Generator

from repro.core.common import nonroot_order
from repro.core.phases import fused_xpmem_pairwise, fused_xpmem_ring
from repro.mpi.communicator import RankCtx

__all__ = [
    "scatter_xpmem_read",
    "gather_xpmem_write",
    "bcast_xpmem_read",
    "allgather_xpmem_ring",
    "alltoall_xpmem_pairwise",
]


def scatter_xpmem_read(ctx: RankCtx) -> Generator:
    """Every non-root reads its block through the root's mapped sendbuf."""
    op = ctx.next_op()
    payload = None
    if ctx.is_root:
        iov = ctx.sendbuf.iov(0, ctx.size * ctx.eta)
        segid = yield from ctx.xpmem_expose(iov)
        payload = (segid, iov[0])
    segid, src_addr = yield from ctx.sm_bcast(("sc-xr", op), payload, root=ctx.root)
    if ctx.is_root:
        if not ctx.in_place:
            yield from ctx.memcpy(
                ctx.recvbuf, 0, ctx.sendbuf, ctx.root * ctx.eta, ctx.eta
            )
    else:
        yield from ctx.xpmem_read(
            ctx.root,
            segid,
            ctx.recvbuf.iov(0, ctx.eta),
            (src_addr + ctx.rank * ctx.eta, ctx.eta),
        )
    # completion: root learns every block has been read (sendbuf reusable)
    yield from ctx.sm_gather(("sc-xr-fin", op), value=True, root=ctx.root)


def gather_xpmem_write(ctx: RankCtx) -> Generator:
    """Every non-root writes its block through the root's mapped recvbuf."""
    op = ctx.next_op()
    payload = None
    if ctx.is_root:
        iov = ctx.recvbuf.iov(0, ctx.size * ctx.eta)
        segid = yield from ctx.xpmem_expose(iov)
        payload = (segid, iov[0])
    segid, dst_addr = yield from ctx.sm_bcast(("ga-xw", op), payload, root=ctx.root)
    if ctx.is_root:
        if not ctx.in_place:
            yield from ctx.memcpy(
                ctx.recvbuf, ctx.root * ctx.eta, ctx.sendbuf, 0, ctx.eta
            )
    else:
        yield from ctx.xpmem_write(
            ctx.root,
            segid,
            ctx.sendbuf.iov(0, ctx.eta),
            (dst_addr + ctx.rank * ctx.eta, ctx.eta),
        )
    # completion: root may not touch recvbuf until every block has landed
    yield from ctx.sm_gather(("ga-xw-fin", op), value=True, root=ctx.root)


def bcast_xpmem_read(ctx: RankCtx) -> Generator:
    """Every non-root reads the root's mapped buffer — one shared window,
    so the page fault-in storm hits the root's mm lock exactly once per
    page per attacher, then re-broadcasts are pure copies."""
    op = ctx.next_op()
    payload = None
    if ctx.is_root:
        iov = ctx.recvbuf.iov(0, ctx.eta)
        segid = yield from ctx.xpmem_expose(iov)
        payload = (segid, iov[0])
    segid, src_addr = yield from ctx.sm_bcast(("bc-xr", op), payload, root=ctx.root)
    if not ctx.is_root:
        yield from ctx.xpmem_read(
            ctx.root, segid, ctx.recvbuf.iov(0, ctx.eta), (src_addr, ctx.eta)
        )
    yield from ctx.sm_gather(("bc-xr-fin", op), value=True, root=ctx.root)


def allgather_xpmem_ring(ctx: RankCtx) -> Generator:
    """Ring-source-read over mapped windows: step i reads block (rank-i)
    through its owner's window.  Each pair attaches once, then the p-1
    steady-state reads are all pin-free."""
    op = ctx.next_op()
    iov = ctx.sendbuf.iov(0, ctx.eta)
    segid = yield from ctx.xpmem_expose(iov)
    wins = yield from ctx.sm_allgather(("agx", op), (segid, iov[0]))
    if not ctx.in_place:
        yield from ctx.memcpy(ctx.recvbuf, ctx.rank * ctx.eta, ctx.sendbuf, 0, ctx.eta)
    eta = ctx.eta
    # Cold windows (first collective on this comm) refuse to fuse — the
    # attach + fault-in convoys run unfused — so warm repeats get the
    # fused phase, which is the steady state the paper measures.
    cmd = fused_xpmem_ring(ctx, wins, eta) if ctx.phase_fusible() else None
    if cmd is not None:
        yield cmd
    else:
        for i in range(1, ctx.size):
            src = (ctx.rank - i) % ctx.size
            src_segid, src_addr = wins[src]
            yield from ctx.xpmem_read(
                src, src_segid, ctx.recvbuf.iov(src * eta, eta), (src_addr, eta)
            )
    # sendbufs are being read until the very end: completion barrier
    yield from ctx.sm_barrier(("agx-fin", op))


def alltoall_xpmem_pairwise(ctx: RankCtx) -> Generator:
    """Pairwise exchange over mapped windows (contention-free schedule,
    so this isolates the per-transfer mechanism cost: alpha + pin vs
    attach-amortised pin-free copies)."""
    op = ctx.next_op()
    iov = ctx.sendbuf.iov(0, ctx.size * ctx.eta)
    segid = yield from ctx.xpmem_expose(iov)
    wins = yield from ctx.sm_allgather(("a2x", op), (segid, iov[0]))
    yield from ctx.memcpy(
        ctx.recvbuf, ctx.rank * ctx.eta, ctx.sendbuf, ctx.rank * ctx.eta, ctx.eta
    )
    eta = ctx.eta
    cmd = fused_xpmem_pairwise(ctx, wins, eta) if ctx.phase_fusible() else None
    if cmd is not None:
        yield cmd
    else:
        pow2 = ctx.size & (ctx.size - 1) == 0
        for step in range(1, ctx.size):
            peer = ctx.rank ^ step if pow2 else (ctx.rank - step) % ctx.size
            peer_segid, peer_addr = wins[peer]
            # my block inside peer's sendbuf sits at offset rank*eta
            yield from ctx.xpmem_read(
                peer,
                peer_segid,
                ctx.recvbuf.iov(peer * eta, eta),
                (peer_addr + ctx.rank * eta, eta),
            )
    # nobody may reuse its sendbuf until every peer has read from it
    yield from ctx.sm_barrier(("a2x-fin", op))
