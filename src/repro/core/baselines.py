"""Baseline MPI library models: MVAPICH2-, Intel-MPI- and Open-MPI-like.

A 2017 library is, for our purposes, a *tuning table*: which pt2pt/shm
design it picks per (collective, message size), plus a software-overhead
factor on control messages.  The tables below are modelled on the
libraries' documented/observable behaviour at the paper's time frame:

* **mvapich2-like** — shm binomial trees for small messages; large
  personalized collectives go through CMA pt2pt with unthrottled fan-out
  (the contention-unaware design the paper beats), gather through a
  binomial aggregation tree.
* **intelmpi-like** — leans on the shared-memory two-copy path across the
  whole size range for rooted collectives (fast small-message software,
  pays 2x bandwidth for large).
* **openmpi-like** — CMA(-KNEM-heritage) pt2pt designs throughout: linear
  fan-out/fan-in for rooted collectives, ring for allgather, pairwise for
  alltoall (per Ma et al., whose designs its tuned module incorporates —
  but with no lock-contention awareness).

None of this caricatures the baselines: every design here is the faithful
cost of a reasonable, contention-unaware implementation on this node
model.  Where the paper reports larger peak speedups (up to 50x), its
baselines were sometimes in pathological tuning corners; EXPERIMENTS.md
tracks our measured factors next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.core.p2p_colls import FORCE_EAGER, FORCE_RNDV
from repro.core.runner import CollectiveSpec, CollectiveResult, run_collective
from repro.machine.arch import Architecture

__all__ = ["LibraryModel", "LIBRARIES", "library", "LIBRARY_NAMES"]

#: eager/rendezvous switch the libraries use intra-node (~16 KiB)
_SMALL = 16 * 1024

Rule = Callable[[int, int], tuple[str, dict]]  # (eta, p) -> (algorithm, params)


@dataclass(frozen=True)
class LibraryModel:
    """One baseline library: per-collective algorithm selection rules."""

    name: str
    rules: dict[str, Rule]
    #: multiplier on control-message latency (software stack overhead)
    ctrl_factor: float = 1.0

    def select(self, collective: str, eta: int, p: int) -> tuple[str, dict]:
        try:
            rule = self.rules[collective]
        except KeyError:
            raise KeyError(
                f"{self.name} has no rule for {collective!r}"
            ) from None
        return rule(eta, p)

    def tuned_arch(self, arch: Architecture) -> Architecture:
        if self.ctrl_factor == 1.0:
            return arch
        params = arch.params.with_updates(
            t_ctrl=arch.params.t_ctrl * self.ctrl_factor
        )
        return replace(arch, params=params)

    def spec(
        self,
        collective: str,
        arch: Architecture,
        eta: int,
        procs: Optional[int] = None,
        root: int = 0,
        verify: bool = False,
    ) -> CollectiveSpec:
        algorithm, params = self.select(
            collective, eta, procs or arch.default_procs
        )
        return CollectiveSpec(
            collective=collective,
            algorithm=algorithm,
            arch=self.tuned_arch(arch),
            procs=procs,
            eta=eta,
            root=root,
            params=params,
            verify=verify,
        )

    def run(
        self,
        collective: str,
        arch: Architecture,
        eta: int,
        procs: Optional[int] = None,
        verify: bool = False,
    ) -> CollectiveResult:
        return run_collective(self.spec(collective, arch, eta, procs, verify=verify))


def _sized(small: tuple[str, dict], large: tuple[str, dict], cut: int = _SMALL) -> Rule:
    def rule(eta: int, p: int) -> tuple[str, dict]:
        return small if eta < cut else large

    return rule


def _always(alg: str, params: Optional[dict] = None) -> Rule:
    chosen = (alg, params or {})

    def rule(eta: int, p: int) -> tuple[str, dict]:
        return chosen

    return rule


def _make_mvapich2() -> LibraryModel:
    return LibraryModel(
        name="mvapich2-like",
        ctrl_factor=1.0,
        rules={
            "scatter": _sized(
                ("binomial_p2p", {"threshold": FORCE_EAGER}),
                ("fanout_rndv", {}),
            ),
            "gather": _sized(
                ("binomial_p2p", {"threshold": FORCE_EAGER}),
                ("binomial_p2p", {"threshold": FORCE_RNDV}),
            ),
            "bcast": _sized(
                ("shm_slab", {}),
                ("binomial_p2p", {"threshold": FORCE_RNDV}),
                cut=2 << 20,  # MV2 keeps shm Bcast well into the MBs
            ),
            "allgather": _sized(
                ("ring_p2p", {"threshold": FORCE_EAGER}),
                # MV2's large-message pick was recursive doubling — great at
                # powers of two, tax-heavy otherwise, socket-oblivious
                ("recursive_doubling", {}),
            ),
            "alltoall": _sized(
                ("pairwise_shm", {}),
                ("pairwise_pt2pt", {}),
            ),
        },
    )


def _make_intelmpi() -> LibraryModel:
    return LibraryModel(
        name="intelmpi-like",
        ctrl_factor=0.85,  # lean software stack, fast small messages
        rules={
            "scatter": _always("binomial_p2p", {"threshold": FORCE_EAGER}),
            "gather": _always("binomial_p2p", {"threshold": FORCE_EAGER}),
            "bcast": _always("shm_slab"),
            "allgather": _sized(
                ("ring_p2p", {"threshold": FORCE_EAGER}),
                ("recursive_doubling", {}),
                cut=64 * 1024,
            ),
            "alltoall": _sized(
                ("pairwise_shm", {}),
                ("pairwise_pt2pt", {}),
                cut=64 * 1024,
            ),
        },
    )


def _make_openmpi() -> LibraryModel:
    return LibraryModel(
        name="openmpi-like",
        ctrl_factor=1.20,  # heavier component stack (PML/BTL layering)
        rules={
            "scatter": _sized(
                ("binomial_p2p", {"threshold": FORCE_EAGER}),
                ("fanout_rndv", {}),
            ),
            "gather": _sized(
                ("binomial_p2p", {"threshold": FORCE_EAGER}),
                ("fanin_rndv", {}),
            ),
            "bcast": _sized(
                ("binomial_p2p", {"threshold": FORCE_EAGER}),
                ("binomial_p2p", {"threshold": FORCE_RNDV}),
            ),
            "allgather": _always("ring_p2p", {"threshold": FORCE_RNDV}),
            "alltoall": _always("pairwise_pt2pt", {}),
        },
    )


LIBRARIES: dict[str, Callable[[], LibraryModel]] = {
    "mvapich2": _make_mvapich2,
    "intelmpi": _make_intelmpi,
    "openmpi": _make_openmpi,
}

LIBRARY_NAMES = tuple(sorted(LIBRARIES))


def library(name: str) -> LibraryModel:
    try:
        return LIBRARIES[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown library {name!r}; known: {sorted(LIBRARIES)}"
        ) from None
