"""Phase-shape builders: whole uncontended data phases as one command.

An untraced, fault-free collective phase is a deterministic straight-line
schedule — the LogP-style per-phase cost models the phase decomposition
literature exploits — so instead of trampolining the rank generator
through every per-transfer ``DelayChain``/``PinConvoy``, the emitters in
:mod:`repro.core` hand the engine one :class:`~repro.sim.engine.RingStage`
/ :class:`~repro.sim.engine.TreeRound` /
:class:`~repro.sim.engine.PairwiseExchange` carrying the phase's full
segment list.  The engine replays the segments with the same record
kinds, timestamps and global sequence-number allocation points as the
unfused generator loop (the bit-identity contract the differential
battery in ``tests/test_phases.py`` enforces), but without resuming the
generator until the phase completes.

Builders return ``None`` whenever any step of the phase refuses to fuse
(tracing, armed faults, denied/unknown pids, cold xpmem windows...); the
emitter then falls back to its unfused loop, which reproduces the exact
error semantics and timing.  The fallback is all-or-nothing per phase:
a half-fused phase would complicate the seq-stream contract for no
performance gain, since refusals are run-level conditions, not per-step.

Only the *data* phases fuse.  The shm control plane (address allgather,
completion barriers) and token-gated algorithms (neighbour rings, chain
pipelines, level-synchronized trees) stay on the generator path: their
cross-rank control dependencies are the schedule, and precomputing them
would just re-implement the engine.
"""

from __future__ import annotations

from typing import Optional

from repro.core.common import is_power_of_two, nonroot_order
from repro.mpi.communicator import RankCtx
from repro.sim.engine import PairwiseExchange, RingStage, TreeRound

__all__ = [
    "fused_ring_read",
    "fused_ring_write",
    "fused_pairwise",
    "fused_fanout_write",
    "fused_xpmem_ring",
    "fused_xpmem_pairwise",
]


def _cma_phase_cache(ctx: RankCtx):
    """The communicator's whole-phase cache, or None to build uncached.

    Warm collective rounds re-emit the exact same phase, so the CMA
    builders cache their finished commands on the communicator, keyed by
    value (rank, geometry, peer addresses) plus the kernel's
    ``seg_epoch``.  Caching is refused outright while any live per-stage
    gate could refuse a transfer — armed faults, pin convoys disabled,
    denied pids — so those verdicts are never frozen into a key.
    """
    kern = ctx.cma
    if kern.faults is None and not kern.denied_pids and ctx.sim.use_pin_convoy:
        return ctx.comm._fused_cache
    return None


def fused_ring_read(ctx: RankCtx, addrs, eta: int) -> Optional[RingStage]:
    """allgather ring-source-read: step i reads block (rank-i) from its owner."""
    cache = _cma_phase_cache(ctx)
    if cache is not None:
        key = ("rr", ctx.rank, ctx.size, eta, ctx.cma.seg_epoch,
               ctx.recvbuf.addr, ctx.recvbuf.nbytes, tuple(addrs))
        hit = cache.get(key)
        if hit is not None:
            return hit
    segs = []
    for i in range(1, ctx.size):
        src = (ctx.rank - i) % ctx.size
        s = ctx.cma_segments(
            src, ctx.recvbuf.iov(src * eta, eta), (addrs[src], eta), write=False
        )
        if s is None:
            return None
        segs.extend(s)
    if not segs:
        return None
    cmd = RingStage(segs)
    if cache is not None:
        cache[key] = cmd
    return cmd


def fused_ring_write(ctx: RankCtx, addrs, eta: int) -> Optional[RingStage]:
    """allgather ring-source-write: step i writes my block into (rank+i)."""
    cache = _cma_phase_cache(ctx)
    if cache is not None:
        key = ("rw", ctx.rank, ctx.size, eta, ctx.cma.seg_epoch,
               ctx.sendbuf.addr, ctx.sendbuf.nbytes, tuple(addrs))
        hit = cache.get(key)
        if hit is not None:
            return hit
    segs = []
    for i in range(1, ctx.size):
        dst = (ctx.rank + i) % ctx.size
        s = ctx.cma_segments(
            dst,
            ctx.sendbuf.iov(0, eta),
            (addrs[dst] + ctx.rank * eta, eta),
            write=True,
        )
        if s is None:
            return None
        segs.extend(s)
    if not segs:
        return None
    cmd = RingStage(segs)
    if cache is not None:
        cache[key] = cmd
    return cmd


def fused_pairwise(ctx: RankCtx, addrs, eta: int) -> Optional[PairwiseExchange]:
    """alltoall pairwise exchange: p-1 direct reads, one peer per step."""
    cache = _cma_phase_cache(ctx)
    if cache is not None:
        key = ("pw", ctx.rank, ctx.size, eta, ctx.cma.seg_epoch,
               ctx.recvbuf.addr, ctx.recvbuf.nbytes, tuple(addrs))
        hit = cache.get(key)
        if hit is not None:
            return hit
    pow2 = is_power_of_two(ctx.size)
    segs = []
    for step in range(1, ctx.size):
        peer = ctx.rank ^ step if pow2 else (ctx.rank - step) % ctx.size
        s = ctx.cma_segments(
            peer,
            ctx.recvbuf.iov(peer * eta, eta),
            (addrs[peer] + ctx.rank * eta, eta),
            write=False,
        )
        if s is None:
            return None
        segs.extend(s)
    if not segs:
        return None
    cmd = PairwiseExchange(segs)
    if cache is not None:
        cache[key] = cmd
    return cmd


def fused_fanout_write(ctx: RankCtx, addrs, eta: int) -> Optional[TreeRound]:
    """bcast direct-write root round: p-1 sequential uncontended writes."""
    cache = _cma_phase_cache(ctx)
    if cache is not None:
        key = ("fw", ctx.rank, ctx.size, ctx.root, eta, ctx.cma.seg_epoch,
               ctx.recvbuf.addr, ctx.recvbuf.nbytes, tuple(addrs))
        hit = cache.get(key)
        if hit is not None:
            return hit
    segs = []
    for dst in nonroot_order(ctx.size, ctx.root):
        s = ctx.cma_segments(
            dst, ctx.recvbuf.iov(0, eta), (addrs[dst], eta), write=True
        )
        if s is None:
            return None
        segs.extend(s)
    if not segs:
        return None
    cmd = TreeRound(segs)
    if cache is not None:
        cache[key] = cmd
    return cmd


def fused_xpmem_ring(ctx: RankCtx, wins, eta: int) -> Optional[RingStage]:
    """Warm mapped-window ring: p-1 pin-free reads (cold windows refuse)."""
    segs = []
    for i in range(1, ctx.size):
        src = (ctx.rank - i) % ctx.size
        src_segid, src_addr = wins[src]
        s = ctx.xpmem_segment(
            src_segid,
            ctx.recvbuf.iov(src * eta, eta),
            (src_addr, eta),
            write=False,
        )
        if s is None:
            return None
        segs.append(s)
    if not segs:
        return None
    return RingStage(segs)


def fused_xpmem_pairwise(ctx: RankCtx, wins, eta: int) -> Optional[PairwiseExchange]:
    """Warm mapped-window pairwise exchange: p-1 pin-free reads."""
    pow2 = is_power_of_two(ctx.size)
    segs = []
    for step in range(1, ctx.size):
        peer = ctx.rank ^ step if pow2 else (ctx.rank - step) % ctx.size
        peer_segid, peer_addr = wins[peer]
        s = ctx.xpmem_segment(
            peer_segid,
            ctx.recvbuf.iov(peer * eta, eta),
            (peer_addr + ctx.rank * eta, eta),
            write=False,
        )
        if s is None:
            return None
        segs.append(s)
    if not segs:
        return None
    return PairwiseExchange(segs)
