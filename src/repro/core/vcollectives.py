"""Extension: vector collectives (MPI_Scatterv / MPI_Gatherv).

The contention analysis is oblivious to whether blocks are equal-sized, so
the throttled designs carry over to the V-variants directly — with one new
wrinkle the equal-block algorithms never face: *load imbalance*.  A wave of
k concurrent readers finishes when its largest block does, so the chain
token order matters; these implementations keep the paper's simple
position-based chaining and the imbalance shows up (measurably, see the
tests) as wave straggling.

Buffer contract (mirrors MPI):

* ``counts`` — one entry per rank, the block size in bytes; available at
  every rank (the common usage pattern).  Displacements are the prefix
  sums (dense packing).
* Scatterv: root's ``sendbuf`` holds ``sum(counts)`` bytes; rank r's
  ``recvbuf`` holds ``counts[r]``.
* Gatherv: mirrored.

Zero-length blocks are legal: those ranks only participate in the
control plane.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.core.common import nonroot_order
from repro.mpi.communicator import RankCtx

__all__ = [
    "displacements",
    "scatterv_parallel_read",
    "scatterv_sequential_write",
    "scatterv_throttled_read",
    "gatherv_parallel_write",
    "gatherv_sequential_read",
    "gatherv_throttled_write",
    "alltoallv_pairwise",
]


def displacements(counts: Sequence[int]) -> list[int]:
    """Dense prefix-sum displacements for a counts vector."""
    out, pos = [], 0
    for c in counts:
        if c < 0:
            raise ValueError(f"negative count {c}")
        out.append(pos)
        pos += c
    return out


def _counts(ctx: RankCtx) -> tuple[list[int], list[int]]:
    counts = list(ctx.extras["counts"])
    if len(counts) != ctx.size:
        raise ValueError(
            f"counts has {len(counts)} entries for {ctx.size} ranks"
        )
    return counts, displacements(counts)


def _root_self_copy_scatterv(ctx, counts, displs) -> Generator:
    n = counts[ctx.root]
    if not ctx.in_place and n > 0:
        yield from ctx.memcpy(ctx.recvbuf, 0, ctx.sendbuf, displs[ctx.root], n)


def scatterv_parallel_read(ctx: RankCtx) -> Generator:
    """Every non-root with a non-empty block reads it concurrently."""
    counts, displs = _counts(ctx)
    op = ctx.next_op()
    payload = ctx.sendbuf.addr if ctx.is_root else None
    src_addr = yield from ctx.sm_bcast(("scv-pr", op), payload, root=ctx.root)
    if ctx.is_root:
        yield from _root_self_copy_scatterv(ctx, counts, displs)
    else:
        n = counts[ctx.rank]
        if n > 0:
            yield from ctx.cma_read(
                ctx.root, ctx.recvbuf.iov(0, n), (src_addr + displs[ctx.rank], n)
            )
    yield from ctx.sm_gather(("scv-pr-fin", op), value=True, root=ctx.root)


def scatterv_sequential_write(ctx: RankCtx) -> Generator:
    """Root writes each (non-empty) block in turn."""
    counts, displs = _counts(ctx)
    op = ctx.next_op()
    value = None
    if not ctx.is_root and ctx.recvbuf is not None:
        value = ctx.recvbuf.addr
    addrs = yield from ctx.sm_gather(("scv-sw", op), value, root=ctx.root)
    if ctx.is_root:
        for dst in nonroot_order(ctx.size, ctx.root):
            n = counts[dst]
            if n == 0:
                continue
            yield from ctx.cma_write(
                dst, ctx.sendbuf.iov(displs[dst], n), (addrs[dst], n)
            )
        yield from _root_self_copy_scatterv(ctx, counts, displs)
    yield from ctx.sm_bcast(("scv-sw-fin", op), True, root=ctx.root)


def scatterv_throttled_read(ctx: RankCtx, k: int) -> Generator:
    """At most k concurrent readers, chained by position like Scatter."""
    if k < 1:
        raise ValueError("throttle factor must be >= 1")
    counts, displs = _counts(ctx)
    op = ctx.next_op()
    payload = ctx.sendbuf.addr if ctx.is_root else None
    src_addr = yield from ctx.sm_bcast(("scv-tr", op), payload, root=ctx.root)
    order = nonroot_order(ctx.size, ctx.root)
    nread = len(order)
    if ctx.is_root:
        yield from _root_self_copy_scatterv(ctx, counts, displs)
        for pos in range(max(0, nread - k), nread):
            yield ctx.ctrl_recv(order[pos], ("scv-tr-fin", op))
    else:
        pos = order.index(ctx.rank)
        if pos - k >= 0:
            yield ctx.ctrl_recv(order[pos - k], ("scv-tr-tok", op))
        n = counts[ctx.rank]
        if n > 0:
            yield from ctx.cma_read(
                ctx.root, ctx.recvbuf.iov(0, n), (src_addr + displs[ctx.rank], n)
            )
        if pos + k < nread:
            yield ctx.ctrl_send(order[pos + k], ("scv-tr-tok", op))
        if pos >= nread - k:
            yield ctx.ctrl_send(ctx.root, ("scv-tr-fin", op))


def alltoallv_pairwise(ctx: RankCtx) -> Generator:
    """MPI_Alltoallv over the contention-free pairwise schedule.

    ``ctx.extras["counts"]`` is the full p x p matrix: ``counts[s][d]`` is
    the bytes rank s sends to rank d.  Rank r's sendbuf packs its row
    densely (displacements of ``counts[r]``); its recvbuf packs the column
    ``counts[:][r]``.  Like the equal-block pairwise exchange, each step
    pairs every rank with a distinct peer, so the mm locks never contend —
    but skewed rows make steps straggle, the V-variant's signature cost.
    """
    counts = ctx.extras["counts"]
    if len(counts) != ctx.size or any(len(row) != ctx.size for row in counts):
        raise ValueError("alltoallv needs a p x p counts matrix")
    p, rank = ctx.size, ctx.rank
    send_displs = displacements(counts[rank])
    recv_displs = displacements([counts[s][rank] for s in range(p)])
    op = ctx.next_op()
    addr = ctx.sendbuf.addr if ctx.sendbuf is not None else None
    addrs = yield from ctx.sm_allgather(("a2av", op), addr)
    # own block
    n_self = counts[rank][rank]
    if n_self > 0:
        yield from ctx.memcpy(
            ctx.recvbuf, recv_displs[rank], ctx.sendbuf, send_displs[rank], n_self
        )
    from repro.core.common import is_power_of_two

    pow2 = is_power_of_two(p)
    for step in range(1, p):
        peer = rank ^ step if pow2 else (rank - step) % p
        n = counts[peer][rank]
        if n == 0:
            continue
        # my block inside peer's sendbuf starts at peer's send displacement
        peer_off = displacements(counts[peer])[rank]
        yield from ctx.cma_read(
            peer,
            ctx.recvbuf.iov(recv_displs[peer], n),
            (addrs[peer] + peer_off, n),
        )
    yield from ctx.sm_barrier(("a2av-fin", op))


def _root_self_copy_gatherv(ctx, counts, displs) -> Generator:
    n = counts[ctx.root]
    if not ctx.in_place and n > 0:
        yield from ctx.memcpy(ctx.recvbuf, displs[ctx.root], ctx.sendbuf, 0, n)


def gatherv_parallel_write(ctx: RankCtx) -> Generator:
    """Every non-root writes its block into the root concurrently."""
    counts, displs = _counts(ctx)
    op = ctx.next_op()
    payload = ctx.recvbuf.addr if ctx.is_root else None
    dst_addr = yield from ctx.sm_bcast(("gav-pw", op), payload, root=ctx.root)
    if ctx.is_root:
        yield from _root_self_copy_gatherv(ctx, counts, displs)
    else:
        n = counts[ctx.rank]
        if n > 0:
            yield from ctx.cma_write(
                ctx.root, ctx.sendbuf.iov(0, n), (dst_addr + displs[ctx.rank], n)
            )
    yield from ctx.sm_gather(("gav-pw-fin", op), value=True, root=ctx.root)


def gatherv_sequential_read(ctx: RankCtx) -> Generator:
    """Root reads each (non-empty) block in turn."""
    counts, displs = _counts(ctx)
    op = ctx.next_op()
    value = None
    if not ctx.is_root and ctx.sendbuf is not None:
        value = ctx.sendbuf.addr
    addrs = yield from ctx.sm_gather(("gav-sr", op), value, root=ctx.root)
    if ctx.is_root:
        for src in nonroot_order(ctx.size, ctx.root):
            n = counts[src]
            if n == 0:
                continue
            yield from ctx.cma_read(
                src, ctx.recvbuf.iov(displs[src], n), (addrs[src], n)
            )
        yield from _root_self_copy_gatherv(ctx, counts, displs)
    yield from ctx.sm_bcast(("gav-sr-fin", op), True, root=ctx.root)


def gatherv_throttled_write(ctx: RankCtx, k: int) -> Generator:
    """At most k concurrent writers into the root's displaced blocks."""
    if k < 1:
        raise ValueError("throttle factor must be >= 1")
    counts, displs = _counts(ctx)
    op = ctx.next_op()
    payload = ctx.recvbuf.addr if ctx.is_root else None
    dst_addr = yield from ctx.sm_bcast(("gav-tw", op), payload, root=ctx.root)
    order = nonroot_order(ctx.size, ctx.root)
    nwrite = len(order)
    if ctx.is_root:
        yield from _root_self_copy_gatherv(ctx, counts, displs)
        for pos in range(max(0, nwrite - k), nwrite):
            yield ctx.ctrl_recv(order[pos], ("gav-tw-fin", op))
    else:
        pos = order.index(ctx.rank)
        if pos - k >= 0:
            yield ctx.ctrl_recv(order[pos - k], ("gav-tw-tok", op))
        n = counts[ctx.rank]
        if n > 0:
            yield from ctx.cma_write(
                ctx.root, ctx.sendbuf.iov(0, n), (dst_addr + displs[ctx.rank], n)
            )
        if pos + k < nwrite:
            yield ctx.ctrl_send(order[pos + k], ("gav-tw-tok", op))
        if pos >= nwrite - k:
            yield ctx.ctrl_send(ctx.root, ("gav-tw-fin", op))
