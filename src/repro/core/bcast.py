"""One-to-all non-personalized: MPI_Bcast (paper Section V-B).

Everyone receives the *same* message, which opens designs Scatter cannot
use:

* ``direct_read`` / ``direct_write`` — the parallel-read / sequential-write
  analogues (full contention / full serialization).
* ``knomial(k)`` — the throttled analogue: a k-nomial tree where at most
  ``k - 1`` children read one parent's buffer concurrently, level by level
  (levels are ack-gated so concurrency per source stays bounded, matching
  the model's log_k p * gamma_k structure).  Unlike Scatter, interior
  nodes keep forwarding down the tree.
* ``scatter_allgather`` — Van de Geijn: sequential-write scatter of
  eta/p chunks, then a contention-free ring allgather of the chunks
  (every chunk is read from its *original* owner).  Wins for large
  messages by trading contention for an extra round of small transfers.

Buffer contract: every rank passes ``recvbuf`` (eta bytes); the root's
holds the payload.
"""

from __future__ import annotations

from typing import Generator

from repro.core.common import chunk_partition, knomial_parent_children, nonroot_order
from repro.core.phases import fused_fanout_write
from repro.mpi.communicator import RankCtx
from repro.sim.engine import Delay

__all__ = [
    "direct_read",
    "direct_write",
    "knomial",
    "scatter_allgather",
    "shm_slab",
    "chain",
]


def direct_read(ctx: RankCtx) -> Generator:
    """Every non-root reads the root's buffer at once: gamma(p-1) contention."""
    op = ctx.next_op()
    payload = ctx.recvbuf.addr if ctx.is_root else None
    src_addr = yield from ctx.sm_bcast(("bc-dr", op), payload, root=ctx.root)
    if not ctx.is_root:
        yield from ctx.cma_read(
            ctx.root, ctx.recvbuf.iov(0, ctx.eta), (src_addr, ctx.eta)
        )
    yield from ctx.sm_gather(("bc-dr-fin", op), value=True, root=ctx.root)


def direct_write(ctx: RankCtx) -> Generator:
    """Root writes everyone in turn: p-1 uncontended transfers."""
    op = ctx.next_op()
    value = None if ctx.is_root else ctx.recvbuf.addr
    addrs = yield from ctx.sm_gather(("bc-dw", op), value, root=ctx.root)
    if ctx.is_root:
        cmd = (
            fused_fanout_write(ctx, addrs, ctx.eta)
            if ctx.phase_fusible()
            else None
        )
        if cmd is not None:
            yield cmd
        else:
            for dst in nonroot_order(ctx.size, ctx.root):
                yield from ctx.cma_write(
                    dst, ctx.recvbuf.iov(0, ctx.eta), (addrs[dst], ctx.eta)
                )
    yield from ctx.sm_bcast(("bc-dw-fin", op), True, root=ctx.root)


def knomial(ctx: RankCtx, k: int = 4) -> Generator:
    """k-nomial tree of reads, level-synchronized to bound concurrency.

    A parent signals one level's children, which read its recvbuf
    concurrently (<= k-1 readers) and ack; only then is the next level
    signalled.  Cost ~ log_k p * (a + nB + l*gamma(k)*n/s).
    """
    if k < 2:
        raise ValueError("k-nomial radix must be >= 2")
    op = ctx.next_op()
    addrs = yield from ctx.sm_allgather(("bc-kn", op), ctx.recvbuf.addr)
    relrank = (ctx.rank - ctx.root) % ctx.size
    parent_rel, levels = knomial_parent_children(relrank, ctx.size, k)
    if parent_rel is not None:
        parent = (parent_rel + ctx.root) % ctx.size
        yield ctx.ctrl_recv(parent, ("bc-kn-go", op))
        yield from ctx.cma_read(
            parent, ctx.recvbuf.iov(0, ctx.eta), (addrs[parent], ctx.eta)
        )
        yield ctx.ctrl_send(parent, ("bc-kn-ack", op))
    for group in levels:
        children = [(c + ctx.root) % ctx.size for c in group]
        for child in children:
            yield ctx.ctrl_send(child, ("bc-kn-go", op))
        for child in children:
            yield ctx.ctrl_recv(child, ("bc-kn-ack", op))


def chain(ctx: RankCtx, segsize: int = 128 * 1024) -> Generator:
    """Segmented pipeline (chain) broadcast — an extension algorithm.

    Ranks form a chain in relative-rank order; the payload is cut into
    ``segsize`` pieces and each rank reads segment s from its predecessor
    as soon as the predecessor has it.  Fully pipelined and contention-free
    (exactly one reader per source), the chain costs roughly
    ``eta*beta + (p-2)*segsize*beta`` — asymptotically as good as
    scatter-allgather for very large payloads, with far fewer syscalls
    when ``segsize`` is large.  The segment size trades pipeline depth
    (small segments fill the chain faster) against per-segment syscall
    overhead.
    """
    if segsize < 1:
        raise ValueError("segment size must be >= 1 byte")
    op = ctx.next_op()
    p, eta = ctx.size, ctx.eta
    addrs = yield from ctx.sm_allgather(("bc-ch", op), ctx.recvbuf.addr)
    relrank = (ctx.rank - ctx.root) % p
    nseg = -(-eta // segsize)
    succ = ((relrank + 1) % p + ctx.root) % p if relrank + 1 < p else None
    pred = ((relrank - 1) + ctx.root) % p if relrank > 0 else None
    for s in range(nseg):
        off = s * segsize
        ln = min(segsize, eta - off)
        if pred is not None:
            yield ctx.ctrl_recv(pred, ("bc-ch-tok", op, s))
            yield from ctx.cma_read(
                pred, ctx.recvbuf.iov(off, ln), (addrs[pred] + off, ln)
            )
        if succ is not None:
            yield ctx.ctrl_send(succ, ("bc-ch-tok", op, s))
    # the successor keeps reading our buffer until its last segment; only
    # the chain tail finishing means everyone is done
    yield from ctx.sm_barrier(("bc-ch-fin", op))


def shm_slab(ctx: RankCtx) -> Generator:
    """Classic shared-memory slab broadcast: the two-copy baseline design.

    The root streams the payload into a shared slab chunk by chunk,
    flagging each chunk's availability (a release-counter store — readers
    poll, so flagging costs the root nothing per reader); all readers copy
    out concurrently.  No syscall, no mm lock — which is why this wins for
    small/medium payloads on Broadwell (Section VII-F) — but every byte is
    copied twice, and once the payload stops fitting in the shared cache
    (``shm_cache_bytes``) both copies run at DRAM cost
    (``shm_large_factor``), which is where kernel-assisted single-copy
    takes over.
    """
    op = ctx.next_op()
    p = ctx.params
    eta = ctx.eta
    beta = p.shm_beta * (p.shm_large_factor if eta > p.shm_cache_bytes else 1.0)
    chunk = p.shm_chunk
    nchunks = -(-eta // chunk)
    others = [r for r in range(ctx.size) if r != ctx.root]
    if ctx.is_root:
        sent = 0
        for c in range(nchunks):
            n = min(chunk, eta - sent)
            yield Delay(n * beta + p.shm_chunk_overhead)
            sent += n
            payload = ctx.recvbuf if c == nchunks - 1 else None
            for dst in others:
                yield ctx.shm.ctrl_send_flag(
                    ctx.rank, dst, ("bc-slab", op, c), payload
                )
    else:
        got = 0
        root_buf = None
        for c in range(nchunks):
            msg = yield ctx.ctrl_recv(ctx.root, ("bc-slab", op, c))
            if msg.payload is not None:
                root_buf = msg.payload
            n = min(chunk, eta - got)
            yield Delay(n * beta + p.shm_chunk_overhead)
            got += n
        if ctx.node.verify and root_buf is not None:
            ctx.recvbuf.view(0, eta)[:] = root_buf.view(0, eta)


def scatter_allgather(ctx: RankCtx) -> Generator:
    """Van de Geijn: scatter eta/p chunks, ring-allgather them back.

    The scatter step (sequential writes from the root) has no contention;
    the allgather step reads every chunk from its original owner, so no
    two readers ever target the same source in the same step.  Chunks are
    equal +/- 1 byte — not page aligned for non-power-of-two p, which the
    paper flags as POWER8 overhead.
    """
    op = ctx.next_op()
    p, rank = ctx.size, ctx.rank
    chunks = chunk_partition(ctx.eta, p)
    addrs = yield from ctx.sm_allgather(("bc-sa", op), ctx.recvbuf.addr)
    if ctx.is_root:
        # scatter: chunk r -> rank r's recvbuf (root keeps the whole buffer)
        for dst in nonroot_order(p, ctx.root):
            off, ln = chunks[dst]
            if ln == 0:
                continue
            yield from ctx.cma_write(
                dst, ctx.recvbuf.iov(off, ln), (addrs[dst] + off, ln)
            )
    # chunks must be in place before anyone starts pulling them
    yield from ctx.sm_barrier(("bc-sa-mid", op))
    if not ctx.is_root:
        for i in range(1, p):
            owner = (rank - i) % p
            off, ln = chunks[owner]
            if ln == 0:
                continue
            src = ctx.root if owner == ctx.root else owner
            yield from ctx.cma_read(
                src, ctx.recvbuf.iov(off, ln), (addrs[src] + off, ln)
            )
    # owners' buffers are being read until the last step
    yield from ctx.sm_barrier(("bc-sa-fin", op))
