"""Simulation-backed multi-node Gather: flat vs two-level (Section VII-G).

This module runs the Fig. 17 experiment on a real :class:`~repro.mpi.cluster.Cluster`
— every byte crosses the simulated fabric and intra-node CMA, and the
gathered result is verified on the global root — validating the analytic
:mod:`repro.core.multinode` model's story with discrete-event dynamics.

* ``flat_gather`` — the traditional single-level design: every remote rank
  fires its block at the global root over the fabric (the root's NIC and
  matching queue serialize all of it); root-node ranks use a node-local
  gather.
* ``two_level_gather`` — the paper's design: node leaders run the
  contention-aware intra-node Gather *in parallel across nodes*, then the
  nodes-1 leaders push one aggregated message each.

Both return the completion time and, with ``verify=True``, check that the
root holds every global rank's block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import gather as _gather
from repro.core.patterns import VerificationError, pattern
from repro.mpi.cluster import Cluster, net_recv, net_send

__all__ = ["MultiNodeGatherResult", "flat_gather", "two_level_gather"]


@dataclass
class MultiNodeGatherResult:
    latency_us: float
    nodes: int
    ppn: int
    eta: int
    net_messages: int


def _fill_sendbufs(cluster: Cluster, eta: int) -> list:
    """Per-global-rank operand buffers carrying the verification pattern."""
    bufs = []
    for g in range(cluster.world_size):
        comm = cluster.comm_of(g)
        buf = comm.allocate(cluster.local_of(g), eta, "mn-send")
        if cluster.verify:
            buf.fill(pattern(g, 0, eta))
        bufs.append(buf)
    return bufs


def _verify_root(rootbuf, world: int, eta: int) -> None:
    for g in range(world):
        got = rootbuf.view(g * eta, eta)
        want = pattern(g, 0, eta)
        if not np.array_equal(got, want):
            raise VerificationError(
                f"multi-node gather: root's block from global rank {g} is wrong"
            )


def flat_gather(
    cluster: Cluster, eta: int, throttle_k: Optional[int] = None
) -> MultiNodeGatherResult:
    """Single-level gather: all remote ranks send straight to global rank 0.

    Root-node ranks contribute through a node-local throttled gather (so
    the intra-node part is not the bottleneck being measured); every
    remote rank's block is a separate fabric message.
    """
    world = cluster.world_size
    ppn = cluster.ppn
    k = throttle_k or min(8, max(ppn - 1, 1))
    sendbufs = _fill_sendbufs(cluster, eta)
    root_comm = cluster.comms[0]
    rootbuf = root_comm.allocate(0, world * eta, "mn-recv")
    local_part = root_comm.allocate(0, ppn * eta, "mn-local")

    def rank_fn(ctx):
        g = ctx.extras["grank"]
        node = cluster.node_of(g)
        if node == 0:
            # node-local gather into a staging area of the root
            ctx.sendbuf = sendbufs[g]
            ctx.recvbuf = local_part if ctx.rank == 0 else None
            ctx.root, ctx.eta = 0, eta
            if ppn > 1:
                yield from _gather.throttled_write(ctx, k=min(k, ppn - 1))
            else:
                yield from ctx.memcpy(local_part, 0, sendbufs[g], 0, eta)
            if ctx.rank == 0:
                yield from ctx.memcpy(rootbuf, 0, local_part, 0, ppn * eta)
                # drain (nodes-1)*ppn remote blocks, in arrival order by rank
                for src in range(ppn, world):
                    yield from net_recv(
                        ctx, src, ("flat", src), rootbuf,
                        offset=src * eta, nbytes=eta,
                    )
        else:
            yield from net_send(ctx, 0, ("flat", g), sendbufs[g], nbytes=eta)

    procs = cluster.run_world(rank_fn)
    if cluster.verify:
        _verify_root(rootbuf, world, eta)
    return MultiNodeGatherResult(
        latency_us=max(p.finish_time for p in procs),
        nodes=cluster.nodes_count,
        ppn=ppn,
        eta=eta,
        net_messages=cluster.net_messages,
    )


def two_level_gather(
    cluster: Cluster, eta: int, throttle_k: Optional[int] = None
) -> MultiNodeGatherResult:
    """The paper's hierarchical design: leader gathers run in parallel on
    every node, then one aggregated message per remote node."""
    world = cluster.world_size
    ppn = cluster.ppn
    k = throttle_k or min(8, max(ppn - 1, 1))
    sendbufs = _fill_sendbufs(cluster, eta)
    root_comm = cluster.comms[0]
    rootbuf = root_comm.allocate(0, world * eta, "mn-recv")
    leader_bufs = {
        n: cluster.comms[n].allocate(0, ppn * eta, "mn-lead")
        for n in range(cluster.nodes_count)
    }

    def rank_fn(ctx):
        g = ctx.extras["grank"]
        node = cluster.node_of(g)
        ctx.sendbuf = sendbufs[g]
        ctx.recvbuf = leader_bufs[node] if ctx.rank == 0 else None
        ctx.root, ctx.eta = 0, eta
        if ppn > 1:
            yield from _gather.throttled_write(ctx, k=min(k, ppn - 1))
        else:
            yield from ctx.memcpy(leader_bufs[node], 0, sendbufs[g], 0, eta)
        if ctx.rank != 0:
            return
        if node == 0:
            yield from ctx.memcpy(rootbuf, 0, leader_bufs[0], 0, ppn * eta)
            for n in range(1, cluster.nodes_count):
                yield from net_recv(
                    ctx, cluster.leader_of(n), ("2lvl", n), rootbuf,
                    offset=n * ppn * eta, nbytes=ppn * eta,
                )
        else:
            yield from net_send(
                ctx, 0, ("2lvl", node), leader_bufs[node], nbytes=ppn * eta
            )

    procs = cluster.run_world(rank_fn)
    if cluster.verify:
        _verify_root(rootbuf, world, eta)
    return MultiNodeGatherResult(
        latency_us=max(p.finish_time for p in procs),
        nodes=cluster.nodes_count,
        ppn=ppn,
        eta=eta,
        net_messages=cluster.net_messages,
    )
