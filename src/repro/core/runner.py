"""Execute one collective on a simulated node, verify it, time it.

This is the experiment workhorse: every figure/table bench ultimately calls
:func:`run_collective` with a :class:`CollectiveSpec` and reads latencies
off the :class:`CollectiveResult`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core import patterns
from repro.core.registry import get_algorithm
from repro.machine.arch import Architecture
from repro.mpi.communicator import Comm, Node

__all__ = [
    "CollectiveSpec",
    "CollectiveResult",
    "run_collective",
    "run_collective_pooled",
    "NodePool",
    "default_pool",
]


@dataclass
class CollectiveSpec:
    """One collective invocation to simulate.

    ``eta`` is the per-block message size in bytes — the paper's x-axis
    ("Message Size"): per receiver for Scatter/Gather, the full payload for
    Bcast, per contributed block for Allgather/Alltoall.
    """

    collective: str
    algorithm: str
    arch: Architecture
    procs: Optional[int] = None  # defaults to the arch's evaluation count
    eta: int = 4096
    root: int = 0
    in_place: bool = False
    params: dict = field(default_factory=dict)
    verify: bool = True  # move + check real bytes (slower, thorough)
    trace: bool = False  # record ftrace-style phase spans
    #: per-rank block sizes for the V-variants (scatterv/gatherv);
    #: defaults to eta for every rank
    counts: Optional[list[int]] = None
    #: armed deterministic fault plan (:class:`repro.faults.FaultPlan`),
    #: or None — the default, bit-identical to the pre-fault runner.
    #: A frozen dataclass of primitives, so it pickles to pool workers
    #: and fingerprints into cache keys like every other spec field.
    faults: Optional[Any] = None
    #: transport lane, resolved from the registry (never passed in).  An
    #: ``init=False`` field so :func:`repro.exec.keying.canonical` picks
    #: it up: cache keys and sweep group keys must separate lanes even
    #: when (collective, algorithm) strings alone would collide across
    #: future renames — and it gives group-key code one obvious handle.
    lane: str = field(init=False, default="cma")

    def __post_init__(self) -> None:
        try:
            self.lane = get_algorithm(self.collective, self.algorithm).lane
        except KeyError:
            # unknown algorithm: leave the default; resolution fails later
            # (at run time) with the registry's richer error message
            self.lane = "cma"
        if self.procs is None:
            self.procs = self.arch.default_procs
        if self.procs < 2:
            raise ValueError("collectives need at least 2 processes")
        if self.eta < 1:
            raise ValueError("eta must be >= 1 byte")
        if not (0 <= self.root < self.procs):
            raise ValueError(f"root {self.root} out of range for p={self.procs}")
        if self.collective in ("scatterv", "gatherv"):
            if self.counts is None:
                self.counts = [self.eta] * self.procs
            if len(self.counts) != self.procs:
                raise ValueError(
                    f"counts has {len(self.counts)} entries for p={self.procs}"
                )
            if any(c < 0 for c in self.counts):
                raise ValueError("counts must be non-negative")
        elif self.collective == "alltoallv":
            if self.counts is None:
                self.counts = [[self.eta] * self.procs] * self.procs
            if len(self.counts) != self.procs or any(
                len(row) != self.procs for row in self.counts
            ):
                raise ValueError("alltoallv needs a p x p counts matrix")
            if any(c < 0 for row in self.counts for c in row):
                raise ValueError("counts must be non-negative")
        elif self.counts is not None:
            raise ValueError(f"{self.collective} does not take counts")
        if self.faults is not None:
            from repro.faults import FaultPlan

            if not isinstance(self.faults, FaultPlan):
                raise ValueError(
                    f"faults must be a repro.faults.FaultPlan, got {self.faults!r}"
                )


@dataclass
class CollectiveResult:
    """Outcome of one simulated collective."""

    spec: CollectiveSpec
    latency_us: float  # completion time of the slowest rank
    per_rank_us: list[float]
    ctrl_messages: int  # control-plane traffic (RTS/CTS, tokens, ...)
    cma_reads: int
    cma_writes: int
    sim_events: int
    trace_by_phase: Optional[dict[str, float]] = None
    #: degraded-mode counters — all zero on fault-free runs:
    #: CMA→shm fallback transfers completed by the resilient MPI layer
    fallbacks: int = 0
    #: CMA calls re-issued (EINTR) or resumed from an offset (short count)
    retries: int = 0
    #: faults the armed plan actually injected, across all kinds
    faults_injected: int = 0
    #: mapped-window lane counters — all zero for non-xpmem algorithms
    xpmem_reads: int = 0
    xpmem_writes: int = 0
    xpmem_attaches: int = 0
    xpmem_page_faults: int = 0

    @property
    def mean_us(self) -> float:
        if not self.per_rank_us:
            raise ValueError(
                "mean_us is undefined: this CollectiveResult has no per-rank "
                "timings (per_rank_us is empty)"
            )
        return sum(self.per_rank_us) / len(self.per_rank_us)


def _validated_algorithm(spec: CollectiveSpec):
    """Resolve + validate the algorithm factory for ``spec``."""
    info = get_algorithm(spec.collective, spec.algorithm)
    err = info.check(spec.procs, spec.params)
    if err:
        raise ValueError(
            f"{spec.collective}/{spec.algorithm} invalid for p={spec.procs}: {err}"
        )
    return info.make(**spec.params)


def _execute(spec: CollectiveSpec, fn, node: Node, comm: Comm) -> CollectiveResult:
    """Run ``spec`` on an already-built (fresh or freshly-reset) node."""
    sendbufs, recvbufs = patterns.setup_buffers(comm, spec)

    procs = []
    extra_kw = {}
    if spec.counts is not None:
        extra_kw["counts"] = spec.counts
    for rank in range(spec.procs):
        procs.append(
            comm.spawn_rank(
                rank,
                fn,
                root=spec.root,
                eta=spec.eta,
                sendbuf=sendbufs[rank],
                recvbuf=recvbufs[rank],
                in_place=spec.in_place,
                **extra_kw,
            )
        )
    node.sim.run_all(procs)

    if spec.verify:
        patterns.verify_buffers(comm, spec, sendbufs, recvbufs)

    per_rank = [p.finish_time for p in procs]
    return CollectiveResult(
        spec=spec,
        latency_us=max(per_rank),
        per_rank_us=per_rank,
        ctrl_messages=comm.shm.ctrl_messages,
        cma_reads=node.cma.reads,
        cma_writes=node.cma.writes,
        sim_events=node.sim.events_processed,
        trace_by_phase=node.tracer.total_by_phase() if spec.trace else None,
        fallbacks=comm.fallbacks,
        retries=comm.retries,
        faults_injected=(
            node.fault_state.total_injected if node.fault_state is not None else 0
        ),
        xpmem_reads=node.xpmem.reads,
        xpmem_writes=node.xpmem.writes,
        xpmem_attaches=node.xpmem.attaches,
        xpmem_page_faults=node.xpmem.page_faults,
    )


def run_collective(spec: CollectiveSpec) -> CollectiveResult:
    """Build a fresh node, run ``spec`` on every rank, verify, and time it.

    Raises :class:`~repro.core.patterns.VerificationError` if the bytes any
    rank ends up with violate MPI semantics (only when ``spec.verify``).
    """
    fn = _validated_algorithm(spec)
    node = Node(spec.arch, verify=spec.verify, trace=spec.trace, faults=spec.faults)
    comm = Comm(node, spec.procs)
    return _execute(spec, fn, node, comm)


class NodePool:
    """Warm (Node, Comm) pairs reused across consecutive sweep points.

    Keyed by ``(arch.name, procs, verify, trace)`` with an identity-or-
    equality check on the stored :class:`Architecture` (presets return a
    fresh but value-equal instance per :func:`~repro.machine.get_arch`
    call; a *different* arch that happens to share a name rebuilds).

    The reset contract (see DESIGN.md §5) guarantees that a leased node is
    indistinguishable from a fresh one for simulation purposes — the
    engine's clock/sequence stream, every lock and mailbox, the tracer, and
    the address spaces (addresses restart at ``va_base``, recycled arrays
    re-zeroed) all restart exactly as constructed — so pooled and fresh
    execution produce bit-identical results
    (``tests/test_node_pool.py``).  A run that raises leaves arbitrary
    engine state behind, so the node is discarded, never re-pooled.
    """

    def __init__(self, max_entries: int = 4):
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, tuple[Architecture, Node, Comm]] = (
            OrderedDict()
        )
        self.leases = 0
        self.reuses = 0

    def node_for(
        self, arch: Architecture, procs: int, verify: bool, trace: bool
    ) -> tuple[Node, Comm]:
        """Lease a warm node+comm for ``(arch, procs)``, or build one.

        The entry is *removed* from the pool while leased, so a pool is
        safe to share across nested ``run_collective_pooled`` calls.
        """
        key = (arch.name, procs, verify, trace)
        self.leases += 1
        entry = self._entries.pop(key, None)
        if entry is not None:
            pooled_arch, node, comm = entry
            if pooled_arch is arch or pooled_arch == arch:
                self.reuses += 1
                return node, comm
        node = Node(arch, verify=verify, trace=trace)
        comm = Comm(node, procs)
        return node, comm

    def release(self, arch: Architecture, node: Node, comm: Comm) -> None:
        """Reset a leased node and return it to the pool (LRU-evicting)."""
        node.reset()
        comm.reset()
        key = (arch.name, comm.size, node.verify, node.tracer.enabled)
        self._entries.pop(key, None)
        self._entries[key] = (arch, node, comm)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def warm_keys(self) -> tuple:
        """The pool keys currently held warm — ``(arch_name, procs,
        verify, trace)`` tuples.  The sweep scheduler's sticky router
        reads these (workers report them with every completed chunk) to
        route a group back to the worker whose pool already holds its
        node."""
        return tuple(self._entries.keys())

    def clear(self) -> None:
        self._entries.clear()


#: module-level pool used when callers don't manage their own
_DEFAULT_POOL = NodePool()


def default_pool() -> NodePool:
    """This process's shared warm-node pool (the per-worker registry).

    Each scheduler worker process has exactly one — the pool
    :func:`run_collective_pooled` falls back to — so "the worker whose
    NodePool holds that warm node" is a well-defined routing target.
    """
    return _DEFAULT_POOL


def run_collective_pooled(
    spec: CollectiveSpec, pool: Optional[NodePool] = None
) -> CollectiveResult:
    """:func:`run_collective` on a warm node from ``pool``.

    Bit-identical to :func:`run_collective` (enforced by the differential
    battery in ``tests/test_node_pool.py``) but skips Node/Comm
    construction and buffer allocation when the previous point used the
    same (arch, procs, verify, trace).  On any failure the node is
    discarded instead of re-pooled, so a raising point cannot poison the
    next one.
    """
    if pool is None:
        pool = _DEFAULT_POOL
    if spec.faults is not None:
        # Fault plans are run-scoped (armed per Node construction) and the
        # pool key doesn't include them; warm reuse is the fault-free hot
        # path, so faulted specs always take the fresh-node route.
        return run_collective(spec)
    fn = _validated_algorithm(spec)
    node, comm = pool.node_for(spec.arch, spec.procs, spec.verify, spec.trace)
    result = _execute(spec, fn, node, comm)
    pool.release(spec.arch, node, comm)
    return result
