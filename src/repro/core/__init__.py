"""The paper's contribution: contention-aware kernel-assisted collectives.

Layout
------

========================  ====================================================
Module                    Contents
========================  ====================================================
``scatter``               One-to-all: parallel read / sequential write /
                          throttled read (Section IV-A)
``gather``                All-to-one: parallel write / sequential read /
                          throttled write (Section IV-B)
``alltoall``              Pairwise exchange — native CMA, pt2pt-CMA and
                          SHMEM variants — plus Bruck (Section IV-C)
``allgather``             Ring-Source (r/w), Ring-Neighbor-j, recursive
                          doubling, Bruck (Section V-A)
``bcast``                 Direct read/write, k-nomial, scatter-allgather
                          (Section V-B)
``registry``              Name -> algorithm factory, with validity rules
``runner``                Build a node, execute, verify MPI semantics, time
``model``                 Closed-form costs (Section II formulas)
``fitting``               Table III step timing + Fig 5 NLLS gamma fit
``tuning``                The "Proposed" selection layer
``baselines``             MVAPICH2 / Intel MPI / Open MPI library models
``multinode``             Two-level multi-node designs (Section VII-G)
========================  ====================================================
"""

from repro.core.runner import (
    CollectiveSpec,
    CollectiveResult,
    NodePool,
    run_collective,
    run_collective_pooled,
)
from repro.core.registry import get_algorithm, algorithms_for, ALGORITHMS

__all__ = [
    "CollectiveSpec",
    "CollectiveResult",
    "NodePool",
    "run_collective",
    "run_collective_pooled",
    "get_algorithm",
    "algorithms_for",
    "ALGORITHMS",
]
