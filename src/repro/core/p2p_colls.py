"""Point-to-point-based collectives: how 2017-era libraries did it.

These are the *baseline* designs the paper compares against (Section VII).
They compose the eager/rendezvous pt2pt layer instead of issuing native
CMA calls, so they pay per-message control traffic — and the rendezvous
fan-out variants hit the mm-lock contention wall because nothing bounds
reader concurrency.

``threshold`` selects the transport: 0 forces rendezvous (single-copy CMA
with RTS/CTS), a huge value forces eager (two-copy shared memory) — the
same switch the libraries' tuning tables flip per message size.

All buffer contracts match the native algorithms in
``scatter``/``gather``/``bcast``/``allgather``.
"""

from __future__ import annotations

from typing import Generator

from repro.core.common import nonroot_order
from repro.mpi.communicator import RankCtx
from repro.mpi.pt2pt import p2p_recv, p2p_send
from repro.sim.engine import Join

__all__ = [
    "bcast_binomial_p2p",
    "scatter_binomial_p2p",
    "gather_binomial_p2p",
    "scatter_fanout_rndv",
    "gather_fanin_rndv",
    "allgather_ring_p2p",
]

FORCE_EAGER = 1 << 62
FORCE_RNDV = 0


def _binomial_parent_children(relrank: int, size: int) -> tuple[int | None, list[int]]:
    """Binomial-tree parent and children (children high-mask first)."""
    parent = None
    mask = 1
    while mask < size:
        if relrank & mask:
            parent = relrank ^ mask
            break
        mask <<= 1
    if parent is None:
        mask = 1
        while mask < size:
            mask <<= 1
    children = []
    mask >>= 1
    while mask > 0:
        if relrank + mask < size:
            children.append(relrank + mask)
        mask >>= 1
    return parent, children


def bcast_binomial_p2p(ctx: RankCtx, threshold: int) -> Generator:
    """Binomial-tree broadcast over pt2pt (data flows down the tree)."""
    op = ctx.next_op()
    relrank = (ctx.rank - ctx.root) % ctx.size
    parent, children = _binomial_parent_children(relrank, ctx.size)
    if parent is not None:
        src = (parent + ctx.root) % ctx.size
        yield from p2p_recv(
            ctx, src, ("bbc", op), ctx.recvbuf, threshold=threshold
        )
    for child in children:
        dst = (child + ctx.root) % ctx.size
        yield from p2p_send(
            ctx, dst, ("bbc", op), ctx.recvbuf, threshold=threshold
        )


def _subtree_size(relrank: int, size: int) -> int:
    """Number of ranks in relrank's binomial subtree (itself included)."""
    mask = 1
    while mask < size:
        if relrank & mask:
            break
        mask <<= 1
    return min(mask, size - relrank)


def scatter_binomial_p2p(ctx: RankCtx, threshold: int) -> Generator:
    """Binomial scatter: subtree payloads staged and forwarded.

    Interior nodes receive their whole subtree's blocks into a staging
    buffer and relay sub-slices down — the classic MPICH design.  Total
    bytes leaving the root are (p-1)*eta, but interior store-and-forward
    adds copies, and every hop pays pt2pt protocol costs.
    """
    op = ctx.next_op()
    p, eta = ctx.size, ctx.eta
    relrank = (ctx.rank - ctx.root) % p
    parent, children = _binomial_parent_children(relrank, p)
    sub = _subtree_size(relrank, p)

    if ctx.is_root:
        staging = ctx.comm.allocate(ctx.rank, p * eta, f"scb{op}")
        # reorder into relrank order so subtree slices are contiguous
        for rel in range(p):
            yield from ctx.memcpy(
                staging, rel * eta, ctx.sendbuf, ((rel + ctx.root) % p) * eta, eta
            )
    elif sub > 1:
        staging = ctx.comm.allocate(ctx.rank, sub * eta, f"scb{op}")
        src = (parent + ctx.root) % p
        yield from p2p_recv(
            ctx, src, ("scb", op, relrank), staging, nbytes=sub * eta,
            threshold=threshold,
        )
    else:
        src = (parent + ctx.root) % p
        yield from p2p_recv(
            ctx, src, ("scb", op, relrank), ctx.recvbuf, nbytes=eta,
            threshold=threshold,
        )
        return

    for child in children:  # high mask first: biggest subtree first
        child_sub = _subtree_size(child, p)
        dst = (child + ctx.root) % p
        yield from p2p_send(
            ctx,
            dst,
            ("scb", op, child),
            staging,
            offset=(child - relrank) * eta,
            nbytes=child_sub * eta,
            threshold=threshold,
        )
    if not (ctx.is_root and ctx.in_place):
        if ctx.recvbuf is not None:
            yield from ctx.memcpy(ctx.recvbuf, 0, staging, 0, eta)


def gather_binomial_p2p(ctx: RankCtx, threshold: int) -> Generator:
    """Binomial gather: subtrees aggregate upward through staging buffers."""
    op = ctx.next_op()
    p, eta = ctx.size, ctx.eta
    relrank = (ctx.rank - ctx.root) % p
    parent, children = _binomial_parent_children(relrank, p)
    sub = _subtree_size(relrank, p)

    if sub > 1 or ctx.is_root:
        staging = ctx.comm.allocate(ctx.rank, sub * eta, f"gab{op}")
        if ctx.is_root and ctx.in_place:
            yield from ctx.memcpy(staging, 0, ctx.recvbuf, ctx.root * eta, eta)
        else:
            yield from ctx.memcpy(staging, 0, ctx.sendbuf, 0, eta)
        # children deliver in reverse mask order (smallest subtree first
        # finishes soonest, but protocol order is fixed: as posted below)
        for child in children:
            child_sub = _subtree_size(child, p)
            src = (child + ctx.root) % p
            yield from p2p_recv(
                ctx,
                src,
                ("gab", op, child),
                staging,
                offset=(child - relrank) * eta,
                nbytes=child_sub * eta,
                threshold=threshold,
            )
    else:
        staging = None

    if not ctx.is_root:
        dst = (parent + ctx.root) % p
        if staging is not None:
            yield from p2p_send(
                ctx, dst, ("gab", op, relrank), staging, nbytes=sub * eta,
                threshold=threshold,
            )
        else:
            yield from p2p_send(
                ctx, dst, ("gab", op, relrank), ctx.sendbuf, nbytes=eta,
                threshold=threshold,
            )
        return

    # root: staging is in relrank order; rotate into absolute rank order
    for rel in range(p):
        yield from ctx.memcpy(
            ctx.recvbuf, ((rel + ctx.root) % p) * eta, staging, rel * eta, eta
        )


def scatter_fanout_rndv(ctx: RankCtx) -> Generator:
    """Root RTSes every receiver at once; p-1 rendezvous reads proceed
    concurrently — the contention-*unaware* design that motivates the
    paper (identical to parallel-read plus per-message handshakes)."""
    op = ctx.next_op()
    if ctx.is_root:
        for dst in nonroot_order(ctx.size, ctx.root):
            yield ctx.ctrl_send(
                dst,
                ("sfr-rts", op),
                payload=(
                    ctx.pid_of(ctx.rank),
                    ctx.sendbuf.addr + dst * ctx.eta,
                    ctx.eta,
                ),
            )
        if not ctx.in_place:
            yield from ctx.memcpy(
                ctx.recvbuf, 0, ctx.sendbuf, ctx.root * ctx.eta, ctx.eta
            )
        for dst in nonroot_order(ctx.size, ctx.root):
            yield ctx.ctrl_recv(dst, ("sfr-fin", op))
    else:
        msg = yield ctx.ctrl_recv(ctx.root, ("sfr-rts", op))
        pid, addr, n = msg.payload
        yield from ctx.cma.read_simple(
            ctx.proc, pid, ctx.recvbuf.iov(0, n), (addr, n)
        )
        yield ctx.ctrl_send(ctx.root, ("sfr-fin", op))


def gather_fanin_rndv(ctx: RankCtx) -> Generator:
    """Senders RTS; the root drains p-1 rendezvous receives back to back
    (its single core serializes the copies — no contention, but every
    message pays handshakes and the root is the bottleneck)."""
    op = ctx.next_op()
    if ctx.is_root:
        for src in nonroot_order(ctx.size, ctx.root):
            msg = yield ctx.ctrl_recv(src, ("gfr-rts", op))
            pid, addr, n = msg.payload
            yield from ctx.cma.read_simple(
                ctx.proc, pid, ctx.recvbuf.iov(src * ctx.eta, n), (addr, n)
            )
            yield ctx.ctrl_send(src, ("gfr-fin", op))
        if not ctx.in_place:
            yield from ctx.memcpy(
                ctx.recvbuf, ctx.root * ctx.eta, ctx.sendbuf, 0, ctx.eta
            )
    else:
        yield ctx.ctrl_send(
            ctx.root,
            ("gfr-rts", op),
            payload=(ctx.pid_of(ctx.rank), ctx.sendbuf.addr, ctx.eta),
        )
        yield ctx.ctrl_recv(ctx.root, ("gfr-fin", op))


def allgather_ring_p2p(ctx: RankCtx, threshold: int) -> Generator:
    """Classic ring allgather over pt2pt: p-1 steps of sendrecv."""
    op = ctx.next_op()
    p, eta = ctx.size, ctx.eta
    if not ctx.in_place:
        yield from ctx.memcpy(ctx.recvbuf, ctx.rank * eta, ctx.sendbuf, 0, eta)
    left = (ctx.rank - 1) % p
    right = (ctx.rank + 1) % p
    for s in range(p - 1):
        send_block = (ctx.rank - s) % p
        recv_block = (ctx.rank - s - 1) % p
        snd = ctx.spawn_helper(
            p2p_send(
                ctx, right, ("agp", op, s), ctx.recvbuf,
                offset=send_block * eta, nbytes=eta, threshold=threshold,
            ),
            name=f"agp-s{s}",
        )
        rcv = ctx.spawn_helper(
            p2p_recv(
                ctx, left, ("agp", op, s), ctx.recvbuf,
                offset=recv_block * eta, nbytes=eta, threshold=threshold,
            ),
            name=f"agp-r{s}",
        )
        yield Join(snd)
        yield Join(rcv)
