"""Deterministic buffer patterns and MPI-semantics postconditions.

Every timed run can also be a correctness check: send buffers are filled
with a pattern that is a function of (source rank, destination block), and
after the collective completes the runner asserts each receive buffer holds
exactly the bytes MPI semantics dictate.  A collective that "wins" by not
moving the right bytes fails loudly.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Comm

__all__ = ["pattern", "setup_buffers", "verify_buffers", "VerificationError"]


class VerificationError(AssertionError):
    """A collective produced bytes that violate MPI semantics."""


#: blocks at or under this many bytes are memoized (a sweep revisits the
#: same (src, blk, eta) keys at every point); larger ones are recomputed so
#: a big-message sweep cannot pin gigabytes of patterns in memory
_MEMO_BLOCK_LIMIT = 4 << 20
#: whole-buffer assembly cap: above this many output bytes the vectorized
#: (p, eta) uint32 intermediate is not worth its footprint — fall back to
#: per-block fills/compares
_ASSEMBLY_LIMIT = 32 << 20


def _pattern_raw(a: int, b: int, eta: int) -> np.ndarray:
    idx = np.arange(eta, dtype=np.uint32)
    return ((idx * 31 + a * 7 + b * 13 + 5) % 251).astype(np.uint8)


@lru_cache(maxsize=512)
def _pattern_cached(a: int, b: int, eta: int) -> np.ndarray:
    arr = _pattern_raw(a, b, eta)
    arr.flags.writeable = False  # shared across callers: mutation must fault
    return arr


def pattern(a: int, b: int, eta: int) -> np.ndarray:
    """Deterministic eta-byte pattern keyed by two small integers.

    Returns a **read-only** array (memoized for small ``eta``): write it
    into a buffer via assignment or :meth:`~repro.kernel.Buffer.fill`,
    never mutate it in place.
    """
    if eta <= _MEMO_BLOCK_LIMIT:
        return _pattern_cached(a, b, eta)
    arr = _pattern_raw(a, b, eta)
    arr.flags.writeable = False
    return arr


def _stack_raw(pairs: tuple[tuple[int, int], ...], eta: int) -> np.ndarray:
    """The concatenation of ``pattern(a, b, eta)`` for each (a, b) pair,
    computed as one broadcasted expression instead of ``len(pairs)``
    separate arange/astype round-trips."""
    a = np.fromiter((ab[0] for ab in pairs), dtype=np.uint32, count=len(pairs))
    b = np.fromiter((ab[1] for ab in pairs), dtype=np.uint32, count=len(pairs))
    idx = np.arange(eta, dtype=np.uint32)
    out = (idx[None, :] * 31 + a[:, None] * 7 + b[:, None] * 13 + 5) % 251
    return out.astype(np.uint8).ravel()


@lru_cache(maxsize=64)
def _stack_cached(pairs: tuple[tuple[int, int], ...], eta: int) -> np.ndarray:
    arr = _stack_raw(pairs, eta)
    arr.flags.writeable = False
    return arr


def _block_stack(pairs: tuple[tuple[int, int], ...], eta: int) -> np.ndarray:
    """Read-only whole-buffer expectation for uniform-block collectives."""
    if len(pairs) * eta <= _ASSEMBLY_LIMIT:
        return _stack_cached(pairs, eta)
    arr = _stack_raw(pairs, eta)
    arr.flags.writeable = False
    return arr


def _fill_blocks(buf, pairs: tuple[tuple[int, int], ...], eta: int) -> None:
    """Fill ``buf`` with ``len(pairs)`` consecutive eta-byte patterns."""
    if len(pairs) * eta <= _ASSEMBLY_LIMIT:
        buf.view(0, len(pairs) * eta)[:] = _block_stack(pairs, eta)
        return
    for i, (a, b) in enumerate(pairs):
        buf.view(i * eta, eta)[:] = pattern(a, b, eta)


@lru_cache(maxsize=32)
def _reduce_expected_cached(p: int, eta: int) -> np.ndarray:
    a = np.arange(p, dtype=np.uint32)
    idx = np.arange(eta, dtype=np.uint32)
    blocks = (idx[None, :] * 31 + a[:, None] * 7 + 5) % 251
    reduced = (blocks.sum(axis=0, dtype=np.uint32) % 256).astype(np.uint8)
    reduced.flags.writeable = False
    return reduced


def _reduce_expected(p: int, eta: int) -> np.ndarray:
    """Elementwise sum mod 256 of ``pattern(r, 0, eta)`` over ranks.

    Exact: pattern values are < 251 and p <= a few hundred, so the uint32
    accumulation cannot overflow — identical to summing in any width >= 16.
    """
    if p * eta <= _ASSEMBLY_LIMIT:
        return _reduce_expected_cached(p, eta)
    total = np.zeros(eta, dtype=np.uint32)
    for r in range(p):
        total += pattern(r, 0, eta)
    return (total % 256).astype(np.uint8)


def setup_buffers(comm: "Comm", spec) -> tuple[list, list]:
    """Allocate and fill (sendbufs, recvbufs) for ``spec``; entries may be
    None where a rank does not use that buffer."""
    p, eta, root = spec.procs, spec.eta, spec.root
    coll = spec.collective
    fill = comm.node.verify
    sendbufs: list = [None] * p
    recvbufs: list = [None] * p

    if coll == "scatter":
        sendbufs[root] = comm.allocate(root, p * eta, "sendbuf")
        if fill:
            _fill_blocks(sendbufs[root], tuple((root, d) for d in range(p)), eta)
        for r in range(p):
            if r == root and spec.in_place:
                continue
            recvbufs[r] = comm.allocate(r, eta, "recvbuf")
    elif coll == "gather":
        recvbufs[root] = comm.allocate(root, p * eta, "recvbuf")
        for r in range(p):
            if r == root and spec.in_place:
                if fill:
                    recvbufs[root].view(root * eta, eta)[:] = pattern(root, 0, eta)
                continue
            sendbufs[r] = comm.allocate(r, eta, "sendbuf")
            if fill:
                sendbufs[r].fill(pattern(r, 0, eta))
    elif coll == "bcast":
        for r in range(p):
            recvbufs[r] = comm.allocate(r, eta, "buf")
        if fill:
            recvbufs[root].fill(pattern(root, 0, eta))
    elif coll == "allgather":
        for r in range(p):
            recvbufs[r] = comm.allocate(r, p * eta, "recvbuf")
            if spec.in_place:
                if fill:
                    recvbufs[r].view(r * eta, eta)[:] = pattern(r, 0, eta)
            else:
                sendbufs[r] = comm.allocate(r, eta, "sendbuf")
                if fill:
                    sendbufs[r].fill(pattern(r, 0, eta))
    elif coll == "alltoall":
        for r in range(p):
            sendbufs[r] = comm.allocate(r, p * eta, "sendbuf")
            recvbufs[r] = comm.allocate(r, p * eta, "recvbuf")
            if fill:
                _fill_blocks(sendbufs[r], tuple((r, d) for d in range(p)), eta)
    elif coll in ("scatterv", "gatherv"):
        from repro.core.vcollectives import displacements

        counts = spec.counts
        displs = displacements(counts)
        total = max(sum(counts), 1)
        if coll == "scatterv":
            sendbufs[root] = comm.allocate(root, total, "sendbuf")
            if fill:
                for d in range(p):
                    if counts[d]:
                        sendbufs[root].view(displs[d], counts[d])[:] = pattern(
                            root, d, counts[d]
                        )
            for r in range(p):
                if r == root and spec.in_place:
                    continue
                if counts[r]:
                    recvbufs[r] = comm.allocate(r, counts[r], "recvbuf")
        else:
            recvbufs[root] = comm.allocate(root, total, "recvbuf")
            for r in range(p):
                if r == root and spec.in_place:
                    if fill and counts[root]:
                        recvbufs[root].view(displs[root], counts[root])[:] = (
                            pattern(root, 0, counts[root])
                        )
                    continue
                if counts[r]:
                    sendbufs[r] = comm.allocate(r, counts[r], "sendbuf")
                    if fill:
                        sendbufs[r].fill(pattern(r, 0, counts[r]))
    elif coll == "alltoallv":
        from repro.core.vcollectives import displacements

        counts = spec.counts
        for r in range(p):
            send_total = max(sum(counts[r]), 1)
            recv_total = max(sum(counts[s][r] for s in range(p)), 1)
            sendbufs[r] = comm.allocate(r, send_total, "sendbuf")
            recvbufs[r] = comm.allocate(r, recv_total, "recvbuf")
            if fill:
                displs = displacements(counts[r])
                for d in range(p):
                    if counts[r][d]:
                        sendbufs[r].view(displs[d], counts[r][d])[:] = pattern(
                            r, d, counts[r][d]
                        )
    elif coll in ("reduce", "allreduce"):
        for r in range(p):
            if coll == "allreduce" or r == root:
                recvbufs[r] = comm.allocate(r, eta, "recvbuf")
            if coll == "reduce" and r == root and spec.in_place:
                if fill:
                    recvbufs[root].fill(pattern(root, 0, eta))
                continue
            sendbufs[r] = comm.allocate(r, eta, "sendbuf")
            if fill:
                sendbufs[r].fill(pattern(r, 0, eta))
    else:
        raise KeyError(f"unknown collective {coll!r}")
    return sendbufs, recvbufs


def verify_buffers(comm: "Comm", spec, sendbufs, recvbufs) -> None:
    """Assert the MPI postcondition of ``spec`` over all receive buffers."""
    p, eta, root = spec.procs, spec.eta, spec.root
    coll = spec.collective

    def expect(buf, off, pat, what):
        got = buf.view(off, eta)
        if not np.array_equal(got, pat):
            bad = int(np.argmax(got != pat))
            raise VerificationError(
                f"{coll}/{spec.algorithm}: {what}: first mismatch at byte "
                f"{bad} (got {got[bad]}, want {pat[bad]})"
            )

    def expect_blocks(buf, pairs, what_of):
        """Whole-buffer compare of consecutive eta-byte expected blocks.

        One ``np.array_equal`` over ``len(pairs) * eta`` bytes instead of
        ``len(pairs)`` view/compare round-trips; on mismatch the error is
        re-derived per block so the message (block label, byte offset,
        got/want values) is identical to the per-block loop's.
        """
        n = len(pairs) * eta
        if n > _ASSEMBLY_LIMIT:
            for i, (a, b) in enumerate(pairs):
                expect(buf, i * eta, pattern(a, b, eta), what_of(i))
            return
        want = _block_stack(pairs, eta)
        got = buf.view(0, n)
        if np.array_equal(got, want):
            return
        i = int(np.argmax(got != want))
        blk, byte = divmod(i, eta)
        raise VerificationError(
            f"{coll}/{spec.algorithm}: {what_of(blk)}: first mismatch at byte "
            f"{byte} (got {got[i]}, want {want[i]})"
        )

    if coll == "scatter":
        for r in range(p):
            if r == root and spec.in_place:
                expect(
                    sendbufs[root], root * eta, pattern(root, root, eta),
                    "root in-place block clobbered",
                )
                continue
            expect(recvbufs[r], 0, pattern(root, r, eta), f"rank {r} block")
    elif coll == "gather":
        expect_blocks(
            recvbufs[root],
            tuple((r, 0) for r in range(p)),
            lambda r: f"root's block from rank {r}",
        )
    elif coll == "bcast":
        pat = pattern(root, 0, eta)
        for r in range(p):
            expect(recvbufs[r], 0, pat, f"rank {r} payload")
    elif coll == "allgather":
        pairs = tuple((b, 0) for b in range(p))
        for r in range(p):
            expect_blocks(recvbufs[r], pairs, lambda b, r=r: f"rank {r} block {b}")
    elif coll == "alltoall":
        for r in range(p):
            expect_blocks(
                recvbufs[r],
                tuple((s, r) for s in range(p)),
                lambda s, r=r: f"rank {r} block from {s}",
            )
    elif coll in ("scatterv", "gatherv"):
        from repro.core.vcollectives import displacements

        counts = spec.counts
        displs = displacements(counts)

        def expect_n(buf, off, pat, n, what):
            got = buf.view(off, n)
            if not np.array_equal(got, pat):
                bad = int(np.argmax(got != pat))
                raise VerificationError(f"{coll}: {what}: byte {bad} wrong")

        if coll == "scatterv":
            for r in range(p):
                if counts[r] == 0:
                    continue
                if r == root and spec.in_place:
                    expect_n(
                        sendbufs[root], displs[root],
                        pattern(root, root, counts[root]), counts[root],
                        "root in-place block clobbered",
                    )
                    continue
                expect_n(
                    recvbufs[r], 0, pattern(root, r, counts[r]), counts[r],
                    f"rank {r} block",
                )
        else:
            for r in range(p):
                if counts[r] == 0:
                    continue
                expect_n(
                    recvbufs[root], displs[r], pattern(r, 0, counts[r]),
                    counts[r], f"root's block from rank {r}",
                )
    elif coll == "alltoallv":
        from repro.core.vcollectives import displacements

        counts = spec.counts
        for r in range(p):
            recv_displs = displacements([counts[s][r] for s in range(p)])
            for s_rank in range(p):
                n = counts[s_rank][r]
                if n == 0:
                    continue
                got = recvbufs[r].view(recv_displs[s_rank], n)
                want = pattern(s_rank, r, n)
                if not np.array_equal(got, want):
                    bad = int(np.argmax(got != want))
                    raise VerificationError(
                        f"alltoallv: rank {r} block from {s_rank}: byte {bad}"
                    )
    elif coll in ("reduce", "allreduce"):
        reduced = _reduce_expected(p, eta)
        targets = range(p) if coll == "allreduce" else [root]
        for r in targets:
            expect(recvbufs[r], 0, reduced, f"rank {r} reduction")
    else:  # pragma: no cover - guarded in setup
        raise KeyError(coll)
