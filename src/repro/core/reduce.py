"""Extension: contention-aware Reduce and Allreduce.

The paper's future work ("we plan to extend these designs to other
collectives") applied to the reduction family.  The same mm-lock analysis
carries over — a reduction is a personalized fan-in plus computation — so
the design space mirrors Gather's, with one new trade-off: *where* the
combines execute.

Reduce algorithms
-----------------

* ``gather_throttled(k)`` — non-roots write their operands into a root
  staging area with the throttled Gather design; the root combines
  locally.  Bounded contention, but the root performs all p-1 combines
  serially: fine for small p or cheap operators.
* ``binomial`` — classic binomial-tree reduction: each interior node reads
  its child's accumulated vector (one reader per source: contention-free)
  and combines; lg p levels, combines parallelize across the tree.
* ``ring_rs`` — ring reduce-scatter (bandwidth-optimal: each rank combines
  1/p of the vector per step over p-1 steps) followed by the root
  sequentially collecting the p fully-reduced chunks.

Allreduce algorithms
--------------------

* ``reduce_bcast`` — binomial reduce to the root + k-nomial broadcast.
* ``ring`` — ring reduce-scatter + ring-source allgather of the reduced
  chunks: the classic bandwidth-optimal ring allreduce, contention-free.
* ``recursive_doubling`` — lg p pairwise exchange-and-combine rounds
  (double-buffered so a partner never reads a vector being overwritten);
  latency-optimal for small vectors; non-powers-of-two fold in/out like
  the Allgather variant.

The operator is elementwise uint8 addition mod 256 (exact, commutative,
associative), so every algorithm's result verifies bit-for-bit regardless
of combine order.

Buffer contract: every rank's ``sendbuf`` holds the eta-byte operand;
``recvbuf`` (root-only for Reduce, everyone for Allreduce) receives the
elementwise sum.  ``in_place`` at the Reduce root means the operand
already sits in ``recvbuf``.
"""

from __future__ import annotations

from typing import Generator

from repro.core.common import chunk_partition, nonroot_order
from repro.mpi.communicator import RankCtx

__all__ = [
    "reduce_gather_throttled",
    "reduce_binomial",
    "reduce_ring_rs",
    "allreduce_reduce_bcast",
    "allreduce_ring",
    "allreduce_recursive_doubling",
]


# ---------------------------------------------------------------------------
# Reduce
# ---------------------------------------------------------------------------


def reduce_gather_throttled(ctx: RankCtx, k: int = 8) -> Generator:
    """Throttled fan-in to a root staging area + serial local combines."""
    if k < 1:
        raise ValueError("throttle factor must be >= 1")
    op = ctx.next_op()
    eta = ctx.eta
    order = nonroot_order(ctx.size, ctx.root)
    payload = None
    if ctx.is_root:
        staging = ctx.comm.allocate(ctx.rank, max(len(order), 1) * eta, f"red{op}")
        payload = staging.addr
    staging_addr = yield from ctx.sm_bcast(("red-gt", op), payload, root=ctx.root)
    if ctx.is_root:
        if not ctx.in_place:
            yield from ctx.memcpy(ctx.recvbuf, 0, ctx.sendbuf, 0, eta)
        for pos in range(max(0, len(order) - k), len(order)):
            yield ctx.ctrl_recv(order[pos], ("red-gt-fin", op))
        for i in range(len(order)):
            yield from ctx.combine(ctx.recvbuf, 0, staging, i * eta, eta)
    else:
        pos = order.index(ctx.rank)
        if pos - k >= 0:
            yield ctx.ctrl_recv(order[pos - k], ("red-gt-tok", op))
        yield from ctx.cma_write(
            ctx.root, ctx.sendbuf.iov(0, eta), (staging_addr + pos * eta, eta)
        )
        if pos + k < len(order):
            yield ctx.ctrl_send(order[pos + k], ("red-gt-tok", op))
        if pos >= len(order) - k:
            yield ctx.ctrl_send(ctx.root, ("red-gt-fin", op))


def reduce_binomial(ctx: RankCtx) -> Generator:
    """Binomial-tree reduction: one reader per source, combines in parallel."""
    op = ctx.next_op()
    p, eta = ctx.size, ctx.eta
    relrank = (ctx.rank - ctx.root) % p
    if ctx.is_root:
        acc = ctx.recvbuf
        if not ctx.in_place:
            yield from ctx.memcpy(acc, 0, ctx.sendbuf, 0, eta)
    else:
        acc = ctx.comm.allocate(ctx.rank, eta, f"redb{op}")
        yield from ctx.memcpy(acc, 0, ctx.sendbuf, 0, eta)
    scratch = ctx.comm.allocate(ctx.rank, eta, f"redbs{op}")
    addrs = yield from ctx.sm_allgather(("red-bn", op), acc.addr)

    mask = 1
    while mask < p:
        if relrank & mask:
            # my subtree is fully folded into acc: hand it to the parent
            parent = ((relrank ^ mask) + ctx.root) % p
            yield ctx.ctrl_send(parent, ("red-bn-rdy", op, ctx.rank))
            yield ctx.ctrl_recv(parent, ("red-bn-done", op))
            return
        child_rel = relrank | mask
        if child_rel < p and child_rel != relrank:
            child = (child_rel + ctx.root) % p
            yield ctx.ctrl_recv(child, ("red-bn-rdy", op, child))
            yield from ctx.cma_read(child, scratch.iov(0, eta), (addrs[child], eta))
            yield ctx.ctrl_send(child, ("red-bn-done", op))
            yield from ctx.combine(acc, 0, scratch, 0, eta)
        mask <<= 1


def reduce_ring_rs(ctx: RankCtx) -> Generator:
    """Ring reduce-scatter, then the root collects the reduced chunks."""
    op = ctx.next_op()
    acc, addrs = yield from _ring_reduce_scatter(ctx, op)
    p, eta = ctx.size, ctx.eta
    chunks = chunk_partition(eta, p)
    own = (ctx.rank + 2) % p  # the chunk _ring_reduce_scatter leaves final here
    own_len = chunks[own][1]
    if ctx.is_root:
        off, ln = chunks[own]
        if ln:
            yield from ctx.memcpy(ctx.recvbuf, off, acc, off, ln)
        for c in range(p):
            off, ln = chunks[c]
            if c == own or ln == 0:
                continue
            owner = (c - 2) % p
            yield ctx.ctrl_recv(owner, ("red-rs-rdy", op, c))
            yield from ctx.cma_read(
                owner, ctx.recvbuf.iov(off, ln), (addrs[owner] + off, ln)
            )
            yield ctx.ctrl_send(owner, ("red-rs-done", op))
    elif own_len > 0:
        yield ctx.ctrl_send(ctx.root, ("red-rs-rdy", op, own))
        yield ctx.ctrl_recv(ctx.root, ("red-rs-done", op))


# ---------------------------------------------------------------------------
# Allreduce
# ---------------------------------------------------------------------------


def allreduce_reduce_bcast(ctx: RankCtx, k: int = 4) -> Generator:
    """Binomial reduce to the root + k-nomial broadcast of the result."""
    from repro.core import bcast as _bcast

    yield from reduce_binomial(ctx)
    yield from _bcast.knomial(ctx, k=k)


def allreduce_ring(ctx: RankCtx) -> Generator:
    """Ring reduce-scatter + ring-source allgather of the reduced chunks."""
    op = ctx.next_op()
    acc, addrs = yield from _ring_reduce_scatter(ctx, op)
    p, eta = ctx.size, ctx.eta
    chunks = chunk_partition(eta, p)
    own = (ctx.rank + 2) % p  # the chunk _ring_reduce_scatter leaves final here
    off, ln = chunks[own]
    if ln:
        yield from ctx.memcpy(ctx.recvbuf, off, acc, off, ln)
    # every chunk is final once everyone finishes the reduce-scatter
    yield from ctx.sm_barrier(("ar-rg-mid", op))
    for i in range(1, p):
        c = (own + i) % p
        owner = (c - 2) % p
        coff, cln = chunks[c]
        if cln == 0:
            continue
        yield from ctx.cma_read(
            owner, ctx.recvbuf.iov(coff, cln), (addrs[owner] + coff, cln)
        )
    # accumulators are being read until the last step completes
    yield from ctx.sm_barrier(("ar-rg-fin", op))


def allreduce_recursive_doubling(ctx: RankCtx) -> Generator:
    """lg p pairwise exchange-and-combine rounds (double-buffered)."""
    op = ctx.next_op()
    p, eta, rank = ctx.size, ctx.eta, ctx.rank
    m = 1 << (p.bit_length() - 1)
    if m > p:
        m >>= 1
    rem = p - m
    # two accumulator generations so a partner never reads a vector that
    # is being overwritten, plus a scratch for the incoming operand
    stages = [
        ctx.comm.allocate(rank, eta, f"ard{op}a"),
        ctx.comm.allocate(rank, eta, f"ard{op}b"),
    ]
    scratch = ctx.comm.allocate(rank, eta, f"ard{op}s")
    yield from ctx.memcpy(stages[0], 0, ctx.sendbuf, 0, eta)
    addrs = yield from ctx.sm_allgather(
        ("ard", op), (stages[0].addr, stages[1].addr)
    )

    if rank >= m:
        # fold my operand into my proxy, then copy the final result out
        proxy = rank - m
        yield ctx.ctrl_send(proxy, ("ard-folded", op))
        msg = yield ctx.ctrl_recv(proxy, ("ard-result", op))
        final_idx = msg.payload
        yield from ctx.cma_read(
            proxy, ctx.recvbuf.iov(0, eta), (addrs[proxy][final_idx], eta)
        )
        yield ctx.ctrl_send(proxy, ("ard-copied", op))
        return

    cur = 0
    if rank < rem:
        extra = rank + m
        yield ctx.ctrl_recv(extra, ("ard-folded", op))
        yield from ctx.cma_read(extra, scratch.iov(0, eta), (addrs[extra][0], eta))
        nxt = cur ^ 1
        yield from ctx.memcpy(stages[nxt], 0, stages[cur], 0, eta)
        yield from ctx.combine(stages[nxt], 0, scratch, 0, eta)
        cur = nxt

    steps = m.bit_length() - 1
    for i in range(steps):
        partner = rank ^ (1 << i)
        # tell each other which stage holds the current accumulator
        yield ctx.ctrl_send(partner, ("ard-tok", op, i), payload=cur)
        msg = yield ctx.ctrl_recv(partner, ("ard-tok", op, i))
        partner_cur = msg.payload
        yield from ctx.cma_read(
            partner, scratch.iov(0, eta), (addrs[partner][partner_cur], eta)
        )
        nxt = cur ^ 1
        yield from ctx.memcpy(stages[nxt], 0, stages[cur], 0, eta)
        yield from ctx.combine(stages[nxt], 0, scratch, 0, eta)
        # the partner may still be reading stages[cur]; sync before the
        # next round could overwrite it
        yield ctx.ctrl_send(partner, ("ard-ack", op, i))
        yield ctx.ctrl_recv(partner, ("ard-ack", op, i))
        cur = nxt

    yield from ctx.memcpy(ctx.recvbuf, 0, stages[cur], 0, eta)
    if rank < rem:
        extra = rank + m
        yield ctx.ctrl_send(extra, ("ard-result", op), payload=cur)
        yield ctx.ctrl_recv(extra, ("ard-copied", op))


# ---------------------------------------------------------------------------
# shared ring reduce-scatter phase
# ---------------------------------------------------------------------------


def _ring_reduce_scatter(ctx: RankCtx, op) -> Generator:
    """After this, rank r's accumulator chunk (r+2)%p is fully reduced.

    Read-based ring: in step s, read the chunk your left neighbour has
    been accumulating for s-1 hops and fold it into yours; ready tokens
    chain exactly like Ring-Neighbor Allgather.  Returns ``(acc, addrs)``
    for the collection phase.
    """
    p, eta, rank = ctx.size, ctx.eta, ctx.rank
    chunks = chunk_partition(eta, p)
    acc = ctx.comm.allocate(rank, eta, f"rs{op}")
    scratch = ctx.comm.allocate(rank, max(chunks[0][1], 1), f"rss{op}")
    yield from ctx.memcpy(acc, 0, ctx.sendbuf, 0, eta)
    addrs = yield from ctx.sm_allgather(("rs", op), acc.addr)
    left = (rank - 1) % p
    right = (rank + 1) % p
    yield ctx.ctrl_send(right, ("rs-tok", op, 0))
    for s in range(1, p):
        # chunk that is s-1 hops accumulated at my left neighbour
        c = (rank - s + 1) % p
        off, ln = chunks[c]
        yield ctx.ctrl_recv(left, ("rs-tok", op, s - 1))
        if ln > 0:
            yield from ctx.cma_read(left, scratch.iov(0, ln), (addrs[left] + off, ln))
            yield from ctx.combine(acc, off, scratch, 0, ln)
        if s < p - 1:
            yield ctx.ctrl_send(right, ("rs-tok", op, s))
    return acc, addrs
