"""Control-plane collectives over shared memory.

The native CMA collectives bootstrap with tiny metadata exchanges — "the
root broadcasts the address of its send buffer", "the root gathers the
addresses of the receive buffers", completion notifications.  These are the
:math:`T^{sm}_{bcast}` / :math:`T^{sm}_{gather}` / :math:`T^{sm}_{allgather}`
terms of the cost model.

All are binomial/dissemination patterns over control messages
(``O(log p)`` rounds of ``t_ctrl``-latency packets), implemented as
generators parameterised by ``(shm, rank, size, op)`` where ``op`` is a
collective sequence number every rank derives identically — it isolates
concurrent/back-to-back collectives from each other.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.shm.transport import ShmTransport

__all__ = ["sm_bcast", "sm_gather", "sm_allgather", "sm_barrier"]


def sm_bcast(
    shm: ShmTransport,
    rank: int,
    size: int,
    op: Any,
    payload: Any = None,
    root: int = 0,
) -> Generator:
    """Binomial-tree broadcast of a small python payload; returns it."""
    if size == 1:
        return payload
    relrank = (rank - root) % size
    tag = ("smb", op)
    mask = 1
    if relrank != 0:
        while mask < size:
            if relrank & mask:
                src = ((relrank ^ mask) + root) % size
                msg = yield shm.ctrl_recv(rank, src, tag)
                payload = msg.payload
                break
            mask <<= 1
    else:
        while mask < size:
            mask <<= 1
    # send phase: children are relrank + mask for each mask below the bit
    # where we received (for the root: below the first power of two >= p)
    mask >>= 1
    while mask > 0:
        if relrank + mask < size:
            dst = ((relrank + mask) + root) % size
            yield shm.ctrl_send(rank, dst, tag, payload)
        mask >>= 1
    return payload


def sm_gather(
    shm: ShmTransport,
    rank: int,
    size: int,
    op: Any,
    value: Any = None,
    root: int = 0,
) -> Generator:
    """Binomial-tree gather of one small value per rank.

    Returns ``{rank: value}`` for all ranks at the root, ``None`` elsewhere.
    """
    if size == 1:
        return {rank: value}
    relrank = (rank - root) % size
    tag = ("smg", op)
    collected = {rank: value}
    mask = 1
    while mask < size:
        if relrank & mask:
            dst = ((relrank ^ mask) + root) % size
            yield shm.ctrl_send(rank, dst, tag, collected)
            return None
        src_rel = relrank | mask
        if src_rel < size and src_rel != relrank:
            src = (src_rel + root) % size
            msg = yield shm.ctrl_recv(rank, src, tag)
            collected.update(msg.payload)
        mask <<= 1
    return collected


def sm_allgather(
    shm: ShmTransport,
    rank: int,
    size: int,
    op: Any,
    value: Any = None,
) -> Generator:
    """All ranks obtain ``{rank: value}``: gather to 0 then broadcast."""
    collected = yield from sm_gather(shm, rank, size, ("ag", op), value, root=0)
    collected = yield from sm_bcast(shm, rank, size, ("ag", op), collected, root=0)
    return collected


def sm_barrier(
    shm: ShmTransport,
    rank: int,
    size: int,
    op: Any,
) -> Generator:
    """Dissemination barrier: ceil(log2 p) rounds, works for any p."""
    if size == 1:
        return None
    k = 0
    dist = 1
    while dist < size:
        dst = (rank + dist) % size
        src = (rank - dist) % size
        tag = ("smx", op, k)
        yield shm.ctrl_send(rank, dst, tag)
        yield shm.ctrl_recv(rank, src, tag)
        dist <<= 1
        k += 1
    return None
