"""Shared-memory transport: control messages and pipelined two-copy data.

Control messages model the tiny (pointer-sized) packets collectives use to
exchange buffer addresses and notifications: fixed ``t_ctrl`` delivery
latency, roughly half of it spent as sender-side software overhead.

Data messages model the classic chunked copy through a shared segment:
the sender copies ``shm_chunk``-byte pieces in (cost ``chunk*shm_beta``
plus per-chunk bookkeeping) and the receiver copies them out at the same
rate.  The chunk ring is a single slot: copy-in and copy-out of one message
do *not* overlap.  That is deliberate — in practice the two copies fight
over the shared segment's cache lines, so pipelining buys little, and the
well-known "two-copy" cost of shared memory (the reason kernel-assisted
single-copy wins for large messages, paper Section I) is paid in full.
No kernel involvement, hence no mm-lock contention: this is why
shared-memory Bcast stays competitive below ~2 MB on Broadwell
(Section VII-F).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from repro.shm.segment import SegmentPool
from repro.sim.channels import Mailbox, Recv, Send
from repro.sim.engine import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.params import ModelParams
    from repro.sim.engine import Simulator

__all__ = ["ShmTransport", "CHUNK_TAGS"]

#: chunk slots per transfer: 1 == copy-in/copy-out fully serialized (see
#: module docstring for why two-copy cost is charged without overlap)
_RING_SLOTS = 1

#: tag namespaces so data chunks never collide with user control tags
CHUNK_TAGS = ("shm-chunk", "shm-credit")


class ShmTransport:
    """Node-wide shared-memory channel between local ranks."""

    def __init__(
        self,
        sim: "Simulator",
        params: "ModelParams",
        nranks: int,
        verify: bool = True,
    ):
        self.sim = sim
        self.params = params
        self.verify = verify
        self.mailboxes = [Mailbox(sim, owner=r) for r in range(nranks)]
        self.segment = SegmentPool(sim, params, params.shm_segment_slots)
        self.ctrl_messages = 0

    def reset(self) -> None:
        """Empty all mailboxes, restore segment slots, zero the ctrl count."""
        for mb in self.mailboxes:
            mb.reset()
        self.segment.reset()
        self.ctrl_messages = 0

    def mailbox(self, rank: int) -> Mailbox:
        return self.mailboxes[rank]

    # -- control plane ---------------------------------------------------------

    def ctrl_send(
        self, src: int, dst: int, tag: Any, payload: Any = None
    ) -> Send:
        """Command: post one small control message (addresses, ready, fin)."""
        self.ctrl_messages += 1
        t = self.params.t_ctrl
        return Send(
            self.mailboxes[dst],
            src=src,
            tag=tag,
            payload=payload,
            latency=t,
            overhead=t * 0.5,
        )

    def ctrl_send_flag(
        self, src: int, dst: int, tag: Any, payload: Any = None
    ) -> Send:
        """Command: a flag-store notification (release counter in the
        segment).  The writer pays nothing per watcher — readers poll —
        so unlike :meth:`ctrl_send` there is no sender-side overhead."""
        return Send(
            self.mailboxes[dst],
            src=src,
            tag=tag,
            payload=payload,
            latency=self.params.t_ctrl * 0.5,
            overhead=0.0,
        )

    def ctrl_recv(self, me: int, src: Any, tag: Any) -> Recv:
        """Command: block for a matching control message."""
        return Recv(self.mailboxes[me], src=src, tag=tag)

    # -- two-copy data plane ---------------------------------------------------

    def send_data(
        self,
        src: int,
        dst: int,
        tag: Any,
        data: Optional[np.ndarray],
        nbytes: int,
    ) -> Generator:
        """Copy ``nbytes`` into the segment chunk by chunk (sender side).

        ``data`` may be None in timing-only mode (``verify=False``).
        Flow control: at most ``_RING_SLOTS`` chunks in flight; the receiver
        returns credits as it drains them.
        """
        p = self.params
        chunk = p.shm_chunk
        sent = 0
        seq = 0
        in_flight = 0
        while sent < nbytes:
            n = min(chunk, nbytes - sent)
            if in_flight >= _RING_SLOTS:
                yield Recv(self.mailboxes[src], src=dst, tag=("shm-credit", tag))
                in_flight -= 1
            # claim a slot in the node's eager pool (blocks on exhaustion)
            yield self.segment.acquire_slot()
            # copy-in: one pass over the chunk at shm bandwidth
            yield Delay(n * p.shm_beta + p.shm_chunk_overhead)
            payload = None
            if self.verify and data is not None:
                payload = np.array(data[sent : sent + n], copy=True)
            yield Send(
                self.mailboxes[dst],
                src=src,
                tag=("shm-chunk", tag, seq),
                payload=(payload, n),
                latency=0.0,
            )
            in_flight += 1
            sent += n
            seq += 1
        while in_flight > 0:
            yield Recv(self.mailboxes[src], src=dst, tag=("shm-credit", tag))
            in_flight -= 1
        return sent

    def recv_data(
        self,
        me: int,
        src: int,
        tag: Any,
        out: Optional[np.ndarray],
        nbytes: int,
    ) -> Generator:
        """Receive a chunked shm transfer (receiver side); returns bytes."""
        p = self.params
        got = 0
        seq = 0
        while got < nbytes:
            msg = yield Recv(self.mailboxes[me], src=src, tag=("shm-chunk", tag, seq))
            payload, n = msg.payload
            # copy-out: second pass over the chunk
            yield Delay(n * p.shm_beta + p.shm_chunk_overhead)
            if self.verify and out is not None and payload is not None:
                out[got : got + n] = payload
            # chunk drained: return the segment slot, credit the sender
            yield self.segment.release_slot()
            yield Send(
                self.mailboxes[src],
                src=me,
                tag=("shm-credit", tag),
                latency=0.0,
            )
            got += n
            seq += 1
        return got
