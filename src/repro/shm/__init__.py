"""Two-copy shared-memory transport and control-message collectives.

Shared memory is the *other* intra-node channel MPI libraries use: the
sender copies into a shared segment and the receiver copies out (two copies
total, but no syscall and no mm-lock contention).  In this reproduction it
plays three roles:

* **control plane** for the native CMA collectives — address exchange,
  ready/fin notifications (the paper: "shared memory or loopback based
  transfers are used" for the pointer-sized messages);
* **small-message collectives** (``sm_bcast``/``sm_gather``/... — the
  :math:`T^{sm}_{coll}` terms in the cost model);
* **SHMEM baselines** — the two-copy data path the paper compares against
  (Fig. 9, Fig. 18's small-message regime).
"""

from repro.shm.segment import SegmentPool
from repro.shm.transport import ShmTransport, CHUNK_TAGS
from repro.shm.collectives import (
    sm_bcast,
    sm_gather,
    sm_allgather,
    sm_barrier,
)

__all__ = [
    "SegmentPool",
    "ShmTransport",
    "CHUNK_TAGS",
    "sm_bcast",
    "sm_gather",
    "sm_allgather",
    "sm_barrier",
]
