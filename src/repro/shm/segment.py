"""The shared-memory segment pool: finite eager-buffer capacity.

Real MPI libraries carve a fixed shared segment per node into chunk slots;
eager traffic stalls when the pool drains (classic "eager buffer
exhaustion").  :class:`SegmentPool` models exactly that: a counting
semaphore over ``nslots`` chunk slots, acquired by senders per in-flight
chunk and released when the receiver copies the chunk out.

The backpressure matters for the SHMEM baselines: a dense two-copy
Alltoall can have O(p) concurrent transfers and visibly serializes once
in-flight chunks exceed the pool — one more reason the single-copy
kernel-assisted path wins dense collectives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import Acquire, Release
from repro.sim.resources import Semaphore

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.params import ModelParams
    from repro.sim.engine import Simulator

__all__ = ["SegmentPool"]


class SegmentPool:
    """Node-wide pool of shared-segment chunk slots."""

    def __init__(self, sim: "Simulator", params: "ModelParams", nslots: int):
        self.sim = sim
        self.params = params
        self.nslots = nslots
        self._sem = Semaphore(sim, nslots, name="shm-segment")

    def reset(self) -> None:
        """Restore full slot capacity and drop waiter statistics."""
        self._sem.reset()

    @property
    def slots_in_use(self) -> int:
        return self._sem.in_use

    @property
    def peak_waiters(self) -> int:
        """How deep the exhaustion queue ever got (0 = never exhausted)."""
        return self._sem.max_waiters

    @property
    def bytes_capacity(self) -> int:
        return self.nslots * self.params.shm_chunk

    def acquire_slot(self) -> Acquire:
        """Command: claim one chunk slot (blocks on exhaustion)."""
        return Acquire(self._sem)

    def release_slot(self) -> Release:
        """Command: return one chunk slot (typically the receiver's side)."""
        return Release(self._sem)
