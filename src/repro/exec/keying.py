"""Content-addressed cache keys: canonical, restart-stable fingerprints.

A key must change iff something that can change the computed value
changes: any :class:`~repro.core.runner.CollectiveSpec` field, any
``Architecture`` / ``ModelParams`` / ``Topology`` field, any extra
argument, or the code-version salt.  Keys are therefore the SHA-256 of a
canonical JSON rendering of the payload — never Python's process-seeded
``hash()``, so the same payload produces the same key across process
restarts and across ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

__all__ = ["canonical", "digest"]


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serialisable primitives, deterministically.

    Dataclasses carry their qualified type name so two different types with
    the same field values never collide; dict entries are sorted by the
    canonical rendering of their key so insertion order never leaks into
    the fingerprint.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, np.generic):
        return canonical(obj.item())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        out: dict[str, Any] = {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}"
        }
        for f in dataclasses.fields(obj):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        items = [[canonical(k), canonical(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"__dict__": items}
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        members = [canonical(x) for x in obj]
        members.sort(key=lambda m: json.dumps(m, sort_keys=True))
        return {"__set__": members}
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": [list(obj.shape), canonical(obj.tolist())]}
    raise TypeError(
        f"cannot build a stable cache key from {type(obj).__qualname__}: {obj!r}"
    )


def digest(kind: str, payload: Any, salt: str) -> str:
    """SHA-256 hex digest of (salt, kind, canonical payload)."""
    blob = json.dumps(
        [salt, kind, canonical(payload)],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
