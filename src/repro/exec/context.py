"""Per-sweep execution context: worker count, cache handle, and stats.

A context is pushed around a sweep (``with use_context(ExecContext(...))``)
and every sweep point executed underneath it — collective runs, microbench
points, NLLS fits — consults its cache and its process pool.  With no
active context everything runs serial and uncached, exactly as the seed
code did.

Environment knobs (both honoured only where no explicit argument wins):

* ``REPRO_EXEC_WORKERS`` — pool size; ``1`` (or unset) means serial,
  ``auto`` means one worker per CPU.
* ``REPRO_CACHE_DIR`` — enables the on-disk cache at that directory for
  ``run_experiment`` / the CLIs.
* ``REPRO_WARM_NODES`` — set to ``0``/``off``/``false``/``no`` to disable
  warm-node reuse (every point builds a fresh simulated node, the pre-PR-3
  behaviour).  On by default; results are bit-identical either way.
* ``REPRO_POINT_TIMEOUT_S`` — per-point wall-clock budget (seconds, float)
  for pooled sweep points; unset/``0`` means unbounded (the default).
* ``REPRO_POINT_RETRIES`` — how many times a timed-out point is re-submitted
  before the sweep raises :class:`~repro.exec.pool.PointTimeoutError`.
* ``REPRO_SCHED`` — sweep scheduler mode: ``steal`` (the default:
  cost-model chunking, sticky warm-node routing, work stealing),
  ``nosteal`` (same scheduler, stealing disabled — for A/B runs), or
  ``off`` (the legacy fixed-chunk ``executor.map`` fan-out).  Results are
  bit-identical in every mode.
* ``REPRO_CACHE_SHARDS`` — cache shard count (1/16/256/4096 hex-prefix
  subdirectories; see :mod:`repro.exec.cache`).
* ``REPRO_SWEEP_JOURNAL`` — directory for the write-ahead sweep journal
  (:mod:`repro.exec.journal`): every completed point is logged durably, so
  a killed run resumes instead of restarting.  Unset means no journal.

The context also owns the :class:`~repro.exec.sched.CircuitBreaker`: the
systemic-failure ladder that degrades dispatch ``sched`` → ``legacy`` →
``serial`` when a whole pool layer keeps breaking (worker-level trouble
is handled below it, by the scheduler's supervision).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.exec.cache import ENV_CACHE_DIR, ResultCache

__all__ = [
    "ENV_WORKERS",
    "ENV_WARM_NODES",
    "ENV_POINT_TIMEOUT",
    "ENV_POINT_RETRIES",
    "ENV_SCHED",
    "SweepStats",
    "ExecContext",
    "current",
    "use_context",
    "from_env",
    "resolve_workers",
    "resolve_warm_nodes",
    "resolve_point_timeout",
    "resolve_point_retries",
    "resolve_sched",
]

ENV_WORKERS = "REPRO_EXEC_WORKERS"
ENV_WARM_NODES = "REPRO_WARM_NODES"
ENV_POINT_TIMEOUT = "REPRO_POINT_TIMEOUT_S"
ENV_POINT_RETRIES = "REPRO_POINT_RETRIES"
ENV_SCHED = "REPRO_SCHED"

_SCHED_ALIASES = {
    "": "steal",
    "steal": "steal",
    "on": "steal",
    "1": "steal",
    "true": "steal",
    "yes": "steal",
    "nosteal": "nosteal",
    "no-steal": "nosteal",
    "no_steal": "nosteal",
    "off": "off",
    "0": "off",
    "false": "off",
    "no": "off",
    "none": "off",
    "legacy": "off",
}


@dataclass
class SweepStats:
    """What one sweep actually did — surfaced by ``bench.report``."""

    points_total: int = 0
    points_run: int = 0
    cache_hits: int = 0
    workers: int = 1
    wall_s: float = 0.0
    #: simulator events processed by the points actually *run* (cache hits
    #: replay nothing); collective results carry the count, microbench
    #: scalars contribute 0.
    sim_events: int = 0
    #: wall seconds spent computing cache misses (the sweep's simulator
    #: cost, as opposed to ``wall_s`` which spans the whole context).
    run_wall_s: float = 0.0
    #: scheduler counters (zero when the legacy fan-out ran): chunks
    #: dispatched, whole-group steals, points routed through the
    #: scheduler, and points recomputed inline after a pool failure
    sched_chunks: int = 0
    sched_steals: int = 0
    sched_points: int = 0
    sched_fallbacks: int = 0
    #: predicted cost total (model units) and worker-side chunk-wall /
    #: scale-normalised |predicted-actual| sums (seconds) — the report
    #: line derives the cost-model error percentage from these
    sched_pred_cost: float = 0.0
    sched_wall_s: float = 0.0
    sched_err_s: float = 0.0
    #: corrupt cache entries currently quarantined (count as of the last
    #: sweep; the cache bounds the directory, see repro.exec.cache)
    cache_quarantined: int = 0
    #: resilience counters (all zero on healthy runs): points served from
    #: the write-ahead journal on resume, workers respawned, hung-chunk
    #: kills, sandboxed one-shot rescues, and points quarantined as
    #: :class:`~repro.exec.sched.PoisonedPoint`
    journal_replayed: int = 0
    sched_respawns: int = 0
    sched_hung_kills: int = 0
    sandbox_rescues: int = 0
    poisoned: int = 0
    #: dispatch layer the context's circuit breaker has degraded to
    #: ("sched" when healthy; see :class:`~repro.exec.sched.CircuitBreaker`)
    breaker_state: str = "sched"
    #: per-sweep-kind breakdown: kind -> [points_total, points_run,
    #: cache_hits].  The aggregate counters above fold every kind of work
    #: together (collective points, microbench points, fits, serve-table
    #: row compiles), which hides e.g. a table-compile run whose rows all
    #: missed the cache behind a figure sweep that mostly hit — the
    #: breakdown is what the report line prints so compile-cost
    #: regressions stay visible in CI summaries.
    by_kind: dict = field(default_factory=dict)

    def record_kind(self, kind: str, total: int, run: int, hits: int) -> None:
        row = self.by_kind.setdefault(kind, [0, 0, 0])
        row[0] += total
        row[1] += run
        row[2] += hits

    def record_sched(self, sstats) -> None:
        """Fold one scheduled run's :class:`~repro.exec.sched.SchedStats`."""
        self.sched_chunks += sstats.chunks
        self.sched_steals += sstats.steals
        self.sched_points += sstats.points
        self.sched_fallbacks += sstats.fallback_points
        self.sched_pred_cost += sstats.predicted_cost
        self.sched_wall_s += sstats.chunk_wall_s
        self.sched_err_s += sstats.cost_abs_err_s
        self.sched_respawns += sstats.respawns
        self.sched_hung_kills += sstats.hung_kills
        self.sandbox_rescues += sstats.sandbox_rescues
        self.poisoned += sstats.poisoned

    @property
    def sched_cost_err_pct(self):
        """Weighted predicted-vs-actual chunk cost error (None: no data)."""
        if self.sched_wall_s <= 0:
            return None
        return 100.0 * self.sched_err_s / self.sched_wall_s

    def merge(self, other: "SweepStats") -> None:
        """Fold a child sweep's counters into this one (wall time excluded:
        each context times its own span)."""
        self.points_total += other.points_total
        self.points_run += other.points_run
        self.cache_hits += other.cache_hits
        self.sim_events += other.sim_events
        self.run_wall_s += other.run_wall_s
        self.sched_chunks += other.sched_chunks
        self.sched_steals += other.sched_steals
        self.sched_points += other.sched_points
        self.sched_fallbacks += other.sched_fallbacks
        self.sched_pred_cost += other.sched_pred_cost
        self.sched_wall_s += other.sched_wall_s
        self.sched_err_s += other.sched_err_s
        self.journal_replayed += other.journal_replayed
        self.sched_respawns += other.sched_respawns
        self.sched_hung_kills += other.sched_hung_kills
        self.sandbox_rescues += other.sandbox_rescues
        self.poisoned += other.poisoned
        if other.breaker_state != "sched":
            self.breaker_state = other.breaker_state
        # Quarantine counts are a cache-level census, not per-sweep deltas:
        # contexts sharing one cache must not double-count it.
        self.cache_quarantined = max(
            self.cache_quarantined, other.cache_quarantined
        )
        for kind, (total, run, hits) in other.by_kind.items():
            self.record_kind(kind, total, run, hits)

    def describe(self) -> str:
        line = (
            f"{self.points_total} points: {self.points_run} run, "
            f"{self.cache_hits} cache hits, workers={self.workers}, "
            f"wall={self.wall_s:.1f}s, sim_events={self.sim_events}, "
            f"run_wall={self.run_wall_s:.1f}s"
        )
        if self.sched_chunks:
            err = self.sched_cost_err_pct
            line += (
                f", sched={self.sched_chunks} chunks/"
                f"{self.sched_steals} steals"
                + (f"/{err:.0f}% cost err" if err is not None else "")
            )
        resilience = []
        if self.journal_replayed:
            resilience.append(f"{self.journal_replayed} journal-replayed")
        if self.sched_respawns:
            resilience.append(f"{self.sched_respawns} respawns")
        if self.sched_hung_kills:
            resilience.append(f"{self.sched_hung_kills} hung-killed")
        if self.sandbox_rescues:
            resilience.append(f"{self.sandbox_rescues} sandbox-rescued")
        if self.poisoned:
            resilience.append(f"{self.poisoned} poisoned")
        if self.breaker_state != "sched":
            resilience.append(f"breaker={self.breaker_state}")
        if resilience:
            line += ", resilience: " + "/".join(resilience)
        return line


def resolve_workers(workers: Union[int, str, None]) -> int:
    """Explicit argument > ``REPRO_EXEC_WORKERS`` > serial."""
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if not raw:
            return 1
        workers = raw
    if isinstance(workers, str):
        if workers.lower() == "auto":
            return max(os.cpu_count() or 1, 1)
        try:
            workers = int(workers)
        except ValueError:
            raise ValueError(
                f"invalid worker count {workers!r} (set --workers or "
                f"{ENV_WORKERS} to an integer or 'auto')"
            ) from None
    return max(int(workers), 1)


def resolve_warm_nodes(warm_nodes: Optional[bool]) -> bool:
    """Explicit argument > ``REPRO_WARM_NODES`` > on."""
    if warm_nodes is not None:
        return bool(warm_nodes)
    raw = os.environ.get(ENV_WARM_NODES, "").strip().lower()
    return raw not in ("0", "off", "false", "no")


def resolve_point_timeout(timeout: Union[float, str, None]) -> Optional[float]:
    """Explicit argument > ``REPRO_POINT_TIMEOUT_S`` > unbounded (None)."""
    if timeout is None:
        raw = os.environ.get(ENV_POINT_TIMEOUT, "").strip()
        if not raw:
            return None
        timeout = raw
    if isinstance(timeout, str):
        try:
            timeout = float(timeout)
        except ValueError:
            raise ValueError(
                f"invalid point timeout {timeout!r} (set {ENV_POINT_TIMEOUT} "
                f"to a number of seconds)"
            ) from None
    timeout = float(timeout)
    return timeout if timeout > 0 else None


def resolve_point_retries(retries: Union[int, str, None]) -> int:
    """Explicit argument > ``REPRO_POINT_RETRIES`` > 0."""
    if retries is None:
        raw = os.environ.get(ENV_POINT_RETRIES, "").strip()
        if not raw:
            return 0
        retries = raw
    if isinstance(retries, str):
        try:
            retries = int(retries)
        except ValueError:
            raise ValueError(
                f"invalid retry count {retries!r} (set {ENV_POINT_RETRIES} "
                f"to an integer)"
            ) from None
    return max(int(retries), 0)


def resolve_sched(sched: Optional[str]) -> str:
    """Explicit argument > ``REPRO_SCHED`` > ``"steal"``.

    Returns one of ``"steal"`` / ``"nosteal"`` / ``"off"``.
    """
    if sched is None:
        sched = os.environ.get(ENV_SCHED, "")
    mode = _SCHED_ALIASES.get(str(sched).strip().lower())
    if mode is None:
        raise ValueError(
            f"invalid scheduler mode {sched!r} (set {ENV_SCHED} to "
            f"'steal', 'nosteal', or 'off')"
        )
    return mode


def _resolve_cache(cache) -> Optional[ResultCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, (str, os.PathLike)):
        return ResultCache(cache)
    return cache


class ExecContext:
    """One sweep's execution policy plus its accumulated stats.

    ``cache`` accepts ``None``/``False`` (off), ``True`` (default
    directory), a path, or a :class:`ResultCache`.  The context lazily
    owns one process pool shared by every sweep run underneath it;
    ``use_context`` shuts it down on exit.
    """

    def __init__(
        self,
        workers: Union[int, str, None] = None,
        cache=None,
        warm_nodes: Optional[bool] = None,
        point_timeout: Union[float, str, None] = None,
        point_retries: Union[int, str, None] = None,
        sched: Optional[str] = None,
        cost_engine=None,
        journal=None,
    ):
        from repro.exec.journal import resolve_journal_dir
        from repro.exec.sched import CircuitBreaker

        self.workers = resolve_workers(workers)
        self.cache = _resolve_cache(cache)
        self.warm_nodes = resolve_warm_nodes(warm_nodes)
        self.point_timeout = resolve_point_timeout(point_timeout)
        self.point_retries = resolve_point_retries(point_retries)
        self.sched = resolve_sched(sched)
        #: optional :class:`repro.serve.QueryEngine` the scheduler's cost
        #: model consults for points whose algorithm has no closed form
        self.cost_engine = cost_engine
        #: write-ahead journal directory (None: journalling off).  Accepts
        #: a path, ``False`` (explicitly off), or None (consult the env).
        self.journal_dir = resolve_journal_dir(journal)
        self.stats = SweepStats(workers=self.workers)
        self._executor = None  # None = not created, False = unavailable
        self._executor_owner: "ExecContext" = self
        self._sched_pool = None  # None = not created, False = unavailable
        self._cost_model = None
        self._journal = None
        self._breaker = CircuitBreaker()

    @property
    def breaker(self):
        """The dispatch circuit breaker — shared with the pool owner, so
        nested contexts degrade together with the pools they borrow."""
        if self._executor_owner is not self:
            return self._executor_owner.breaker
        return self._breaker

    def journal(self):
        """The context's :class:`~repro.exec.journal.SweepJournal`, or
        ``None`` when journalling is off."""
        if self.journal_dir is None:
            return None
        if self._journal is None:
            from repro.exec.journal import SweepJournal

            self._journal = SweepJournal(self.journal_dir)
        return self._journal

    def executor(self):
        """The shared pool, or ``None`` when serial/unavailable."""
        if self._executor_owner is not self:
            return self._executor_owner.executor()
        if self.workers <= 1 or self._executor is False:
            return None
        if self._executor is None:
            from repro.exec.pool import make_executor

            self._executor = make_executor(self.workers)
            if self._executor is None:
                self._executor = False
                return None
        return self._executor

    def sched_pool(self):
        """The shared :class:`~repro.exec.sched.StickyPool`, or ``None``.

        ``None`` means the scheduler should run inline: serial context,
        scheduling off, a host whose usable-CPU count makes process
        fan-out a guaranteed loss (the cost model's cheapest plan), or a
        pool that broke and was torn down.
        """
        if self._executor_owner is not self:
            return self._executor_owner.sched_pool()
        if self.workers <= 1 or self.sched == "off" or self._sched_pool is False:
            return None
        if self._breaker.state != "sched":
            # The breaker has degraded dispatch below the scheduler.
            if self._sched_pool is not None:
                self._sched_pool.close()
                self._sched_pool = False
            return None
        if self._sched_pool is not None and self._sched_pool.broken:
            # A broken pool is a pool-level failure: count it, then retry
            # with a fresh pool until the breaker says stop.
            self._sched_pool.close()
            self._sched_pool = None
            self._breaker.record_sched_failure()
            if self._breaker.state != "sched":
                self._sched_pool = False
                return None
        if self._sched_pool is None:
            from repro.exec.sched import StickyPool, usable_cpus

            size = min(self.workers, usable_cpus())
            if size < 2:
                self._sched_pool = False
                return None
            try:
                self._sched_pool = StickyPool(size)
            except Exception:
                self._breaker.record_sched_failure()
                self._sched_pool = False
                return None
        return self._sched_pool

    def adopt_sched_pool(self, pool) -> None:
        """Hand the context a caller-built :class:`StickyPool`.

        The chaos soak (and tests) use this to exercise scheduler
        supervision on hosts whose usable-CPU count would make
        :meth:`sched_pool` choose inline dispatch.  The context owns the
        pool from here on — :meth:`close` shuts it down.
        """
        if self._executor_owner is not self:
            self._executor_owner.adopt_sched_pool(pool)
            return
        if self._sched_pool not in (None, False):
            self._sched_pool.close()
        self._sched_pool = pool

    def cost_model(self):
        """The context's (lazily built) scheduler cost model."""
        if self._cost_model is None:
            from repro.exec.sched import CostModel

            self._cost_model = CostModel(engine=self.cost_engine)
        return self._cost_model

    def close(self) -> None:
        if self._executor_owner is self and self._executor not in (None, False):
            self._executor.shutdown()
        self._executor = None
        if self._executor_owner is self and self._sched_pool not in (None, False):
            self._sched_pool.close()
        self._sched_pool = None


_STACK: list[ExecContext] = []


def current() -> Optional[ExecContext]:
    return _STACK[-1] if _STACK else None


@contextmanager
def use_context(ctx: ExecContext) -> Iterator[ExecContext]:
    _STACK.append(ctx)
    try:
        yield ctx
    finally:
        _STACK.pop()
        ctx.close()


def from_env(
    workers=None, cache=None, warm_nodes=None, point_timeout=None,
    point_retries=None, sched=None, journal=None,
) -> ExecContext:
    """Build a context from explicit args, the enclosing context, then env.

    Used by ``run_experiment`` and the CLIs so that an outer context (e.g.
    the benchmark harness's) keeps control of workers/cache while each
    experiment still gets its own stats.
    """
    parent = current()
    if workers is None:
        w: Union[int, str, None] = parent.workers if parent is not None else None
    else:
        w = workers
    if cache is None:
        if parent is not None:
            c = parent.cache
        else:
            c = ResultCache() if os.environ.get(ENV_CACHE_DIR, "").strip() else None
    else:
        c = cache
    if warm_nodes is None and parent is not None:
        warm_nodes = parent.warm_nodes
    if point_timeout is None and parent is not None:
        point_timeout = parent.point_timeout
    if point_retries is None and parent is not None:
        point_retries = parent.point_retries
    if sched is None and parent is not None:
        sched = parent.sched
    if journal is None and parent is not None and parent.journal_dir is not None:
        journal = parent.journal_dir
    ctx = ExecContext(
        workers=w,
        cache=c,
        warm_nodes=warm_nodes,
        point_timeout=point_timeout,
        point_retries=point_retries,
        sched=sched,
        cost_engine=parent.cost_engine if parent is not None else None,
        journal=journal,
    )
    if parent is not None and parent.workers == ctx.workers:
        # Nested sweeps (run_experiment under a harness context) share the
        # parent's pools (executor and scheduler) rather than paying
        # start-up again.
        ctx._executor_owner = parent
    return ctx
