"""Per-sweep execution context: worker count, cache handle, and stats.

A context is pushed around a sweep (``with use_context(ExecContext(...))``)
and every sweep point executed underneath it — collective runs, microbench
points, NLLS fits — consults its cache and its process pool.  With no
active context everything runs serial and uncached, exactly as the seed
code did.

Environment knobs (both honoured only where no explicit argument wins):

* ``REPRO_EXEC_WORKERS`` — pool size; ``1`` (or unset) means serial,
  ``auto`` means one worker per CPU.
* ``REPRO_CACHE_DIR`` — enables the on-disk cache at that directory for
  ``run_experiment`` / the CLIs.
* ``REPRO_WARM_NODES`` — set to ``0``/``off``/``false``/``no`` to disable
  warm-node reuse (every point builds a fresh simulated node, the pre-PR-3
  behaviour).  On by default; results are bit-identical either way.
* ``REPRO_POINT_TIMEOUT_S`` — per-point wall-clock budget (seconds, float)
  for pooled sweep points; unset/``0`` means unbounded (the default).
* ``REPRO_POINT_RETRIES`` — how many times a timed-out point is re-submitted
  before the sweep raises :class:`~repro.exec.pool.PointTimeoutError`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.exec.cache import ENV_CACHE_DIR, ResultCache

__all__ = [
    "ENV_WORKERS",
    "ENV_WARM_NODES",
    "ENV_POINT_TIMEOUT",
    "ENV_POINT_RETRIES",
    "SweepStats",
    "ExecContext",
    "current",
    "use_context",
    "from_env",
    "resolve_workers",
    "resolve_warm_nodes",
    "resolve_point_timeout",
    "resolve_point_retries",
]

ENV_WORKERS = "REPRO_EXEC_WORKERS"
ENV_WARM_NODES = "REPRO_WARM_NODES"
ENV_POINT_TIMEOUT = "REPRO_POINT_TIMEOUT_S"
ENV_POINT_RETRIES = "REPRO_POINT_RETRIES"


@dataclass
class SweepStats:
    """What one sweep actually did — surfaced by ``bench.report``."""

    points_total: int = 0
    points_run: int = 0
    cache_hits: int = 0
    workers: int = 1
    wall_s: float = 0.0
    #: simulator events processed by the points actually *run* (cache hits
    #: replay nothing); collective results carry the count, microbench
    #: scalars contribute 0.
    sim_events: int = 0
    #: wall seconds spent computing cache misses (the sweep's simulator
    #: cost, as opposed to ``wall_s`` which spans the whole context).
    run_wall_s: float = 0.0
    #: per-sweep-kind breakdown: kind -> [points_total, points_run,
    #: cache_hits].  The aggregate counters above fold every kind of work
    #: together (collective points, microbench points, fits, serve-table
    #: row compiles), which hides e.g. a table-compile run whose rows all
    #: missed the cache behind a figure sweep that mostly hit — the
    #: breakdown is what the report line prints so compile-cost
    #: regressions stay visible in CI summaries.
    by_kind: dict = field(default_factory=dict)

    def record_kind(self, kind: str, total: int, run: int, hits: int) -> None:
        row = self.by_kind.setdefault(kind, [0, 0, 0])
        row[0] += total
        row[1] += run
        row[2] += hits

    def merge(self, other: "SweepStats") -> None:
        """Fold a child sweep's counters into this one (wall time excluded:
        each context times its own span)."""
        self.points_total += other.points_total
        self.points_run += other.points_run
        self.cache_hits += other.cache_hits
        self.sim_events += other.sim_events
        self.run_wall_s += other.run_wall_s
        for kind, (total, run, hits) in other.by_kind.items():
            self.record_kind(kind, total, run, hits)

    def describe(self) -> str:
        return (
            f"{self.points_total} points: {self.points_run} run, "
            f"{self.cache_hits} cache hits, workers={self.workers}, "
            f"wall={self.wall_s:.1f}s, sim_events={self.sim_events}, "
            f"run_wall={self.run_wall_s:.1f}s"
        )


def resolve_workers(workers: Union[int, str, None]) -> int:
    """Explicit argument > ``REPRO_EXEC_WORKERS`` > serial."""
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if not raw:
            return 1
        workers = raw
    if isinstance(workers, str):
        if workers.lower() == "auto":
            return max(os.cpu_count() or 1, 1)
        try:
            workers = int(workers)
        except ValueError:
            raise ValueError(
                f"invalid worker count {workers!r} (set --workers or "
                f"{ENV_WORKERS} to an integer or 'auto')"
            ) from None
    return max(int(workers), 1)


def resolve_warm_nodes(warm_nodes: Optional[bool]) -> bool:
    """Explicit argument > ``REPRO_WARM_NODES`` > on."""
    if warm_nodes is not None:
        return bool(warm_nodes)
    raw = os.environ.get(ENV_WARM_NODES, "").strip().lower()
    return raw not in ("0", "off", "false", "no")


def resolve_point_timeout(timeout: Union[float, str, None]) -> Optional[float]:
    """Explicit argument > ``REPRO_POINT_TIMEOUT_S`` > unbounded (None)."""
    if timeout is None:
        raw = os.environ.get(ENV_POINT_TIMEOUT, "").strip()
        if not raw:
            return None
        timeout = raw
    if isinstance(timeout, str):
        try:
            timeout = float(timeout)
        except ValueError:
            raise ValueError(
                f"invalid point timeout {timeout!r} (set {ENV_POINT_TIMEOUT} "
                f"to a number of seconds)"
            ) from None
    timeout = float(timeout)
    return timeout if timeout > 0 else None


def resolve_point_retries(retries: Union[int, str, None]) -> int:
    """Explicit argument > ``REPRO_POINT_RETRIES`` > 0."""
    if retries is None:
        raw = os.environ.get(ENV_POINT_RETRIES, "").strip()
        if not raw:
            return 0
        retries = raw
    if isinstance(retries, str):
        try:
            retries = int(retries)
        except ValueError:
            raise ValueError(
                f"invalid retry count {retries!r} (set {ENV_POINT_RETRIES} "
                f"to an integer)"
            ) from None
    return max(int(retries), 0)


def _resolve_cache(cache) -> Optional[ResultCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, (str, os.PathLike)):
        return ResultCache(cache)
    return cache


class ExecContext:
    """One sweep's execution policy plus its accumulated stats.

    ``cache`` accepts ``None``/``False`` (off), ``True`` (default
    directory), a path, or a :class:`ResultCache`.  The context lazily
    owns one process pool shared by every sweep run underneath it;
    ``use_context`` shuts it down on exit.
    """

    def __init__(
        self,
        workers: Union[int, str, None] = None,
        cache=None,
        warm_nodes: Optional[bool] = None,
        point_timeout: Union[float, str, None] = None,
        point_retries: Union[int, str, None] = None,
    ):
        self.workers = resolve_workers(workers)
        self.cache = _resolve_cache(cache)
        self.warm_nodes = resolve_warm_nodes(warm_nodes)
        self.point_timeout = resolve_point_timeout(point_timeout)
        self.point_retries = resolve_point_retries(point_retries)
        self.stats = SweepStats(workers=self.workers)
        self._executor = None  # None = not created, False = unavailable
        self._executor_owner: "ExecContext" = self

    def executor(self):
        """The shared pool, or ``None`` when serial/unavailable."""
        if self._executor_owner is not self:
            return self._executor_owner.executor()
        if self.workers <= 1 or self._executor is False:
            return None
        if self._executor is None:
            from repro.exec.pool import make_executor

            self._executor = make_executor(self.workers)
            if self._executor is None:
                self._executor = False
                return None
        return self._executor

    def close(self) -> None:
        if self._executor_owner is self and self._executor not in (None, False):
            self._executor.shutdown()
        self._executor = None


_STACK: list[ExecContext] = []


def current() -> Optional[ExecContext]:
    return _STACK[-1] if _STACK else None


@contextmanager
def use_context(ctx: ExecContext) -> Iterator[ExecContext]:
    _STACK.append(ctx)
    try:
        yield ctx
    finally:
        _STACK.pop()
        ctx.close()


def from_env(
    workers=None, cache=None, warm_nodes=None, point_timeout=None, point_retries=None
) -> ExecContext:
    """Build a context from explicit args, the enclosing context, then env.

    Used by ``run_experiment`` and the CLIs so that an outer context (e.g.
    the benchmark harness's) keeps control of workers/cache while each
    experiment still gets its own stats.
    """
    parent = current()
    if workers is None:
        w: Union[int, str, None] = parent.workers if parent is not None else None
    else:
        w = workers
    if cache is None:
        if parent is not None:
            c = parent.cache
        else:
            c = ResultCache() if os.environ.get(ENV_CACHE_DIR, "").strip() else None
    else:
        c = cache
    if warm_nodes is None and parent is not None:
        warm_nodes = parent.warm_nodes
    if point_timeout is None and parent is not None:
        point_timeout = parent.point_timeout
    if point_retries is None and parent is not None:
        point_retries = parent.point_retries
    ctx = ExecContext(
        workers=w,
        cache=c,
        warm_nodes=warm_nodes,
        point_timeout=point_timeout,
        point_retries=point_retries,
    )
    if parent is not None and parent.workers == ctx.workers:
        # Nested sweeps (run_experiment under a harness context) share the
        # parent's pool rather than paying start-up again.
        ctx._executor_owner = parent
    return ctx
