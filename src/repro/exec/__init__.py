"""Parallel sweep execution and persistent result/fit caching.

The evaluation sweeps (Figs 2–18, Tabs III–VII) are embarrassingly
parallel: every point builds a fresh simulated node.  This package fans
points out over a ``ProcessPoolExecutor`` and memoises per-point results
and NLLS fit outputs in a content-addressed on-disk cache, while keeping
one hard guarantee: **parallel == serial == cached, byte for byte**
(``tests/test_exec_differential.py`` enforces it).

Quick use::

    from repro.exec import ExecContext, ResultCache, use_context
    from repro.exec.sweep import run_specs

    with use_context(ExecContext(workers=4, cache=ResultCache("/tmp/c"))):
        results = run_specs(specs)      # pooled, cached, input order

Environment: ``REPRO_EXEC_WORKERS`` (pool size, ``1``=serial,
``auto``=CPU count), ``REPRO_CACHE_DIR`` (cache directory; enables the
cache for ``run_experiment`` and the CLIs).
"""

from repro.exec.cache import CACHE_VERSION, ENV_CACHE_DIR, ResultCache, default_cache_dir
from repro.exec.context import (
    ENV_WORKERS,
    ExecContext,
    SweepStats,
    current,
    from_env,
    resolve_workers,
    use_context,
)
from repro.exec.sweep import (
    cached_call,
    run_collective,
    run_specs,
    sweep_microbench,
)

__all__ = [
    "CACHE_VERSION",
    "ENV_CACHE_DIR",
    "ENV_WORKERS",
    "ExecContext",
    "ResultCache",
    "SweepStats",
    "cached_call",
    "current",
    "default_cache_dir",
    "from_env",
    "resolve_workers",
    "run_collective",
    "run_specs",
    "sweep_microbench",
    "use_context",
]
