"""Persistent content-addressed cache for sweep points and NLLS fits.

Entries live under one directory (``REPRO_CACHE_DIR`` or
``~/.cache/repro-exec``), one pickle per key, written atomically.  The key
already embeds a code-version salt (:data:`CACHE_VERSION`), and every
entry re-states the salt it was written under, so a stale or corrupted
entry is never served — :meth:`ResultCache.get` reports a miss, deletes
the file, and the caller recomputes.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

from repro.exec.keying import digest

__all__ = ["ResultCache", "CACHE_VERSION", "ENV_CACHE_DIR", "default_cache_dir"]

#: Code-version salt baked into every key and entry.  Bump whenever the
#: simulator, model, or fitting pipeline changes in a way that alters
#: results: old entries then silently miss instead of serving stale data.
CACHE_VERSION = "repro-exec-v1"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-exec"


class ResultCache:
    """On-disk result cache; every operation is best-effort and atomic.

    ``get`` never raises on a bad entry and ``put`` never fails a sweep
    over an unwritable directory — the cache only ever turns recomputation
    into a lookup, it cannot change results.
    """

    def __init__(self, root: Optional[os.PathLike | str] = None,
                 salt: str = CACHE_VERSION):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt

    def key_for(self, kind: str, payload: Any) -> str:
        return digest(kind, payload, self.salt)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; corrupted/stale entries count as misses."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
            if isinstance(entry, dict) and entry.get("salt") == self.salt \
                    and "value" in entry:
                return True, entry["value"]
        except FileNotFoundError:
            return False, None
        except Exception:
            pass
        # Corrupted bytes or a different code-version salt: drop the entry
        # so the recomputed value replaces it.
        try:
            path.unlink()
        except OSError:
            pass
        return False, None

    def put(self, key: str, value: Any) -> None:
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(
                        {"salt": self.salt, "value": value},
                        f,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            pass
