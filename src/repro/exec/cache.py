"""Persistent content-addressed cache for sweep points and NLLS fits.

Entries live under one directory (``REPRO_CACHE_DIR`` or
``~/.cache/repro-exec``), one pickle per key, written atomically.  The key
already embeds a code-version salt (:data:`CACHE_VERSION`), and every
entry re-states the salt it was written under plus a CRC-32 of its
pickled payload, so a stale, truncated, or bit-flipped entry is never
served — :meth:`ResultCache.get` reports a miss, moves the bad file into
a ``quarantine/`` subdirectory (preserving the evidence for debugging),
and the caller recomputes and overwrites.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import zlib
from pathlib import Path
from typing import Any, Optional, Tuple

from repro.exec.keying import digest

__all__ = ["ResultCache", "CACHE_VERSION", "ENV_CACHE_DIR", "default_cache_dir"]

#: Code-version salt baked into every key and entry.  Bump whenever the
#: simulator, model, or fitting pipeline changes in a way that alters
#: results: old entries then silently miss instead of serving stale data.
#: v2: checksummed entry envelope + CollectiveResult degraded-mode counters.
#: v3: transport-lane spec field (xpmem vs cma points must never collide)
#: + CollectiveResult mapped-window counters.
CACHE_VERSION = "repro-exec-v3"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"

_QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-exec"


class ResultCache:
    """On-disk result cache; every operation is best-effort and atomic.

    ``get`` never raises on a bad entry and ``put`` never fails a sweep
    over an unwritable directory — the cache only ever turns recomputation
    into a lookup, it cannot change results.

    An entry is ``{"salt", "crc", "payload"}`` where ``payload`` is the
    pickled value and ``crc`` its CRC-32: a checksum mismatch (disk
    corruption, torn concurrent writer on a non-atomic filesystem) is
    detected *before* the payload is unpickled, so a corrupted entry can
    neither be served nor crash the sweep mid-unpickle.
    """

    def __init__(self, root: Optional[os.PathLike | str] = None,
                 salt: str = CACHE_VERSION):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt
        #: entries found corrupt and moved aside since construction
        self.quarantined = 0

    def key_for(self, kind: str, payload: Any) -> str:
        return digest(kind, payload, self.salt)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; corrupted/stale entries count as misses."""
        path = self.path_for(key)
        stale = False
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
            if isinstance(entry, dict) and entry.get("salt") == self.salt:
                payload = entry.get("payload")
                if (
                    isinstance(payload, bytes)
                    and entry.get("crc") == zlib.crc32(payload)
                ):
                    return True, pickle.loads(payload)
            else:
                # A well-formed entry under a different code version isn't
                # corruption — just drop it rather than quarantining.
                stale = isinstance(entry, dict) and "salt" in entry
        except FileNotFoundError:
            return False, None
        except Exception:
            pass
        if stale:
            try:
                path.unlink()
            except OSError:
                pass
        else:
            self._quarantine(path)
        return False, None

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (or delete it if that fails)."""
        try:
            qdir = self.root / _QUARANTINE_DIR
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            self.quarantined += 1
            return
        except OSError:
            pass
        try:
            path.unlink()
            self.quarantined += 1
        except OSError:
            pass

    def put(self, key: str, value: Any) -> None:
        path = self.path_for(key)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(
                        {
                            "salt": self.salt,
                            "crc": zlib.crc32(payload),
                            "payload": payload,
                        },
                        f,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            pass
