"""Persistent content-addressed cache for sweep points and NLLS fits.

Entries live under a sharded directory tree (``REPRO_CACHE_DIR`` or
``~/.cache/repro-exec``), one pickle per key, written atomically.  The
shard of a key is a hex prefix of its digest (``REPRO_CACHE_SHARDS``
selects 1 / 16 / 256 / 4096 subdirectories; 256 — two hex chars — is the
default and matches the layout every prior version wrote), so a
million-entry cache never funnels into one directory.  Keys are
placement-independent: changing the shard count never invalidates an
entry, because :meth:`ResultCache.get` transparently probes the other
layouts on a miss and migrates a found entry into the current one with a
single ``os.replace`` (no ``CACHE_VERSION`` bump — only placement moves).

The key already embeds a code-version salt (:data:`CACHE_VERSION`), and
every entry re-states the salt it was written under plus a CRC-32 of its
pickled payload, so a stale, truncated, or bit-flipped entry is never
served — :meth:`ResultCache.get` reports a miss, moves the bad file into
a ``quarantine/`` subdirectory (preserving the evidence for debugging),
and the caller recomputes and overwrites.  Quarantine is bounded: it
keeps at most :data:`DEFAULT_MAX_QUARANTINE` entries (oldest evicted), so
a recurring corruption source cannot grow the directory without limit.

``get_many`` / ``put_many`` are the sweep-facing batched forms: one call
covers a whole point list, amortising shard-directory bookkeeping (and,
for writes, the ``mkdir`` probe per shard) across the batch instead of
paying it per point.

Writes are crash-safe, not just atomic: the entry is written to a temp
file *in the same shard*, flushed and fsync'd, then ``os.replace``'d over
the target — a kill between write and rename leaves only a stray
``.tmp-`` file (never a truncated envelope), and a kill after the rename
leaves a fully durable entry.  ``REPRO_CACHE_FSYNC=0`` trades the
power-loss guarantee for write speed (the rename alone already protects
against process death).  Under an armed chaos plan (:mod:`repro.exec.chaos`)
``put`` is also the injection site for ``corrupt`` / ``truncate`` /
``tear`` attacks, which the CRC quarantine must absorb.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import zlib
from pathlib import Path
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.exec import chaos as _chaos
from repro.exec.keying import digest

__all__ = [
    "ResultCache",
    "CACHE_VERSION",
    "ENV_CACHE_DIR",
    "ENV_CACHE_SHARDS",
    "ENV_CACHE_FSYNC",
    "DEFAULT_SHARDS",
    "DEFAULT_MAX_QUARANTINE",
    "default_cache_dir",
    "resolve_shards",
    "resolve_cache_fsync",
]

#: Code-version salt baked into every key and entry.  Bump whenever the
#: simulator, model, or fitting pipeline changes in a way that alters
#: results: old entries then silently miss instead of serving stale data.
#: v2: checksummed entry envelope + CollectiveResult degraded-mode counters.
#: v3: transport-lane spec field (xpmem vs cma points must never collide)
#: + CollectiveResult mapped-window counters.
CACHE_VERSION = "repro-exec-v3"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_SHARDS = "REPRO_CACHE_SHARDS"
ENV_CACHE_FSYNC = "REPRO_CACHE_FSYNC"

#: Default shard count: 256 subdirectories keyed on the first two hex
#: chars of the digest — byte-identical to the paths all earlier versions
#: wrote, so upgrading never triggers a migration.
DEFAULT_SHARDS = 256

#: ``quarantine/`` keeps at most this many corrupt entries as evidence;
#: beyond it the oldest files are evicted so a recurring corruption
#: source (bad disk, torn writer) cannot grow the directory unboundedly.
DEFAULT_MAX_QUARANTINE = 64

#: shard count -> hex-prefix length used as the subdirectory name
_SHARD_WIDTHS = {1: 0, 16: 1, 256: 2, 4096: 3}

_QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-exec"


def resolve_shards(shards: Any = None) -> int:
    """Explicit argument > ``REPRO_CACHE_SHARDS`` > 256.

    Only powers of 16 map onto hex-prefix directories, so the legal
    values are exactly 1, 16, 256, and 4096.
    """
    if shards is None:
        raw = os.environ.get(ENV_CACHE_SHARDS, "").strip()
        if not raw:
            return DEFAULT_SHARDS
        shards = raw
    if isinstance(shards, str):
        try:
            shards = int(shards)
        except ValueError:
            raise ValueError(
                f"invalid shard count {shards!r} (set {ENV_CACHE_SHARDS} to "
                f"one of {sorted(_SHARD_WIDTHS)})"
            ) from None
    shards = int(shards)
    if shards not in _SHARD_WIDTHS:
        raise ValueError(
            f"invalid shard count {shards} (hex-prefix sharding supports "
            f"{sorted(_SHARD_WIDTHS)})"
        )
    return shards


def resolve_cache_fsync(fsync: Optional[bool] = None) -> bool:
    """Explicit argument > ``REPRO_CACHE_FSYNC`` > on."""
    if fsync is not None:
        return bool(fsync)
    raw = os.environ.get(ENV_CACHE_FSYNC, "").strip().lower()
    return raw not in ("0", "off", "false", "no")


class ResultCache:
    """On-disk result cache; every operation is best-effort and atomic.

    ``get`` never raises on a bad entry and ``put`` never fails a sweep
    over an unwritable directory — the cache only ever turns recomputation
    into a lookup, it cannot change results.

    An entry is ``{"salt", "crc", "payload"}`` where ``payload`` is the
    pickled value and ``crc`` its CRC-32: a checksum mismatch (disk
    corruption, torn concurrent writer on a non-atomic filesystem) is
    detected *before* the payload is unpickled, so a corrupted entry can
    neither be served nor crash the sweep mid-unpickle.
    """

    def __init__(
        self,
        root: Optional[os.PathLike | str] = None,
        salt: str = CACHE_VERSION,
        shards: Any = None,
        max_quarantine: int = DEFAULT_MAX_QUARANTINE,
        fsync: Optional[bool] = None,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt
        self.shards = resolve_shards(shards)
        self._width = _SHARD_WIDTHS[self.shards]
        self.fsync = resolve_cache_fsync(fsync)
        self.max_quarantine = max(int(max_quarantine), 1)
        #: entries found corrupt and moved aside since construction
        self.quarantined = 0
        #: shard directories already mkdir'd by this instance — ``put``
        #: pays the probe once per shard, not once per entry
        self._dirs_made: set = set()

    def key_for(self, kind: str, payload: Any) -> str:
        return digest(kind, payload, self.salt)

    def _path_at(self, key: str, width: int) -> Path:
        if width:
            return self.root / key[:width] / f"{key}.pkl"
        return self.root / f"{key}.pkl"

    def path_for(self, key: str) -> Path:
        return self._path_at(key, self._width)

    def _alt_paths(self, key: str) -> List[Path]:
        """The same key's path under every *other* supported layout,
        legacy two-char prefix first (the layout all prior versions
        wrote, hence the likeliest hit)."""
        order = [2, 0, 1, 3]
        return [
            self._path_at(key, w) for w in order if w != self._width
        ]

    # -- reads ---------------------------------------------------------------

    def _read_entry(self, path: Path) -> Tuple[str, Any]:
        """Classify the entry at ``path``: ``("hit", value)`` /
        ``("missing", None)`` / ``("stale", None)`` / ``("corrupt", None)``.
        Never raises; never mutates the filesystem."""
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
        except FileNotFoundError:
            return "missing", None
        except Exception:
            return "corrupt", None
        if isinstance(entry, dict) and entry.get("salt") == self.salt:
            payload = entry.get("payload")
            if (
                isinstance(payload, bytes)
                and entry.get("crc") == zlib.crc32(payload)
            ):
                try:
                    return "hit", pickle.loads(payload)
                except Exception:
                    return "corrupt", None
            return "corrupt", None
        # A well-formed entry under a different code version isn't
        # corruption — just drop it rather than quarantining.
        if isinstance(entry, dict) and "salt" in entry:
            return "stale", None
        return "corrupt", None

    def _dispose(self, status: str, path: Path) -> None:
        if status == "stale":
            try:
                path.unlink()
            except OSError:
                pass
        elif status == "corrupt":
            self._quarantine(path)

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; corrupted/stale entries count as misses.

        A key missing from the current shard layout is probed under the
        other layouts (read-through migration): a valid entry found there
        is served *and* moved into the current layout, so a cache written
        at a different ``REPRO_CACHE_SHARDS`` drains into the new
        placement as it is read, no bulk migration required.
        """
        path = self.path_for(key)
        status, value = self._read_entry(path)
        if status == "hit":
            return True, value
        if status == "missing":
            return self._get_migrate(key, path)
        self._dispose(status, path)
        return False, None

    def _get_migrate(self, key: str, dest: Path) -> Tuple[bool, Any]:
        """Probe alternate shard layouts for ``key``; migrate on hit."""
        for alt in self._alt_paths(key):
            status, value = self._read_entry(alt)
            if status == "missing":
                continue
            if status == "hit":
                try:
                    self._ensure_dir(dest.parent)
                    os.replace(alt, dest)
                except OSError:
                    pass  # serving the value is what matters
                return True, value
            self._dispose(status, alt)
        return False, None

    def get_many(self, keys: Sequence[str]) -> List[Tuple[bool, Any]]:
        """Batched :meth:`get`: one call for a whole point list.

        Returns ``[(hit, value), ...]`` aligned with ``keys``.  Existence
        is resolved with one ``scandir`` per *shard directory* touched by
        the batch instead of one failed ``open`` per missing key, so a
        cold sweep over N points costs O(shards-touched) directory reads,
        not O(N) exceptions.
        """
        listed: dict = {}

        def names_in(shard_dir: Path) -> frozenset:
            cached = listed.get(shard_dir)
            if cached is None:
                try:
                    with os.scandir(shard_dir) as it:
                        cached = frozenset(e.name for e in it)
                except OSError:
                    cached = frozenset()
                listed[shard_dir] = cached
            return cached

        out: List[Tuple[bool, Any]] = []
        for key in keys:
            path = self.path_for(key)
            if path.name in names_in(path.parent):
                status, value = self._read_entry(path)
                if status == "hit":
                    out.append((True, value))
                    continue
                if status != "missing":
                    self._dispose(status, path)
                    out.append((False, None))
                    continue
            out.append(self._get_migrate(key, path))
        return out

    # -- writes --------------------------------------------------------------

    def _ensure_dir(self, parent: Path) -> None:
        if parent not in self._dirs_made:
            parent.mkdir(parents=True, exist_ok=True)
            self._dirs_made.add(parent)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (or delete it if that fails), then
        trim ``quarantine/`` to :attr:`max_quarantine` oldest-first."""
        qdir = self.root / _QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            self.quarantined += 1
        except OSError:
            try:
                path.unlink()
                self.quarantined += 1
            except OSError:
                return
        self._trim_quarantine(qdir)

    def _trim_quarantine(self, qdir: Path) -> None:
        try:
            entries = [
                (e.stat().st_mtime, e.path)
                for e in os.scandir(qdir)
                if e.is_file()
            ]
        except OSError:
            return
        if len(entries) <= self.max_quarantine:
            return
        entries.sort()
        for _, stale in entries[: len(entries) - self.max_quarantine]:
            try:
                os.unlink(stale)
            except OSError:
                pass

    def quarantine_count(self) -> int:
        """Files currently held in ``quarantine/`` (0 if none/unreadable)."""
        try:
            return sum(
                1 for e in os.scandir(self.root / _QUARANTINE_DIR) if e.is_file()
            )
        except OSError:
            return 0

    def put(self, key: str, value: Any) -> None:
        path = self.path_for(key)
        cst = _chaos.state()
        attack = cst.draw("cache") if cst is not None else None
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            self._ensure_dir(path.parent)
            try:
                fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            except FileNotFoundError:
                # Shard dir removed externally since we memoised it.
                self._dirs_made.discard(path.parent)
                self._ensure_dir(path.parent)
                fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(
                        {
                            "salt": self.salt,
                            "crc": zlib.crc32(payload),
                            "payload": payload,
                        },
                        f,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    f.flush()
                    if self.fsync:
                        # Durable before visible: the rename below must
                        # never publish an entry the disk doesn't hold yet.
                        os.fsync(f.fileno())
                if attack is not None and attack.kind == "tear":
                    # Chaos: abandon the swap mid-publication — exactly
                    # the state a kill between write and replace leaves
                    # (a stray .tmp- file, target untouched).
                    return
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            if attack is not None:
                self._chaos_mangle(path, attack.kind)
        except (OSError, pickle.PicklingError):
            pass

    def _chaos_mangle(self, path: Path, kind: str) -> None:
        """Damage the just-published entry at rest (chaos ``corrupt`` /
        ``truncate``) — the CRC envelope must catch it on the next read."""
        try:
            size = os.path.getsize(path)
            if size <= 0:
                return
            if kind == "corrupt":
                with open(path, "r+b") as f:
                    f.seek(size // 2)
                    b = f.read(1)
                    f.seek(size // 2)
                    f.write(bytes([(b[0] ^ 0xFF) if b else 0xFF]))
            elif kind == "truncate":
                with open(path, "r+b") as f:
                    f.truncate(max(size // 2, 1))
        except OSError:
            pass

    def put_many(self, pairs: Iterable[Tuple[str, Any]]) -> None:
        """Batched :meth:`put` — same atomic per-entry writes, shard-dir
        creation amortised across the batch (see :meth:`_ensure_dir`)."""
        for key, value in pairs:
            self.put(key, value)
