"""The cache-aware sweep engine.

Everything the benchmark harness measures flows through one of three
entry points:

* :func:`run_specs` / :func:`run_collective` — collective points
  (:class:`~repro.core.runner.CollectiveSpec`);
* :func:`sweep_microbench` — raw CMA microbenchmark points
  (:mod:`repro.bench.microbench` functions);
* :func:`cached_call` — expensive scalar computations (the NLLS fits in
  :mod:`repro.core.fitting`).

Each checks the active :class:`~repro.exec.context.ExecContext`'s cache
first, fans cache misses out over the process pool, stores the computed
values back, and returns results in input order.  The determinism
contract — enforced by ``tests/test_exec_differential.py`` — is that the
returned values are *bit-identical* whether a point was computed serially,
in a pool worker, or served from a warm cache: every point builds a fresh
simulated node, so points share no mutable state, and the simulator itself
is deterministic.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.runner import CollectiveResult, CollectiveSpec
from repro.core.runner import run_collective as _run_collective_fresh
from repro.exec import context as _context
from repro.exec.pool import map_points

__all__ = [
    "sweep",
    "run_specs",
    "run_collective",
    "sweep_microbench",
    "microbench_point",
    "cached_call",
]

_MISS = object()


def sweep(
    kind: str,
    runner: Callable[[Any], Any],
    points: Sequence[Any],
    payloads: Optional[Sequence[Any]] = None,
) -> List[Any]:
    """Run ``runner`` over ``points`` under the active context.

    ``payloads`` (defaults to the points themselves) are what gets
    fingerprinted for the cache key; ``runner`` must be a picklable
    top-level callable for the pool path.
    """
    ctx = _context.current()
    cache = ctx.cache if ctx is not None else None
    workers = ctx.workers if ctx is not None else 1
    points = list(points)
    results: List[Any] = [_MISS] * len(points)
    keys: List[Optional[str]] = [None] * len(points)
    miss: List[int] = []
    for i, pt in enumerate(points):
        if cache is not None:
            keys[i] = cache.key_for(
                kind, payloads[i] if payloads is not None else pt
            )
            hit, value = cache.get(keys[i])
            if hit:
                results[i] = value
                continue
        miss.append(i)
    run_wall = 0.0
    sim_events = 0
    if miss:
        executor = ctx.executor() if ctx is not None else None
        t0 = time.perf_counter()
        computed = map_points(
            runner, [points[i] for i in miss], workers, executor=executor
        )
        run_wall = time.perf_counter() - t0
        for i, value in zip(miss, computed):
            results[i] = value
            # Collective results report how many simulator events the point
            # cost; cache hits replay none, so only misses count.
            sim_events += getattr(value, "sim_events", 0) or 0
            if cache is not None:
                cache.put(keys[i], value)
    if ctx is not None:
        ctx.stats.points_total += len(points)
        ctx.stats.points_run += len(miss)
        ctx.stats.cache_hits += len(points) - len(miss)
        ctx.stats.sim_events += sim_events
        ctx.stats.run_wall_s += run_wall
    return results


# -- collective points -------------------------------------------------------


def run_specs(specs: Iterable[CollectiveSpec]) -> List[CollectiveResult]:
    """Run every spec, pooled and cached per the active context."""
    return sweep("collective", _run_collective_fresh, list(specs))


def run_collective(spec: CollectiveSpec) -> CollectiveResult:
    """Cache-aware single point (a one-element :func:`run_specs`)."""
    return run_specs([spec])[0]


# -- microbenchmark points ---------------------------------------------------


@dataclass(frozen=True)
class MicrobenchPoint:
    """One microbench invocation, with arguments normalised by name so the
    cache key is identical however the call was spelled."""

    fn: str
    arch: Any
    kwargs: Tuple[Tuple[str, Any], ...]


def microbench_point(fn_name: str, arch, args=(), kwargs=None) -> MicrobenchPoint:
    import repro.bench.microbench as mb

    target = inspect.unwrap(getattr(mb, fn_name))
    bound = inspect.signature(target).bind(arch, *args, **(kwargs or {}))
    bound.apply_defaults()
    items = {k: v for k, v in bound.arguments.items() if k != "arch"}
    return MicrobenchPoint(fn_name, arch, tuple(sorted(items.items())))


def _exec_microbench(pt: MicrobenchPoint):
    import repro.bench.microbench as mb

    fn = inspect.unwrap(getattr(mb, pt.fn))
    return fn(pt.arch, **dict(pt.kwargs))


def sweep_microbench(fn_name: str, calls: Sequence[Tuple[Any, tuple, dict]]) -> List[Any]:
    """Fan microbench points out: ``calls`` is ``(arch, args, kwargs)`` each."""
    points = [microbench_point(fn_name, a, args, kw) for a, args, kw in calls]
    return sweep(f"microbench.{fn_name}", _exec_microbench, points)


# -- scalar cached computations ----------------------------------------------


def cached_call(kind: str, payload: Any, compute: Callable[[], Any]) -> Any:
    """Memoise one expensive computation in the active context's cache.

    With no context (or no cache) this is just ``compute()``.
    """
    ctx = _context.current()
    if ctx is None or ctx.cache is None:
        return compute()
    key = ctx.cache.key_for(kind, payload)
    hit, value = ctx.cache.get(key)
    ctx.stats.points_total += 1
    if hit:
        ctx.stats.cache_hits += 1
        return value
    t0 = time.perf_counter()
    value = compute()
    ctx.stats.run_wall_s += time.perf_counter() - t0
    ctx.stats.points_run += 1
    ctx.stats.sim_events += getattr(value, "sim_events", 0) or 0
    ctx.cache.put(key, value)
    return value
